//===- examples/train_and_evaluate.cpp - The paper's full pipeline --------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Runs the paper end to end: build the corpus, label every loop
// empirically, train the NN and SVM classifiers, report LOOCV accuracy
// (Table 2 style) and a few whole-benchmark speedups (Figure 4 style).
//
// Flags:
//   --quick            small corpus (fast; default)
//   --full             the whole 72-benchmark corpus
//   --swp              enable the software pipelining configuration
//   --radius=<r>       NN radius (default 0.3)
//   --threads=<n>      parallelism for labeling/evaluation (1 = serial;
//                      default: METAOPT_THREADS or hardware concurrency)
//
//===----------------------------------------------------------------------===//

#include "concurrency/ThreadPool.h"
#include "core/driver/Pipeline.h"
#include "core/driver/SpeedupEvaluator.h"
#include "core/ml/CrossValidation.h"
#include "core/ml/Evaluation.h"
#include "heuristics/OrcLikeHeuristic.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  bool Full = Args.has("full");
  bool EnableSwp = Args.has("swp");
  double Radius = Args.getDouble("radius", 0.3);
  if (Args.has("threads"))
    ThreadPool::setGlobalThreads(
        static_cast<unsigned>(Args.getInt("threads", 0)));

  PipelineOptions Options;
  if (!Full) {
    // A slice of the corpus: fewer loops per benchmark, same diversity.
    Options.Corpus.MinLoopsPerBenchmark = 6;
    Options.Corpus.MaxLoopsPerBenchmark = 10;
    Options.CacheDir = ""; // Quick runs skip the disk cache.
  }
  Pipeline Pipe(Options);

  std::printf("Building the corpus and labeling loops (u=1..8, 30 noisy "
              "trials each)...\n");
  const Dataset &Data = Pipe.dataset(EnableSwp);
  std::printf("Usable labeled loops: %zu (SWP %s)\n\n", Data.size(),
              EnableSwp ? "enabled" : "disabled");

  // Label histogram (Figure 3).
  auto Histogram = Data.labelHistogram();
  std::printf("Optimal unroll factor distribution:\n");
  for (unsigned F = 1; F <= MaxUnrollFactor; ++F) {
    double Share = Data.empty()
                       ? 0.0
                       : static_cast<double>(Histogram[F - 1]) / Data.size();
    std::printf("  u=%u: %5.1f%% %s\n", F, Share * 100.0,
                std::string(static_cast<size_t>(Share * 60), '#').c_str());
  }

  // LOOCV accuracy for both classifiers + the ORC baseline (Table 2).
  FeatureSet Features = paperReducedFeatureSet();
  NearNeighborClassifier Nn(Features, Radius);
  std::vector<unsigned> NnPred = loocvPredictions(Nn, Data);

  Rng Subsampler(1);
  Dataset SvmData = Data.subsample(Full ? 1500 : Data.size(), Subsampler);
  SvmClassifier Svm(Features);
  std::vector<unsigned> SvmPred = loocvPredictions(Svm, SvmData);

  MachineModel Machine(Pipe.options().Machine);
  OrcLikeHeuristic Orc(Machine, EnableSwp);
  std::vector<unsigned> OrcPred;
  OrcPred.reserve(Data.size());
  for (const Benchmark &Bench : Pipe.corpus())
    for (const CorpusLoop &Entry : Bench.Loops)
      for (const Example &Ex : Data.examples())
        if (Ex.LoopName == Entry.TheLoop.name())
          OrcPred.push_back(Orc.chooseFactor(Entry.TheLoop));

  RankDistribution NnRank = rankDistribution(Data, NnPred);
  RankDistribution SvmRank = rankDistribution(SvmData, SvmPred);
  RankDistribution OrcRank = rankDistribution(Data, OrcPred);

  TablePrinter Table("Prediction quality (LOOCV)");
  Table.addHeader({"rank of chosen factor", "NN", "SVM", "ORC"});
  static const char *RankNames[] = {
      "optimal", "second-best", "third-best",  "fourth-best",
      "fifth-best", "sixth-best", "seventh-best", "worst"};
  for (unsigned R = 0; R < MaxUnrollFactor; ++R)
    Table.addRow({RankNames[R], formatDouble(NnRank.Fraction[R], 2),
                  formatDouble(SvmRank.Fraction[R], 2),
                  formatDouble(OrcRank.Fraction[R], 2)});
  std::printf("\n");
  Table.print();
  std::printf("\nNN optimal-or-second: %.0f%%   SVM optimal-or-second: "
              "%.0f%%\n\n",
              NnRank.topTwoAccuracy() * 100.0,
              SvmRank.topTwoAccuracy() * 100.0);

  // A few whole-benchmark speedups (Figure 4/5 protocol).
  std::vector<std::string> EvalNames;
  const std::vector<std::string> &AllSpec = spec2000BenchmarkNames();
  size_t Count = Full ? AllSpec.size() : 6;
  EvalNames.assign(AllSpec.begin(), AllSpec.begin() + Count);

  SpeedupOptions SpeedupOpts;
  SpeedupOpts.Labeling = Pipe.labelingOptions(EnableSwp);
  SpeedupOpts.NnRadius = Radius;
  SpeedupReport Report = evaluateSpeedups(Pipe.corpus(), EvalNames, Data,
                                          Features, SpeedupOpts);

  TablePrinter Speedups("Whole-benchmark speedup over the ORC-like "
                        "heuristic");
  Speedups.addHeader({"benchmark", "NN", "SVM", "oracle"});
  for (const SpeedupRow &Row : Report.Rows)
    Speedups.addRow({Row.Benchmark, formatPercent(Row.NnVsOrc),
                     formatPercent(Row.SvmVsOrc),
                     formatPercent(Row.OracleVsOrc)});
  Speedups.addRow({"(mean)", formatPercent(Report.MeanNn),
                   formatPercent(Report.MeanSvm),
                   formatPercent(Report.MeanOracle)});
  Speedups.print();
  return 0;
}
