//===- examples/compiler_driver.cpp - Learned unrolling in a compiler -----===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// A miniature compiler driver: reads loops in the textual format, verifies
// them, asks a trained classifier for the unroll factor (falling back to
// the ORC-like heuristic with --orc), unrolls, schedules, and reports the
// modeled performance. Demonstrates how "the learned classifier can easily
// be incorporated into a compiler" (§4.1).
//
// Usage:
//   compiler_driver [--orc] [--swp] [--classifier=nn|svm]
//                   [--show-schedule] [--save-model=<path>]
//                   [--load-model=<path>] <file.loop>
//   (with no file, a built-in sample program is compiled)
//
// --save-model writes the trained classifier to disk; --load-model skips
// training entirely and restores it - how a production compiler would
// ship the model.
//
//===----------------------------------------------------------------------===//

#include "analysis/DependenceGraph.h"
#include "core/driver/Heuristics.h"
#include "core/driver/Pipeline.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"
#include "heuristics/OrcLikeHeuristic.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sched/IterativeModulo.h"
#include "sched/ListScheduler.h"
#include "sched/SchedulePrinter.h"
#include "sim/Simulator.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "transform/MemoryOpt.h"
#include "transform/Unroller.h"

#include <cstdio>
#include <memory>

using namespace metaopt;

static const char *SampleProgram = R"(
# A dot-product reduction over 2048 elements.
loop "sample.dot" lang=C nest=1 trip=2048 rtrip=2048 {
  phi %f_acc = [%f_acc.init, %f_acc.next]
  %f_x = load @0[stride=8, offset=0, size=8]
  %f_y = load @1[stride=8, offset=0, size=8]
  %f_acc.next = fma %f_x, %f_y, %f_acc
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}

# A byte-wise table lookup with an early exit, unknown trip count.
loop "sample.scan" lang=C nest=1 trip=-1 rtrip=777 {
  %i_v = load @0[stride=4, offset=0, size=4]
  %p_hit = icmp %i_v, %i_needle
  exit_if %p_hit prob=0.002
  %i_t = iadd %i_v, %i_bias
  store %i_t, @1[stride=4, offset=0, size=4]
  %i_iv.next = iv_add %i_iv
  %p_iv.cond = iv_cmp %i_iv.next
  back_br %p_iv.cond
}
)";

static std::string readWholeFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return "";
  std::string Content;
  char Buffer[1 << 14];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Content.append(Buffer, Read);
  std::fclose(File);
  return Content;
}

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  bool UseOrc = Args.has("orc");
  bool EnableSwp = Args.has("swp");
  bool ShowSchedule = Args.has("show-schedule");
  std::string ClassifierName = Args.getString("classifier", "nn");
  std::string SaveModelPath = Args.getString("save-model", "");
  std::string LoadModelPath = Args.getString("load-model", "");

  std::string Source = SampleProgram;
  if (!Args.positional().empty()) {
    Source = readWholeFile(Args.positional()[0]);
    if (Source.empty()) {
      std::fprintf(stderr, "error: cannot read '%s'\n",
                   Args.positional()[0].c_str());
      return 1;
    }
  }

  ParseResult Parsed = parseLoops(Source);
  if (!Parsed.succeeded()) {
    std::fprintf(stderr, "error: line %zu: %s\n", Parsed.ErrorLine,
                 Parsed.Error.c_str());
    return 1;
  }
  std::printf("Parsed %zu loop(s).\n\n", Parsed.Loops.size());

  // Build the unrolling policy.
  MachineModel Machine(itanium2Config());
  OrcLikeHeuristic Orc(Machine, EnableSwp);
  std::unique_ptr<Classifier> Trained;
  std::unique_ptr<LearnedHeuristic> Learned;
  const UnrollHeuristic *Policy = &Orc;
  if (!UseOrc && !LoadModelPath.empty()) {
    std::string Blob = readWholeFile(LoadModelPath);
    if (Blob.empty()) {
      std::fprintf(stderr, "error: cannot read model '%s'\n",
                   LoadModelPath.c_str());
      return 1;
    }
    Trained = deserializeClassifier(Blob);
    if (!Trained) {
      std::fprintf(stderr, "error: '%s' is not a recognizable model\n",
                   LoadModelPath.c_str());
      return 1;
    }
    std::printf("Loaded trained %s model from %s.\n\n",
                Trained->name().c_str(), LoadModelPath.c_str());
    Learned = std::make_unique<LearnedHeuristic>(*Trained);
    Policy = Learned.get();
  } else if (!UseOrc) {
    // Train on a compact corpus slice; the policy generalizes to the
    // novel loops we are about to compile.
    PipelineOptions Options;
    Options.Corpus.MinLoopsPerBenchmark = 6;
    Options.Corpus.MaxLoopsPerBenchmark = 10;
    Options.CacheDir = "";
    Pipeline Pipe(Options);
    std::printf("Training the %s classifier on %zu labeled loops...\n\n",
                ClassifierName.c_str(), Pipe.dataset(EnableSwp).size());
    std::string Blob;
    if (ClassifierName == "svm") {
      auto Svm = std::make_unique<SvmClassifier>(paperReducedFeatureSet());
      Svm->train(Pipe.dataset(EnableSwp));
      Blob = Svm->serialize();
      Trained = std::move(Svm);
    } else {
      auto Nn = std::make_unique<NearNeighborClassifier>(
          paperReducedFeatureSet());
      Nn->train(Pipe.dataset(EnableSwp));
      Blob = Nn->serialize();
      Trained = std::move(Nn);
    }
    if (!SaveModelPath.empty()) {
      std::FILE *File = std::fopen(SaveModelPath.c_str(), "wb");
      if (File) {
        std::fwrite(Blob.data(), 1, Blob.size(), File);
        std::fclose(File);
        std::printf("Saved the trained model to %s (%zu bytes).\n\n",
                    SaveModelPath.c_str(), Blob.size());
      } else {
        std::fprintf(stderr, "warning: cannot write '%s'\n",
                     SaveModelPath.c_str());
      }
    }
    Learned = std::make_unique<LearnedHeuristic>(*Trained);
    Policy = Learned.get();
  }

  for (const Loop &L : Parsed.Loops) {
    std::vector<std::string> Violations = verifyLoop(L);
    if (!Violations.empty()) {
      std::fprintf(stderr, "loop \"%s\" is malformed:\n", L.name().c_str());
      for (const std::string &Violation : Violations)
        std::fprintf(stderr, "  %s\n", Violation.c_str());
      return 1;
    }

    unsigned Factor = Policy->chooseFactor(L);
    Loop Unrolled = unrollLoop(L, Factor);
    MemoryOptStats MemStats = optimizeMemory(Unrolled);
    DependenceGraph DG(Unrolled);
    Schedule Sched = listSchedule(Unrolled, DG, Machine);

    std::printf("loop \"%s\": %s chose u=%u\n", L.name().c_str(),
                Policy->name().c_str(), Factor);
    std::printf("  unrolled body: %zu instructions, schedule length %u "
                "cycles\n",
                Unrolled.body().size(), Sched.Length);
    if (MemStats.ForwardedLoads + MemStats.RedundantLoads +
        MemStats.PairedLoads)
      std::printf("  memory opt: %u forwarded, %u redundant, %u paired "
                  "loads\n",
                  MemStats.ForwardedLoads, MemStats.RedundantLoads,
                  MemStats.PairedLoads);
    if (ShowSchedule) {
      if (EnableSwp) {
        ModuloScheduleResult Kernel =
            iterativeModuloSchedule(Unrolled, DG, Machine);
        std::printf("%s", Kernel.Succeeded
                              ? printModuloSchedule(Unrolled, Kernel,
                                                    Machine)
                                    .c_str()
                              : "  (not pipelineable; list schedule:)\n");
        if (!Kernel.Succeeded)
          std::printf("%s",
                      printSchedule(Unrolled, Sched, Machine).c_str());
      } else {
        std::printf("%s", printSchedule(Unrolled, Sched, Machine).c_str());
      }
    }

    SimContext Ctx;
    TablePrinter Table;
    Table.addHeader({"factor", "modeled cycles", "vs chosen"});
    double Chosen = simulateLoop(L, Factor, Machine, Ctx, EnableSwp).Cycles;
    for (unsigned F = 1; F <= MaxUnrollFactor; ++F) {
      double Cycles = simulateLoop(L, F, Machine, Ctx, EnableSwp).Cycles;
      Table.addRow({std::to_string(F) + (F == Factor ? " <==" : ""),
                    formatDouble(Cycles, 0),
                    formatDouble(Cycles / Chosen, 3) + "x"});
    }
    Table.print();
    std::printf("\n");
  }
  return 0;
}
