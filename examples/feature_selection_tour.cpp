//===- examples/feature_selection_tour.cpp - Section 7 walkthrough --------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Walks through both feature-selection methods of Section 7 on a corpus
// slice: the mutual information score of every feature (Table 3) and
// greedy forward selection under the NN and SVM classifiers (Table 4),
// then shows how a reduced feature set affects LOOCV accuracy.
//
// Flags: --full (whole corpus), --bins=<n>, --steps=<n>,
//        --threads=<n> (parallelism; 1 = serial)
//
//===----------------------------------------------------------------------===//

#include "concurrency/ThreadPool.h"
#include "core/driver/Pipeline.h"
#include "core/ml/CrossValidation.h"
#include "core/ml/FeatureSelection.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  bool Full = Args.has("full");
  int Bins = static_cast<int>(Args.getInt("bins", 10));
  unsigned Steps = static_cast<unsigned>(Args.getInt("steps", 5));
  if (Args.has("threads"))
    ThreadPool::setGlobalThreads(
        static_cast<unsigned>(Args.getInt("threads", 0)));

  PipelineOptions Options;
  if (!Full) {
    Options.Corpus.MinLoopsPerBenchmark = 6;
    Options.Corpus.MaxLoopsPerBenchmark = 10;
    Options.CacheDir = "";
  }
  Pipeline Pipe(Options);
  const Dataset &Data = Pipe.dataset(/*EnableSwp=*/false);
  std::printf("Labeled loops: %zu\n\n", Data.size());

  // Mutual information ranking (Table 3).
  auto Ranked = rankByMutualInformation(Data, Bins);
  TablePrinter MisTable("Features by mutual information score");
  MisTable.addHeader({"rank", "feature", "MIS (bits)"});
  for (size_t R = 0; R < 10 && R < Ranked.size(); ++R)
    MisTable.addRow({std::to_string(R + 1), featureName(Ranked[R].first),
                     formatDouble(Ranked[R].second, 3)});
  MisTable.print();

  // Greedy forward selection (Table 4). The SVM column retrains an
  // LS-SVM per candidate, so it runs on a subsample.
  Rng Subsampler(11);
  Dataset Small = Data.subsample(400, Subsampler);

  std::printf("\nGreedy selection, 1-NN training error (leave-self-out):\n");
  auto NnSteps = greedyFeatureSelection(Data, nearNeighborTrainError,
                                        Steps);
  for (size_t I = 0; I < NnSteps.size(); ++I)
    std::printf("  %zu. %-24s error %.3f\n", I + 1,
                featureName(NnSteps[I].Feature), NnSteps[I].TrainError);

  std::printf("\nGreedy selection, LS-SVM training error (on %zu "
              "examples):\n",
              Small.size());
  auto SvmSteps = greedyFeatureSelection(Small, svmTrainError, Steps);
  for (size_t I = 0; I < SvmSteps.size(); ++I)
    std::printf("  %zu. %-24s error %.3f\n", I + 1,
                featureName(SvmSteps[I].Feature), SvmSteps[I].TrainError);

  // Reduced vs full feature set, LOOCV (the paper's point: "using a well
  // chosen subset of features improves classification accuracy").
  NearNeighborClassifier NnFull(fullFeatureSet());
  NearNeighborClassifier NnReduced(paperReducedFeatureSet());
  double FullAcc = predictionAccuracy(Data, loocvPredictions(NnFull, Data));
  double ReducedAcc =
      predictionAccuracy(Data, loocvPredictions(NnReduced, Data));
  std::printf("\nNN LOOCV accuracy: full %u features %.1f%%, reduced set "
              "%.1f%%\n", NumFeatures,
              FullAcc * 100.0, ReducedAcc * 100.0);
  return 0;
}
