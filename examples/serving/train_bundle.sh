#!/bin/sh
# Trains a model bundle and takes the serving stack for a spin.
#
# Run from the repository root after building:
#   cmake -B build -S . && cmake --build build -j
#   examples/serving/train_bundle.sh
#
# The walkthrough in docs/SERVING.md explains each step.
set -eu

BUILD="${BUILD_DIR:-build}"
OUT="${1:-/tmp/metaopt-demo.bundle}"
SOCKET="${TMPDIR:-/tmp}/metaopt-demo-$$.sock"
LOOPS="$(dirname "$0")/loops"

echo "== 1. Train a near-neighbor model and publish it as a bundle =="
# --corpus-min/max shrink the corpus so the demo labels in seconds; drop
# them (and add --cv=loocv) for a paper-sized training run.
"$BUILD/tools/metaopt-train" --out="$OUT" --classifier=nn \
    --corpus-min=2 --corpus-max=3 --cv=loocv

echo
echo "== 2. Inspect the published artifact =="
"$BUILD/tools/metaopt-train" --inspect "$OUT"

echo
echo "== 3. Serve it and ask for predictions =="
"$BUILD/tools/metaopt-serve" --bundle="$OUT" --socket="$SOCKET" &
SERVE_PID=$!
trap 'kill -TERM $SERVE_PID 2>/dev/null; wait $SERVE_PID 2>/dev/null' EXIT

"$BUILD/tools/metaopt-predict" --socket="$SOCKET" --health
"$BUILD/tools/metaopt-predict" --socket="$SOCKET" --scores \
    "$LOOPS"/saxpy.loop "$LOOPS"/reduction.loop "$LOOPS"/search.loop

echo
echo "== 4. Load-test it (32 closed-loop clients, byte-identity checked) =="
"$BUILD/bench/loadgen_serve" --socket="$SOCKET" --clients=32 --requests=25

echo
echo "== 5. Drain =="
"$BUILD/tools/metaopt-predict" --socket="$SOCKET" --stats
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
trap - EXIT
echo "demo bundle left at $OUT"
