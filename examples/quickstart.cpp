//===- examples/quickstart.cpp - First steps with the library -------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Quickstart: build a loop, look at its features, unroll it, and see why
// picking the unroll factor is an interesting problem — the modeled cycle
// counts at factors 1..8 are not monotone.
//
//===----------------------------------------------------------------------===//

#include "core/features/FeatureExtractor.h"
#include "heuristics/OrcLikeHeuristic.h"
#include "ir/LoopBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "sim/Simulator.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "transform/Unroller.h"

#include <cstdio>

using namespace metaopt;

int main() {
  // 1. Build a daxpy-style loop: y[i] = alpha * x[i] + y[i], 1024 times.
  LoopBuilder Builder("daxpy", SourceLanguage::C, /*NestLevel=*/1,
                      /*TripCount=*/1024);
  RegId Alpha = Builder.liveIn(RegClass::Float, "alpha");
  MemRef XRef{/*BaseSym=*/0, /*Stride=*/8, /*Offset=*/0, false, 8};
  MemRef YRef{/*BaseSym=*/1, /*Stride=*/8, /*Offset=*/0, false, 8};
  RegId X = Builder.load(RegClass::Float, XRef);
  RegId Y = Builder.load(RegClass::Float, YRef);
  RegId R = Builder.fma(Alpha, X, Y);
  Builder.store(R, YRef);
  Loop Daxpy = Builder.finalize();

  std::printf("The loop (well-formed: %s):\n\n%s\n",
              isWellFormed(Daxpy) ? "yes" : "no",
              printLoop(Daxpy).c_str());

  // 2. A few of the 41 features the classifiers see.
  FeatureVector Features = extractFeatures(Daxpy);
  std::printf("Selected features:\n");
  for (FeatureId Id :
       {FeatureId::NumOps, FeatureId::NumFloatOps, FeatureId::NumMemOps,
        FeatureId::CriticalPathLatency, FeatureId::LiveRangeSize,
        FeatureId::TripCount}) {
    std::printf("  %-22s = %g\n", featureName(Id),
                Features[static_cast<unsigned>(Id)]);
  }

  // 3. Unroll by four and show the renamed, address-rewritten body.
  Loop Unrolled = unrollLoop(Daxpy, 4);
  std::printf("\nUnrolled by 4 (still well-formed: %s), body grew "
              "%zu -> %zu instructions.\n",
              isWellFormed(Unrolled) ? "yes" : "no",
              Daxpy.body().size(), Unrolled.body().size());

  // 4. "Compile and run" the loop at every factor on the Itanium-2-like
  // machine and see where the sweet spot is.
  MachineModel Machine(itanium2Config());
  SimContext Ctx; // Default program context.
  TablePrinter Table("Modeled execution at each unroll factor");
  Table.addHeader({"factor", "cycles", "cycles/iter", "schedule len",
                   "spills"});
  double Best = 1e300;
  unsigned BestFactor = 1;
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    SimResult Sim = simulateLoop(Daxpy, Factor, Machine, Ctx,
                                 /*EnableSwp=*/false);
    Table.addRow({std::to_string(Factor), formatDouble(Sim.Cycles, 0),
                  formatDouble(Sim.CyclesPerIteration, 2),
                  std::to_string(Sim.ScheduleLength),
                  std::to_string(Sim.SpillPairs)});
    if (Sim.Cycles < Best) {
      Best = Sim.Cycles;
      BestFactor = Factor;
    }
  }
  std::printf("\n");
  Table.print();
  std::printf("\nEmpirical best factor: %u\n", BestFactor);

  // 5. What would the hand-written production-style heuristic do?
  OrcLikeHeuristic Orc(Machine, /*SwpMode=*/false);
  std::printf("ORC-like heuristic picks: %u\n", Orc.chooseFactor(Daxpy));
  std::printf("\n(train_and_evaluate shows how the learned classifiers "
              "make this choice.)\n");
  return 0;
}
