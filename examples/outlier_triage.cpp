//===- examples/outlier_triage.cpp - The Section 5.1 triage tool ----------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// "One can imagine a tool that automatically detects outliers by setting
// low confidence examples aside. An engineer could then visually inspect
// outlier loops to determine why they are hard to classify." (§5.1)
//
// This example is that tool: it labels a corpus, replays the NN vote for
// every loop with the loop excluded, and prints the loops whose
// neighborhoods are empty or contested - together with the loop body of
// the worst offender, ready for the engineer's eyeballs.
//
// Flags: --full (whole corpus), --threshold=<c>, --show=<n>
//
//===----------------------------------------------------------------------===//

#include "core/driver/OutlierTriage.h"
#include "core/driver/Pipeline.h"
#include "ir/Printer.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <map>

using namespace metaopt;

int main(int Argc, char **Argv) {
  CommandLine Args(Argc, Argv);
  PipelineOptions Options;
  if (!Args.has("full")) {
    Options.Corpus.MinLoopsPerBenchmark = 6;
    Options.Corpus.MaxLoopsPerBenchmark = 10;
    Options.CacheDir = "";
  }
  Pipeline Pipe(Options);
  const Dataset &Data = Pipe.dataset(/*EnableSwp=*/false);

  TriageOptions Triage;
  Triage.ConfidenceThreshold = Args.getDouble("threshold", 0.5);
  TriageReport Report =
      triageOutliers(Data, paperReducedFeatureSet(), Triage);

  std::printf("Labeled loops: %zu\n", Report.TotalExamples);
  std::printf("Flagged as low-confidence: %zu (%.1f%%), of which %zu had "
              "no neighbors at all\n",
              Report.Outliers.size(),
              100.0 * Report.Outliers.size() /
                  std::max<size_t>(1, Report.TotalExamples),
              Report.EmptyNeighborhoods);
  std::printf("Accuracy on confident loops: %.1f%%   on flagged loops: "
              "%.1f%%\n\n",
              Report.ConfidentAccuracy * 100.0,
              Report.OutlierAccuracy * 100.0);

  size_t Show = static_cast<size_t>(Args.getInt("show", 12));
  TablePrinter Table("Lowest-confidence loops (inspect these first)");
  Table.addHeader({"loop", "label", "predicted", "neighbors",
                   "confidence", "miss cost"});
  for (size_t I = 0; I < Show && I < Report.Outliers.size(); ++I) {
    const OutlierRecord &Record = Report.Outliers[I];
    Table.addRow({Record.LoopName, std::to_string(Record.Label),
                  std::to_string(Record.Predicted),
                  std::to_string(Record.NeighborCount),
                  formatDouble(Record.Confidence, 2),
                  formatDouble(Record.MispredictCost, 2) + "x"});
  }
  Table.print();

  // Show the worst offender's body, as the imagined engineer would.
  if (!Report.Outliers.empty()) {
    const OutlierRecord &Worst = Report.Outliers.front();
    std::map<std::string, const Loop *> Index;
    for (const Benchmark &Bench : Pipe.corpus())
      for (const CorpusLoop &Entry : Bench.Loops)
        Index[Entry.TheLoop.name()] = &Entry.TheLoop;
    auto It = Index.find(Worst.LoopName);
    if (It != Index.end()) {
      std::printf("\nWhy is \"%s\" hard to classify? Its body:\n\n%s",
                  Worst.LoopName.c_str(), printLoop(*It->second).c_str());
      std::printf("\nEmpirical best factor %u, the %u-NN vote said %u "
                  "with confidence %.2f - its static features resemble "
                  "loops whose program context (cache share, register "
                  "budget) differs, which no static feature reveals.\n",
                  Worst.Label, Worst.NeighborCount, Worst.Predicted,
                  Worst.Confidence);
    }
  }
  return 0;
}
