file(REMOVE_RECURSE
  "libmetaopt_support.a"
)
