file(REMOVE_RECURSE
  "CMakeFiles/metaopt_support.dir/CommandLine.cpp.o"
  "CMakeFiles/metaopt_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/metaopt_support.dir/Csv.cpp.o"
  "CMakeFiles/metaopt_support.dir/Csv.cpp.o.d"
  "CMakeFiles/metaopt_support.dir/Rng.cpp.o"
  "CMakeFiles/metaopt_support.dir/Rng.cpp.o.d"
  "CMakeFiles/metaopt_support.dir/Statistics.cpp.o"
  "CMakeFiles/metaopt_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/metaopt_support.dir/StringUtils.cpp.o"
  "CMakeFiles/metaopt_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/metaopt_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/metaopt_support.dir/TablePrinter.cpp.o.d"
  "libmetaopt_support.a"
  "libmetaopt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
