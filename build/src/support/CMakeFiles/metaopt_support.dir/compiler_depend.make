# Empty compiler generated dependencies file for metaopt_support.
# This may be replaced when dependencies are built.
