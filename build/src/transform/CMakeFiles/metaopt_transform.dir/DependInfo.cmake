
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/MemoryOpt.cpp" "src/transform/CMakeFiles/metaopt_transform.dir/MemoryOpt.cpp.o" "gcc" "src/transform/CMakeFiles/metaopt_transform.dir/MemoryOpt.cpp.o.d"
  "/root/repo/src/transform/Unroller.cpp" "src/transform/CMakeFiles/metaopt_transform.dir/Unroller.cpp.o" "gcc" "src/transform/CMakeFiles/metaopt_transform.dir/Unroller.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/metaopt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/metaopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
