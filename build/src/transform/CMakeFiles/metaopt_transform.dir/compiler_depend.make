# Empty compiler generated dependencies file for metaopt_transform.
# This may be replaced when dependencies are built.
