file(REMOVE_RECURSE
  "libmetaopt_transform.a"
)
