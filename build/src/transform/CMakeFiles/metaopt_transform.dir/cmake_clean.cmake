file(REMOVE_RECURSE
  "CMakeFiles/metaopt_transform.dir/MemoryOpt.cpp.o"
  "CMakeFiles/metaopt_transform.dir/MemoryOpt.cpp.o.d"
  "CMakeFiles/metaopt_transform.dir/Unroller.cpp.o"
  "CMakeFiles/metaopt_transform.dir/Unroller.cpp.o.d"
  "libmetaopt_transform.a"
  "libmetaopt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
