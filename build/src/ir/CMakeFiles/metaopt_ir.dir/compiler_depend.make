# Empty compiler generated dependencies file for metaopt_ir.
# This may be replaced when dependencies are built.
