
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Instruction.cpp" "src/ir/CMakeFiles/metaopt_ir.dir/Instruction.cpp.o" "gcc" "src/ir/CMakeFiles/metaopt_ir.dir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Loop.cpp" "src/ir/CMakeFiles/metaopt_ir.dir/Loop.cpp.o" "gcc" "src/ir/CMakeFiles/metaopt_ir.dir/Loop.cpp.o.d"
  "/root/repo/src/ir/LoopBuilder.cpp" "src/ir/CMakeFiles/metaopt_ir.dir/LoopBuilder.cpp.o" "gcc" "src/ir/CMakeFiles/metaopt_ir.dir/LoopBuilder.cpp.o.d"
  "/root/repo/src/ir/Opcode.cpp" "src/ir/CMakeFiles/metaopt_ir.dir/Opcode.cpp.o" "gcc" "src/ir/CMakeFiles/metaopt_ir.dir/Opcode.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/ir/CMakeFiles/metaopt_ir.dir/Parser.cpp.o" "gcc" "src/ir/CMakeFiles/metaopt_ir.dir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/metaopt_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/metaopt_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/metaopt_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/metaopt_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/metaopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
