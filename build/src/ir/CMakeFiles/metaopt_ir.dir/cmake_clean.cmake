file(REMOVE_RECURSE
  "CMakeFiles/metaopt_ir.dir/Instruction.cpp.o"
  "CMakeFiles/metaopt_ir.dir/Instruction.cpp.o.d"
  "CMakeFiles/metaopt_ir.dir/Loop.cpp.o"
  "CMakeFiles/metaopt_ir.dir/Loop.cpp.o.d"
  "CMakeFiles/metaopt_ir.dir/LoopBuilder.cpp.o"
  "CMakeFiles/metaopt_ir.dir/LoopBuilder.cpp.o.d"
  "CMakeFiles/metaopt_ir.dir/Opcode.cpp.o"
  "CMakeFiles/metaopt_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/metaopt_ir.dir/Parser.cpp.o"
  "CMakeFiles/metaopt_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/metaopt_ir.dir/Printer.cpp.o"
  "CMakeFiles/metaopt_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/metaopt_ir.dir/Verifier.cpp.o"
  "CMakeFiles/metaopt_ir.dir/Verifier.cpp.o.d"
  "libmetaopt_ir.a"
  "libmetaopt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
