file(REMOVE_RECURSE
  "libmetaopt_ir.a"
)
