file(REMOVE_RECURSE
  "libmetaopt_heuristics.a"
)
