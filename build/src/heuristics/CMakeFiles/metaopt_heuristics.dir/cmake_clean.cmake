file(REMOVE_RECURSE
  "CMakeFiles/metaopt_heuristics.dir/OrcLikeHeuristic.cpp.o"
  "CMakeFiles/metaopt_heuristics.dir/OrcLikeHeuristic.cpp.o.d"
  "CMakeFiles/metaopt_heuristics.dir/UnrollHeuristic.cpp.o"
  "CMakeFiles/metaopt_heuristics.dir/UnrollHeuristic.cpp.o.d"
  "libmetaopt_heuristics.a"
  "libmetaopt_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
