# Empty dependencies file for metaopt_heuristics.
# This may be replaced when dependencies are built.
