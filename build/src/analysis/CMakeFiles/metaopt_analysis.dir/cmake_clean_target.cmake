file(REMOVE_RECURSE
  "libmetaopt_analysis.a"
)
