# Empty compiler generated dependencies file for metaopt_analysis.
# This may be replaced when dependencies are built.
