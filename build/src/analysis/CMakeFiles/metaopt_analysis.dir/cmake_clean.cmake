file(REMOVE_RECURSE
  "CMakeFiles/metaopt_analysis.dir/CriticalPath.cpp.o"
  "CMakeFiles/metaopt_analysis.dir/CriticalPath.cpp.o.d"
  "CMakeFiles/metaopt_analysis.dir/DependenceGraph.cpp.o"
  "CMakeFiles/metaopt_analysis.dir/DependenceGraph.cpp.o.d"
  "CMakeFiles/metaopt_analysis.dir/Latency.cpp.o"
  "CMakeFiles/metaopt_analysis.dir/Latency.cpp.o.d"
  "CMakeFiles/metaopt_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/metaopt_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/metaopt_analysis.dir/Recurrence.cpp.o"
  "CMakeFiles/metaopt_analysis.dir/Recurrence.cpp.o.d"
  "libmetaopt_analysis.a"
  "libmetaopt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
