
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/driver/Heuristics.cpp" "src/core/CMakeFiles/metaopt_core.dir/driver/Heuristics.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/driver/Heuristics.cpp.o.d"
  "/root/repo/src/core/driver/LabelCollector.cpp" "src/core/CMakeFiles/metaopt_core.dir/driver/LabelCollector.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/driver/LabelCollector.cpp.o.d"
  "/root/repo/src/core/driver/OutlierTriage.cpp" "src/core/CMakeFiles/metaopt_core.dir/driver/OutlierTriage.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/driver/OutlierTriage.cpp.o.d"
  "/root/repo/src/core/driver/Pipeline.cpp" "src/core/CMakeFiles/metaopt_core.dir/driver/Pipeline.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/driver/Pipeline.cpp.o.d"
  "/root/repo/src/core/driver/SpeedupEvaluator.cpp" "src/core/CMakeFiles/metaopt_core.dir/driver/SpeedupEvaluator.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/driver/SpeedupEvaluator.cpp.o.d"
  "/root/repo/src/core/features/FeatureCatalog.cpp" "src/core/CMakeFiles/metaopt_core.dir/features/FeatureCatalog.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/features/FeatureCatalog.cpp.o.d"
  "/root/repo/src/core/features/FeatureExtractor.cpp" "src/core/CMakeFiles/metaopt_core.dir/features/FeatureExtractor.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/features/FeatureExtractor.cpp.o.d"
  "/root/repo/src/core/features/Normalizer.cpp" "src/core/CMakeFiles/metaopt_core.dir/features/Normalizer.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/features/Normalizer.cpp.o.d"
  "/root/repo/src/core/ml/Classifier.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/Classifier.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/Classifier.cpp.o.d"
  "/root/repo/src/core/ml/CrossValidation.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/CrossValidation.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/CrossValidation.cpp.o.d"
  "/root/repo/src/core/ml/Dataset.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/Dataset.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/Dataset.cpp.o.d"
  "/root/repo/src/core/ml/DecisionTree.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/DecisionTree.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/DecisionTree.cpp.o.d"
  "/root/repo/src/core/ml/Evaluation.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/Evaluation.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/Evaluation.cpp.o.d"
  "/root/repo/src/core/ml/FeatureSelection.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/FeatureSelection.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/FeatureSelection.cpp.o.d"
  "/root/repo/src/core/ml/Kernel.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/Kernel.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/Kernel.cpp.o.d"
  "/root/repo/src/core/ml/Lda.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/Lda.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/Lda.cpp.o.d"
  "/root/repo/src/core/ml/LsSvm.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/LsSvm.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/LsSvm.cpp.o.d"
  "/root/repo/src/core/ml/Lsh.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/Lsh.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/Lsh.cpp.o.d"
  "/root/repo/src/core/ml/NearNeighbor.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/NearNeighbor.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/NearNeighbor.cpp.o.d"
  "/root/repo/src/core/ml/OutputCode.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/OutputCode.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/OutputCode.cpp.o.d"
  "/root/repo/src/core/ml/Regression.cpp" "src/core/CMakeFiles/metaopt_core.dir/ml/Regression.cpp.o" "gcc" "src/core/CMakeFiles/metaopt_core.dir/ml/Regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/metaopt_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/metaopt_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/metaopt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/metaopt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/metaopt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/metaopt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/metaopt_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/metaopt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/metaopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/metaopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
