# Empty compiler generated dependencies file for metaopt_core.
# This may be replaced when dependencies are built.
