file(REMOVE_RECURSE
  "libmetaopt_sim.a"
)
