# Empty dependencies file for metaopt_sim.
# This may be replaced when dependencies are built.
