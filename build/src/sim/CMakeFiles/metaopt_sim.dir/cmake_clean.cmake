file(REMOVE_RECURSE
  "CMakeFiles/metaopt_sim.dir/Measurement.cpp.o"
  "CMakeFiles/metaopt_sim.dir/Measurement.cpp.o.d"
  "CMakeFiles/metaopt_sim.dir/Simulator.cpp.o"
  "CMakeFiles/metaopt_sim.dir/Simulator.cpp.o.d"
  "libmetaopt_sim.a"
  "libmetaopt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
