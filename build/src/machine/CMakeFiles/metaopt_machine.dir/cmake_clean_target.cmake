file(REMOVE_RECURSE
  "libmetaopt_machine.a"
)
