file(REMOVE_RECURSE
  "CMakeFiles/metaopt_machine.dir/Machine.cpp.o"
  "CMakeFiles/metaopt_machine.dir/Machine.cpp.o.d"
  "libmetaopt_machine.a"
  "libmetaopt_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
