# Empty dependencies file for metaopt_machine.
# This may be replaced when dependencies are built.
