file(REMOVE_RECURSE
  "libmetaopt_sched.a"
)
