
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/IterativeModulo.cpp" "src/sched/CMakeFiles/metaopt_sched.dir/IterativeModulo.cpp.o" "gcc" "src/sched/CMakeFiles/metaopt_sched.dir/IterativeModulo.cpp.o.d"
  "/root/repo/src/sched/ListScheduler.cpp" "src/sched/CMakeFiles/metaopt_sched.dir/ListScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/metaopt_sched.dir/ListScheduler.cpp.o.d"
  "/root/repo/src/sched/ModuloScheduler.cpp" "src/sched/CMakeFiles/metaopt_sched.dir/ModuloScheduler.cpp.o" "gcc" "src/sched/CMakeFiles/metaopt_sched.dir/ModuloScheduler.cpp.o.d"
  "/root/repo/src/sched/Schedule.cpp" "src/sched/CMakeFiles/metaopt_sched.dir/Schedule.cpp.o" "gcc" "src/sched/CMakeFiles/metaopt_sched.dir/Schedule.cpp.o.d"
  "/root/repo/src/sched/SchedulePrinter.cpp" "src/sched/CMakeFiles/metaopt_sched.dir/SchedulePrinter.cpp.o" "gcc" "src/sched/CMakeFiles/metaopt_sched.dir/SchedulePrinter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/metaopt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/metaopt_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/metaopt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/metaopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
