# Empty compiler generated dependencies file for metaopt_sched.
# This may be replaced when dependencies are built.
