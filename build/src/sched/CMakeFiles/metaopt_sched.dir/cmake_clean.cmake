file(REMOVE_RECURSE
  "CMakeFiles/metaopt_sched.dir/IterativeModulo.cpp.o"
  "CMakeFiles/metaopt_sched.dir/IterativeModulo.cpp.o.d"
  "CMakeFiles/metaopt_sched.dir/ListScheduler.cpp.o"
  "CMakeFiles/metaopt_sched.dir/ListScheduler.cpp.o.d"
  "CMakeFiles/metaopt_sched.dir/ModuloScheduler.cpp.o"
  "CMakeFiles/metaopt_sched.dir/ModuloScheduler.cpp.o.d"
  "CMakeFiles/metaopt_sched.dir/Schedule.cpp.o"
  "CMakeFiles/metaopt_sched.dir/Schedule.cpp.o.d"
  "CMakeFiles/metaopt_sched.dir/SchedulePrinter.cpp.o"
  "CMakeFiles/metaopt_sched.dir/SchedulePrinter.cpp.o.d"
  "libmetaopt_sched.a"
  "libmetaopt_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
