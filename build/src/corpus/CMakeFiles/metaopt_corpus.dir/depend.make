# Empty dependencies file for metaopt_corpus.
# This may be replaced when dependencies are built.
