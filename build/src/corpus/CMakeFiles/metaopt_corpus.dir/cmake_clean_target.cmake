file(REMOVE_RECURSE
  "libmetaopt_corpus.a"
)
