file(REMOVE_RECURSE
  "CMakeFiles/metaopt_corpus.dir/BenchmarkSuite.cpp.o"
  "CMakeFiles/metaopt_corpus.dir/BenchmarkSuite.cpp.o.d"
  "CMakeFiles/metaopt_corpus.dir/LoopGenerators.cpp.o"
  "CMakeFiles/metaopt_corpus.dir/LoopGenerators.cpp.o.d"
  "libmetaopt_corpus.a"
  "libmetaopt_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
