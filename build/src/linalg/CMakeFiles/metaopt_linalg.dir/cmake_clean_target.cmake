file(REMOVE_RECURSE
  "libmetaopt_linalg.a"
)
