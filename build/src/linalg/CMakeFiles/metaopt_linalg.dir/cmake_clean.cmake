file(REMOVE_RECURSE
  "CMakeFiles/metaopt_linalg.dir/Cholesky.cpp.o"
  "CMakeFiles/metaopt_linalg.dir/Cholesky.cpp.o.d"
  "CMakeFiles/metaopt_linalg.dir/Eigen.cpp.o"
  "CMakeFiles/metaopt_linalg.dir/Eigen.cpp.o.d"
  "CMakeFiles/metaopt_linalg.dir/Matrix.cpp.o"
  "CMakeFiles/metaopt_linalg.dir/Matrix.cpp.o.d"
  "libmetaopt_linalg.a"
  "libmetaopt_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaopt_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
