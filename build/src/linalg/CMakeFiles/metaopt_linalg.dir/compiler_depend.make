# Empty compiler generated dependencies file for metaopt_linalg.
# This may be replaced when dependencies are built.
