file(REMOVE_RECURSE
  "CMakeFiles/memoryopt_test.dir/memoryopt_test.cpp.o"
  "CMakeFiles/memoryopt_test.dir/memoryopt_test.cpp.o.d"
  "memoryopt_test"
  "memoryopt_test.pdb"
  "memoryopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memoryopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
