# Empty compiler generated dependencies file for memoryopt_test.
# This may be replaced when dependencies are built.
