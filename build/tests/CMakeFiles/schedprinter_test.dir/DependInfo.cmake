
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/schedprinter_test.cpp" "tests/CMakeFiles/schedprinter_test.dir/schedprinter_test.cpp.o" "gcc" "tests/CMakeFiles/schedprinter_test.dir/schedprinter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/metaopt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/metaopt_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristics/CMakeFiles/metaopt_heuristics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/metaopt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/metaopt_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/metaopt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/metaopt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/metaopt_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/metaopt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/metaopt_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/metaopt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
