# Empty compiler generated dependencies file for schedprinter_test.
# This may be replaced when dependencies are built.
