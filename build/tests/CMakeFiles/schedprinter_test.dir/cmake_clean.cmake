file(REMOVE_RECURSE
  "CMakeFiles/schedprinter_test.dir/schedprinter_test.cpp.o"
  "CMakeFiles/schedprinter_test.dir/schedprinter_test.cpp.o.d"
  "schedprinter_test"
  "schedprinter_test.pdb"
  "schedprinter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedprinter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
