# Empty compiler generated dependencies file for ims_test.
# This may be replaced when dependencies are built.
