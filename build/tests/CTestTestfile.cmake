# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/memoryopt_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/heuristics_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/ml_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/model_io_test[1]_include.cmake")
include("/root/repo/build/tests/ims_test[1]_include.cmake")
include("/root/repo/build/tests/schedprinter_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
