file(REMOVE_RECURSE
  "CMakeFiles/table3_mis.dir/table3_mis.cpp.o"
  "CMakeFiles/table3_mis.dir/table3_mis.cpp.o.d"
  "table3_mis"
  "table3_mis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
