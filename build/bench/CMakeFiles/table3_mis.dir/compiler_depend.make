# Empty compiler generated dependencies file for table3_mis.
# This may be replaced when dependencies are built.
