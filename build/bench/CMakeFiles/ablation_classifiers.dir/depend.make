# Empty dependencies file for ablation_classifiers.
# This may be replaced when dependencies are built.
