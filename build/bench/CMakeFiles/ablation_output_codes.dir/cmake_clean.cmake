file(REMOVE_RECURSE
  "CMakeFiles/ablation_output_codes.dir/ablation_output_codes.cpp.o"
  "CMakeFiles/ablation_output_codes.dir/ablation_output_codes.cpp.o.d"
  "ablation_output_codes"
  "ablation_output_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_output_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
