# Empty dependencies file for ablation_output_codes.
# This may be replaced when dependencies are built.
