file(REMOVE_RECURSE
  "CMakeFiles/fig5_speedup_swp.dir/fig5_speedup_swp.cpp.o"
  "CMakeFiles/fig5_speedup_swp.dir/fig5_speedup_swp.cpp.o.d"
  "fig5_speedup_swp"
  "fig5_speedup_swp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_speedup_swp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
