# Empty dependencies file for ablation_svm_params.
# This may be replaced when dependencies are built.
