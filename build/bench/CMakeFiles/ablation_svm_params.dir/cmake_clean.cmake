file(REMOVE_RECURSE
  "CMakeFiles/ablation_svm_params.dir/ablation_svm_params.cpp.o"
  "CMakeFiles/ablation_svm_params.dir/ablation_svm_params.cpp.o.d"
  "ablation_svm_params"
  "ablation_svm_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_svm_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
