file(REMOVE_RECURSE
  "CMakeFiles/ablation_validation.dir/ablation_validation.cpp.o"
  "CMakeFiles/ablation_validation.dir/ablation_validation.cpp.o.d"
  "ablation_validation"
  "ablation_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
