# Empty compiler generated dependencies file for table4_greedy.
# This may be replaced when dependencies are built.
