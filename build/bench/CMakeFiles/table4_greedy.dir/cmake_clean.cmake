file(REMOVE_RECURSE
  "CMakeFiles/table4_greedy.dir/table4_greedy.cpp.o"
  "CMakeFiles/table4_greedy.dir/table4_greedy.cpp.o.d"
  "table4_greedy"
  "table4_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
