# Empty dependencies file for ablation_nn_radius.
# This may be replaced when dependencies are built.
