file(REMOVE_RECURSE
  "CMakeFiles/ablation_nn_radius.dir/ablation_nn_radius.cpp.o"
  "CMakeFiles/ablation_nn_radius.dir/ablation_nn_radius.cpp.o.d"
  "ablation_nn_radius"
  "ablation_nn_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nn_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
