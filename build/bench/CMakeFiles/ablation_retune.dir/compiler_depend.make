# Empty compiler generated dependencies file for ablation_retune.
# This may be replaced when dependencies are built.
