file(REMOVE_RECURSE
  "CMakeFiles/ablation_retune.dir/ablation_retune.cpp.o"
  "CMakeFiles/ablation_retune.dir/ablation_retune.cpp.o.d"
  "ablation_retune"
  "ablation_retune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
