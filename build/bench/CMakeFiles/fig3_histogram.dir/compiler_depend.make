# Empty compiler generated dependencies file for fig3_histogram.
# This may be replaced when dependencies are built.
