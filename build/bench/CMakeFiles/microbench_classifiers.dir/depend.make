# Empty dependencies file for microbench_classifiers.
# This may be replaced when dependencies are built.
