file(REMOVE_RECURSE
  "CMakeFiles/microbench_classifiers.dir/microbench_classifiers.cpp.o"
  "CMakeFiles/microbench_classifiers.dir/microbench_classifiers.cpp.o.d"
  "microbench_classifiers"
  "microbench_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
