file(REMOVE_RECURSE
  "CMakeFiles/fig1_lda_projection.dir/fig1_lda_projection.cpp.o"
  "CMakeFiles/fig1_lda_projection.dir/fig1_lda_projection.cpp.o.d"
  "fig1_lda_projection"
  "fig1_lda_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_lda_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
