# Empty compiler generated dependencies file for fig1_lda_projection.
# This may be replaced when dependencies are built.
