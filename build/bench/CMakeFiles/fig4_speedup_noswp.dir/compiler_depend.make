# Empty compiler generated dependencies file for fig4_speedup_noswp.
# This may be replaced when dependencies are built.
