file(REMOVE_RECURSE
  "CMakeFiles/fig4_speedup_noswp.dir/fig4_speedup_noswp.cpp.o"
  "CMakeFiles/fig4_speedup_noswp.dir/fig4_speedup_noswp.cpp.o.d"
  "fig4_speedup_noswp"
  "fig4_speedup_noswp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_speedup_noswp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
