file(REMOVE_RECURSE
  "CMakeFiles/train_and_evaluate.dir/train_and_evaluate.cpp.o"
  "CMakeFiles/train_and_evaluate.dir/train_and_evaluate.cpp.o.d"
  "train_and_evaluate"
  "train_and_evaluate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_evaluate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
