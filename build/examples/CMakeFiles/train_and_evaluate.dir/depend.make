# Empty dependencies file for train_and_evaluate.
# This may be replaced when dependencies are built.
