# Empty compiler generated dependencies file for outlier_triage.
# This may be replaced when dependencies are built.
