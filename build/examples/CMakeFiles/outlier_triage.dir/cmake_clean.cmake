file(REMOVE_RECURSE
  "CMakeFiles/outlier_triage.dir/outlier_triage.cpp.o"
  "CMakeFiles/outlier_triage.dir/outlier_triage.cpp.o.d"
  "outlier_triage"
  "outlier_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
