//===- serve/Client.cpp ---------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace metaopt;

bool metaopt::splitTcpAddress(const std::string &Address, std::string &Host,
                              int &Port) {
  // A unix path ("/run/x.sock", "./x.sock") never parses as host:port;
  // require a ':' with an all-digit suffix and a non-path prefix.
  if (Address.empty() || Address.front() == '/' || Address.front() == '.')
    return false;
  size_t Colon = Address.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 >= Address.size())
    return false;
  int Value = 0;
  for (size_t I = Colon + 1; I < Address.size(); ++I) {
    if (Address[I] < '0' || Address[I] > '9')
      return false;
    Value = Value * 10 + (Address[I] - '0');
    if (Value > 65535)
      return false;
  }
  Host = Address.substr(0, Colon);
  Port = Value;
  return true;
}

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffer.clear();
}

void ServeClient::setIoTimeout(std::chrono::milliseconds Timeout) {
  IoTimeout = Timeout;
  applyIoTimeout();
}

void ServeClient::applyIoTimeout() {
  if (Fd < 0 || IoTimeout.count() <= 0)
    return;
  struct timeval Tv;
  Tv.tv_sec = static_cast<time_t>(IoTimeout.count() / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((IoTimeout.count() % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

bool ServeClient::connectUnix(const std::string &SocketPath,
                              std::string *Error) {
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path is too long for sockaddr_un";
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    if (Error)
      *Error = std::string("connect to '") + SocketPath +
               "': " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool ServeClient::connectTcp(const std::string &Host, int Port,
                             std::string *Error) {
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad TCP address '" + Host + "'";
    return false;
  }

  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    if (Error)
      *Error = std::string("connect to ") + Host + ":" +
               std::to_string(Port) + ": " + std::strerror(errno);
    close();
    return false;
  }
  // One request line per round trip: latency beats batching here.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return true;
}

bool ServeClient::connect(const std::string &Address, std::string *Error) {
  close();
  std::string Host;
  int Port = 0;
  bool Connected = splitTcpAddress(Address, Host, Port)
                       ? connectTcp(Host, Port, Error)
                       : connectUnix(Address, Error);
  if (Connected)
    applyIoTimeout();
  return Connected;
}

bool ServeClient::connectWithRetry(const std::string &Address,
                                   int TimeoutMs, std::string *Error) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  std::string LastError;
  do {
    if (connect(Address, &LastError))
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  } while (std::chrono::steady_clock::now() < Deadline);
  if (Error)
    *Error = LastError;
  return false;
}

std::optional<std::string>
ServeClient::roundTrip(const std::string &RequestLine, std::string *Error) {
  if (Fd < 0) {
    if (Error)
      *Error = "not connected";
    return std::nullopt;
  }

  std::string Framed = RequestLine + "\n";
  size_t Sent = 0;
  while (Sent < Framed.size()) {
    ssize_t N = ::send(Fd, Framed.data() + Sent, Framed.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("send: ") + std::strerror(errno);
      return std::nullopt;
    }
    Sent += static_cast<size_t>(N);
  }

  char Chunk[1 << 14];
  while (true) {
    size_t Newline = Buffer.find('\n');
    if (Newline != std::string::npos) {
      std::string Line = Buffer.substr(0, Newline);
      Buffer.erase(0, Newline + 1);
      return Line;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0) {
      if (Error)
        *Error = "connection closed by the server";
      return std::nullopt;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

std::optional<std::string> ServeClient::request(const WireRequest &Request,
                                                std::string *Error) {
  return roundTrip(renderRequestLine(Request), Error);
}
