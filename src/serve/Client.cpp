//===- serve/Client.cpp ---------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace metaopt;

ServeClient::~ServeClient() { close(); }

void ServeClient::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buffer.clear();
}

bool ServeClient::connect(const std::string &SocketPath,
                          std::string *Error) {
  close();
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path is too long for sockaddr_un";
    return false;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    if (Error)
      *Error = std::string("connect to '") + SocketPath +
               "': " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool ServeClient::connectWithRetry(const std::string &SocketPath,
                                   int TimeoutMs, std::string *Error) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  std::string LastError;
  do {
    if (connect(SocketPath, &LastError))
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  } while (std::chrono::steady_clock::now() < Deadline);
  if (Error)
    *Error = LastError;
  return false;
}

std::optional<std::string>
ServeClient::roundTrip(const std::string &RequestLine, std::string *Error) {
  if (Fd < 0) {
    if (Error)
      *Error = "not connected";
    return std::nullopt;
  }

  std::string Framed = RequestLine + "\n";
  size_t Sent = 0;
  while (Sent < Framed.size()) {
    ssize_t N = ::send(Fd, Framed.data() + Sent, Framed.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("send: ") + std::strerror(errno);
      return std::nullopt;
    }
    Sent += static_cast<size_t>(N);
  }

  char Chunk[1 << 14];
  while (true) {
    size_t Newline = Buffer.find('\n');
    if (Newline != std::string::npos) {
      std::string Line = Buffer.substr(0, Newline);
      Buffer.erase(0, Newline + 1);
      return Line;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0) {
      if (Error)
        *Error = "connection closed by the server";
      return std::nullopt;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Error)
        *Error = std::string("recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

std::optional<std::string> ServeClient::request(const WireRequest &Request,
                                                std::string *Error) {
  return roundTrip(renderRequestLine(Request), Error);
}
