//===- serve/Json.h - Minimal JSON value model ------------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser and a comma-tracking writer for
/// the serving wire protocol (serve/Protocol.h): line-delimited JSON
/// objects over a unix-domain socket. Deliberately minimal — enough of
/// RFC 8259 for the protocol's objects/arrays/strings/numbers/booleans,
/// with \uXXXX escapes decoded to UTF-8. Malformed input yields
/// std::nullopt, never a partial value; the daemon turns that into a
/// protocol error instead of crashing on hostile bytes.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_JSON_H
#define METAOPT_SERVE_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace metaopt {

/// One parsed JSON value (a tagged union over the JSON kinds).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool Boolean = false;
  double Number = 0.0;
  std::string Str;
  std::vector<JsonValue> Items; ///< Array elements.
  /// Object members in document order (duplicate keys keep the last).
  std::vector<std::pair<std::string, JsonValue>> Members;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Member lookup; null when not an object or the key is absent.
  const JsonValue *get(std::string_view Key) const;

  /// Typed member accessors with defaults (missing or wrong-typed members
  /// yield the default — the protocol treats both as "not supplied").
  std::string getString(std::string_view Key,
                        const std::string &Default = "") const;
  double getNumber(std::string_view Key, double Default) const;
  int64_t getInt(std::string_view Key, int64_t Default) const;
  bool getBool(std::string_view Key, bool Default) const;
};

/// Parses one JSON document (surrounded by optional whitespace). Returns
/// std::nullopt on any syntax error, trailing garbage, or nesting deeper
/// than 64 levels.
std::optional<JsonValue> parseJson(std::string_view Text);

/// Escapes \p Str for inclusion inside a JSON string literal (quotes not
/// included).
std::string jsonEscapeString(std::string_view Str);

/// An append-only JSON writer that tracks commas, for assembling protocol
/// messages without a value tree:
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("ok").boolean(true);
///   W.key("factor").number(4);
///   W.endObject();
///   std::string Line = W.take();
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();
  /// Names the next value inside an object.
  JsonWriter &key(std::string_view Key);
  JsonWriter &str(std::string_view Value);
  JsonWriter &number(double Value);
  JsonWriter &number(int64_t Value);
  JsonWriter &number(uint64_t Value);
  JsonWriter &boolean(bool Value);
  JsonWriter &null();
  /// Splices an already-rendered JSON fragment as the next value.
  JsonWriter &raw(std::string_view Fragment);

  const std::string &text() const { return Out; }
  std::string take() { return std::move(Out); }

private:
  void beforeValue();

  std::string Out;
  /// One entry per open container: true when a value was already written
  /// at this level (so the next one needs a comma).
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

} // namespace metaopt

#endif // METAOPT_SERVE_JSON_H
