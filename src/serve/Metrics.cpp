//===- serve/Metrics.cpp --------------------------------------------------===//

#include "serve/Metrics.h"

#include <cmath>

using namespace metaopt;

namespace {

unsigned bucketFor(double Micros) {
  if (!(Micros >= 1.0))
    return 0; // Sub-microsecond, negative, or NaN.
  uint64_t Whole = static_cast<uint64_t>(Micros);
  unsigned Bucket = 1;
  while ((Whole >>= 1) != 0)
    ++Bucket;
  return Bucket < LatencyHistogram::BucketCount
             ? Bucket
             : LatencyHistogram::BucketCount - 1;
}

} // namespace

void LatencyHistogram::record(double Micros) {
  Buckets[bucketFor(Micros)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  if (Micros > 0)
    SumMicros.fetch_add(static_cast<uint64_t>(Micros),
                        std::memory_order_relaxed);
}

double LatencyHistogram::meanMicros() const {
  uint64_t N = Count.load(std::memory_order_relaxed);
  if (N == 0)
    return 0;
  return static_cast<double>(SumMicros.load(std::memory_order_relaxed)) /
         static_cast<double>(N);
}

double LatencyHistogram::percentileMicros(double P) const {
  uint64_t N = Count.load(std::memory_order_relaxed);
  if (N == 0)
    return 0;
  // Rank of the percentile sample, 1-based, clamped into [1, N].
  uint64_t Rank = static_cast<uint64_t>(std::ceil(P * static_cast<double>(N)));
  if (Rank < 1)
    Rank = 1;
  if (Rank > N)
    Rank = N;
  uint64_t Seen = 0;
  for (unsigned I = 0; I < BucketCount; ++I) {
    Seen += Buckets[I].load(std::memory_order_relaxed);
    if (Seen >= Rank)
      return I == 0 ? 1.0 : static_cast<double>(1ull << I);
  }
  // Counter races can leave Seen slightly short of N; report the top edge.
  return static_cast<double>(1ull << (BucketCount - 1));
}

ServiceStatsSnapshot ServiceMetrics::snapshot() const {
  ServiceStatsSnapshot S;
  S.Received = Received.load(std::memory_order_relaxed);
  S.Completed = Completed.load(std::memory_order_relaxed);
  S.Ok = Ok.load(std::memory_order_relaxed);
  S.Malformed = Malformed.load(std::memory_order_relaxed);
  S.Overloaded = Overloaded.load(std::memory_order_relaxed);
  S.DeadlineExceeded = DeadlineExceeded.load(std::memory_order_relaxed);
  S.Batches = Batches.load(std::memory_order_relaxed);
  S.QueueDepth = QueueDepth.load(std::memory_order_relaxed);
  S.LatencySamples = Latency.count();
  S.MeanMicros = Latency.meanMicros();
  S.P50Micros = Latency.percentileMicros(0.50);
  S.P95Micros = Latency.percentileMicros(0.95);
  S.P99Micros = Latency.percentileMicros(0.99);
  return S;
}
