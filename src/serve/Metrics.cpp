//===- serve/Metrics.cpp --------------------------------------------------===//

#include "serve/Metrics.h"

#include <cmath>

using namespace metaopt;

namespace {

unsigned bucketFor(double Micros) {
  if (!(Micros >= 1.0))
    return 0; // Sub-microsecond, negative, or NaN.
  uint64_t Whole = static_cast<uint64_t>(Micros);
  unsigned Bucket = 1;
  while ((Whole >>= 1) != 0)
    ++Bucket;
  return Bucket < LatencyHistogram::BucketCount
             ? Bucket
             : LatencyHistogram::BucketCount - 1;
}

} // namespace

void LatencyHistogram::record(double Micros) {
  Buckets[bucketFor(Micros)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  if (Micros > 0)
    SumMicros.fetch_add(static_cast<uint64_t>(Micros),
                        std::memory_order_relaxed);
}

double LatencyHistogram::meanMicros() const {
  uint64_t N = Count.load(std::memory_order_relaxed);
  if (N == 0)
    return 0;
  return static_cast<double>(SumMicros.load(std::memory_order_relaxed)) /
         static_cast<double>(N);
}

double LatencyHistogram::percentileMicros(double P) const {
  uint64_t N = Count.load(std::memory_order_relaxed);
  if (N == 0)
    return 0;
  // Rank of the percentile sample, 1-based, clamped into [1, N].
  uint64_t Rank = static_cast<uint64_t>(std::ceil(P * static_cast<double>(N)));
  if (Rank < 1)
    Rank = 1;
  if (Rank > N)
    Rank = N;
  uint64_t Seen = 0;
  for (unsigned I = 0; I < BucketCount; ++I) {
    Seen += Buckets[I].load(std::memory_order_relaxed);
    if (Seen >= Rank)
      return I == 0 ? 1.0 : static_cast<double>(1ull << I);
  }
  // Counter races can leave Seen slightly short of N; report the top edge.
  return static_cast<double>(1ull << (BucketCount - 1));
}

void ServiceMetrics::recordAdmitted() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Received;
  ++QueueDepth;
}

void ServiceMetrics::recordOverloaded() {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Overloaded;
}

void ServiceMetrics::recordDequeued(size_t N) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Batches;
  QueueDepth -= static_cast<int64_t>(N);
  InFlight += static_cast<int64_t>(N);
}

void ServiceMetrics::recordFinished(Outcome TheOutcome, double Micros) {
  std::lock_guard<std::mutex> Lock(Mutex);
  --InFlight;
  ++Completed;
  switch (TheOutcome) {
  case Outcome::Ok:
    ++Ok;
    break;
  case Outcome::Malformed:
    ++Malformed;
    break;
  case Outcome::DeadlineExceeded:
    ++DeadlineExceeded;
    break;
  }
  Latency.record(Micros);
}

ServiceStatsSnapshot ServiceMetrics::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  ServiceStatsSnapshot S;
  S.Received = Received;
  S.Completed = Completed;
  S.Ok = Ok;
  S.Malformed = Malformed;
  S.Overloaded = Overloaded;
  S.DeadlineExceeded = DeadlineExceeded;
  S.Batches = Batches;
  S.QueueDepth = QueueDepth;
  S.InFlight = InFlight;
  S.LatencySamples = Latency.count();
  S.MeanMicros = Latency.meanMicros();
  S.P50Micros = Latency.percentileMicros(0.50);
  S.P95Micros = Latency.percentileMicros(0.95);
  S.P99Micros = Latency.percentileMicros(0.99);
  return S;
}
