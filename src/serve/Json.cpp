//===- serve/Json.cpp -----------------------------------------------------===//

#include "serve/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace metaopt;

//===----------------------------------------------------------------------===//
// Value accessors
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  const JsonValue *Found = nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      Found = &Value; // Last duplicate wins, like most parsers.
  return Found;
}

std::string JsonValue::getString(std::string_view Key,
                                 const std::string &Default) const {
  const JsonValue *Value = get(Key);
  return Value && Value->isString() ? Value->Str : Default;
}

double JsonValue::getNumber(std::string_view Key, double Default) const {
  const JsonValue *Value = get(Key);
  return Value && Value->isNumber() ? Value->Number : Default;
}

int64_t JsonValue::getInt(std::string_view Key, int64_t Default) const {
  const JsonValue *Value = get(Key);
  if (!Value || !Value->isNumber())
    return Default;
  return static_cast<int64_t>(Value->Number);
}

bool JsonValue::getBool(std::string_view Key, bool Default) const {
  const JsonValue *Value = get(Key);
  return Value && Value->isBool() ? Value->Boolean : Default;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned MaxNestingDepth = 64;

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> parseDocument() {
    skipWhitespace();
    std::optional<JsonValue> Value = parseValue(0);
    if (!Value)
      return std::nullopt;
    skipWhitespace();
    if (Pos != Text.size())
      return std::nullopt; // Trailing garbage.
    return Value;
  }

private:
  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeLiteral(const char *Literal) {
    size_t Len = std::strlen(Literal);
    if (Text.size() - Pos < Len ||
        Text.compare(Pos, Len, Literal) != 0)
      return false;
    Pos += Len;
    return true;
  }

  std::optional<JsonValue> parseValue(unsigned Depth) {
    if (Depth > MaxNestingDepth)
      return std::nullopt;
    skipWhitespace();
    if (Pos >= Text.size())
      return std::nullopt;
    switch (Text[Pos]) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"':
      return parseString();
    case 't':
    case 'f':
      return parseBool();
    case 'n':
      if (!consumeLiteral("null"))
        return std::nullopt;
      return JsonValue{};
    default:
      return parseNumber();
    }
  }

  std::optional<JsonValue> parseBool() {
    JsonValue Value;
    Value.K = JsonValue::Kind::Bool;
    if (consumeLiteral("true")) {
      Value.Boolean = true;
      return Value;
    }
    if (consumeLiteral("false")) {
      Value.Boolean = false;
      return Value;
    }
    return std::nullopt;
  }

  std::optional<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() && (std::isdigit(static_cast<unsigned char>(
                                     Text[Pos])) ||
                                 Text[Pos] == '.' || Text[Pos] == 'e' ||
                                 Text[Pos] == 'E' || Text[Pos] == '+' ||
                                 Text[Pos] == '-'))
      ++Pos;
    if (Pos == DigitsStart)
      return std::nullopt;
    std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double Number = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size() || !std::isfinite(Number))
      return std::nullopt;
    JsonValue Value;
    Value.K = JsonValue::Kind::Number;
    Value.Number = Number;
    return Value;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out.push_back(static_cast<char>(Code));
    } else if (Code < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
    }
  }

  std::optional<JsonValue> parseString() {
    if (!consume('"'))
      return std::nullopt;
    JsonValue Value;
    Value.K = JsonValue::Kind::String;
    while (true) {
      if (Pos >= Text.size())
        return std::nullopt; // Unterminated.
      char C = Text[Pos++];
      if (C == '"')
        return Value;
      if (static_cast<unsigned char>(C) < 0x20)
        return std::nullopt; // Raw control character.
      if (C != '\\') {
        Value.Str.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return std::nullopt;
      char Escape = Text[Pos++];
      switch (Escape) {
      case '"': Value.Str.push_back('"'); break;
      case '\\': Value.Str.push_back('\\'); break;
      case '/': Value.Str.push_back('/'); break;
      case 'b': Value.Str.push_back('\b'); break;
      case 'f': Value.Str.push_back('\f'); break;
      case 'n': Value.Str.push_back('\n'); break;
      case 'r': Value.Str.push_back('\r'); break;
      case 't': Value.Str.push_back('\t'); break;
      case 'u': {
        if (Text.size() - Pos < 4)
          return std::nullopt;
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return std::nullopt;
        }
        // Surrogate pairs are not combined (the protocol never emits
        // them); lone surrogates encode as-is into 3-byte sequences.
        appendUtf8(Value.Str, Code);
        break;
      }
      default:
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parseArray(unsigned Depth) {
    consume('[');
    JsonValue Value;
    Value.K = JsonValue::Kind::Array;
    skipWhitespace();
    if (consume(']'))
      return Value;
    while (true) {
      std::optional<JsonValue> Item = parseValue(Depth + 1);
      if (!Item)
        return std::nullopt;
      Value.Items.push_back(std::move(*Item));
      skipWhitespace();
      if (consume(']'))
        return Value;
      if (!consume(','))
        return std::nullopt;
    }
  }

  std::optional<JsonValue> parseObject(unsigned Depth) {
    consume('{');
    JsonValue Value;
    Value.K = JsonValue::Kind::Object;
    skipWhitespace();
    if (consume('}'))
      return Value;
    while (true) {
      skipWhitespace();
      std::optional<JsonValue> Key = parseString();
      if (!Key)
        return std::nullopt;
      skipWhitespace();
      if (!consume(':'))
        return std::nullopt;
      std::optional<JsonValue> Member = parseValue(Depth + 1);
      if (!Member)
        return std::nullopt;
      Value.Members.emplace_back(std::move(Key->Str), std::move(*Member));
      skipWhitespace();
      if (consume('}'))
        return Value;
      if (!consume(','))
        return std::nullopt;
    }
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> metaopt::parseJson(std::string_view Text) {
  return Parser(Text).parseDocument();
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string metaopt::jsonEscapeString(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    case '\b': Out += "\\b"; break;
    case '\f': Out += "\\f"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buffer;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

void JsonWriter::beforeValue() {
  if (PendingKey) {
    PendingKey = false;
    return; // The key already wrote its comma.
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out.push_back(',');
    NeedComma.back() = true;
  }
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  Out.push_back('{');
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out.push_back('}');
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  Out.push_back('[');
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out.push_back(']');
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Key) {
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out.push_back(',');
    NeedComma.back() = true;
  }
  Out.push_back('"');
  Out += jsonEscapeString(Key);
  Out += "\":";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::str(std::string_view Value) {
  beforeValue();
  Out.push_back('"');
  Out += jsonEscapeString(Value);
  Out.push_back('"');
  return *this;
}

JsonWriter &JsonWriter::number(double Value) {
  beforeValue();
  char Buffer[40];
  // %.17g round-trips doubles; integral values print without exponent
  // clutter via %.0f when exact.
  if (Value == static_cast<double>(static_cast<int64_t>(Value)) &&
      std::fabs(Value) < 1e15)
    std::snprintf(Buffer, sizeof(Buffer), "%lld",
                  static_cast<long long>(Value));
  else
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Value);
  Out += Buffer;
  return *this;
}

JsonWriter &JsonWriter::number(int64_t Value) {
  beforeValue();
  Out += std::to_string(Value);
  return *this;
}

JsonWriter &JsonWriter::number(uint64_t Value) {
  beforeValue();
  Out += std::to_string(Value);
  return *this;
}

JsonWriter &JsonWriter::boolean(bool Value) {
  beforeValue();
  Out += Value ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  beforeValue();
  Out += "null";
  return *this;
}

JsonWriter &JsonWriter::raw(std::string_view Fragment) {
  beforeValue();
  Out += Fragment;
  return *this;
}
