//===- serve/Protocol.cpp -------------------------------------------------===//

#include "serve/Protocol.h"

#include "support/CommandLine.h"

using namespace metaopt;

std::optional<WireRequest>
metaopt::parseRequestLine(const std::string &Line, std::string *Error) {
  std::optional<JsonValue> Doc = parseJson(Line);
  if (!Doc || !Doc->isObject()) {
    if (Error)
      *Error = "request is not a JSON object";
    return std::nullopt;
  }

  WireRequest Request;
  Request.Id = Doc->getString("id");

  std::string Op = Doc->getString("op");
  if (Op == "predict")
    Request.TheOp = WireRequest::Op::Predict;
  else if (Op == "health")
    Request.TheOp = WireRequest::Op::Health;
  else if (Op == "stats")
    Request.TheOp = WireRequest::Op::Stats;
  else if (Op == "shutdown")
    Request.TheOp = WireRequest::Op::Shutdown;
  else {
    if (Error)
      *Error = Op.empty() ? "missing \"op\""
                          : "unknown op \"" + Op + "\"";
    return std::nullopt;
  }

  if (Request.TheOp == WireRequest::Op::Predict) {
    const JsonValue *LoopText = Doc->get("loop");
    if (!LoopText || !LoopText->isString() || LoopText->Str.empty()) {
      if (Error)
        *Error = "predict requires a non-empty string \"loop\"";
      return std::nullopt;
    }
    Request.LoopText = LoopText->Str;
    Request.WantScores = Doc->getBool("scores", false);
    Request.DeadlineMs = Doc->getInt("deadline_ms", 0);
    if (Request.DeadlineMs < 0) {
      if (Error)
        *Error = "\"deadline_ms\" must be non-negative";
      return std::nullopt;
    }
  }
  return Request;
}

std::string metaopt::renderRequestLine(const WireRequest &Request) {
  JsonWriter W;
  W.beginObject();
  switch (Request.TheOp) {
  case WireRequest::Op::Predict:
    W.key("op").str("predict");
    break;
  case WireRequest::Op::Health:
    W.key("op").str("health");
    break;
  case WireRequest::Op::Stats:
    W.key("op").str("stats");
    break;
  case WireRequest::Op::Shutdown:
    W.key("op").str("shutdown");
    break;
  }
  if (!Request.Id.empty())
    W.key("id").str(Request.Id);
  if (Request.TheOp == WireRequest::Op::Predict) {
    W.key("loop").str(Request.LoopText);
    if (Request.WantScores)
      W.key("scores").boolean(true);
    if (Request.DeadlineMs > 0)
      W.key("deadline_ms").number(Request.DeadlineMs);
  }
  W.endObject();
  return W.take();
}

namespace {

void writeIdAndStatus(JsonWriter &W, const std::string &Id,
                      std::string_view Status) {
  if (!Id.empty())
    W.key("id").str(Id);
  W.key("status").str(Status);
}

} // namespace

std::string
metaopt::renderPredictResponse(const std::string &Id,
                               const PredictResponse &Response) {
  JsonWriter W;
  W.beginObject();
  W.key("op").str("predict");
  writeIdAndStatus(W, Id, predictStatusName(Response.Status));
  if (Response.Status != PredictStatus::Ok) {
    W.key("error").str(Response.Error);
    W.endObject();
    return W.take();
  }
  W.key("loops").beginArray();
  for (const LoopPrediction &Loop : Response.Loops) {
    W.beginObject();
    W.key("name").str(Loop.LoopName);
    W.key("factor").number(static_cast<int64_t>(Loop.Factor));
    // A trained classifier never reports factor 0; scores are present
    // exactly when the request asked for them.
    bool HasScores = false;
    for (double Score : Loop.Scores)
      HasScores |= Score != 0.0;
    if (HasScores) {
      W.key("scores").beginArray();
      for (double Score : Loop.Scores)
        W.number(Score);
      W.endArray();
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

std::string metaopt::renderErrorResponse(const std::string &Id,
                                         std::string_view Status,
                                         std::string_view Error) {
  JsonWriter W;
  W.beginObject();
  writeIdAndStatus(W, Id, Status);
  W.key("error").str(Error);
  W.endObject();
  return W.take();
}

std::string metaopt::renderHealthResponse(const std::string &Id,
                                          const ModelBundle &Bundle,
                                          const std::string &BundleChecksum) {
  const BundleProvenance &Prov = Bundle.Provenance;
  JsonWriter W;
  W.beginObject();
  W.key("op").str("health");
  writeIdAndStatus(W, Id, "ok");
  if (!BundleChecksum.empty())
    W.key("bundle_checksum").str(BundleChecksum);
  W.key("classifier").str(Prov.ClassifierName);
  W.key("machine").str(Prov.MachineName);
  W.key("swp").boolean(Prov.EnableSwp);
  W.key("features").number(static_cast<uint64_t>(Bundle.Features.size()));
  W.key("training_examples").number(Prov.TrainingExamples);
  W.key("corpus_fingerprint").str(Prov.CorpusFingerprint);
  W.key("cv_method").str(Prov.CvMethod);
  W.key("cv_accuracy").number(Prov.CvAccuracy);
  W.key("server_version").str(metaoptVersion());
  W.endObject();
  return W.take();
}

std::string
metaopt::renderStatsResponse(const std::string &Id,
                             const ServiceStatsSnapshot &Stats,
                             const ServerStatsExtra &Extra) {
  JsonWriter W;
  W.beginObject();
  W.key("op").str("stats");
  writeIdAndStatus(W, Id, "ok");
  W.key("received").number(Stats.Received);
  W.key("completed").number(Stats.Completed);
  W.key("ok").number(Stats.Ok);
  W.key("malformed").number(Stats.Malformed);
  W.key("overloaded").number(Stats.Overloaded);
  W.key("deadline_exceeded").number(Stats.DeadlineExceeded);
  W.key("batches").number(Stats.Batches);
  W.key("queue_depth").number(static_cast<int64_t>(Stats.QueueDepth));
  W.key("in_flight").number(static_cast<int64_t>(Stats.InFlight));
  W.key("latency_samples").number(Stats.LatencySamples);
  W.key("latency_mean_us").number(Stats.MeanMicros);
  W.key("latency_p50_us").number(Stats.P50Micros);
  W.key("latency_p95_us").number(Stats.P95Micros);
  W.key("latency_p99_us").number(Stats.P99Micros);
  W.key("connections_accepted").number(Extra.ConnectionsAccepted);
  W.key("connections_open").number(Extra.ConnectionsOpen);
  W.key("oversized_rejected").number(Extra.OversizedRejected);
  W.key("bad_frames").number(Extra.BadFrames);
  W.key("read_timeouts").number(Extra.ReadTimeouts);
  W.key("write_timeouts").number(Extra.WriteTimeouts);
  W.key("reloads").number(Extra.Reloads);
  W.key("reloads_rejected").number(Extra.ReloadsRejected);
  W.endObject();
  return W.take();
}

std::string metaopt::renderShutdownResponse(const std::string &Id) {
  JsonWriter W;
  W.beginObject();
  W.key("op").str("shutdown");
  writeIdAndStatus(W, Id, "ok");
  W.endObject();
  return W.take();
}
