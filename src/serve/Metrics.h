//===- serve/Metrics.h - In-process serving metrics -------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operational metrics for the prediction service: request counters, the
/// queue-depth and in-flight gauges, and a log-bucketed latency histogram
/// good enough for p50/p95/p99 dashboards.
///
/// Counters and histogram are updated and snapshotted under one short
/// mutex, so a ServiceStatsSnapshot is *exactly* consistent — never a
/// torn read across counters. The invariants every snapshot satisfies
/// (and tests/serve_test.cpp asserts under concurrent load):
///
///   Received  == Completed + QueueDepth + InFlight
///   Completed == Ok + Malformed + DeadlineExceeded
///   LatencySamples == Completed
///
/// The writers are the dispatcher thread plus submitting connection
/// threads, each doing a handful of plain increments per request, so the
/// uncontended mutex costs nanoseconds against a prediction that costs
/// microseconds — consistency here is free.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_METRICS_H
#define METAOPT_SERVE_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

namespace metaopt {

/// A log₂-bucketed histogram of latencies in microseconds. Bucket I holds
/// samples in [2^(I-1), 2^I) (bucket 0 holds sub-microsecond samples), so
/// percentile estimates carry at most one power-of-two of error — plenty
/// for tail-latency reporting, and recording is a single relaxed
/// fetch_add.
class LatencyHistogram {
public:
  static constexpr unsigned BucketCount = 40; // 2^39 us ≈ 6.4 days.

  void record(double Micros);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  /// Mean over all recorded samples (0 when empty).
  double meanMicros() const;

  /// Estimated \p P percentile (0 < P < 1), as the upper edge of the
  /// bucket containing the P-th sample. 0 when empty.
  double percentileMicros(double P) const;

private:
  std::array<std::atomic<uint64_t>, BucketCount> Buckets{};
  std::atomic<uint64_t> Count{0};
  /// Sum in whole microseconds; at 2^63 us of cumulative latency this
  /// wraps, which is far beyond any realistic process lifetime.
  std::atomic<uint64_t> SumMicros{0};
};

/// Point-in-time view of the service counters, as reported by the stats
/// endpoint. Internally consistent: the invariants documented on
/// ServiceMetrics hold exactly, for every snapshot.
struct ServiceStatsSnapshot {
  uint64_t Received = 0;   ///< Requests admitted to the queue.
  uint64_t Completed = 0;  ///< Requests answered (ok/malformed/deadline).
  uint64_t Ok = 0;         ///< ... with status ok.
  uint64_t Malformed = 0;  ///< ... rejected by parser/verifier.
  uint64_t Overloaded = 0; ///< Refused at admission (queue full).
  uint64_t DeadlineExceeded = 0; ///< Expired before a worker got to them.
  uint64_t Batches = 0;    ///< Dispatcher batches executed.
  int64_t QueueDepth = 0;  ///< Requests currently queued.
  int64_t InFlight = 0;    ///< Requests dequeued but not yet answered.
  uint64_t LatencySamples = 0;
  double MeanMicros = 0;
  double P50Micros = 0;
  double P95Micros = 0;
  double P99Micros = 0;
};

/// The live counters behind a ServiceStatsSnapshot. The service records
/// lifecycle events through the methods below; every update and the
/// snapshot happen under one mutex, so snapshots can never observe a
/// request "between" counters (e.g. dequeued but neither in flight nor
/// completed).
class ServiceMetrics {
public:
  /// Terminal disposition of an admitted request.
  enum class Outcome { Ok, Malformed, DeadlineExceeded };

  /// One request admitted to the queue.
  void recordAdmitted();

  /// One request refused at admission because the queue was full.
  void recordOverloaded();

  /// One dispatcher batch of \p N requests moved queue → in-flight.
  void recordDequeued(size_t N);

  /// One in-flight request answered, with its admission-to-response
  /// latency.
  void recordFinished(Outcome TheOutcome, double Micros);

  ServiceStatsSnapshot snapshot() const;

private:
  mutable std::mutex Mutex;
  uint64_t Received = 0;
  uint64_t Completed = 0;
  uint64_t Ok = 0;
  uint64_t Malformed = 0;
  uint64_t Overloaded = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t Batches = 0;
  int64_t QueueDepth = 0;
  int64_t InFlight = 0;
  /// Admission-to-response latency of completed requests. Guarded by
  /// Mutex like the counters (its internal atomics are then redundant,
  /// but keep the class usable standalone).
  LatencyHistogram Latency;
};

} // namespace metaopt

#endif // METAOPT_SERVE_METRICS_H
