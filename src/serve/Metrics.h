//===- serve/Metrics.h - In-process serving metrics -------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free operational metrics for the prediction service: atomic
/// counters, a queue-depth gauge, and a log-bucketed latency histogram
/// good enough for p50/p95/p99 dashboards. Recording is wait-free (one
/// relaxed fetch_add per event) so the hot path never serializes on
/// metrics; snapshots are taken by the stats endpoint and the load
/// generator and are only approximately consistent across counters, which
/// is the usual contract for operational telemetry.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_METRICS_H
#define METAOPT_SERVE_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>

namespace metaopt {

/// A log₂-bucketed histogram of latencies in microseconds. Bucket I holds
/// samples in [2^(I-1), 2^I) (bucket 0 holds sub-microsecond samples), so
/// percentile estimates carry at most one power-of-two of error — plenty
/// for tail-latency reporting, and recording is a single relaxed
/// fetch_add.
class LatencyHistogram {
public:
  static constexpr unsigned BucketCount = 40; // 2^39 us ≈ 6.4 days.

  void record(double Micros);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  /// Mean over all recorded samples (0 when empty).
  double meanMicros() const;

  /// Estimated \p P percentile (0 < P < 1), as the upper edge of the
  /// bucket containing the P-th sample. 0 when empty.
  double percentileMicros(double P) const;

private:
  std::array<std::atomic<uint64_t>, BucketCount> Buckets{};
  std::atomic<uint64_t> Count{0};
  /// Sum in whole microseconds; at 2^63 us of cumulative latency this
  /// wraps, which is far beyond any realistic process lifetime.
  std::atomic<uint64_t> SumMicros{0};
};

/// Point-in-time view of the service counters, as reported by the stats
/// endpoint.
struct ServiceStatsSnapshot {
  uint64_t Received = 0;   ///< Requests admitted to the queue.
  uint64_t Completed = 0;  ///< Requests answered (any status).
  uint64_t Ok = 0;         ///< ... with status ok.
  uint64_t Malformed = 0;  ///< ... rejected by parser/verifier.
  uint64_t Overloaded = 0; ///< Refused at admission (queue full).
  uint64_t DeadlineExceeded = 0; ///< Expired before a worker got to them.
  uint64_t Batches = 0;    ///< Dispatcher batches executed.
  int64_t QueueDepth = 0;  ///< Requests currently queued.
  uint64_t LatencySamples = 0;
  double MeanMicros = 0;
  double P50Micros = 0;
  double P95Micros = 0;
  double P99Micros = 0;
};

/// The live counters behind a ServiceStatsSnapshot. Members are public:
/// the service increments them directly from its hot path.
struct ServiceMetrics {
  std::atomic<uint64_t> Received{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> Ok{0};
  std::atomic<uint64_t> Malformed{0};
  std::atomic<uint64_t> Overloaded{0};
  std::atomic<uint64_t> DeadlineExceeded{0};
  std::atomic<uint64_t> Batches{0};
  std::atomic<int64_t> QueueDepth{0};
  /// Admission-to-response latency of completed requests.
  LatencyHistogram Latency;

  ServiceStatsSnapshot snapshot() const;
};

} // namespace metaopt

#endif // METAOPT_SERVE_METRICS_H
