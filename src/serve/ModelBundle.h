//===- serve/ModelBundle.h - Versioned trained-model artifacts --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model bundle: the unit of deployment between training
/// (tools/metaopt-train) and serving (serve/PredictionService.h). A bundle
/// packages everything a fresh process needs to reproduce a trained
/// classifier's predictions bit-exactly — the serialized classifier (which
/// embeds its fitted normalizer), the feature-catalog schema and selected
/// feature subset it was trained over, and training provenance (corpus
/// fingerprint, seed, machine model, cross-validation accuracy).
///
/// The on-disk container borrows the simulation cache's hardening
/// discipline (cache/SimCache.h): magic bytes, a format version, a payload
/// checksum over every byte after the header, and atomic tmp-then-rename
/// publication. A corrupt, truncated, or version-mismatched bundle is
/// rejected wholesale with a reason — the serving daemon refuses to start
/// on a bad artifact rather than predicting from half a model.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_MODELBUNDLE_H
#define METAOPT_SERVE_MODELBUNDLE_H

#include "support/Fingerprint.h"
#include "core/ml/Classifier.h"
#include "corpus/BenchmarkSuite.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace metaopt {

/// On-disk bundle format version; bump on any layout change. Readers
/// reject other versions wholesale (no migration paths — retrain instead,
/// training is cheap relative to debugging a half-migrated model).
constexpr uint64_t ModelBundleFileVersion = 1;

/// Where a bundle came from: enough to audit a serving deployment ("which
/// corpus, which seed, how good was it in CV?") and to refuse obviously
/// foreign artifacts. All fields are informational except ClassifierName,
/// which selects the deserialization loader.
struct BundleProvenance {
  std::string ClassifierName;   ///< Classifier::name() of the model.
  std::string CreatedBy;        ///< Producing tool and version.
  std::string MachineName;      ///< MachineConfig::Name trained against.
  bool EnableSwp = false;       ///< Labeling configuration (Fig. 4 vs 5).
  uint64_t CorpusSeed = 0;      ///< CorpusOptions::Seed of the corpus.
  std::string CorpusFingerprint; ///< corpusFingerprint() as 32 hex chars.
  uint64_t TrainingExamples = 0; ///< Labeled loops in the training set.
  std::string CvMethod;         ///< "loocv", "10-fold", or "none".
  double CvAccuracy = -1.0;     ///< Fraction correct; negative = not run.
};

/// One trained model plus everything needed to use and audit it.
struct ModelBundle {
  BundleProvenance Provenance;
  /// The ordered feature subset the classifier reads (the bundle also
  /// records the full catalog schema so a reader with a different catalog
  /// rejects the artifact instead of silently permuting features).
  FeatureSet Features;
  /// Classifier::serialize() text; embeds the fitted normalizer.
  std::string ClassifierBlob;

  /// Restores the trained classifier from ClassifierBlob via the
  /// serialization registry. Null when no loader accepts the blob.
  std::unique_ptr<Classifier> instantiate() const;
};

/// Validation summary of a bundle file, for `metaopt-train --inspect` and
/// error reporting. Valid=false carries the rejection reason.
struct ModelBundleInfo {
  bool Valid = false;
  std::string Error;
  uint64_t Version = 0;
  uint64_t PayloadBytes = 0;
  BundleProvenance Provenance; ///< Populated only when Valid.
  size_t FeatureCount = 0;
  size_t ClassifierBytes = 0;
};

/// Renders the complete container (header + checksummed payload).
std::string serializeBundle(const ModelBundle &Bundle);

/// Parses a container produced by serializeBundle(). On rejection returns
/// std::nullopt and, when \p Error is non-null, the reason.
std::optional<ModelBundle> parseBundle(const std::string &Content,
                                       std::string *Error = nullptr);

/// Atomically publishes \p Bundle to \p Path (write to Path+".tmp", then
/// rename): readers concurrently loading the file see either the old
/// complete bundle or the new one, never a torn write.
bool saveBundleFile(const ModelBundle &Bundle, const std::string &Path,
                    std::string *Error = nullptr);

/// Reads and parses a bundle file; std::nullopt (with reason) on any
/// missing, corrupt, truncated, or version-mismatched file.
std::optional<ModelBundle> loadBundleFile(const std::string &Path,
                                          std::string *Error = nullptr);

/// Validates a bundle file and describes it without instantiating the
/// classifier.
ModelBundleInfo inspectBundleFile(const std::string &Path);

/// Content fingerprint of a training corpus: every benchmark's identity
/// and every loop's canonical text plus simulation context. Two corpora
/// with equal fingerprints yield identical training sets, so a bundle's
/// CorpusFingerprint pins exactly what the model saw.
Fingerprint corpusFingerprint(const std::vector<Benchmark> &Corpus);

/// Renders a Fingerprint as 32 lowercase hex characters (Hi then Lo).
std::string fingerprintHex(const Fingerprint &Print);

/// Content checksum of a bundle: the fingerprint of its canonical
/// serialization, as 32 hex characters. Because serializeBundle() is
/// deterministic, two bundles have equal checksums exactly when they are
/// byte-identical artifacts — this is the revision tag the worker's
/// health endpoint reports and the hot-reload watcher compares.
std::string bundleChecksumHex(const ModelBundle &Bundle);

} // namespace metaopt

#endif // METAOPT_SERVE_MODELBUNDLE_H
