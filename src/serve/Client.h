//===- serve/Client.h - Serving protocol client -----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the serving protocol, shared by
/// metaopt-predict, the gateway's backend connections, and the load
/// generator: connects to a daemon, writes one request line, reads one
/// response line. One instance is one connection and must stay on one
/// thread at a time; concurrent load uses one client per thread
/// (bench/loadgen_serve.cpp).
///
/// Addresses name either transport: a string containing a ':' whose
/// suffix is a port number ("127.0.0.1:7000") connects over TCP;
/// anything else ("/run/metaopt.sock") is a unix-domain socket path.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_CLIENT_H
#define METAOPT_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <chrono>
#include <optional>
#include <string>

namespace metaopt {

/// Splits \p Address into TCP host and port. Returns false when it is
/// not of the host:port form (then it names a unix socket path).
bool splitTcpAddress(const std::string &Address, std::string &Host,
                     int &Port);

/// One client connection to a serving daemon (worker or gateway).
class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to \p Address (unix path or host:port); false (with
  /// \p Error) when the daemon is not there.
  bool connect(const std::string &Address, std::string *Error = nullptr);

  /// Like connect(), but retries until the daemon appears or
  /// \p TimeoutMs elapses — for scripts that just started the daemon.
  bool connectWithRetry(const std::string &Address, int TimeoutMs,
                        std::string *Error = nullptr);

  /// Bounds every subsequent send/recv on this connection (applied to
  /// the open socket and re-applied after reconnects). Zero disables
  /// the bound. The gateway sets this so one stuck worker cannot wedge
  /// a proxied request forever.
  void setIoTimeout(std::chrono::milliseconds Timeout);

  void close();
  bool connected() const { return Fd >= 0; }

  /// The raw socket (for tests and the load generator's slow-reader
  /// clients); -1 when not connected.
  int fd() const { return Fd; }

  /// Writes \p RequestLine (newline appended) and reads one response
  /// line. std::nullopt (with \p Error) on a broken connection.
  std::optional<std::string> roundTrip(const std::string &RequestLine,
                                       std::string *Error = nullptr);

  /// roundTrip() of a rendered WireRequest.
  std::optional<std::string> request(const WireRequest &Request,
                                     std::string *Error = nullptr);

private:
  bool connectUnix(const std::string &SocketPath, std::string *Error);
  bool connectTcp(const std::string &Host, int Port, std::string *Error);
  void applyIoTimeout();

  int Fd = -1;
  std::chrono::milliseconds IoTimeout{0};
  std::string Buffer; ///< Bytes read past the last returned line.
};

} // namespace metaopt

#endif // METAOPT_SERVE_CLIENT_H
