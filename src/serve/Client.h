//===- serve/Client.h - Serving protocol client -----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small blocking client for the serving protocol, shared by
/// metaopt-predict and the load generator: connects to metaopt-serve's
/// unix socket, writes one request line, reads one response line. One
/// instance is one connection and must stay on one thread at a time;
/// concurrent load uses one client per thread (bench/loadgen_serve.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_CLIENT_H
#define METAOPT_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <optional>
#include <string>

namespace metaopt {

/// One client connection to a serving daemon.
class ServeClient {
public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient &) = delete;
  ServeClient &operator=(const ServeClient &) = delete;

  /// Connects to the daemon's unix socket; false (with \p Error) when
  /// the daemon is not there.
  bool connect(const std::string &SocketPath, std::string *Error = nullptr);

  /// Like connect(), but retries until the daemon appears or
  /// \p TimeoutMs elapses — for scripts that just started the daemon.
  bool connectWithRetry(const std::string &SocketPath, int TimeoutMs,
                        std::string *Error = nullptr);

  void close();
  bool connected() const { return Fd >= 0; }

  /// Writes \p RequestLine (newline appended) and reads one response
  /// line. std::nullopt (with \p Error) on a broken connection.
  std::optional<std::string> roundTrip(const std::string &RequestLine,
                                       std::string *Error = nullptr);

  /// roundTrip() of a rendered WireRequest.
  std::optional<std::string> request(const WireRequest &Request,
                                     std::string *Error = nullptr);

private:
  int Fd = -1;
  std::string Buffer; ///< Bytes read past the last returned line.
};

} // namespace metaopt

#endif // METAOPT_SERVE_CLIENT_H
