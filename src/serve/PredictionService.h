//===- serve/PredictionService.h - Batched inference engine -----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inference engine behind metaopt-serve: loads a trained model bundle
/// (serve/ModelBundle.h) and turns textual loop IR into unroll-factor
/// predictions. Requests pass through a bounded admission queue into a
/// dispatcher that forms batches (up to MaxBatch requests, waiting at
/// most BatchLinger for stragglers) and evaluates each batch on the
/// work-stealing thread pool (concurrency/ThreadPool.h).
///
/// The contract that makes batching safe to deploy: prediction is a pure
/// function of the request text and the loaded bundle, so the response
/// payload is byte-identical whether a request was served alone, inside
/// any batch, or by predictUnbatched() on the caller's thread — batching
/// and concurrency affect only latency, never answers. Backpressure is
/// explicit: when the queue is full a request is refused immediately with
/// Overloaded (never silently dropped, never unboundedly buffered), and a
/// request whose deadline passed before a worker picked it up is answered
/// with DeadlineExceeded rather than computed uselessly.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_PREDICTIONSERVICE_H
#define METAOPT_SERVE_PREDICTIONSERVICE_H

#include "serve/Metrics.h"
#include "serve/ModelBundle.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

namespace metaopt {

/// Service tuning knobs.
struct PredictionServiceOptions {
  /// Most requests evaluated per dispatcher batch.
  size_t MaxBatch = 16;
  /// Admission-queue capacity; submissions beyond it are refused with
  /// Overloaded.
  size_t MaxQueue = 1024;
  /// How long the dispatcher waits for a batch to fill once it holds at
  /// least one request. Zero disables lingering (every wakeup drains
  /// whatever is queued).
  std::chrono::microseconds BatchLinger{200};
};

/// Terminal status of one request.
enum class PredictStatus {
  Ok,               ///< Predicted every loop in the request.
  Malformed,        ///< Parser or verifier rejected the input.
  Overloaded,       ///< Refused at admission: queue at capacity.
  DeadlineExceeded, ///< Deadline passed while queued.
  ShuttingDown,     ///< Service stopped before the request was admitted.
};

/// Wire-stable status name ("ok", "malformed", ...).
const char *predictStatusName(PredictStatus Status);

/// One inference request: a textual loop program (docs/LOOP_FORMAT.md),
/// possibly containing several loops.
struct PredictRequest {
  std::string LoopText;
  /// Also return the per-factor score vector for each loop.
  bool WantScores = false;
  /// Absolute deadline; time_point{} (the epoch) means none.
  std::chrono::steady_clock::time_point Deadline{};
};

/// The prediction for one loop of a request.
struct LoopPrediction {
  std::string LoopName;
  unsigned Factor = 0;
  /// Per-factor preference scores (index f-1); meaningful only when the
  /// request asked for scores.
  std::array<double, MaxUnrollFactor> Scores{};
};

/// The answer to one request. Everything here is a pure function of the
/// request and the bundle — no timestamps, queue positions, or batch
/// geometry — which is what makes the byte-identity guarantee testable.
struct PredictResponse {
  PredictStatus Status = PredictStatus::Ok;
  /// For Malformed: the parse error or the verifier/lint diagnostics
  /// (ir/Diagnostics.h renderings, one per line).
  std::string Error;
  std::vector<LoopPrediction> Loops;
};

/// Loads a bundle's classifier once and serves predictions against it.
/// Thread-safe: any number of threads may submit() concurrently.
class PredictionService {
public:
  /// \p Bundle must have been validated (loadBundleFile succeeded);
  /// construction instantiates the classifier and throws
  /// std::runtime_error if no registered loader accepts the blob.
  explicit PredictionService(ModelBundle Bundle,
                             PredictionServiceOptions Options = {});
  ~PredictionService();

  PredictionService(const PredictionService &) = delete;
  PredictionService &operator=(const PredictionService &) = delete;

  /// Queues a request for batched evaluation. The future is always
  /// eventually fulfilled — with Overloaded immediately when the queue is
  /// full, with ShuttingDown when the service stopped first.
  std::future<PredictResponse> submit(PredictRequest Request);

  /// submit() + get(): convenience for synchronous callers.
  PredictResponse predict(PredictRequest Request);

  /// Evaluates a request on the calling thread, bypassing the queue, the
  /// batcher, and the pool. The reference implementation for the
  /// byte-identity contract: for any request, the Response payload equals
  /// submit()'s.
  PredictResponse predictUnbatched(const PredictRequest &Request) const;

  /// Finishes every queued request, then stops the dispatcher. Idempotent;
  /// the destructor calls it. After shutdown, submit() answers
  /// ShuttingDown.
  void shutdown();

  const ModelBundle &bundle() const { return Bundle; }
  const Classifier &classifier() const { return *Model; }
  ServiceStatsSnapshot stats() const { return Metrics.snapshot(); }

  /// Content checksum of the served bundle (bundleChecksumHex), exposed
  /// by the health endpoint so operators and the gateway can tell which
  /// model revision a worker is actually serving.
  const std::string &bundleChecksum() const { return BundleChecksum; }

private:
  struct Pending {
    PredictRequest Request;
    std::promise<PredictResponse> Promise;
    std::chrono::steady_clock::time_point Enqueued;
  };

  void dispatchLoop();
  void finish(Pending &Item, PredictResponse Response);

  ModelBundle Bundle;
  std::string BundleChecksum;
  std::unique_ptr<Classifier> Model;
  PredictionServiceOptions Options;
  ServiceMetrics Metrics;

  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<Pending> Queue;
  bool Stopping = false;
  std::thread Dispatcher;
};

} // namespace metaopt

#endif // METAOPT_SERVE_PREDICTIONSERVICE_H
