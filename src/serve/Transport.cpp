//===- serve/Transport.cpp ------------------------------------------------===//

#include "serve/Transport.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace metaopt;

std::atomic<bool> &metaopt::serverStopFlag() {
  static std::atomic<bool> Flag{false};
  return Flag;
}

LineServer::LineServer(TransportOptions OptionsIn, Handler HandleIn)
    : Options(std::move(OptionsIn)), Handle(std::move(HandleIn)) {}

LineServer::~LineServer() { requestStop(); }

void LineServer::requestStop() { Stop.store(true, std::memory_order_release); }

bool LineServer::stopRequested() const {
  return Stop.load(std::memory_order_acquire) ||
         serverStopFlag().load(std::memory_order_acquire) ||
         (Options.ExternalStop && Options.ExternalStop());
}

/// Writes all of \p Line plus a newline, bounded by WriteTimeout; false
/// when the peer vanished or would not drain its socket in time (the
/// slow-reader guard).
bool LineServer::writeLine(int Fd, const std::string &Line) {
  std::string Framed = Line + "\n";
  size_t Sent = 0;
  bool Bounded = Options.WriteTimeout.count() > 0;
  auto Deadline = std::chrono::steady_clock::now() + Options.WriteTimeout;
  while (Sent < Framed.size()) {
    ssize_t N = ::send(Fd, Framed.data() + Sent, Framed.size() - Sent,
                       MSG_NOSIGNAL | (Bounded ? MSG_DONTWAIT : 0));
    if (N > 0) {
      Sent += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && Bounded && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      auto Now = std::chrono::steady_clock::now();
      if (Now >= Deadline) {
        Counters.WriteTimeouts.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      int WaitMs = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(Deadline -
                                                                Now)
              .count());
      struct pollfd Pfd = {Fd, POLLOUT, 0};
      int Ready = ::poll(&Pfd, 1, WaitMs < 1 ? 1 : WaitMs);
      if (Ready < 0 && errno != EINTR)
        return false;
      continue;
    }
    return false;
  }
  return true;
}

void LineServer::handleConnection(Connection &Conn) {
  Counters.Open.fetch_add(1, std::memory_order_relaxed);
  std::string Buffer;
  char Chunk[1 << 14];
  bool Alive = true;
  // When the buffer holds a partial frame, the moment it last made
  // progress; the read deadline measures from here.
  auto PartialSince = std::chrono::steady_clock::now();

  // Best-effort rejection line before closing on a framing violation.
  auto Reject = [&] {
    if (!Options.RejectResponse.empty())
      writeLine(Conn.Fd, Options.RejectResponse);
  };

  while (Alive) {
    // Serve every complete line already buffered. A request accepted
    // here is always answered before the connection can close — the
    // zero-dropped-responses half of the drain contract.
    size_t Newline;
    while (Alive && (Newline = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Newline);
      Buffer.erase(0, Newline + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      if (Line.size() > Options.MaxRequestBytes) {
        Counters.OversizedRejected.fetch_add(1, std::memory_order_relaxed);
        Reject();
        Alive = false;
        break;
      }
      if (Line.find('\0') != std::string::npos) {
        // NUL can never appear in line-delimited JSON; treat it as a
        // framing violation rather than handing garbage to the handler.
        Counters.BadFrames.fetch_add(1, std::memory_order_relaxed);
        Reject();
        Alive = false;
        break;
      }
      Counters.LinesServed.fetch_add(1, std::memory_order_relaxed);
      Alive = writeLine(Conn.Fd, Handle(Line, Conn.Slot));
    }
    if (!Alive)
      break;

    // A partial frame already longer than the limit can never become a
    // legal request; reject it without waiting for the newline.
    if (Buffer.size() > Options.MaxRequestBytes) {
      Counters.OversizedRejected.fetch_add(1, std::memory_order_relaxed);
      Reject();
      break;
    }

    // During a drain, close as soon as the client has no partial request
    // buffered; anything already sent was answered above.
    if (stopRequested() && Buffer.empty())
      break;

    // The read deadline: a stalled partial frame is a dead or hostile
    // peer holding a connection thread; close it.
    if (Options.ReadTimeout.count() > 0 && !Buffer.empty() &&
        std::chrono::steady_clock::now() - PartialSince >
            Options.ReadTimeout) {
      Counters.ReadTimeouts.fetch_add(1, std::memory_order_relaxed);
      break;
    }

    struct pollfd Pfd = {Conn.Fd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 200);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0)
      continue; // Timeout (recheck stop/read deadlines) or EINTR.

    ssize_t N = ::recv(Conn.Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0)
      break; // Peer closed.
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Buffer.empty())
      PartialSince = std::chrono::steady_clock::now();
    Buffer.append(Chunk, static_cast<size_t>(N));
  }

  ::close(Conn.Fd);
  Conn.Fd = -1;
  Counters.Open.fetch_sub(1, std::memory_order_relaxed);
  Conn.Done.store(true, std::memory_order_release);
}

int LineServer::openUnixListener(std::string *Error) {
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Options.SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path is too long for sockaddr_un";
    return -1;
  }
  std::strncpy(Addr.sun_path, Options.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }

  // A stale socket file from a crashed predecessor would make bind fail;
  // remove it. A *live* predecessor also loses its file, but two daemons
  // on one path is an operator error either way.
  ::unlink(Options.SocketPath.c_str());

  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, Options.Backlog) < 0) {
    if (Error)
      *Error = std::string("bind/listen on '") + Options.SocketPath +
               "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int LineServer::openTcpListener(std::string *Error) {
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port =
      htons(static_cast<uint16_t>(Options.TcpPort < 0 ? 0 : Options.TcpPort));
  const std::string &Host =
      Options.TcpHost.empty() ? std::string("0.0.0.0") : Options.TcpHost;
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Error)
      *Error = "bad TCP listen address '" + Host + "'";
    return -1;
  }

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, Options.Backlog) < 0) {
    if (Error)
      *Error = std::string("bind/listen on ") + Host + ":" +
               std::to_string(Options.TcpPort) + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }

  sockaddr_in Bound = {};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
    TcpPort.store(ntohs(Bound.sin_port), std::memory_order_release);
  return Fd;
}

bool LineServer::run(std::string *Error) {
  bool WantUnix = !Options.SocketPath.empty();
  bool WantTcp = Options.TcpPort >= 0;
  if (!WantUnix && !WantTcp) {
    if (Error)
      *Error = "no listener configured (need a socket path or a TCP port)";
    return false;
  }

  std::vector<int> ListenFds;
  if (WantUnix) {
    int Fd = openUnixListener(Error);
    if (Fd < 0)
      return false;
    ListenFds.push_back(Fd);
  }
  if (WantTcp) {
    int Fd = openTcpListener(Error);
    if (Fd < 0) {
      for (int Open : ListenFds)
        ::close(Open);
      if (WantUnix)
        ::unlink(Options.SocketPath.c_str());
      return false;
    }
    ListenFds.push_back(Fd);
  }
  Listening.store(true, std::memory_order_release);

  while (!stopRequested()) {
    std::vector<struct pollfd> Pfds;
    Pfds.reserve(ListenFds.size());
    for (int Fd : ListenFds)
      Pfds.push_back({Fd, POLLIN, 0});
    int Ready = ::poll(Pfds.data(), Pfds.size(), 200);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0)
      continue;

    for (const struct pollfd &Pfd : Pfds) {
      if (!(Pfd.revents & POLLIN))
        continue;
      int ClientFd = ::accept(Pfd.fd, nullptr, nullptr);
      if (ClientFd < 0)
        continue;
      Counters.Accepted.fetch_add(1, std::memory_order_relaxed);

      auto Conn = std::make_unique<Connection>();
      Conn->Fd = ClientFd;
      Connection *Raw = Conn.get();
      Raw->Worker = std::thread([this, Raw] { handleConnection(*Raw); });
      {
        std::lock_guard<std::mutex> Lock(ConnectionsMutex);
        // Reap finished connections so a long-lived daemon does not
        // accumulate joinable threads.
        for (auto &Existing : Connections)
          if (Existing->Done.load(std::memory_order_acquire) &&
              Existing->Worker.joinable())
            Existing->Worker.join();
        std::erase_if(Connections, [](const auto &C) {
          return C->Done.load(std::memory_order_acquire) &&
                 !C->Worker.joinable();
        });
        Connections.push_back(std::move(Conn));
      }
    }
  }

  // Drain: stop accepting, then wait for the connection threads. Each
  // thread exits once its client closes or, during the drain, as soon as
  // it has no buffered request — after answering everything it accepted.
  for (int Fd : ListenFds)
    ::close(Fd);
  if (WantUnix)
    ::unlink(Options.SocketPath.c_str());

  auto DrainDeadline = std::chrono::steady_clock::now() + Options.DrainTimeout;
  while (std::chrono::steady_clock::now() < DrainDeadline) {
    bool AllDone = true;
    {
      std::lock_guard<std::mutex> Lock(ConnectionsMutex);
      for (auto &Conn : Connections)
        AllDone &= Conn->Done.load(std::memory_order_acquire);
    }
    if (AllDone)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    // Force the stragglers' sockets shut; their threads then exit.
    std::lock_guard<std::mutex> Lock(ConnectionsMutex);
    for (auto &Conn : Connections)
      if (!Conn->Done.load(std::memory_order_acquire) && Conn->Fd >= 0)
        ::shutdown(Conn->Fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> Lock(ConnectionsMutex);
    for (auto &Conn : Connections)
      if (Conn->Worker.joinable())
        Conn->Worker.join();
    Connections.clear();
  }

  Listening.store(false, std::memory_order_release);
  return true;
}
