//===- serve/PredictionService.cpp ----------------------------------------===//

#include "serve/PredictionService.h"

#include "analysis/lint/Lint.h"
#include "concurrency/Parallel.h"
#include "core/features/FeatureExtractor.h"
#include "ir/Parser.h"

#include <stdexcept>

using namespace metaopt;

const char *metaopt::predictStatusName(PredictStatus Status) {
  switch (Status) {
  case PredictStatus::Ok:
    return "ok";
  case PredictStatus::Malformed:
    return "malformed";
  case PredictStatus::Overloaded:
    return "overloaded";
  case PredictStatus::DeadlineExceeded:
    return "deadline-exceeded";
  case PredictStatus::ShuttingDown:
    return "shutting-down";
  }
  return "unknown";
}

PredictionService::PredictionService(ModelBundle BundleIn,
                                     PredictionServiceOptions OptionsIn)
    : Bundle(std::move(BundleIn)), Options(OptionsIn) {
  BundleChecksum = bundleChecksumHex(Bundle);
  Model = Bundle.instantiate();
  if (!Model)
    throw std::runtime_error(
        "model bundle's classifier blob ('" +
        Bundle.Provenance.ClassifierName +
        "') is not accepted by any registered loader");
  if (Options.MaxBatch == 0)
    Options.MaxBatch = 1;
  if (Options.MaxQueue == 0)
    Options.MaxQueue = 1;
  Dispatcher = std::thread([this] { dispatchLoop(); });
}

PredictionService::~PredictionService() { shutdown(); }

PredictResponse
PredictionService::predictUnbatched(const PredictRequest &Request) const {
  PredictResponse Response;

  ParseResult Parsed = parseLoops(Request.LoopText);
  if (!Parsed.succeeded()) {
    Response.Status = PredictStatus::Malformed;
    Response.Error = "line " + std::to_string(Parsed.ErrorLine) +
                     ": " + Parsed.Error;
    return Response;
  }
  if (Parsed.Loops.empty()) {
    Response.Status = PredictStatus::Malformed;
    Response.Error = "no loops in request";
    return Response;
  }

  // Structural rejection goes through the diagnostics engine so clients
  // see the same stable IDs and renderings metaopt-lint prints. Lint
  // passes stay off: style warnings are not a reason to refuse serving.
  LintOptions Verify;
  Verify.RunVerifier = true;
  Verify.Passes = {"V"};
  for (const Loop &L : Parsed.Loops) {
    DiagnosticReport Report = lintLoop(L, Verify);
    if (Report.hasErrors()) {
      Response.Status = PredictStatus::Malformed;
      Response.Error += Report.renderText();
    }
  }
  if (Response.Status == PredictStatus::Malformed)
    return Response;

  for (const Loop &L : Parsed.Loops) {
    LoopPrediction Prediction;
    Prediction.LoopName = L.name();
    FeatureVector Features = extractFeatures(L);
    Prediction.Factor = Model->predict(Features);
    if (Request.WantScores)
      Prediction.Scores = Model->scores(Features);
    Response.Loops.push_back(std::move(Prediction));
  }
  return Response;
}

std::future<PredictResponse>
PredictionService::submit(PredictRequest Request) {
  Pending Item;
  Item.Request = std::move(Request);
  Item.Enqueued = std::chrono::steady_clock::now();
  std::future<PredictResponse> Future = Item.Promise.get_future();

  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping) {
      PredictResponse Response;
      Response.Status = PredictStatus::ShuttingDown;
      Response.Error = "service is shutting down";
      Item.Promise.set_value(std::move(Response));
      return Future;
    }
    if (Queue.size() >= Options.MaxQueue) {
      Metrics.recordOverloaded();
      PredictResponse Response;
      Response.Status = PredictStatus::Overloaded;
      Response.Error = "admission queue is full";
      Item.Promise.set_value(std::move(Response));
      return Future;
    }
    Metrics.recordAdmitted();
    Queue.push_back(std::move(Item));
  }
  QueueCv.notify_one();
  return Future;
}

PredictResponse PredictionService::predict(PredictRequest Request) {
  return submit(std::move(Request)).get();
}

/// Answers one dequeued (in-flight) request: records its terminal outcome
/// and latency in one consistent metrics update, then fulfills the
/// promise. Admission refusals never reach here — they are answered in
/// submit() without touching the in-flight accounting.
void PredictionService::finish(Pending &Item, PredictResponse Response) {
  ServiceMetrics::Outcome TheOutcome = ServiceMetrics::Outcome::Ok;
  switch (Response.Status) {
  case PredictStatus::Malformed:
    TheOutcome = ServiceMetrics::Outcome::Malformed;
    break;
  case PredictStatus::DeadlineExceeded:
    TheOutcome = ServiceMetrics::Outcome::DeadlineExceeded;
    break;
  default:
    break;
  }
  double Micros = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - Item.Enqueued)
                      .count();
  Metrics.recordFinished(TheOutcome, Micros);
  Item.Promise.set_value(std::move(Response));
}

void PredictionService::dispatchLoop() {
  while (true) {
    std::vector<Pending> Batch;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty() && Stopping)
        return;

      // Linger briefly for the batch to fill: under load this amortizes
      // pool wakeups over MaxBatch requests; when idle it adds at most
      // BatchLinger to a lone request's latency.
      if (Options.BatchLinger.count() > 0 &&
          Queue.size() < Options.MaxBatch && !Stopping) {
        auto Full = [&] {
          return Stopping || Queue.size() >= Options.MaxBatch;
        };
        QueueCv.wait_for(Lock, Options.BatchLinger, Full);
      }

      size_t Take = std::min(Options.MaxBatch, Queue.size());
      Batch.reserve(Take);
      for (size_t I = 0; I < Take; ++I) {
        Batch.push_back(std::move(Queue.front()));
        Queue.pop_front();
      }
      if (Take > 0)
        Metrics.recordDequeued(Take);
    }
    if (Batch.empty())
      continue;

    auto Now = std::chrono::steady_clock::now();
    std::vector<PredictResponse> Responses = parallelMap<PredictResponse>(
        Batch.size(), [&](size_t I) -> PredictResponse {
          const PredictRequest &Request = Batch[I].Request;
          if (Request.Deadline.time_since_epoch().count() != 0 &&
              Now > Request.Deadline) {
            PredictResponse Response;
            Response.Status = PredictStatus::DeadlineExceeded;
            Response.Error = "deadline passed while queued";
            return Response;
          }
          return predictUnbatched(Request);
        });
    for (size_t I = 0; I < Batch.size(); ++I)
      finish(Batch[I], std::move(Responses[I]));
  }
}

void PredictionService::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping && !Dispatcher.joinable())
      return;
    Stopping = true;
  }
  QueueCv.notify_all();
  if (Dispatcher.joinable())
    Dispatcher.join();
}
