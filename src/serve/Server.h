//===- serve/Server.h - Prediction worker daemon ----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The prediction worker behind metaopt-serve: a LineServer
/// (serve/Transport.h) speaking the line-delimited JSON protocol
/// (serve/Protocol.h) over a unix-domain socket, a TCP socket, or both,
/// with all predictions funneled through one shared PredictionService so
/// requests from different connections batch together.
///
/// Shutdown is drain-then-stop, as documented on LineServer: every
/// request the transport accepted is answered before run() returns — the
/// "zero dropped responses" contract the smoke and soak tests assert.
///
/// Hot reload: when BundlePath is set, a watcher thread fingerprints the
/// file every ReloadPoll. On a content change it parses and validates the
/// new bundle off to the side (a corrupt artifact is rejected and the old
/// model keeps serving), constructs a fresh PredictionService, atomically
/// swaps it in, and drains the old service so its queued requests are all
/// answered by the model that admitted them. A request that races the
/// swap and gets refused with ShuttingDown is transparently retried on
/// the new service — in-flight clients never observe the reload except as
/// a changed "bundle_checksum" in health. Swaps are zero-downtime: the
/// listener, connections, and admission queue of the new service stay
/// live throughout.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_SERVER_H
#define METAOPT_SERVE_SERVER_H

#include "serve/PredictionService.h"
#include "serve/Transport.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

namespace metaopt {

/// Daemon configuration.
struct ServerOptions {
  /// Unix-domain listener path; empty disables it (TCP only).
  std::string SocketPath;
  /// TCP listener; TcpPort < 0 disables it, 0 binds an ephemeral port.
  std::string TcpHost = "127.0.0.1";
  int TcpPort = -1;

  PredictionServiceOptions Service;

  /// How long the drain waits for open connections to finish before
  /// forcibly shutting their sockets.
  std::chrono::milliseconds DrainTimeout{5000};
  int Backlog = 64;

  /// Framing hardening (serve/Transport.h).
  size_t MaxRequestBytes = 1 << 20;
  std::chrono::milliseconds ReadTimeout{0};
  std::chrono::milliseconds WriteTimeout{5000};

  /// When non-empty, watch this bundle file and hot-reload on change.
  std::string BundlePath;
  std::chrono::milliseconds ReloadPoll{500};
};

/// One serving daemon instance.
class Server {
public:
  /// \p Bundle must be a validated bundle; the constructor instantiates
  /// the classifier (throws std::runtime_error on an unloadable blob).
  Server(ModelBundle Bundle, ServerOptions Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listeners and serves until stop is requested, then drains.
  /// Returns false (with \p Error) only on setup failure; a served-then-
  /// drained run returns true. Blocking — daemons call it from main(),
  /// tests from a helper thread.
  bool run(std::string *Error = nullptr);

  /// Asks a running run() to begin the drain. Safe from any thread.
  void requestStop();

  /// True from successful bind until run() returns.
  bool listening() const;

  /// The TCP listener's bound port once listening() is true; -1 when no
  /// TCP listener is configured.
  int boundTcpPort() const;

  ServiceStatsSnapshot stats() const { return service()->stats(); }
  uint64_t connectionsAccepted() const;
  const std::string &socketPath() const { return Options.SocketPath; }

  /// The active service (swapped atomically by a hot reload). Callers
  /// must hold the shared_ptr across any use of the bundle or classifier.
  std::shared_ptr<PredictionService> service() const;

  /// Provenance snapshot of the currently active bundle.
  BundleProvenance provenance() const { return service()->bundle().Provenance; }

  /// Checksum of the currently active bundle (bundleChecksumHex).
  std::string bundleChecksum() const { return service()->bundleChecksum(); }

  /// Completed hot reloads / rejected reload attempts so far.
  uint64_t reloads() const { return Reloads.load(std::memory_order_relaxed); }
  uint64_t reloadsRejected() const {
    return ReloadsRejected.load(std::memory_order_relaxed);
  }

private:
  bool stopRequested() const;
  /// Serves one request line; returns the response to write.
  std::string handleLine(const std::string &Line);
  void reloadLoop();

  ServerOptions Options;
  mutable std::mutex ServiceMutex;
  std::shared_ptr<PredictionService> Service;
  std::unique_ptr<LineServer> Transport;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Reloads{0};
  std::atomic<uint64_t> ReloadsRejected{0};
  /// Fingerprint of the watched bundle file's last seen content.
  Fingerprint WatchedFp;
};

} // namespace metaopt

#endif // METAOPT_SERVE_SERVER_H
