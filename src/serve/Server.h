//===- serve/Server.h - Unix-socket prediction daemon -----------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer of metaopt-serve: a unix-domain stream socket
/// speaking the line-delimited JSON protocol (serve/Protocol.h), one
/// thread per connection, all predictions funneled through one shared
/// PredictionService so requests from different connections batch
/// together.
///
/// Shutdown is drain-then-stop: once stop is requested (requestStop(), a
/// client shutdown op, or a signal handler setting serverStopFlag()), the
/// listener stops accepting, every in-flight request is still answered,
/// idle connections are closed, and run() returns only when the last
/// response has been written — the "zero dropped responses" contract the
/// smoke test asserts. Connections that keep submitting during the drain
/// are closed after their next response. DrainTimeout bounds how long a
/// stuck client can hold the process; on expiry remaining sockets are
/// forcibly shut down (still never dropping a response that was already
/// being computed... the write simply fails if the client vanished).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_SERVER_H
#define METAOPT_SERVE_SERVER_H

#include "serve/PredictionService.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace metaopt {

/// Daemon configuration.
struct ServerOptions {
  std::string SocketPath;
  PredictionServiceOptions Service;
  /// How long the drain waits for open connections to finish before
  /// forcibly shutting their sockets.
  std::chrono::milliseconds DrainTimeout{5000};
  int Backlog = 64;
};

/// Process-wide stop flag polled by every running Server's accept loop.
/// Lock-free, so a SIGTERM/SIGINT handler may set it directly — that is
/// the daemon's graceful-shutdown path.
std::atomic<bool> &serverStopFlag();

/// One serving daemon instance.
class Server {
public:
  /// \p Bundle must be a validated bundle; the constructor instantiates
  /// the classifier (throws std::runtime_error on an unloadable blob).
  Server(ModelBundle Bundle, ServerOptions Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket and serves until stop is requested, then drains.
  /// Returns false (with \p Error) only on setup failure; a served-then-
  /// drained run returns true. Blocking — daemons call it from main(),
  /// tests from a helper thread.
  bool run(std::string *Error = nullptr);

  /// Asks a running run() to begin the drain. Safe from any thread.
  void requestStop();

  /// True from successful bind until run() returns.
  bool listening() const { return Listening.load(std::memory_order_acquire); }

  ServiceStatsSnapshot stats() const { return Service->stats(); }
  uint64_t connectionsAccepted() const {
    return Accepted.load(std::memory_order_relaxed);
  }
  const std::string &socketPath() const { return Options.SocketPath; }
  const ModelBundle &bundle() const { return Service->bundle(); }

private:
  struct Connection {
    int Fd = -1;
    std::thread Worker;
    std::atomic<bool> Done{false};
  };

  bool stopRequested() const;
  void handleConnection(Connection &Conn);
  /// Serves one request line; returns the response to write.
  std::string handleLine(const std::string &Line);

  ServerOptions Options;
  std::unique_ptr<PredictionService> Service;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Listening{false};
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Open{0};

  std::mutex ConnectionsMutex;
  std::vector<std::unique_ptr<Connection>> Connections;
};

} // namespace metaopt

#endif // METAOPT_SERVE_SERVER_H
