//===- serve/Transport.h - Line-delimited socket transport ------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared socket transport under the serving tier: LineServer accepts
/// connections on a unix-domain socket, a TCP socket, or both, reads
/// newline-delimited request lines, and answers each through a
/// caller-supplied handler — one response line per request line, in order.
/// Both the worker daemon (serve/Server.h) and the sharded gateway
/// (gateway/Gateway.h) are thin handlers on top of this class, so framing
/// behavior cannot drift between them.
///
/// The transport hardens the framing edge against misbehaving peers:
///
///  * oversized requests — a line (terminated or not) longer than
///    MaxRequestBytes is answered with the configured rejection line and
///    the connection is closed, bounding per-connection memory;
///  * read deadlines — a connection holding a *partial* frame longer than
///    ReadTimeout is closed (an idle connection with no buffered bytes may
///    stay open indefinitely);
///  * slow readers — each response write must complete within
///    WriteTimeout or the connection is closed, so one unread socket
///    cannot wedge a connection thread forever;
///  * embedded NUL — a NUL byte inside a request line is a framing
///    violation (it can never appear in line-delimited JSON); the
///    connection is answered with the rejection line and closed.
///
/// Shutdown is drain-then-stop, inherited verbatim from the original
/// single-socket server: once the stop predicate fires the listeners stop
/// accepting, every request already read is still answered, and run()
/// returns only when the last connection thread has exited (DrainTimeout
/// bounds how long a stuck peer can hold the process).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_TRANSPORT_H
#define METAOPT_SERVE_TRANSPORT_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace metaopt {

/// Process-wide stop flag polled by every running LineServer's accept
/// loop. Lock-free, so a SIGTERM/SIGINT handler may set it directly —
/// that is the daemons' graceful-shutdown path.
std::atomic<bool> &serverStopFlag();

/// Transport configuration. At least one of SocketPath / TcpPort must be
/// set.
struct TransportOptions {
  /// Unix-domain listener path; empty disables the unix listener.
  std::string SocketPath;
  /// TCP listener address; TcpPort < 0 disables the TCP listener, 0 binds
  /// an ephemeral port (read it back with boundTcpPort()).
  std::string TcpHost = "127.0.0.1";
  int TcpPort = -1;
  int Backlog = 64;

  /// Longest accepted request line; longer input is rejected and the
  /// connection closed.
  size_t MaxRequestBytes = 1 << 20;
  /// How long a partial frame may sit without progress before the
  /// connection is closed. Zero disables the deadline.
  std::chrono::milliseconds ReadTimeout{0};
  /// How long one response write may block on a slow reader. Zero
  /// disables the deadline (writes may block indefinitely).
  std::chrono::milliseconds WriteTimeout{5000};
  /// Shutdown grace for open connections before their sockets are
  /// forcibly shut down.
  std::chrono::milliseconds DrainTimeout{5000};

  /// Response line written (best-effort) before closing a connection that
  /// sent an oversized or NUL-bearing frame; empty = close silently.
  std::string RejectResponse;

  /// Extra stop condition checked alongside requestStop() and
  /// serverStopFlag(); the owner points this at its own stop state.
  std::function<bool()> ExternalStop;
};

/// Transport-level counters, readable while the server runs.
struct TransportCounters {
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Open{0};
  std::atomic<uint64_t> LinesServed{0};
  std::atomic<uint64_t> OversizedRejected{0};
  /// Frames rejected for an embedded NUL byte.
  std::atomic<uint64_t> BadFrames{0};
  std::atomic<uint64_t> ReadTimeouts{0};
  std::atomic<uint64_t> WriteTimeouts{0};
};

/// Per-connection state handed to the handler alongside each line. The
/// transport owns the lifetime; User is an opaque slot for handler state
/// that should live as long as the connection (e.g. the gateway's cached
/// backend connections). Handlers run on the connection's own thread, so
/// no synchronization is needed for User.
struct LineConnection {
  std::shared_ptr<void> User;
};

/// A line-delimited request/response server over unix and/or TCP stream
/// sockets, one thread per connection.
class LineServer {
public:
  /// Handler for one request line (newline stripped, never empty, never
  /// containing NUL); returns the response line (no trailing newline).
  using Handler =
      std::function<std::string(const std::string &Line, LineConnection &)>;

  LineServer(TransportOptions Options, Handler Handle);
  ~LineServer();

  LineServer(const LineServer &) = delete;
  LineServer &operator=(const LineServer &) = delete;

  /// Binds the configured listeners and serves until stop is requested,
  /// then drains. Returns false (with \p Error) only on setup failure.
  /// Blocking — daemons call it from main(), tests from a helper thread.
  bool run(std::string *Error = nullptr);

  /// Asks a running run() to begin the drain. Safe from any thread.
  void requestStop();

  /// True from successful bind until run() returns.
  bool listening() const { return Listening.load(std::memory_order_acquire); }

  /// The TCP listener's bound port (after listening() turns true);
  /// -1 when no TCP listener is configured. This is how tests bind
  /// port 0 and discover the ephemeral port.
  int boundTcpPort() const { return TcpPort.load(std::memory_order_acquire); }

  const TransportCounters &counters() const { return Counters; }

private:
  struct Connection {
    int Fd = -1;
    std::thread Worker;
    std::atomic<bool> Done{false};
    LineConnection Slot;
  };

  bool stopRequested() const;
  void handleConnection(Connection &Conn);
  bool writeLine(int Fd, const std::string &Line);
  int openUnixListener(std::string *Error);
  int openTcpListener(std::string *Error);

  TransportOptions Options;
  Handler Handle;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Listening{false};
  std::atomic<int> TcpPort{-1};
  TransportCounters Counters;

  std::mutex ConnectionsMutex;
  std::vector<std::unique_ptr<Connection>> Connections;
};

} // namespace metaopt

#endif // METAOPT_SERVE_TRANSPORT_H
