//===- serve/Protocol.h - Serving wire protocol -----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line-delimited JSON protocol spoken between metaopt-serve and its
/// clients over a unix-domain socket: one JSON object per line in each
/// direction, one response line per request line, in order. The full
/// message reference lives in docs/SERVING.md. This module is the single
/// definition of the wire format — the daemon, the client library, and
/// the load generator all render and parse through it, so the two sides
/// cannot drift.
///
/// Response rendering is a pure function of the request identity and the
/// semantic result (never of timing, batching, or connection state);
/// together with PredictionService's purity contract this makes server
/// responses byte-identical across serial, batched, and concurrent
/// execution — asserted by tests/serve_test.cpp and the daemon smoke test.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SERVE_PROTOCOL_H
#define METAOPT_SERVE_PROTOCOL_H

#include "serve/Json.h"
#include "serve/Metrics.h"
#include "serve/ModelBundle.h"
#include "serve/PredictionService.h"

#include <optional>
#include <string>

namespace metaopt {

/// One parsed client request line.
struct WireRequest {
  enum class Op { Predict, Health, Stats, Shutdown };
  Op TheOp = Op::Predict;
  /// Client-chosen correlation tag, echoed verbatim in the response
  /// ("" = absent).
  std::string Id;
  /// Predict: the textual loop program.
  std::string LoopText;
  /// Predict: also return per-factor scores.
  bool WantScores = false;
  /// Predict: relative deadline in milliseconds; 0 = none.
  int64_t DeadlineMs = 0;
};

/// Parses one request line. std::nullopt (with \p Error set) on invalid
/// JSON, a missing/unknown "op", or a predict without a "loop".
std::optional<WireRequest> parseRequestLine(const std::string &Line,
                                            std::string *Error = nullptr);

/// Renders \p Request as a single protocol line (no trailing newline).
std::string renderRequestLine(const WireRequest &Request);

/// Renders the response to a predict request.
std::string renderPredictResponse(const std::string &Id,
                                  const PredictResponse &Response);

/// Renders a non-predict failure ({"status": <status>, "error": ...}).
std::string renderErrorResponse(const std::string &Id,
                                std::string_view Status,
                                std::string_view Error);

/// Renders the health response: the model's identity and provenance.
/// \p BundleChecksum (bundleChecksumHex of the active bundle) is emitted
/// as "bundle_checksum" when non-empty — the revision tag the gateway's
/// health checker and the hot-reload soak compare across workers.
std::string renderHealthResponse(const std::string &Id,
                                 const ModelBundle &Bundle,
                                 const std::string &BundleChecksum = "");

/// Server-level counters reported beside the service snapshot in stats:
/// connection accounting, transport-hardening rejections
/// (serve/Transport.h), and hot-reload outcomes.
struct ServerStatsExtra {
  uint64_t ConnectionsAccepted = 0;
  uint64_t ConnectionsOpen = 0;
  uint64_t OversizedRejected = 0;
  uint64_t BadFrames = 0;
  uint64_t ReadTimeouts = 0;
  uint64_t WriteTimeouts = 0;
  uint64_t Reloads = 0;
  uint64_t ReloadsRejected = 0;
};

/// Renders the stats response from a metrics snapshot plus the
/// server-level counters.
std::string renderStatsResponse(const std::string &Id,
                                const ServiceStatsSnapshot &Stats,
                                const ServerStatsExtra &Extra);

/// Renders the acknowledgement to a shutdown request.
std::string renderShutdownResponse(const std::string &Id);

} // namespace metaopt

#endif // METAOPT_SERVE_PROTOCOL_H
