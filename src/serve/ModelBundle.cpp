//===- serve/ModelBundle.cpp ----------------------------------------------===//

#include "serve/ModelBundle.h"

#include "ir/Printer.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

using namespace metaopt;

//===----------------------------------------------------------------------===//
// Container plumbing
//===----------------------------------------------------------------------===//

namespace {

constexpr char BundleMagic[8] = {'M', 'O', 'B', 'U', 'N', 'D', 'L', 'E'};
constexpr size_t HeaderBytes = 8 + 3 * 8; // magic, version, size, checksum.

void appendU64(std::string &Out, uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>(Value >> (8 * I)));
}

uint64_t readU64(const unsigned char *Data) {
  uint64_t Value = 0;
  for (int I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(Data[I]) << (8 * I);
  return Value;
}

uint64_t payloadChecksum(const std::string &Payload) {
  FingerprintHasher H;
  H.str("metaopt-model-bundle-file-v1");
  H.bytes(Payload.data(), Payload.size());
  return H.digest().Lo;
}

/// Appends one length-prefixed section (name, then body).
void appendSection(std::string &Out, std::string_view Name,
                   std::string_view Body) {
  appendU64(Out, Name.size());
  Out.append(Name.data(), Name.size());
  appendU64(Out, Body.size());
  Out.append(Body.data(), Body.size());
}

/// Splits the payload into its named sections; false on malformed layout.
bool splitSections(
    const std::string &Payload,
    std::vector<std::pair<std::string, std::string>> &Sections) {
  size_t Pos = 0;
  const unsigned char *Data =
      reinterpret_cast<const unsigned char *>(Payload.data());
  while (Pos < Payload.size()) {
    if (Payload.size() - Pos < 8)
      return false;
    uint64_t NameLen = readU64(Data + Pos);
    Pos += 8;
    if (NameLen > Payload.size() - Pos)
      return false;
    std::string Name = Payload.substr(Pos, NameLen);
    Pos += NameLen;
    if (Payload.size() - Pos < 8)
      return false;
    uint64_t BodyLen = readU64(Data + Pos);
    Pos += 8;
    if (BodyLen > Payload.size() - Pos)
      return false;
    Sections.emplace_back(std::move(Name), Payload.substr(Pos, BodyLen));
    Pos += BodyLen;
  }
  return true;
}

const std::string *findSection(
    const std::vector<std::pair<std::string, std::string>> &Sections,
    std::string_view Name) {
  for (const auto &[SectionName, Body] : Sections)
    if (SectionName == Name)
      return &Body;
  return nullptr;
}

std::string readFileIfPresent(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return "";
  std::string Content;
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Content.append(Buffer, Read);
  std::fclose(File);
  return Content;
}

//===----------------------------------------------------------------------===//
// Sections
//===----------------------------------------------------------------------===//

std::string renderProvenance(const BundleProvenance &Prov) {
  char Buffer[64];
  std::string Out;
  Out += "classifier " + Prov.ClassifierName + "\n";
  Out += "created-by " + Prov.CreatedBy + "\n";
  Out += "machine " + Prov.MachineName + "\n";
  Out += std::string("swp ") + (Prov.EnableSwp ? "1" : "0") + "\n";
  Out += "corpus-seed " + std::to_string(Prov.CorpusSeed) + "\n";
  Out += "corpus-fingerprint " + Prov.CorpusFingerprint + "\n";
  Out += "training-examples " + std::to_string(Prov.TrainingExamples) +
         "\n";
  Out += "cv-method " + Prov.CvMethod + "\n";
  std::snprintf(Buffer, sizeof(Buffer), "cv-accuracy %.17g\n",
                Prov.CvAccuracy);
  Out += Buffer;
  return Out;
}

bool parseProvenance(const std::string &Body, BundleProvenance &Prov,
                     std::string &Error) {
  for (const std::string &Line : split(Body, '\n')) {
    std::string_view Trimmed = trim(Line);
    if (Trimmed.empty())
      continue;
    size_t Space = Trimmed.find(' ');
    std::string Key(Trimmed.substr(0, Space));
    std::string Value(
        Space == std::string_view::npos
            ? std::string_view{}
            : trim(Trimmed.substr(Space + 1)));
    if (Key == "classifier") {
      Prov.ClassifierName = Value;
    } else if (Key == "created-by") {
      Prov.CreatedBy = Value;
    } else if (Key == "machine") {
      Prov.MachineName = Value;
    } else if (Key == "swp") {
      Prov.EnableSwp = Value == "1";
    } else if (Key == "corpus-seed") {
      std::optional<int64_t> Seed = parseInt(Value);
      if (!Seed) {
        Error = "provenance: bad corpus-seed";
        return false;
      }
      Prov.CorpusSeed = static_cast<uint64_t>(*Seed);
    } else if (Key == "corpus-fingerprint") {
      Prov.CorpusFingerprint = Value;
    } else if (Key == "training-examples") {
      std::optional<int64_t> Count = parseInt(Value);
      if (!Count || *Count < 0) {
        Error = "provenance: bad training-examples";
        return false;
      }
      Prov.TrainingExamples = static_cast<uint64_t>(*Count);
    } else if (Key == "cv-method") {
      Prov.CvMethod = Value;
    } else if (Key == "cv-accuracy") {
      std::optional<double> Accuracy = parseDouble(Value);
      if (!Accuracy) {
        Error = "provenance: bad cv-accuracy";
        return false;
      }
      Prov.CvAccuracy = *Accuracy;
    }
    // Unknown keys are ignored: a same-version writer may add
    // informational fields without invalidating older readers.
  }
  if (Prov.ClassifierName.empty()) {
    Error = "provenance: missing classifier name";
    return false;
  }
  return true;
}

/// The features section records the full catalog schema (count + names in
/// order) followed by the selected subset, so a reader whose catalog
/// drifted — renamed, reordered, added, or removed features — rejects the
/// bundle instead of silently feeding the classifier permuted inputs.
std::string renderFeatures(const FeatureSet &Features) {
  std::string Out = "catalog " + std::to_string(NumFeatures) + "\n";
  for (unsigned I = 0; I < NumFeatures; ++I)
    Out += std::string(featureName(static_cast<FeatureId>(I))) + "\n";
  Out += "selected " + std::to_string(Features.size()) + "\n";
  for (FeatureId Id : Features)
    Out += std::string(featureName(Id)) + "\n";
  return Out;
}

bool parseFeatures(const std::string &Body, FeatureSet &Features,
                   std::string &Error) {
  std::vector<std::string> Lines = split(Body, '\n');
  size_t Pos = 0;
  auto NextLine = [&]() -> std::optional<std::string> {
    while (Pos < Lines.size()) {
      std::string_view Trimmed = trim(Lines[Pos]);
      ++Pos;
      if (!Trimmed.empty())
        return std::string(Trimmed);
    }
    return std::nullopt;
  };

  std::optional<std::string> Header = NextLine();
  std::vector<std::string> HeaderParts =
      Header ? splitWhitespace(*Header) : std::vector<std::string>{};
  if (HeaderParts.size() != 2 || HeaderParts[0] != "catalog") {
    Error = "features: missing catalog header";
    return false;
  }
  std::optional<int64_t> CatalogCount = parseInt(HeaderParts[1]);
  if (!CatalogCount || *CatalogCount != NumFeatures) {
    Error = "features: catalog has " + HeaderParts[1] +
            " features, this build expects " + std::to_string(NumFeatures);
    return false;
  }
  for (unsigned I = 0; I < NumFeatures; ++I) {
    std::optional<std::string> Name = NextLine();
    const char *Expected = featureName(static_cast<FeatureId>(I));
    if (!Name || *Name != Expected) {
      Error = "features: catalog schema mismatch at index " +
              std::to_string(I) + " (bundle has '" +
              (Name ? *Name : "<eof>") + "', this build has '" + Expected +
              "')";
      return false;
    }
  }

  std::optional<std::string> Selected = NextLine();
  std::vector<std::string> SelectedParts =
      Selected ? splitWhitespace(*Selected) : std::vector<std::string>{};
  if (SelectedParts.size() != 2 || SelectedParts[0] != "selected") {
    Error = "features: missing selected header";
    return false;
  }
  std::optional<int64_t> SelectedCount = parseInt(SelectedParts[1]);
  if (!SelectedCount || *SelectedCount < 0 ||
      *SelectedCount > NumFeatures) {
    Error = "features: bad selected count";
    return false;
  }
  for (int64_t I = 0; I < *SelectedCount; ++I) {
    std::optional<std::string> Name = NextLine();
    if (!Name) {
      Error = "features: selected list is truncated";
      return false;
    }
    bool Found = false;
    for (unsigned Id = 0; Id < NumFeatures; ++Id)
      if (*Name == featureName(static_cast<FeatureId>(Id))) {
        Features.push_back(static_cast<FeatureId>(Id));
        Found = true;
        break;
      }
    if (!Found) {
      Error = "features: unknown selected feature '" + *Name + "'";
      return false;
    }
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

std::unique_ptr<Classifier> ModelBundle::instantiate() const {
  return deserializeClassifier(ClassifierBlob, Provenance.ClassifierName);
}

std::string metaopt::serializeBundle(const ModelBundle &Bundle) {
  std::string Payload;
  appendSection(Payload, "provenance", renderProvenance(Bundle.Provenance));
  appendSection(Payload, "features", renderFeatures(Bundle.Features));
  appendSection(Payload, "classifier", Bundle.ClassifierBlob);

  std::string Content;
  Content.reserve(HeaderBytes + Payload.size());
  Content.append(BundleMagic, sizeof(BundleMagic));
  appendU64(Content, ModelBundleFileVersion);
  appendU64(Content, Payload.size());
  appendU64(Content, payloadChecksum(Payload));
  Content += Payload;
  return Content;
}

namespace {

/// Container-level validation shared by parseBundle and inspectBundleFile:
/// fills Version/PayloadBytes and either the sections or the error.
bool validateContainer(
    const std::string &Content, ModelBundleInfo &Info,
    std::vector<std::pair<std::string, std::string>> &Sections) {
  const unsigned char *Data =
      reinterpret_cast<const unsigned char *>(Content.data());
  if (Content.empty()) {
    Info.Error = "file missing or empty";
    return false;
  }
  if (Content.size() < HeaderBytes) {
    Info.Error = "truncated header";
    return false;
  }
  if (std::memcmp(Data, BundleMagic, sizeof(BundleMagic)) != 0) {
    Info.Error = "bad magic (not a metaopt model bundle)";
    return false;
  }
  Info.Version = readU64(Data + 8);
  if (Info.Version != ModelBundleFileVersion) {
    Info.Error = "version mismatch (file v" + std::to_string(Info.Version) +
                 ", expected v" + std::to_string(ModelBundleFileVersion) +
                 ")";
    return false;
  }
  Info.PayloadBytes = readU64(Data + 16);
  uint64_t Checksum = readU64(Data + 24);
  if (Content.size() - HeaderBytes != Info.PayloadBytes) {
    Info.Error = "payload size does not match the header";
    return false;
  }
  std::string Payload = Content.substr(HeaderBytes);
  if (payloadChecksum(Payload) != Checksum) {
    Info.Error = "checksum mismatch (corrupt payload)";
    return false;
  }
  if (!splitSections(Payload, Sections)) {
    Info.Error = "malformed section layout";
    return false;
  }
  return true;
}

/// Full parse shared by parseBundle and inspectBundleFile.
bool parseInto(const std::string &Content, ModelBundle &Bundle,
               ModelBundleInfo &Info) {
  std::vector<std::pair<std::string, std::string>> Sections;
  if (!validateContainer(Content, Info, Sections))
    return false;

  const std::string *Provenance = findSection(Sections, "provenance");
  const std::string *Features = findSection(Sections, "features");
  const std::string *Blob = findSection(Sections, "classifier");
  if (!Provenance || !Features || !Blob) {
    Info.Error = "missing required section";
    return false;
  }
  if (!parseProvenance(*Provenance, Bundle.Provenance, Info.Error))
    return false;
  if (!parseFeatures(*Features, Bundle.Features, Info.Error))
    return false;
  if (Blob->empty()) {
    Info.Error = "empty classifier blob";
    return false;
  }
  Bundle.ClassifierBlob = *Blob;

  Info.Valid = true;
  Info.Provenance = Bundle.Provenance;
  Info.FeatureCount = Bundle.Features.size();
  Info.ClassifierBytes = Bundle.ClassifierBlob.size();
  return true;
}

} // namespace

std::optional<ModelBundle> metaopt::parseBundle(const std::string &Content,
                                                std::string *Error) {
  ModelBundle Bundle;
  ModelBundleInfo Info;
  if (!parseInto(Content, Bundle, Info)) {
    if (Error)
      *Error = Info.Error;
    return std::nullopt;
  }
  return Bundle;
}

bool metaopt::saveBundleFile(const ModelBundle &Bundle,
                             const std::string &Path, std::string *Error) {
  std::string Content = serializeBundle(Bundle);

  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  std::error_code Ignored;
  if (!Parent.empty())
    std::filesystem::create_directories(Parent, Ignored);

  std::string Tmp = Path + ".tmp";
  std::FILE *File = std::fopen(Tmp.c_str(), "wb");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Tmp + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Content.data(), 1, Content.size(), File);
  bool Ok = Written == Content.size();
  Ok &= std::fclose(File) == 0;
  if (!Ok) {
    std::filesystem::remove(Tmp, Ignored);
    if (Error)
      *Error = "short write to '" + Tmp + "'";
    return false;
  }
  std::error_code RenameError;
  std::filesystem::rename(Tmp, Path, RenameError);
  if (RenameError) {
    std::filesystem::remove(Tmp, Ignored);
    if (Error)
      *Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
    return false;
  }
  return true;
}

std::optional<ModelBundle> metaopt::loadBundleFile(const std::string &Path,
                                                   std::string *Error) {
  return parseBundle(readFileIfPresent(Path), Error);
}

ModelBundleInfo metaopt::inspectBundleFile(const std::string &Path) {
  ModelBundle Bundle;
  ModelBundleInfo Info;
  parseInto(readFileIfPresent(Path), Bundle, Info);
  return Info;
}

//===----------------------------------------------------------------------===//
// Corpus fingerprinting
//===----------------------------------------------------------------------===//

Fingerprint
metaopt::corpusFingerprint(const std::vector<Benchmark> &Corpus) {
  FingerprintHasher H;
  H.str("metaopt-corpus-fingerprint-v1");
  H.u64(Corpus.size());
  for (const Benchmark &Bench : Corpus) {
    H.str(Bench.Name);
    H.str(Bench.Suite);
    H.i64(static_cast<int64_t>(Bench.Lang));
    H.boolean(Bench.FloatingPoint);
    H.f64(Bench.NonLoopFraction);
    H.u64(Bench.Loops.size());
    for (const CorpusLoop &Entry : Bench.Loops) {
      // The canonical loop text covers everything the simulator and the
      // feature extractor read from the Loop (same rationale as
      // simCacheKey).
      H.str(printLoop(Entry.TheLoop));
      H.i64(Entry.Ctx.EffectiveIcacheBytes);
      H.f64(Entry.Ctx.DcacheMissRate);
      H.i64(Entry.Ctx.DcacheMissCycles);
      H.f64(Entry.Ctx.DcacheVisibleFraction);
      H.i64(Entry.Ctx.IntRegBudget);
      H.i64(Entry.Ctx.FpRegBudget);
      H.i64(Entry.Executions);
      H.i64(static_cast<int64_t>(Entry.Kind));
    }
  }
  return H.digest();
}

std::string metaopt::fingerprintHex(const Fingerprint &Print) {
  char Buffer[40];
  std::snprintf(Buffer, sizeof(Buffer), "%016llx%016llx",
                static_cast<unsigned long long>(Print.Hi),
                static_cast<unsigned long long>(Print.Lo));
  return Buffer;
}

std::string metaopt::bundleChecksumHex(const ModelBundle &Bundle) {
  std::string Bytes = serializeBundle(Bundle);
  FingerprintHasher H;
  H.bytes(Bytes.data(), Bytes.size());
  return fingerprintHex(H.digest());
}
