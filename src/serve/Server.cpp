//===- serve/Server.cpp ---------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Protocol.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace metaopt;

std::atomic<bool> &metaopt::serverStopFlag() {
  static std::atomic<bool> Flag{false};
  return Flag;
}

Server::Server(ModelBundle Bundle, ServerOptions OptionsIn)
    : Options(std::move(OptionsIn)) {
  Service = std::make_unique<PredictionService>(std::move(Bundle),
                                                Options.Service);
}

Server::~Server() {
  requestStop();
  // run() owns all teardown; if it was never called there is nothing to
  // join beyond the service, whose destructor drains its queue.
}

bool Server::stopRequested() const {
  return Stop.load(std::memory_order_acquire) ||
         serverStopFlag().load(std::memory_order_acquire);
}

void Server::requestStop() { Stop.store(true, std::memory_order_release); }

namespace {

/// Writes all of \p Line plus a newline; false when the peer vanished.
bool writeLine(int Fd, const std::string &Line) {
  std::string Framed = Line + "\n";
  size_t Sent = 0;
  while (Sent < Framed.size()) {
    ssize_t N = ::send(Fd, Framed.data() + Sent, Framed.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

std::string Server::handleLine(const std::string &Line) {
  std::string ParseError;
  std::optional<WireRequest> Request = parseRequestLine(Line, &ParseError);
  if (!Request)
    return renderErrorResponse("", "bad-request", ParseError);

  switch (Request->TheOp) {
  case WireRequest::Op::Health:
    return renderHealthResponse(Request->Id, Service->bundle());
  case WireRequest::Op::Stats:
    return renderStatsResponse(Request->Id, Service->stats(),
                               Accepted.load(std::memory_order_relaxed),
                               Open.load(std::memory_order_relaxed));
  case WireRequest::Op::Shutdown:
    requestStop();
    return renderShutdownResponse(Request->Id);
  case WireRequest::Op::Predict:
    break;
  }

  PredictRequest Predict;
  Predict.LoopText = std::move(Request->LoopText);
  Predict.WantScores = Request->WantScores;
  if (Request->DeadlineMs > 0)
    Predict.Deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(Request->DeadlineMs);
  PredictResponse Response = Service->predict(std::move(Predict));
  return renderPredictResponse(Request->Id, Response);
}

void Server::handleConnection(Connection &Conn) {
  Open.fetch_add(1, std::memory_order_relaxed);
  std::string Buffer;
  char Chunk[1 << 14];
  bool Alive = true;

  while (Alive) {
    // Serve every complete line already buffered. A request accepted
    // here is always answered before the connection can close — the
    // zero-dropped-responses half of the drain contract.
    size_t Newline;
    while (Alive && (Newline = Buffer.find('\n')) != std::string::npos) {
      std::string Line = Buffer.substr(0, Newline);
      Buffer.erase(0, Newline + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty())
        continue;
      Alive = writeLine(Conn.Fd, handleLine(Line));
    }
    if (!Alive)
      break;

    // During a drain, close as soon as the client has no partial request
    // buffered; anything already sent was answered above.
    if (stopRequested() && Buffer.empty())
      break;

    struct pollfd Pfd = {Conn.Fd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 200);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0)
      continue; // Timeout (recheck the stop flag) or EINTR.

    ssize_t N = ::recv(Conn.Fd, Chunk, sizeof(Chunk), 0);
    if (N == 0)
      break; // Peer closed.
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
  }

  ::close(Conn.Fd);
  Conn.Fd = -1;
  Open.fetch_sub(1, std::memory_order_relaxed);
  Conn.Done.store(true, std::memory_order_release);
}

bool Server::run(std::string *Error) {
  if (Options.SocketPath.empty()) {
    if (Error)
      *Error = "no socket path configured";
    return false;
  }
  sockaddr_un Addr = {};
  Addr.sun_family = AF_UNIX;
  if (Options.SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Error)
      *Error = "socket path is too long for sockaddr_un";
    return false;
  }
  std::strncpy(Addr.sun_path, Options.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Error)
      *Error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }

  // A stale socket file from a crashed predecessor would make bind fail;
  // remove it. A *live* predecessor also loses its file, but two daemons
  // on one path is an operator error either way.
  ::unlink(Options.SocketPath.c_str());

  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0 ||
      ::listen(ListenFd, Options.Backlog) < 0) {
    if (Error)
      *Error = std::string("bind/listen on '") + Options.SocketPath +
               "': " + std::strerror(errno);
    ::close(ListenFd);
    return false;
  }
  Listening.store(true, std::memory_order_release);

  while (!stopRequested()) {
    struct pollfd Pfd = {ListenFd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 200);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0)
      continue;

    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0)
      continue;
    Accepted.fetch_add(1, std::memory_order_relaxed);

    auto Conn = std::make_unique<Connection>();
    Conn->Fd = ClientFd;
    Connection *Raw = Conn.get();
    Raw->Worker = std::thread([this, Raw] { handleConnection(*Raw); });
    {
      std::lock_guard<std::mutex> Lock(ConnectionsMutex);
      // Reap finished connections so a long-lived daemon does not
      // accumulate joinable threads.
      for (auto &Existing : Connections)
        if (Existing->Done.load(std::memory_order_acquire) &&
            Existing->Worker.joinable())
          Existing->Worker.join();
      std::erase_if(Connections, [](const auto &C) {
        return C->Done.load(std::memory_order_acquire) &&
               !C->Worker.joinable();
      });
      Connections.push_back(std::move(Conn));
    }
  }

  // Drain: stop accepting, then wait for the connection threads. Each
  // thread exits once its client closes or, during the drain, as soon as
  // it has no buffered request — after answering everything it accepted.
  ::close(ListenFd);
  ::unlink(Options.SocketPath.c_str());

  auto DrainDeadline =
      std::chrono::steady_clock::now() + Options.DrainTimeout;
  while (std::chrono::steady_clock::now() < DrainDeadline) {
    bool AllDone = true;
    {
      std::lock_guard<std::mutex> Lock(ConnectionsMutex);
      for (auto &Conn : Connections)
        AllDone &= Conn->Done.load(std::memory_order_acquire);
    }
    if (AllDone)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    // Force the stragglers' sockets shut; their threads then exit.
    std::lock_guard<std::mutex> Lock(ConnectionsMutex);
    for (auto &Conn : Connections)
      if (!Conn->Done.load(std::memory_order_acquire) && Conn->Fd >= 0)
        ::shutdown(Conn->Fd, SHUT_RDWR);
  }
  {
    std::lock_guard<std::mutex> Lock(ConnectionsMutex);
    for (auto &Conn : Connections)
      if (Conn->Worker.joinable())
        Conn->Worker.join();
    Connections.clear();
  }

  Service->shutdown();
  Listening.store(false, std::memory_order_release);
  return true;
}
