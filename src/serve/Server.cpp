//===- serve/Server.cpp ---------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Protocol.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace metaopt;

namespace {

/// Reads a whole file into \p Out; false when it cannot be opened.
bool readFileBytes(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return static_cast<bool>(In) || In.eof();
}

Fingerprint fingerprintBytes(const std::string &Bytes) {
  FingerprintHasher H;
  H.bytes(Bytes.data(), Bytes.size());
  return H.digest();
}

} // namespace

Server::Server(ModelBundle Bundle, ServerOptions OptionsIn)
    : Options(std::move(OptionsIn)) {
  Service =
      std::make_shared<PredictionService>(std::move(Bundle), Options.Service);
  if (!Options.BundlePath.empty())
    // The watched file was produced by saveBundleFile, whose bytes are
    // serializeBundle's output — so the serving bundle's canonical
    // serialization is the baseline the watcher diffs against.
    WatchedFp = fingerprintBytes(serializeBundle(Service->bundle()));

  TransportOptions Transp;
  Transp.SocketPath = Options.SocketPath;
  Transp.TcpHost = Options.TcpHost;
  Transp.TcpPort = Options.TcpPort;
  Transp.Backlog = Options.Backlog;
  Transp.MaxRequestBytes = Options.MaxRequestBytes;
  Transp.ReadTimeout = Options.ReadTimeout;
  Transp.WriteTimeout = Options.WriteTimeout;
  Transp.DrainTimeout = Options.DrainTimeout;
  Transp.RejectResponse = renderErrorResponse(
      "", "bad-request",
      "request line exceeds " + std::to_string(Options.MaxRequestBytes) +
          " bytes or is not line-delimited JSON");
  Transp.ExternalStop = [this] {
    return Stop.load(std::memory_order_acquire);
  };
  Transport = std::make_unique<LineServer>(
      std::move(Transp),
      [this](const std::string &Line, LineConnection &) {
        return handleLine(Line);
      });
}

Server::~Server() {
  requestStop();
  // run() owns all teardown; if it was never called there is nothing to
  // join beyond the service, whose destructor drains its queue.
}

bool Server::stopRequested() const {
  return Stop.load(std::memory_order_acquire) ||
         serverStopFlag().load(std::memory_order_acquire);
}

void Server::requestStop() { Stop.store(true, std::memory_order_release); }

bool Server::listening() const { return Transport->listening(); }

int Server::boundTcpPort() const { return Transport->boundTcpPort(); }

uint64_t Server::connectionsAccepted() const {
  return Transport->counters().Accepted.load(std::memory_order_relaxed);
}

std::shared_ptr<PredictionService> Server::service() const {
  std::lock_guard<std::mutex> Lock(ServiceMutex);
  return Service;
}

std::string Server::handleLine(const std::string &Line) {
  std::string ParseError;
  std::optional<WireRequest> Request = parseRequestLine(Line, &ParseError);
  if (!Request)
    return renderErrorResponse("", "bad-request", ParseError);

  switch (Request->TheOp) {
  case WireRequest::Op::Health: {
    std::shared_ptr<PredictionService> Svc = service();
    return renderHealthResponse(Request->Id, Svc->bundle(),
                                Svc->bundleChecksum());
  }
  case WireRequest::Op::Stats: {
    const TransportCounters &C = Transport->counters();
    ServerStatsExtra Extra;
    Extra.ConnectionsAccepted = C.Accepted.load(std::memory_order_relaxed);
    Extra.ConnectionsOpen = C.Open.load(std::memory_order_relaxed);
    Extra.OversizedRejected =
        C.OversizedRejected.load(std::memory_order_relaxed);
    Extra.BadFrames = C.BadFrames.load(std::memory_order_relaxed);
    Extra.ReadTimeouts = C.ReadTimeouts.load(std::memory_order_relaxed);
    Extra.WriteTimeouts = C.WriteTimeouts.load(std::memory_order_relaxed);
    Extra.Reloads = Reloads.load(std::memory_order_relaxed);
    Extra.ReloadsRejected = ReloadsRejected.load(std::memory_order_relaxed);
    return renderStatsResponse(Request->Id, service()->stats(), Extra);
  }
  case WireRequest::Op::Shutdown:
    requestStop();
    return renderShutdownResponse(Request->Id);
  case WireRequest::Op::Predict:
    break;
  }

  PredictRequest Predict;
  Predict.LoopText = std::move(Request->LoopText);
  Predict.WantScores = Request->WantScores;
  if (Request->DeadlineMs > 0)
    Predict.Deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(Request->DeadlineMs);

  // A request refused with ShuttingDown because it raced a hot-reload
  // swap is retried on the replacement service — reloads lose zero
  // in-flight responses. When the whole daemon is stopping, service()
  // is unchanged and the refusal stands.
  std::shared_ptr<PredictionService> Svc = service();
  PredictResponse Response = Svc->predict(Predict);
  while (Response.Status == PredictStatus::ShuttingDown) {
    std::shared_ptr<PredictionService> Now = service();
    if (Now == Svc)
      break;
    Svc = std::move(Now);
    Response = Svc->predict(Predict);
  }
  return renderPredictResponse(Request->Id, Response);
}

void Server::reloadLoop() {
  auto NextPoll = std::chrono::steady_clock::now() + Options.ReloadPoll;
  while (!stopRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (std::chrono::steady_clock::now() < NextPoll)
      continue;
    NextPoll = std::chrono::steady_clock::now() + Options.ReloadPoll;

    std::string Bytes;
    if (!readFileBytes(Options.BundlePath, Bytes) || Bytes.empty())
      continue; // Mid-publish or missing; the next poll will see it.
    Fingerprint Fp = fingerprintBytes(Bytes);
    if (Fp == WatchedFp)
      continue;
    // Remember the content we judged even when it is rejected, so a bad
    // artifact is reported once rather than every poll.
    WatchedFp = Fp;

    std::string Error;
    std::optional<ModelBundle> Parsed = parseBundle(Bytes, &Error);
    if (!Parsed) {
      ReloadsRejected.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "metaopt-serve: rejecting reload of '%s': %s\n",
                   Options.BundlePath.c_str(), Error.c_str());
      continue;
    }
    std::shared_ptr<PredictionService> Fresh;
    try {
      Fresh = std::make_shared<PredictionService>(std::move(*Parsed),
                                                  Options.Service);
    } catch (const std::exception &Ex) {
      ReloadsRejected.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "metaopt-serve: rejecting reload of '%s': %s\n",
                   Options.BundlePath.c_str(), Ex.what());
      continue;
    }

    std::shared_ptr<PredictionService> Old;
    {
      std::lock_guard<std::mutex> Lock(ServiceMutex);
      Old = std::move(Service);
      Service = Fresh;
    }
    Reloads.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "metaopt-serve: reloaded bundle '%s' (%s)\n",
                 Options.BundlePath.c_str(),
                 Fresh->bundleChecksum().c_str());
    // Drain the displaced service: everything it admitted is answered by
    // the model that admitted it; stragglers refused with ShuttingDown
    // are retried on the new service by handleLine.
    Old->shutdown();
  }
}

bool Server::run(std::string *Error) {
  std::thread Reloader;
  if (!Options.BundlePath.empty() && Options.ReloadPoll.count() > 0)
    Reloader = std::thread([this] { reloadLoop(); });

  bool Served = Transport->run(Error);

  // The transport only returns after the drain; make sure the watcher
  // exits too (run() may have ended on a transport error rather than a
  // stop request).
  Stop.store(true, std::memory_order_release);
  if (Reloader.joinable())
    Reloader.join();
  service()->shutdown();
  return Served;
}
