//===- exec/MemoryImage.h - Seeded synthetic memory image -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-addressable memory the reference interpreter (exec/Interpreter.h)
/// executes against. Each MemRef base symbol owns an independent sparse
/// address space (symbols never alias, matching the dependence analysis).
///
/// Initial contents are synthesized deterministically from a seed on first
/// touch: an untouched float cell materializes as a "nice" finite double in
/// [1, 2) and an untouched int cell as a small non-negative integer, both
/// pure functions of (seed, symbol, address). The synthesized encoding is
/// written back into the image so later overlapping reads observe consistent
/// bytes. Two runs with the same seed that read the same locations therefore
/// see identical values regardless of access order — the property the
/// differential oracles (original vs. transformed loop) rely on.
///
/// Stores are tracked separately from read-materialized bytes: the final
/// store set is the observable "output" of a loop execution, so eliminating
/// a redundant load (transform/MemoryOpt.h) cannot change it.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_EXEC_MEMORYIMAGE_H
#define METAOPT_EXEC_MEMORYIMAGE_H

#include "support/Fingerprint.h"

#include <cstdint>
#include <map>
#include <utility>

namespace metaopt {

class MemoryImage {
public:
  /// One byte location: (base symbol, byte address). Addresses may be
  /// negative (negative strides walk backwards from offset 0).
  using Address = std::pair<int32_t, int64_t>;

  explicit MemoryImage(uint64_t Seed = 0) : Seed(Seed) {}

  uint64_t seed() const { return Seed; }

  /// Loads \p SizeBytes little-endian bytes at (Sym, Addr) and
  /// sign-extends them to 64 bits. Untouched bytes materialize first.
  int64_t loadInt(int32_t Sym, int64_t Addr, int SizeBytes);

  /// Loads an IEEE-754 value: 8 bytes read a double, 4 bytes read a float
  /// widened to double. Non-finite bit patterns (possible only after raw
  /// byte-level aliasing) are canonicalized to a finite value derived from
  /// the bits, so register values stay finite and digests stay portable.
  double loadFloat(int32_t Sym, int64_t Addr, int SizeBytes);

  /// Stores the low \p SizeBytes bytes of \p Value little-endian.
  void storeInt(int32_t Sym, int64_t Addr, int SizeBytes, int64_t Value);

  /// Stores \p Value as a double (8 bytes) or narrowed float (4 bytes).
  /// Other sizes store the raw low bytes of the bit pattern.
  void storeFloat(int32_t Sym, int64_t Addr, int SizeBytes, double Value);

  /// Every byte written by a store, in sorted address order. This is the
  /// memory half of the canonical final-state digest; bytes materialized
  /// by reads are excluded (they are a pure function of the seed).
  const std::map<Address, uint8_t> &storedBytes() const { return Stored; }

  /// Fingerprint of storedBytes() (address and value of every byte).
  Fingerprint storeDigest() const;

  /// True when both images wrote exactly the same bytes with the same
  /// final values.
  friend bool operator==(const MemoryImage &A, const MemoryImage &B) {
    return A.Stored == B.Stored;
  }

private:
  uint8_t byteAt(int32_t Sym, int64_t Addr);
  void writeBytes(int32_t Sym, int64_t Addr, int SizeBytes, uint64_t Bits,
                  bool IsStore);
  /// Reads SizeBytes little-endian; returns true when every byte was
  /// already materialized (by a store or an earlier read).
  bool readBytes(int32_t Sym, int64_t Addr, int SizeBytes, uint64_t &Bits);

  uint64_t Seed;
  std::map<Address, uint8_t> Bytes;  ///< All materialized bytes.
  std::map<Address, uint8_t> Stored; ///< Subset written by stores.
};

/// The deterministic value synthesizers, exposed so the interpreter can
/// derive live-in register values from the same seed material.
uint64_t execMix(uint64_t Value);

/// A "nice" finite double in [1, 2) derived from \p Hash: exactly
/// representable, positive, and bounded, so reduction chains neither
/// cancel nor overflow within the trip counts the fuzzer uses.
double execNiceDouble(uint64_t Hash);

/// A small integer in [0, 63] derived from \p Hash; keeps indirect index
/// registers within a reasonable window of the base address.
int64_t execNiceInt(uint64_t Hash);

} // namespace metaopt

#endif // METAOPT_EXEC_MEMORYIMAGE_H
