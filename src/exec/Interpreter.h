//===- exec/Interpreter.h - Reference loop IR interpreter -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic reference interpreter for the loop IR: the semantic
/// ground truth the differential fuzzer (fuzz/Oracles.h) compares
/// transformed loops against. Nothing else in the repo *executes* a loop —
/// the simulator prices schedules without computing values — so this is
/// where "the unroller preserves semantics" becomes a checkable statement.
///
/// The reference semantics (chosen here; the IR spec in docs/LOOP_FORMAT.md
/// is silent on evaluation):
///
///  - Integer ops wrap at 64 bits. Shift counts are masked to 6 bits, Shr
///    is arithmetic, idiv/irem define the trapping cases (x/0 = 0,
///    INT_MIN/-1 = INT_MIN, x%0 = x, INT_MIN%-1 = 0).
///  - Compares compute A < B.
///  - Float ops evaluate in double; FMA is fused (std::fma). Any
///    non-finite result is canonicalized to a finite double in [1,2)
///    derived from the operand bit patterns, so values, digests, and
///    downstream control decisions never depend on NaN payload or
///    overflow behaviour differences across platforms.
///  - A predicated-off instruction writes its destination's class default
///    (0 / 0.0 / false) instead of keeping the old value. Keep-old-value
///    (the Itanium reading) would make the unroller's register renaming
///    observably wrong for loops that read a predicated-off result — the
///    renamed copy cannot see the previous iteration's stale value — so
///    the IR's semantics are defined the way the transform stack treats
///    them: a predicated def always defines.
///  - Calls are pure no-ops (they act as scheduling barriers only).
///  - Memory follows the symbolic address model: byte address =
///    Offset + Stride * i (+ index register when indirect) within the
///    base symbol's private address space, where i counts iterations
///    from ExecOptions::StartIteration. See exec/MemoryImage.h.
///  - Live-in registers get values synthesized from (seed, class,
///    register name) — name-keyed so an unrolled loop, whose renamer
///    preserves live-in names, sees the same inputs as the original.
///
/// Split-reduction emulation: with ExecOptions::SplitLanes = U > 1, each
/// phi the unroller would split (transform/Unroller.h,
/// isSplittableReduction) is carried as U independent lanes, iteration i
/// reading and updating lane i mod U. This makes the *serial* reference
/// run predict the unrolled loop's per-copy accumulators bit-for-bit,
/// sidestepping FP reassociation: equivalence is checked lane-by-lane
/// exactly instead of "approximately equal after resummation".
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_EXEC_INTERPRETER_H
#define METAOPT_EXEC_INTERPRETER_H

#include "exec/MemoryImage.h"
#include "ir/Loop.h"

#include <map>
#include <vector>

namespace metaopt {

/// One register value; only the field matching the register's class is
/// meaningful.
struct ExecValue {
  int64_t I = 0;
  double F = 0.0;
  bool P = false;
};

/// Makes an ExecValue of \p RC holding \p Value's representation.
ExecValue execInt(int64_t Value);
ExecValue execFloat(double Value);
ExecValue execPred(bool Value);

/// Compares the class-relevant field bit-for-bit.
bool execValueEquals(RegClass RC, const ExecValue &A, const ExecValue &B);

/// One observed body-instruction execution, recorded when
/// ExecOptions::Trace is set. GuardOn is the guarding predicate's value
/// at the time the instruction ran (true for unpredicated ops); Address
/// is the effective byte address, filled only for memory ops whose guard
/// was on; IntDest is the destination value after the step (including the
/// class-default write of a predicated-off instruction), filled only for
/// integer destinations.
struct ExecTraceStep {
  int64_t Iteration = 0; ///< Local (0-based) iteration index.
  uint32_t BodyIndex = 0;
  bool GuardOn = false;
  bool IsMemory = false; ///< Memory op that executed; Address is valid.
  int64_t Address = 0;
  bool HasIntDest = false;
  int64_t IntDest = 0;
};

/// Execution trace: every body-instruction step, in execution order. An
/// iteration cut short by ExitIf records only the prefix that ran. The
/// static-claims fuzz oracle (fuzz/Oracles.h) replays SymbolicAnalysis
/// claims against this record.
struct ExecTrace {
  std::vector<ExecTraceStep> Steps;
};

/// Execution parameters.
struct ExecOptions {
  /// Seeds live-in synthesis and first-touch memory.
  uint64_t Seed = 1;
  /// Iterations to run; negative means the loop's runtimeTripCount().
  int64_t Iterations = -1;
  /// Global iteration index of the first executed iteration; shifts the
  /// symbolic addresses. An epilogue resumes at MainIterations * Factor.
  int64_t StartIteration = 0;
  /// When > 1, carry each splittable reduction phi as this many lanes
  /// (see file comment). 0/1 runs plain serial semantics.
  unsigned SplitLanes = 0;
  /// Values for specific live-in registers, overriding name-keyed
  /// synthesis. Keyed by RegId of the loop being interpreted.
  std::map<RegId, ExecValue> LiveInOverrides;
  /// When set, every body-instruction step is appended here.
  ExecTrace *Trace = nullptr;
};

/// The observable final state of one execution.
struct ExecResult {
  /// Completed iterations (excludes an iteration cut short by ExitIf).
  int64_t IterationsExecuted = 0;
  bool Exited = false;
  /// Local index (0-based, relative to StartIteration) of the iteration
  /// the exit fired in; -1 when !Exited.
  int64_t ExitIteration = -1;
  /// Body index of the ExitIf that fired; -1 when !Exited.
  int64_t ExitBodyIndex = -1;
  /// Per phi (same order as Loop::phis()): the value the phi register
  /// would hold at the top of the next iteration — recur of the last
  /// completed iteration, or the init when none completed. For a phi
  /// carried as split lanes, consult SplitLanes instead (this slot holds
  /// the lane the last iteration read).
  std::vector<ExecValue> PhiFinal;
  /// Per phi: the lane values when SplitLanes was active and the phi is
  /// splittable; empty otherwise. Lane 0 starts from the phi's init,
  /// lanes k > 0 from the reduction's identity element.
  std::vector<std::vector<ExecValue>> SplitLanes;
  /// Final memory; storedBytes() is the observable output.
  MemoryImage Memory;

  /// Canonical final-state digest: iterations, exit state, phi finals
  /// (name-tagged), split lanes, and the memory store digest. Stable
  /// across platforms and runs; golden tests pin it.
  Fingerprint digest(const Loop &L) const;
};

/// Interprets \p L under \p Opts starting from \p Mem (moved into the
/// result). The loop must be verifier-clean; behaviour on malformed IR is
/// unspecified (asserts in debug builds).
ExecResult interpretLoop(const Loop &L, const ExecOptions &Opts,
                         MemoryImage Mem);

/// Convenience: fresh memory image seeded with Opts.Seed.
ExecResult interpretLoop(const Loop &L, const ExecOptions &Opts = {});

/// The value live-in \p Reg receives absent an override: synthesized from
/// (seed, class, name). Exposed so oracles can compute epilogue phi
/// inits and split-accumulator identities consistently.
ExecValue synthesizeLiveIn(const Loop &L, RegId Reg, uint64_t Seed);

/// The identity element of the reduction accumulated through \p Phi
/// (0 for add/fma, 1 for mul), or nullopt-like false return when the phi
/// is not a splittable reduction. \p Out receives the identity.
bool reductionIdentity(const Loop &L, const PhiNode &Phi, ExecValue &Out);

} // namespace metaopt

#endif // METAOPT_EXEC_INTERPRETER_H
