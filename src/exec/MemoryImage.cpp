//===- exec/MemoryImage.cpp - Seeded synthetic memory image ---------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "exec/MemoryImage.h"

#include <cmath>
#include <cstring>

namespace metaopt {

uint64_t execMix(uint64_t Value) {
  // splitmix64 finalizer: cheap, well-scrambled, and platform-stable.
  Value += 0x9e3779b97f4a7c15ULL;
  Value = (Value ^ (Value >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Value = (Value ^ (Value >> 27)) * 0x94d049bb133111ebULL;
  return Value ^ (Value >> 31);
}

double execNiceDouble(uint64_t Hash) {
  // 1.0 + 52 random mantissa bits: uniformly in [1, 2), always finite.
  return 1.0 + static_cast<double>(Hash >> 12) * 0x1p-52;
}

int64_t execNiceInt(uint64_t Hash) {
  return static_cast<int64_t>(Hash & 63);
}

uint8_t MemoryImage::byteAt(int32_t Sym, int64_t Addr) {
  auto It = Bytes.find({Sym, Addr});
  if (It != Bytes.end())
    return It->second;
  // First touch: synthesize the byte as a pure function of (seed, sym,
  // addr). Byte-granular synthesis keeps overlapping accesses of any width
  // consistent; value-level "niceness" is layered on in loadFloat/loadInt
  // by synthesizing whole elements before falling back here.
  uint8_t Value = static_cast<uint8_t>(
      execMix(Seed ^ execMix((static_cast<uint64_t>(static_cast<uint32_t>(
                                  Sym))
                              << 32) ^
                             static_cast<uint64_t>(Addr))));
  Bytes.emplace(Address{Sym, Addr}, Value);
  return Value;
}

bool MemoryImage::readBytes(int32_t Sym, int64_t Addr, int SizeBytes,
                            uint64_t &Bits) {
  // Whole-element synthesis happens only when no byte of the element
  // exists yet. A partially materialized element (an overlapping earlier
  // store or narrower access) must keep those bytes: composing per-byte —
  // with byteAt() filling the gaps — is what makes overlap consistent.
  bool AnyMaterialized = false;
  for (int I = 0; I < SizeBytes; ++I)
    if (Bytes.count({Sym, Addr + I}))
      AnyMaterialized = true;
  if (!AnyMaterialized) {
    Bits = 0;
    return false;
  }
  Bits = 0;
  for (int I = 0; I < SizeBytes; ++I)
    Bits |= static_cast<uint64_t>(byteAt(Sym, Addr + I)) << (8 * I);
  return true;
}

void MemoryImage::writeBytes(int32_t Sym, int64_t Addr, int SizeBytes,
                             uint64_t Bits, bool IsStore) {
  for (int I = 0; I < SizeBytes; ++I) {
    uint8_t Byte = static_cast<uint8_t>(Bits >> (8 * I));
    Bytes[{Sym, Addr + I}] = Byte;
    if (IsStore)
      Stored[{Sym, Addr + I}] = Byte;
  }
}

int64_t MemoryImage::loadInt(int32_t Sym, int64_t Addr, int SizeBytes) {
  if (SizeBytes < 1)
    SizeBytes = 1;
  if (SizeBytes > 8)
    SizeBytes = 8;
  uint64_t Bits;
  if (!readBytes(Sym, Addr, SizeBytes, Bits)) {
    // Fully fresh element: synthesize a nice value — a pure function of
    // (seed, sym, addr) — and write its encoding back so later
    // overlapping reads see consistent bytes.
    int64_t Value = execNiceInt(
        execMix(Seed ^ 0x1177ULL ^
                execMix((static_cast<uint64_t>(static_cast<uint32_t>(Sym))
                         << 32) ^
                        static_cast<uint64_t>(Addr))));
    writeBytes(Sym, Addr, SizeBytes, static_cast<uint64_t>(Value),
               /*IsStore=*/false);
    return Value;
  }
  // Sign-extend the low SizeBytes.
  if (SizeBytes < 8) {
    uint64_t SignBit = 1ULL << (8 * SizeBytes - 1);
    Bits = (Bits ^ SignBit) - SignBit;
  }
  return static_cast<int64_t>(Bits);
}

double MemoryImage::loadFloat(int32_t Sym, int64_t Addr, int SizeBytes) {
  int Width = SizeBytes == 4 ? 4 : 8;
  uint64_t Bits;
  if (!readBytes(Sym, Addr, Width, Bits)) {
    // Fully fresh element: synthesize a nice value and write back its
    // IEEE encoding at the access width, so what we return below (via
    // the same narrowing path any later load takes) matches the bytes.
    double Value = execNiceDouble(
        execMix(Seed ^ 0xf107aULL ^
                execMix((static_cast<uint64_t>(static_cast<uint32_t>(Sym))
                         << 32) ^
                        static_cast<uint64_t>(Addr))));
    uint64_t Enc;
    if (Width == 4) {
      float Narrow = static_cast<float>(Value);
      uint32_t Enc32;
      std::memcpy(&Enc32, &Narrow, sizeof(Enc32));
      Enc = Enc32;
    } else {
      std::memcpy(&Enc, &Value, sizeof(Enc));
    }
    writeBytes(Sym, Addr, Width, Enc, /*IsStore=*/false);
    Bits = Enc;
  }
  double Value;
  if (Width == 4) {
    float Narrow;
    uint32_t Bits32 = static_cast<uint32_t>(Bits);
    static_assert(sizeof(Narrow) == sizeof(Bits32));
    std::memcpy(&Narrow, &Bits32, sizeof(Narrow));
    Value = static_cast<double>(Narrow);
  } else {
    static_assert(sizeof(Value) == sizeof(Bits));
    std::memcpy(&Value, &Bits, sizeof(Value));
  }
  if (!std::isfinite(Value))
    Value = execNiceDouble(execMix(Bits ^ Seed));
  return Value;
}

void MemoryImage::storeInt(int32_t Sym, int64_t Addr, int SizeBytes,
                           int64_t Value) {
  if (SizeBytes < 1)
    SizeBytes = 1;
  if (SizeBytes > 8)
    SizeBytes = 8;
  writeBytes(Sym, Addr, SizeBytes, static_cast<uint64_t>(Value),
             /*IsStore=*/true);
}

void MemoryImage::storeFloat(int32_t Sym, int64_t Addr, int SizeBytes,
                             double Value) {
  uint64_t Bits;
  if (SizeBytes == 4) {
    float Narrow = static_cast<float>(Value);
    uint32_t Bits32;
    std::memcpy(&Bits32, &Narrow, sizeof(Bits32));
    Bits = Bits32;
  } else {
    SizeBytes = 8;
    std::memcpy(&Bits, &Value, sizeof(Bits));
  }
  writeBytes(Sym, Addr, SizeBytes, Bits, /*IsStore=*/true);
}

Fingerprint MemoryImage::storeDigest() const {
  FingerprintHasher Hasher;
  for (const auto &[Addr, Byte] : Stored) {
    Hasher.i64(Addr.first);
    Hasher.i64(Addr.second);
    Hasher.u64(Byte);
  }
  return Hasher.digest();
}

} // namespace metaopt
