//===- exec/Interpreter.cpp - Reference loop IR interpreter ---------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"

#include "support/Rng.h"
#include "transform/Unroller.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

using namespace metaopt;

ExecValue metaopt::execInt(int64_t Value) {
  ExecValue V;
  V.I = Value;
  return V;
}

ExecValue metaopt::execFloat(double Value) {
  ExecValue V;
  V.F = Value;
  return V;
}

ExecValue metaopt::execPred(bool Value) {
  ExecValue V;
  V.P = Value;
  return V;
}

bool metaopt::execValueEquals(RegClass RC, const ExecValue &A,
                              const ExecValue &B) {
  switch (RC) {
  case RegClass::Int:
    return A.I == B.I;
  case RegClass::Float: {
    // Bit comparison: +0.0 vs -0.0 and (canonicalized-away) NaNs must not
    // silently compare equal.
    uint64_t BitsA, BitsB;
    std::memcpy(&BitsA, &A.F, sizeof(BitsA));
    std::memcpy(&BitsB, &B.F, sizeof(BitsB));
    return BitsA == BitsB;
  }
  case RegClass::Pred:
    return A.P == B.P;
  }
  return false;
}

namespace {

uint64_t doubleBits(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

uint64_t rotl64(uint64_t Value, int Shift) {
  return (Value << Shift) | (Value >> (64 - Shift));
}

/// Replaces a non-finite FP result with a finite stand-in derived from the
/// *operands* (never the result's NaN payload, which is platform-defined).
double canonicalizeFp(double Result, uint64_t Material) {
  if (std::isfinite(Result))
    return Result;
  return execNiceDouble(execMix(Material));
}

int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

constexpr int64_t Int64Min = std::numeric_limits<int64_t>::min();

int64_t safeDiv(int64_t A, int64_t B) {
  if (B == 0)
    return 0;
  if (A == Int64Min && B == -1)
    return Int64Min;
  return A / B;
}

int64_t safeRem(int64_t A, int64_t B) {
  if (B == 0)
    return A;
  if (A == Int64Min && B == -1)
    return 0;
  return A % B;
}

struct Machine {
  const Loop &L;
  const ExecOptions &Opts;
  MemoryImage Mem;
  std::vector<ExecValue> R;
  int64_t Iterations;

  Machine(const Loop &L, const ExecOptions &Opts, MemoryImage Image)
      : L(L), Opts(Opts), Mem(std::move(Image)), R(L.numRegs()) {
    Iterations = Opts.Iterations >= 0 ? Opts.Iterations : L.runtimeTripCount();
  }

  ExecValue &value(RegId Reg) {
    assert(Reg < R.size() && "register out of range");
    return R[Reg];
  }

  bool predOn(const Instruction &Instr) {
    return Instr.Pred == NoReg || value(Instr.Pred).P;
  }

  int64_t address(const Instruction &Instr, int64_t GlobalIter) {
    int64_t Addr = Instr.Mem.Offset + Instr.Mem.Stride * GlobalIter;
    if (Instr.Mem.Indirect) {
      // The index register is the last operand (loads: the only one,
      // stores: after the value).
      assert(!Instr.Operands.empty());
      Addr += value(Instr.Operands.back()).I;
    }
    return Addr;
  }

  void writeDefault(const Instruction &Instr) {
    if (!Instr.hasDest())
      return;
    value(Instr.Dest) = ExecValue{};
  }

  /// Executes one instruction. Returns true when an ExitIf fired.
  bool step(const Instruction &Instr, int64_t LocalIter, int64_t GlobalIter) {
    if (!predOn(Instr)) {
      writeDefault(Instr);
      return false;
    }
    auto Op = [&](size_t Index) -> ExecValue & {
      return value(Instr.Operands[Index]);
    };
    switch (Instr.Op) {
    case Opcode::IAdd:
      value(Instr.Dest).I = wrapAdd(Op(0).I, Op(1).I);
      return false;
    case Opcode::ISub:
      value(Instr.Dest).I = wrapSub(Op(0).I, Op(1).I);
      return false;
    case Opcode::IMul:
      value(Instr.Dest).I = wrapMul(Op(0).I, Op(1).I);
      return false;
    case Opcode::IDiv:
      value(Instr.Dest).I = safeDiv(Op(0).I, Op(1).I);
      return false;
    case Opcode::IRem:
      value(Instr.Dest).I = safeRem(Op(0).I, Op(1).I);
      return false;
    case Opcode::Shl:
      value(Instr.Dest).I = static_cast<int64_t>(
          static_cast<uint64_t>(Op(0).I) << (Op(1).I & 63));
      return false;
    case Opcode::Shr:
      value(Instr.Dest).I = Op(0).I >> (Op(1).I & 63);
      return false;
    case Opcode::And:
      value(Instr.Dest).I = Op(0).I & Op(1).I;
      return false;
    case Opcode::Or:
      value(Instr.Dest).I = Op(0).I | Op(1).I;
      return false;
    case Opcode::Xor:
      value(Instr.Dest).I = Op(0).I ^ Op(1).I;
      return false;
    case Opcode::ICmp:
      value(Instr.Dest).P = Op(0).I < Op(1).I;
      return false;
    case Opcode::IConst:
      value(Instr.Dest).I = Instr.Imm;
      return false;
    case Opcode::FAdd:
      value(Instr.Dest).F =
          canonicalizeFp(Op(0).F + Op(1).F,
                         doubleBits(Op(0).F) ^ rotl64(doubleBits(Op(1).F), 13));
      return false;
    case Opcode::FSub:
      value(Instr.Dest).F =
          canonicalizeFp(Op(0).F - Op(1).F,
                         doubleBits(Op(0).F) ^ rotl64(doubleBits(Op(1).F), 17));
      return false;
    case Opcode::FMul:
      value(Instr.Dest).F =
          canonicalizeFp(Op(0).F * Op(1).F,
                         doubleBits(Op(0).F) ^ rotl64(doubleBits(Op(1).F), 21));
      return false;
    case Opcode::FMA:
      value(Instr.Dest).F = canonicalizeFp(
          std::fma(Op(0).F, Op(1).F, Op(2).F),
          doubleBits(Op(0).F) ^ rotl64(doubleBits(Op(1).F), 13) ^
              rotl64(doubleBits(Op(2).F), 26));
      return false;
    case Opcode::FDiv:
      value(Instr.Dest).F =
          canonicalizeFp(Op(0).F / Op(1).F,
                         doubleBits(Op(0).F) ^ rotl64(doubleBits(Op(1).F), 29));
      return false;
    case Opcode::FSqrt:
      value(Instr.Dest).F =
          canonicalizeFp(std::sqrt(Op(0).F), rotl64(doubleBits(Op(0).F), 7));
      return false;
    case Opcode::FCmp:
      value(Instr.Dest).P = Op(0).F < Op(1).F;
      return false;
    case Opcode::FConst:
      value(Instr.Dest).F = static_cast<double>(Instr.Imm);
      return false;
    case Opcode::FCvt:
      // Int -> float; always finite for any int64.
      value(Instr.Dest).F = static_cast<double>(Op(0).I);
      return false;
    case Opcode::Copy:
      value(Instr.Dest) = Op(0);
      return false;
    case Opcode::Select:
      value(Instr.Dest) = Op(0).P ? Op(1) : Op(2);
      return false;
    case Opcode::Load: {
      int64_t Addr = address(Instr, GlobalIter);
      if (L.regClass(Instr.Dest) == RegClass::Float)
        value(Instr.Dest).F = Mem.loadFloat(Instr.Mem.BaseSym, Addr,
                                            Instr.Mem.SizeBytes);
      else
        value(Instr.Dest).I =
            Mem.loadInt(Instr.Mem.BaseSym, Addr, Instr.Mem.SizeBytes);
      return false;
    }
    case Opcode::Store: {
      int64_t Addr = address(Instr, GlobalIter);
      const ExecValue &V = Op(0);
      if (L.regClass(Instr.Operands[0]) == RegClass::Float)
        Mem.storeFloat(Instr.Mem.BaseSym, Addr, Instr.Mem.SizeBytes, V.F);
      else
        Mem.storeInt(Instr.Mem.BaseSym, Addr, Instr.Mem.SizeBytes, V.I);
      return false;
    }
    case Opcode::AddrGen:
      value(Instr.Dest).I =
          Instr.Operands.size() == 2 ? wrapAdd(Op(0).I, Op(1).I) : Op(0).I;
      return false;
    case Opcode::PredSet:
      value(Instr.Dest).P =
          Instr.Operands.size() == 2 ? (Op(0).P && Op(1).P) : Op(0).P;
      return false;
    case Opcode::ExitIf:
      return Op(0).P;
    case Opcode::Call:
      // Opaque but pure: a scheduling barrier with no dataflow effect.
      return false;
    case Opcode::IvAdd:
      value(Instr.Dest).I = GlobalIter + 1;
      return false;
    case Opcode::IvCmp:
      value(Instr.Dest).P = LocalIter + 1 < Iterations;
      return false;
    case Opcode::BackBr:
      return false;
    }
    assert(false && "unhandled opcode");
    return false;
  }
};

} // namespace

ExecValue metaopt::synthesizeLiveIn(const Loop &L, RegId Reg, uint64_t Seed) {
  RegClass RC = L.regClass(Reg);
  uint64_t Tag = RC == RegClass::Int     ? 0x11aa77ULL
                 : RC == RegClass::Float ? 0xff0a77ULL
                                         : 0x90ed77ULL;
  uint64_t Hash = execMix(Seed ^ Tag ^ Rng::hashString(L.regName(Reg)));
  switch (RC) {
  case RegClass::Int:
    return execInt(execNiceInt(Hash));
  case RegClass::Float:
    return execFloat(execNiceDouble(Hash));
  case RegClass::Pred:
    return execPred((Hash >> 7) & 1);
  }
  return {};
}

bool metaopt::reductionIdentity(const Loop &L, const PhiNode &Phi,
                                ExecValue &Out) {
  if (!isSplittableReduction(L, Phi))
    return false;
  for (const Instruction &Instr : L.body()) {
    if (Instr.Dest != Phi.Recur)
      continue;
    switch (Instr.Op) {
    case Opcode::IAdd:
      Out = execInt(0);
      return true;
    case Opcode::IMul:
      Out = execInt(1);
      return true;
    case Opcode::FAdd:
    case Opcode::FMA:
      Out = execFloat(0.0);
      return true;
    case Opcode::FMul:
      Out = execFloat(1.0);
      return true;
    default:
      return false;
    }
  }
  return false;
}

ExecResult metaopt::interpretLoop(const Loop &L, const ExecOptions &Opts,
                                  MemoryImage Mem) {
  Machine M(L, Opts, std::move(Mem));

  // Live-in values: overrides first, then name-keyed synthesis.
  for (RegId Reg = 0; Reg < L.numRegs(); ++Reg) {
    if (!L.isLiveIn(Reg))
      continue;
    auto It = Opts.LiveInOverrides.find(Reg);
    M.value(Reg) =
        It != Opts.LiveInOverrides.end()
            ? It->second
            : synthesizeLiveIn(L, Reg, Opts.Seed);
  }

  const auto &Phis = L.phis();
  unsigned Lanes = Opts.SplitLanes > 1 ? Opts.SplitLanes : 0;

  // Split-lane state: lane 0 inherits the init, lanes k > 0 start at the
  // reduction's identity (matching the unroller's fresh accumulators).
  std::vector<std::vector<ExecValue>> LaneState(Phis.size());
  if (Lanes)
    for (size_t J = 0; J < Phis.size(); ++J) {
      ExecValue Identity;
      if (!reductionIdentity(L, Phis[J], Identity))
        continue;
      LaneState[J].assign(Lanes, Identity);
      LaneState[J][0] = M.value(Phis[J].Init);
    }

  // Top of the first iteration: phi dests take their init (or lane 0).
  for (size_t J = 0; J < Phis.size(); ++J)
    M.value(Phis[J].Dest) = M.value(Phis[J].Init);

  ExecResult Result;
  for (int64_t Iter = 0; Iter < M.Iterations; ++Iter) {
    int64_t Global = Opts.StartIteration + Iter;

    if (Lanes)
      for (size_t J = 0; J < Phis.size(); ++J)
        if (!LaneState[J].empty())
          M.value(Phis[J].Dest) = LaneState[J][Iter % Lanes];

    for (size_t I = 0; I < L.body().size(); ++I) {
      const Instruction &Instr = L.body()[I];
      // Trace observations that a step could clobber (the guard register
      // and an indirect index register can both be the destination) are
      // sampled before the step; the destination value after.
      ExecTraceStep TS;
      if (Opts.Trace) {
        TS.Iteration = Iter;
        TS.BodyIndex = static_cast<uint32_t>(I);
        TS.GuardOn = M.predOn(Instr);
        if (Instr.isMemory() && TS.GuardOn) {
          TS.IsMemory = true;
          TS.Address = M.address(Instr, Global);
        }
      }
      bool Fired = M.step(Instr, Iter, Global);
      if (Opts.Trace) {
        if (Instr.hasDest() && L.regClass(Instr.Dest) == RegClass::Int) {
          TS.HasIntDest = true;
          TS.IntDest = M.value(Instr.Dest).I;
        }
        Opts.Trace->Steps.push_back(TS);
      }
      if (Fired) {
        Result.Exited = true;
        Result.ExitIteration = Iter;
        Result.ExitBodyIndex = static_cast<int64_t>(I);
        break;
      }
    }
    if (Result.Exited)
      break;

    // Backedge: all phis rotate simultaneously (read every recur before
    // writing any dest, so phi-to-phi rotations behave).
    std::vector<ExecValue> Next(Phis.size());
    for (size_t J = 0; J < Phis.size(); ++J)
      Next[J] = M.value(Phis[J].Recur);
    for (size_t J = 0; J < Phis.size(); ++J) {
      if (Lanes && !LaneState[J].empty())
        LaneState[J][Iter % Lanes] = Next[J];
      else
        M.value(Phis[J].Dest) = Next[J];
    }
    Result.IterationsExecuted = Iter + 1;
  }

  Result.PhiFinal.resize(Phis.size());
  for (size_t J = 0; J < Phis.size(); ++J)
    Result.PhiFinal[J] = M.value(Phis[J].Dest);
  if (Lanes)
    Result.SplitLanes = std::move(LaneState);
  Result.Memory = std::move(M.Mem);
  return Result;
}

ExecResult metaopt::interpretLoop(const Loop &L, const ExecOptions &Opts) {
  return interpretLoop(L, Opts, MemoryImage(Opts.Seed));
}

Fingerprint ExecResult::digest(const Loop &L) const {
  FingerprintHasher Hasher;
  Hasher.i64(IterationsExecuted);
  Hasher.boolean(Exited);
  Hasher.i64(ExitIteration);
  Hasher.i64(ExitBodyIndex);
  const auto &Phis = L.phis();
  for (size_t J = 0; J < Phis.size() && J < PhiFinal.size(); ++J) {
    Hasher.str(L.regName(Phis[J].Dest));
    switch (L.regClass(Phis[J].Dest)) {
    case RegClass::Int:
      Hasher.i64(PhiFinal[J].I);
      break;
    case RegClass::Float:
      Hasher.f64(PhiFinal[J].F);
      break;
    case RegClass::Pred:
      Hasher.boolean(PhiFinal[J].P);
      break;
    }
  }
  Hasher.u64(SplitLanes.size());
  for (const auto &LanesForPhi : SplitLanes) {
    Hasher.u64(LanesForPhi.size());
    for (const ExecValue &V : LanesForPhi) {
      Hasher.i64(V.I);
      Hasher.f64(V.F);
      Hasher.boolean(V.P);
    }
  }
  Fingerprint MemFp = Memory.storeDigest();
  Hasher.u64(MemFp.Lo);
  Hasher.u64(MemFp.Hi);
  return Hasher.digest();
}
