//===- core/driver/Pipeline.cpp -------------------------------------------===//

#include "core/driver/Pipeline.h"

#include <cstdio>
#include <filesystem>

using namespace metaopt;

Pipeline::Pipeline(PipelineOptions OptionsIn)
    : Options(std::move(OptionsIn)) {}

const std::vector<Benchmark> &Pipeline::corpus() {
  if (!Corpus)
    Corpus = buildCorpus(Options.Corpus);
  return *Corpus;
}

LabelingOptions Pipeline::labelingOptions(bool EnableSwp) const {
  LabelingOptions Labeling;
  Labeling.EnableSwp = EnableSwp;
  Labeling.Machine = Options.Machine;
  Labeling.Protocol = Options.Protocol;
  return Labeling;
}

std::string Pipeline::cachePath(bool EnableSwp) const {
  if (Options.CacheDir.empty())
    return "";
  return Options.CacheDir + "/dataset_" + Options.Machine.Name + "_" +
         (EnableSwp ? "swp" : "noswp") + "_" +
         std::to_string(Options.Corpus.Seed) + ".csv";
}

/// Reads a whole file; empty string when it does not exist.
static std::string readFileIfPresent(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return "";
  std::string Content;
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Content.append(Buffer, Read);
  std::fclose(File);
  return Content;
}

static bool writeFile(const std::string &Path, const std::string &Content) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  size_t Written = std::fwrite(Content.data(), 1, Content.size(), File);
  bool Ok = Written == Content.size();
  Ok &= std::fclose(File) == 0;
  return Ok;
}

const Dataset &Pipeline::dataset(bool EnableSwp) {
  std::optional<Dataset> &Slot = EnableSwp ? DataSwp : DataNoSwp;
  if (Slot)
    return *Slot;

  std::string Path = cachePath(EnableSwp);
  if (!Path.empty()) {
    std::string Cached = readFileIfPresent(Path);
    if (!Cached.empty()) {
      if (std::optional<Dataset> Loaded = Dataset::fromCsv(Cached)) {
        Slot = std::move(*Loaded);
        return *Slot;
      }
    }
  }

  size_t &TotalLoops = EnableSwp ? TotalLoopsSwp : TotalLoopsNoSwp;
  Slot = collectLabels(corpus(), labelingOptions(EnableSwp), &TotalLoops);

  if (!Path.empty()) {
    std::error_code Ignored;
    std::filesystem::create_directories(Options.CacheDir, Ignored);
    writeFile(Path, Slot->toCsv());
  }
  return *Slot;
}

size_t Pipeline::totalLoops(bool EnableSwp) const {
  return EnableSwp ? TotalLoopsSwp : TotalLoopsNoSwp;
}

bool Pipeline::exportDatasetCsv(bool EnableSwp, const std::string &Path) {
  return writeFile(Path, dataset(EnableSwp).toCsv());
}
