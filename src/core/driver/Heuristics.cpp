//===- core/driver/Heuristics.cpp -----------------------------------------===//

#include "core/driver/Heuristics.h"

#include "core/features/FeatureExtractor.h"

using namespace metaopt;

LearnedHeuristic::LearnedHeuristic(const Classifier &TrainedIn)
    : Trained(TrainedIn) {}

std::string LearnedHeuristic::name() const {
  return "learned-" + Trained.name();
}

unsigned LearnedHeuristic::chooseFactor(const Loop &L) const {
  return Trained.predict(extractFeatures(L));
}

OracleHeuristic::OracleHeuristic(const Dataset &Labels,
                                 unsigned FallbackFactorIn)
    : FallbackFactor(FallbackFactorIn) {
  for (const Example &Ex : Labels.examples())
    BestFactor[Ex.LoopName] = Ex.Label;
}

std::string OracleHeuristic::name() const { return "oracle"; }

unsigned OracleHeuristic::chooseFactor(const Loop &L) const {
  auto It = BestFactor.find(L.name());
  return It == BestFactor.end() ? FallbackFactor : It->second;
}
