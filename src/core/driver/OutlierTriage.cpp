//===- core/driver/OutlierTriage.cpp --------------------------------------===//

#include "core/driver/OutlierTriage.h"

#include <algorithm>
#include <cassert>

using namespace metaopt;

TriageReport metaopt::triageOutliers(const Dataset &Data,
                                     const FeatureSet &Features,
                                     const TriageOptions &Options) {
  assert(Options.ConfidenceThreshold >= 0.0 &&
         Options.ConfidenceThreshold <= 1.0 &&
         "confidence threshold out of range");
  TriageReport Report;
  Report.TotalExamples = Data.size();
  if (Data.empty())
    return Report;

  NearNeighborClassifier Nn(Features, Options.Radius);
  Nn.train(Data);

  size_t ConfidentCorrect = 0, ConfidentTotal = 0;
  size_t OutlierCorrect = 0;
  for (size_t Index = 0; Index < Data.size(); ++Index) {
    NearNeighborClassifier::Vote Vote = Nn.voteExcluding(Index);
    const Example &Ex = Data[Index];
    bool Correct = Vote.Factor == Ex.Label;

    bool Empty = Vote.NeighborCount == 0;
    Report.EmptyNeighborhoods += Empty;
    bool Flag = (Empty && Options.FlagEmptyNeighborhoods) ||
                (!Empty &&
                 Vote.confidence() < Options.ConfidenceThreshold);
    if (!Flag) {
      ++ConfidentTotal;
      ConfidentCorrect += Correct;
      continue;
    }
    OutlierCorrect += Correct;
    OutlierRecord Record;
    Record.LoopName = Ex.LoopName;
    Record.BenchmarkName = Ex.BenchmarkName;
    Record.Label = Ex.Label;
    Record.Predicted = Vote.Factor;
    Record.NeighborCount = Vote.NeighborCount;
    Record.Confidence = Vote.confidence();
    Record.MispredictCost = Ex.CyclesPerFactor[Vote.Factor - 1] /
                            Ex.CyclesPerFactor[Ex.Label - 1];
    Report.Outliers.push_back(std::move(Record));
  }

  std::sort(Report.Outliers.begin(), Report.Outliers.end(),
            [](const OutlierRecord &A, const OutlierRecord &B) {
              if (A.Confidence != B.Confidence)
                return A.Confidence < B.Confidence;
              if (A.MispredictCost != B.MispredictCost)
                return A.MispredictCost > B.MispredictCost;
              return A.LoopName < B.LoopName;
            });

  if (ConfidentTotal > 0)
    Report.ConfidentAccuracy =
        static_cast<double>(ConfidentCorrect) / ConfidentTotal;
  if (!Report.Outliers.empty())
    Report.OutlierAccuracy =
        static_cast<double>(OutlierCorrect) / Report.Outliers.size();
  return Report;
}
