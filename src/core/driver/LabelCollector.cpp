//===- core/driver/LabelCollector.cpp -------------------------------------===//

#include "core/driver/LabelCollector.h"

#include "analysis/lint/UnrollInvariants.h"
#include "cache/SimCache.h"
#include "concurrency/Parallel.h"
#include "core/features/FeatureExtractor.h"
#include "support/Statistics.h"

using namespace metaopt;

std::array<double, MaxUnrollFactor>
metaopt::measureLoopAtAllFactors(const Benchmark &Bench,
                                 const CorpusLoop &Entry,
                                 const MachineModel &Machine,
                                 const LabelingOptions &Options) {
  // One deterministic noise stream per (benchmark, loop): re-labeling the
  // corpus reproduces identical datasets, serial or parallel. The
  // benchmark name is mixed into the stream index because loop names are
  // only required to be unique corpus-wide by buildCorpus's check —
  // seeding by loop name alone would hand two same-named loops in
  // different benchmarks identical noise, silently correlating their
  // labels.
  Rng Noise = Rng::splitStream(
      Options.MeasurementSeed,
      Rng::hashString(Bench.Name + "\x1f" + Entry.TheLoop.name()));
  std::array<double, MaxUnrollFactor> Medians = {};
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    SimResult Sim = cachedSimulateLoop(Entry.TheLoop, Factor, Machine,
                                       Entry.Ctx, Options.EnableSwp,
                                       Options.Cache);
    double TotalCycles = Sim.Cycles * static_cast<double>(Entry.Executions);
    Medians[Factor - 1] = measureMedian(TotalCycles, Options.Protocol,
                                        Noise);
  }
  return Medians;
}

namespace {
/// Per-loop labeling result; Usable mirrors the paper's filters.
struct LabeledLoop {
  bool Usable = false;
  Example Ex;
};
} // namespace

/// Labels one loop: measure at every factor, pick the best, apply the
/// paper's usability filters. Pure function of its arguments (the noise
/// stream is derived from the benchmark and loop names), so loops can be
/// labeled in any order on any thread.
static LabeledLoop labelOneLoop(const Benchmark &Bench,
                                const CorpusLoop &Entry,
                                const MachineModel &Machine,
                                const LabelingOptions &Options) {
  LabeledLoop Result;
  std::array<double, MaxUnrollFactor> Medians =
      measureLoopAtAllFactors(Bench, Entry, Machine, Options);

  unsigned Best = 1;
  double BestCycles = Medians[0];
  double Sum = 0.0;
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    double Cycles = Medians[Factor - 1];
    Sum += Cycles;
    if (Cycles < BestCycles) {
      BestCycles = Cycles;
      Best = Factor;
    }
  }
  double Average = Sum / MaxUnrollFactor;

  // Paper filters: the 50k-cycle noise floor and the 1.05x
  // best-vs-average sensitivity requirement.
  if (!isReliablyMeasurable(BestCycles, Options.Protocol))
    return Result;
  if (BestCycles * Options.MinBestVsAverage > Average)
    return Result;

  Result.Usable = true;
  Result.Ex.Features = extractFeatures(Entry.TheLoop);
  Result.Ex.Label = Best;
  Result.Ex.CyclesPerFactor = Medians;
  Result.Ex.LoopName = Entry.TheLoop.name();
  Result.Ex.BenchmarkName = Bench.Name;
  return Result;
}

Dataset metaopt::collectLabels(const std::vector<Benchmark> &Corpus,
                               const LabelingOptions &Options,
                               size_t *OutTotalLoops) {
  MachineModel Machine(Options.Machine);

  // Every unroll this sweep performs is audited against the
  // post-transform invariants; a violation throws out of the sweep
  // (deterministically — the runtime propagates the lowest-index
  // exception) rather than silently corrupting the training labels.
  UnrollAuditGuard AuditGuard;

  // Flatten to an ordered work-list so every loop has a stable index;
  // results are collected by that index, which makes the parallel dataset
  // (and its CSV) byte-identical to the serial one.
  std::vector<std::pair<const Benchmark *, const CorpusLoop *>> Loops;
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops)
      Loops.emplace_back(&Bench, &Entry);

  std::vector<LabeledLoop> Labeled = parallelMap<LabeledLoop>(
      Loops.size(), [&](size_t I) {
        return labelOneLoop(*Loops[I].first, *Loops[I].second, Machine,
                            Options);
      });

  Dataset Data;
  for (LabeledLoop &L : Labeled)
    if (L.Usable)
      Data.add(std::move(L.Ex));
  if (OutTotalLoops)
    *OutTotalLoops = Loops.size();

  // Warm-start later processes: flush new simulation results to the
  // persistent tier (no-op for in-memory-only caches).
  (Options.Cache ? *Options.Cache : SimCache::global())
      .savePersistentIfDirty();
  return Data;
}
