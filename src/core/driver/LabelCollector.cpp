//===- core/driver/LabelCollector.cpp -------------------------------------===//

#include "core/driver/LabelCollector.h"

#include "analysis/lint/UnrollInvariants.h"
#include "analysis/symbolic/Canonical.h"
#include "cache/SimCache.h"
#include "concurrency/Parallel.h"
#include "core/features/FeatureExtractor.h"
#include "ir/Printer.h"
#include "sim/SimCompile.h"
#include "support/Statistics.h"

#include <memory>
#include <mutex>
#include <unordered_map>

using namespace metaopt;

namespace {

/// Raw per-entry simulated cycles of one loop at factors 1..8 — the part
/// of measureLoopAtAllFactors that is a pure function of (loop, context,
/// machine, SWP) and therefore shareable across a canonical-sim
/// equivalence class. Executions and noise are per-loop and applied
/// downstream.
std::array<double, MaxUnrollFactor>
simulateAllFactors(const CorpusLoop &Entry, const MachineModel &Machine,
                   const LabelingOptions &Options) {
  std::array<double, MaxUnrollFactor> Cycles = {};
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor)
    Cycles[Factor - 1] = cachedSimulateLoop(Entry.TheLoop, Factor, Machine,
                                            Entry.Ctx, Options.EnableSwp,
                                            Options.Cache)
                             .Cycles;
  return Cycles;
}

/// Pushes per-entry cycles through this loop's instrumentation model:
/// scale by execution count, then take the median of the noisy repeated
/// measurements.
std::array<double, MaxUnrollFactor>
measureFromCycles(const Benchmark &Bench, const CorpusLoop &Entry,
                  const std::array<double, MaxUnrollFactor> &Cycles,
                  const LabelingOptions &Options) {
  // One deterministic noise stream per (benchmark, loop): re-labeling the
  // corpus reproduces identical datasets, serial or parallel. The
  // benchmark name is mixed into the stream index because loop names are
  // only required to be unique corpus-wide by buildCorpus's check —
  // seeding by loop name alone would hand two same-named loops in
  // different benchmarks identical noise, silently correlating their
  // labels.
  Rng Noise = Rng::splitStream(
      Options.MeasurementSeed,
      Rng::hashString(Bench.Name + "\x1f" + Entry.TheLoop.name()));
  std::array<double, MaxUnrollFactor> Medians = {};
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    double TotalCycles =
        Cycles[Factor - 1] * static_cast<double>(Entry.Executions);
    Medians[Factor - 1] = measureMedian(TotalCycles, Options.Protocol,
                                        Noise);
  }
  return Medians;
}

} // namespace

std::array<double, MaxUnrollFactor>
metaopt::measureLoopAtAllFactors(const Benchmark &Bench,
                                 const CorpusLoop &Entry,
                                 const MachineModel &Machine,
                                 const LabelingOptions &Options) {
  return measureFromCycles(Bench, Entry,
                           simulateAllFactors(Entry, Machine, Options),
                           Options);
}

namespace {
/// Per-loop labeling result; Usable mirrors the paper's filters.
struct LabeledLoop {
  bool Usable = false;
  Example Ex;
};
} // namespace

/// Labels one loop from its (possibly class-shared) per-entry cycles:
/// apply the loop's own noise stream, pick the best factor, apply the
/// paper's usability filters. Pure function of its arguments (the noise
/// stream is derived from the benchmark and loop names), so loops can be
/// labeled in any order on any thread.
static LabeledLoop labelOneLoop(const Benchmark &Bench,
                                const CorpusLoop &Entry,
                                const std::array<double, MaxUnrollFactor>
                                    &Cycles,
                                const LabelingOptions &Options) {
  LabeledLoop Result;
  std::array<double, MaxUnrollFactor> Medians =
      measureFromCycles(Bench, Entry, Cycles, Options);

  unsigned Best = 1;
  double BestCycles = Medians[0];
  double Sum = 0.0;
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    double Cycles = Medians[Factor - 1];
    Sum += Cycles;
    if (Cycles < BestCycles) {
      BestCycles = Cycles;
      Best = Factor;
    }
  }
  double Average = Sum / MaxUnrollFactor;

  // Paper filters: the 50k-cycle noise floor and the 1.05x
  // best-vs-average sensitivity requirement.
  if (!isReliablyMeasurable(BestCycles, Options.Protocol))
    return Result;
  if (BestCycles * Options.MinBestVsAverage > Average)
    return Result;

  Result.Usable = true;
  Result.Ex.Features = extractFeatures(Entry.TheLoop);
  Result.Ex.Label = Best;
  Result.Ex.CyclesPerFactor = Medians;
  Result.Ex.LoopName = Entry.TheLoop.name();
  Result.Ex.BenchmarkName = Bench.Name;
  return Result;
}

Dataset metaopt::collectLabels(const std::vector<Benchmark> &Corpus,
                               const LabelingOptions &Options,
                               size_t *OutTotalLoops,
                               LabelingStats *OutStats) {
  MachineModel Machine(Options.Machine);

  // Every unroll this sweep performs is audited against the
  // post-transform invariants; a violation throws out of the sweep
  // (deterministically — the runtime propagates the lowest-index
  // exception) rather than silently corrupting the training labels.
  UnrollAuditGuard AuditGuard;

  // Flatten to an ordered work-list so every loop has a stable index;
  // results are collected by that index, which makes the parallel dataset
  // (and its CSV) byte-identical to the serial one.
  std::vector<std::pair<const Benchmark *, const CorpusLoop *>> Loops;
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops)
      Loops.emplace_back(&Bench, &Entry);

  // Static pruning: partition the work-list into equivalence classes
  // under the *context-free* canonical sim key (plus the register budgets
  // when SWP is enabled, because the modulo scheduler reads them while
  // scheduling). Equal keys certify that one context-independent compiled
  // plan (sim/SimCompile.h) reproduces simulateLoop for every member
  // under that member's own context — the certificate the static-claims
  // fuzz oracle re-validates on every campaign case. The context must NOT
  // be part of the key: every corpus loop carries its own randomized
  // SimContext, so a context-keyed partition degenerates into singleton
  // classes and prunes nothing (the regression this PR fixes — the bench
  // reported 0 of 2808 simulations pruned).
  std::vector<uint32_t> LeaderSlot(Loops.size(), 0);
  std::vector<uint32_t> Leaders;
  std::vector<LabeledLoop> Labeled;
  SimBodyStatsCache BodyCache;
  if (Options.PruneEquivalent) {
    std::vector<SimKey> Keys =
        parallelMap<SimKey>(Loops.size(), [&](size_t I) {
          Fingerprint Key = canonicalSimKey(Loops[I].second->TheLoop);
          if (!Options.EnableSwp)
            return Key;
          FingerprintHasher H;
          H.str("metaopt-labeling-class-key-swp-v1");
          H.u64(Key.Lo);
          H.u64(Key.Hi);
          H.i64(Loops[I].second->Ctx.IntRegBudget);
          H.i64(Loops[I].second->Ctx.FpRegBudget);
          return H.digest();
        });
    std::unordered_map<SimKey, uint32_t, SimKeyHash> SlotOfKey;
    for (size_t I = 0; I < Loops.size(); ++I) {
      auto [It, IsNew] = SlotOfKey.try_emplace(
          Keys[I], static_cast<uint32_t>(Leaders.size()));
      if (IsNew)
        Leaders.push_back(static_cast<uint32_t>(I));
      LeaderSlot[I] = It->second;
    }

    // One compiled plan per class, built lazily by whichever worker needs
    // it first — always from the class leader, so the plan (and any
    // diagnostic it throws) is identical at every thread count. Body
    // schedules are additionally shared *across* classes through the
    // structural BodyCache: classes that differ only in trip counts
    // unroll to the same post-memopt bodies.
    std::vector<LoopSimPlan> Plans(Leaders.size());
    std::unique_ptr<std::once_flag[]> PlanOnce(
        new std::once_flag[Leaders.size()]);
    auto ClassPlan = [&](uint32_t Slot) -> const LoopSimPlan & {
      std::call_once(PlanOnce[Slot], [&] {
        const CorpusLoop &Leader = *Loops[Leaders[Slot]].second;
        Plans[Slot] = compileLoopSim(Leader.TheLoop, Machine, Leader.Ctx,
                                     Options.EnableSwp, &BodyCache);
      });
      return Plans[Slot];
    };

    SimCache &Cache = Options.Cache ? *Options.Cache : SimCache::global();

    // One batched task per loop: derive all eight sim-cache keys from a
    // single print of the loop, serve what the cache already holds, and
    // evaluate the class plan under the loop's own context for the rest —
    // inserting those results so the cache ends up with exactly the
    // entries (same keys, same values) the unpruned sweep would produce.
    // The heavy pipeline (unroll/memopt/schedule/liveness) runs once per
    // class inside ClassPlan instead of once per (loop, factor).
    std::vector<std::array<double, MaxUnrollFactor>> LoopCycles =
        parallelMap<std::array<double, MaxUnrollFactor>>(
            Loops.size(), [&](size_t I) {
              const CorpusLoop &Entry = *Loops[I].second;
              std::array<double, MaxUnrollFactor> Cycles = {};
              if (!Cache.enabled()) {
                const LoopSimPlan &Plan = ClassPlan(LeaderSlot[I]);
                for (unsigned F = 1; F <= MaxUnrollFactor; ++F)
                  Cycles[F - 1] =
                      evaluatePlan(Plan, F, Machine, Entry.Ctx).Cycles;
                return Cycles;
              }
              std::string Printed = printLoop(Entry.TheLoop);
              std::array<SimKey, MaxUnrollFactor> SimKeys;
              std::array<bool, MaxUnrollFactor> Hit = {};
              unsigned Misses = 0;
              for (unsigned F = 1; F <= MaxUnrollFactor; ++F) {
                SimKeys[F - 1] =
                    simCacheKey(Entry.TheLoop, Printed, F, Machine,
                                Entry.Ctx, Options.EnableSwp);
                if (std::optional<SimResult> Found =
                        Cache.lookup(SimKeys[F - 1])) {
                  Cycles[F - 1] = Found->Cycles;
                  Hit[F - 1] = true;
                } else {
                  ++Misses;
                }
              }
              if (Misses == 0)
                return Cycles; // Warm cache: no plan needed at all.
              const LoopSimPlan &Plan = ClassPlan(LeaderSlot[I]);
              for (unsigned F = 1; F <= MaxUnrollFactor; ++F) {
                if (Hit[F - 1])
                  continue;
                SimResult Result = evaluatePlan(Plan, F, Machine, Entry.Ctx);
                Cache.insert(SimKeys[F - 1], Result);
                Cycles[F - 1] = Result.Cycles;
              }
              return Cycles;
            });

    Labeled = parallelMap<LabeledLoop>(Loops.size(), [&](size_t I) {
      return labelOneLoop(*Loops[I].first, *Loops[I].second, LoopCycles[I],
                          Options);
    });
  } else {
    // Reference path, deliberately untouched: one cachedSimulateLoop per
    // (loop, factor) through the full pipeline. This is the baseline the
    // bench's speedup_vs_serial rows and the identity tests compare
    // against.
    Leaders.resize(Loops.size());
    for (size_t I = 0; I < Loops.size(); ++I) {
      Leaders[I] = static_cast<uint32_t>(I);
      LeaderSlot[I] = static_cast<uint32_t>(I);
    }

    // Phase 1: simulate each loop at every unroll factor.
    std::vector<std::array<double, MaxUnrollFactor>> ClassCycles =
        parallelMap<std::array<double, MaxUnrollFactor>>(
            Leaders.size(), [&](size_t C) {
              return simulateAllFactors(*Loops[Leaders[C]].second, Machine,
                                        Options);
            });

    // Phase 2: label every loop from its cycles through its own noise
    // stream and the paper's filters.
    Labeled = parallelMap<LabeledLoop>(Loops.size(), [&](size_t I) {
      return labelOneLoop(*Loops[I].first, *Loops[I].second,
                          ClassCycles[LeaderSlot[I]], Options);
    });
  }

  Dataset Data;
  for (LabeledLoop &L : Labeled)
    if (L.Usable)
      Data.add(std::move(L.Ex));
  if (OutTotalLoops)
    *OutTotalLoops = Loops.size();
  if (OutStats) {
    OutStats->TotalLoops = Loops.size();
    OutStats->EquivalenceClasses = Leaders.size();
    OutStats->SimulationsRun = Leaders.size() * MaxUnrollFactor;
    OutStats->SimulationsPruned =
        (Loops.size() - Leaders.size()) * MaxUnrollFactor;
    OutStats->BodyStatsComputed = BodyCache.size();
    OutStats->BodyStatsShared = BodyCache.hits();
  }

  // Warm-start later processes: flush new simulation results to the
  // persistent tier (no-op for in-memory-only caches).
  (Options.Cache ? *Options.Cache : SimCache::global())
      .savePersistentIfDirty();
  return Data;
}
