//===- core/driver/LabelCollector.cpp -------------------------------------===//

#include "core/driver/LabelCollector.h"

#include "core/features/FeatureExtractor.h"
#include "sim/Simulator.h"
#include "support/Statistics.h"

#include <cassert>

using namespace metaopt;

std::array<double, MaxUnrollFactor>
metaopt::measureLoopAtAllFactors(const CorpusLoop &Entry,
                                 const MachineModel &Machine,
                                 const LabelingOptions &Options) {
  // One deterministic noise stream per loop: re-labeling the corpus
  // reproduces identical datasets.
  Rng Noise(Options.MeasurementSeed ^
            Rng::hashString(Entry.TheLoop.name()));
  std::array<double, MaxUnrollFactor> Medians = {};
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    SimResult Sim = simulateLoop(Entry.TheLoop, Factor, Machine, Entry.Ctx,
                                 Options.EnableSwp);
    double TotalCycles = Sim.Cycles * static_cast<double>(Entry.Executions);
    Medians[Factor - 1] = measureMedian(TotalCycles, Options.Protocol,
                                        Noise);
  }
  return Medians;
}

Dataset metaopt::collectLabels(const std::vector<Benchmark> &Corpus,
                               const LabelingOptions &Options,
                               size_t *OutTotalLoops) {
  MachineModel Machine(Options.Machine);
  Dataset Data;
  size_t TotalLoops = 0;
  for (const Benchmark &Bench : Corpus) {
    for (const CorpusLoop &Entry : Bench.Loops) {
      ++TotalLoops;
      std::array<double, MaxUnrollFactor> Medians =
          measureLoopAtAllFactors(Entry, Machine, Options);

      unsigned Best = 1;
      double BestCycles = Medians[0];
      double Sum = 0.0;
      for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
        double Cycles = Medians[Factor - 1];
        Sum += Cycles;
        if (Cycles < BestCycles) {
          BestCycles = Cycles;
          Best = Factor;
        }
      }
      double Average = Sum / MaxUnrollFactor;

      // Paper filters: the 50k-cycle noise floor and the 1.05x
      // best-vs-average sensitivity requirement.
      if (!isReliablyMeasurable(BestCycles, Options.Protocol))
        continue;
      if (BestCycles * Options.MinBestVsAverage > Average)
        continue;

      Example Ex;
      Ex.Features = extractFeatures(Entry.TheLoop);
      Ex.Label = Best;
      Ex.CyclesPerFactor = Medians;
      Ex.LoopName = Entry.TheLoop.name();
      Ex.BenchmarkName = Bench.Name;
      Data.add(std::move(Ex));
    }
  }
  if (OutTotalLoops)
    *OutTotalLoops = TotalLoops;
  return Data;
}
