//===- core/driver/LabelCollector.cpp -------------------------------------===//

#include "core/driver/LabelCollector.h"

#include "analysis/lint/UnrollInvariants.h"
#include "analysis/symbolic/Canonical.h"
#include "cache/SimCache.h"
#include "concurrency/Parallel.h"
#include "core/features/FeatureExtractor.h"
#include "support/Statistics.h"

#include <unordered_map>

using namespace metaopt;

namespace {

/// Raw per-entry simulated cycles of one loop at factors 1..8 — the part
/// of measureLoopAtAllFactors that is a pure function of (loop, context,
/// machine, SWP) and therefore shareable across a canonical-sim
/// equivalence class. Executions and noise are per-loop and applied
/// downstream.
std::array<double, MaxUnrollFactor>
simulateAllFactors(const CorpusLoop &Entry, const MachineModel &Machine,
                   const LabelingOptions &Options) {
  std::array<double, MaxUnrollFactor> Cycles = {};
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor)
    Cycles[Factor - 1] = cachedSimulateLoop(Entry.TheLoop, Factor, Machine,
                                            Entry.Ctx, Options.EnableSwp,
                                            Options.Cache)
                             .Cycles;
  return Cycles;
}

/// Pushes per-entry cycles through this loop's instrumentation model:
/// scale by execution count, then take the median of the noisy repeated
/// measurements.
std::array<double, MaxUnrollFactor>
measureFromCycles(const Benchmark &Bench, const CorpusLoop &Entry,
                  const std::array<double, MaxUnrollFactor> &Cycles,
                  const LabelingOptions &Options) {
  // One deterministic noise stream per (benchmark, loop): re-labeling the
  // corpus reproduces identical datasets, serial or parallel. The
  // benchmark name is mixed into the stream index because loop names are
  // only required to be unique corpus-wide by buildCorpus's check —
  // seeding by loop name alone would hand two same-named loops in
  // different benchmarks identical noise, silently correlating their
  // labels.
  Rng Noise = Rng::splitStream(
      Options.MeasurementSeed,
      Rng::hashString(Bench.Name + "\x1f" + Entry.TheLoop.name()));
  std::array<double, MaxUnrollFactor> Medians = {};
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    double TotalCycles =
        Cycles[Factor - 1] * static_cast<double>(Entry.Executions);
    Medians[Factor - 1] = measureMedian(TotalCycles, Options.Protocol,
                                        Noise);
  }
  return Medians;
}

} // namespace

std::array<double, MaxUnrollFactor>
metaopt::measureLoopAtAllFactors(const Benchmark &Bench,
                                 const CorpusLoop &Entry,
                                 const MachineModel &Machine,
                                 const LabelingOptions &Options) {
  return measureFromCycles(Bench, Entry,
                           simulateAllFactors(Entry, Machine, Options),
                           Options);
}

namespace {
/// Per-loop labeling result; Usable mirrors the paper's filters.
struct LabeledLoop {
  bool Usable = false;
  Example Ex;
};
} // namespace

/// Labels one loop from its (possibly class-shared) per-entry cycles:
/// apply the loop's own noise stream, pick the best factor, apply the
/// paper's usability filters. Pure function of its arguments (the noise
/// stream is derived from the benchmark and loop names), so loops can be
/// labeled in any order on any thread.
static LabeledLoop labelOneLoop(const Benchmark &Bench,
                                const CorpusLoop &Entry,
                                const std::array<double, MaxUnrollFactor>
                                    &Cycles,
                                const LabelingOptions &Options) {
  LabeledLoop Result;
  std::array<double, MaxUnrollFactor> Medians =
      measureFromCycles(Bench, Entry, Cycles, Options);

  unsigned Best = 1;
  double BestCycles = Medians[0];
  double Sum = 0.0;
  for (unsigned Factor = 1; Factor <= MaxUnrollFactor; ++Factor) {
    double Cycles = Medians[Factor - 1];
    Sum += Cycles;
    if (Cycles < BestCycles) {
      BestCycles = Cycles;
      Best = Factor;
    }
  }
  double Average = Sum / MaxUnrollFactor;

  // Paper filters: the 50k-cycle noise floor and the 1.05x
  // best-vs-average sensitivity requirement.
  if (!isReliablyMeasurable(BestCycles, Options.Protocol))
    return Result;
  if (BestCycles * Options.MinBestVsAverage > Average)
    return Result;

  Result.Usable = true;
  Result.Ex.Features = extractFeatures(Entry.TheLoop);
  Result.Ex.Label = Best;
  Result.Ex.CyclesPerFactor = Medians;
  Result.Ex.LoopName = Entry.TheLoop.name();
  Result.Ex.BenchmarkName = Bench.Name;
  return Result;
}

Dataset metaopt::collectLabels(const std::vector<Benchmark> &Corpus,
                               const LabelingOptions &Options,
                               size_t *OutTotalLoops,
                               LabelingStats *OutStats) {
  MachineModel Machine(Options.Machine);

  // Every unroll this sweep performs is audited against the
  // post-transform invariants; a violation throws out of the sweep
  // (deterministically — the runtime propagates the lowest-index
  // exception) rather than silently corrupting the training labels.
  UnrollAuditGuard AuditGuard;

  // Flatten to an ordered work-list so every loop has a stable index;
  // results are collected by that index, which makes the parallel dataset
  // (and its CSV) byte-identical to the serial one.
  std::vector<std::pair<const Benchmark *, const CorpusLoop *>> Loops;
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops)
      Loops.emplace_back(&Bench, &Entry);

  // Static pruning: partition the work-list into equivalence classes
  // under the canonical sim form x every other simulateLoop input. Equal
  // class keys certify equal SimResults at every factor
  // (analysis/symbolic/Canonical.h — the certificate the static-claims
  // fuzz oracle re-validates on every campaign case), so only the first
  // loop of each class (its leader) is ever simulated. The class key is
  // simCacheKey over the *canonicalized* loop, which covers the machine
  // config, simulation context, and SWP flag for free.
  std::vector<uint32_t> LeaderSlot(Loops.size(), 0);
  std::vector<uint32_t> Leaders;
  if (Options.PruneEquivalent) {
    std::vector<SimKey> Keys =
        parallelMap<SimKey>(Loops.size(), [&](size_t I) {
          return simCacheKey(canonicalSimForm(Loops[I].second->TheLoop), 1,
                             Machine, Loops[I].second->Ctx,
                             Options.EnableSwp);
        });
    std::unordered_map<SimKey, uint32_t, SimKeyHash> SlotOfKey;
    for (size_t I = 0; I < Loops.size(); ++I) {
      auto [It, IsNew] = SlotOfKey.try_emplace(
          Keys[I], static_cast<uint32_t>(Leaders.size()));
      if (IsNew)
        Leaders.push_back(static_cast<uint32_t>(I));
      LeaderSlot[I] = It->second;
    }
  } else {
    Leaders.resize(Loops.size());
    for (size_t I = 0; I < Loops.size(); ++I) {
      Leaders[I] = static_cast<uint32_t>(I);
      LeaderSlot[I] = static_cast<uint32_t>(I);
    }
  }

  // Phase 1: simulate each class leader at every unroll factor.
  std::vector<std::array<double, MaxUnrollFactor>> ClassCycles =
      parallelMap<std::array<double, MaxUnrollFactor>>(
          Leaders.size(), [&](size_t C) {
            return simulateAllFactors(*Loops[Leaders[C]].second, Machine,
                                      Options);
          });

  // Phase 2: label every loop from its class's shared cycles through its
  // own noise stream and the paper's filters.
  std::vector<LabeledLoop> Labeled = parallelMap<LabeledLoop>(
      Loops.size(), [&](size_t I) {
        return labelOneLoop(*Loops[I].first, *Loops[I].second,
                            ClassCycles[LeaderSlot[I]], Options);
      });

  Dataset Data;
  for (LabeledLoop &L : Labeled)
    if (L.Usable)
      Data.add(std::move(L.Ex));
  if (OutTotalLoops)
    *OutTotalLoops = Loops.size();
  if (OutStats) {
    OutStats->TotalLoops = Loops.size();
    OutStats->EquivalenceClasses = Leaders.size();
    OutStats->SimulationsRun = Leaders.size() * MaxUnrollFactor;
    OutStats->SimulationsPruned =
        (Loops.size() - Leaders.size()) * MaxUnrollFactor;
  }

  // Warm-start later processes: flush new simulation results to the
  // persistent tier (no-op for in-memory-only caches).
  (Options.Cache ? *Options.Cache : SimCache::global())
      .savePersistentIfDirty();
  return Data;
}
