//===- core/driver/LabelCollector.h - Empirical labeling --------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the labeled training set: every loop in the corpus is compiled
/// and "run" at unroll factors 1..8, each configuration is measured 30
/// times through the noisy instrumentation model and the median kept, and
/// the factor with the fewest cycles becomes the label. The paper's usable-
/// loop filters apply: the loop must run at least 50,000 cycles, and its
/// best factor must beat the average over all factors by at least 1.05x.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_DRIVER_LABELCOLLECTOR_H
#define METAOPT_CORE_DRIVER_LABELCOLLECTOR_H

#include "core/ml/Dataset.h"
#include "corpus/BenchmarkSuite.h"
#include "machine/Machine.h"
#include "sim/Measurement.h"

namespace metaopt {

class SimCache;

/// Label-collection configuration.
struct LabelingOptions {
  bool EnableSwp = false;           ///< Figure 4 (off) vs Figure 5 (on).
  MachineConfig Machine = itanium2Config();
  MeasurementProtocol Protocol = {};
  /// Paper filter: keep loops "whose optimal unroll factor is measurably
  /// better than the average (1.05x) over all unroll factors".
  double MinBestVsAverage = 1.05;
  uint64_t MeasurementSeed = 0x10adedD1CEull; // Per-loop noise streams.
  /// Simulation cache the sweep's simulateLoop calls go through; null
  /// selects the process-global SimCache::global(). The cached and
  /// uncached sweeps produce byte-identical datasets (cache/SimCache.h).
  SimCache *Cache = nullptr;
  /// Static pruning of the labeling space: loops with equal context-free
  /// canonical sim keys (analysis/symbolic/Canonical.h) form an
  /// equivalence class; the class leader is compiled ONCE into a
  /// context-independent simulation plan (sim/SimCompile.h) and every
  /// member evaluates that plan under its own SimContext — byte-identical
  /// to simulating each member from scratch, per-(loop, factor) sim-cache
  /// entries included. The context is deliberately NOT in the class key
  /// (each corpus loop has a randomized context, so keying on it makes
  /// every class a singleton and prunes nothing); register budgets are
  /// folded in only under SWP, where the modulo scheduler reads them.
  /// Measurement noise is applied per (benchmark, loop) name downstream
  /// of the simulator, so pruned and unpruned sweeps produce
  /// byte-identical datasets (asserted by tests/driver_test.cpp and
  /// measured in BENCH_pipeline.json).
  bool PruneEquivalent = true;
};

/// What the labeling-space pruner did during one collectLabels sweep.
struct LabelingStats {
  size_t TotalLoops = 0;         ///< Pre-filter loop count.
  size_t EquivalenceClasses = 0; ///< Distinct canonical-sim classes.
  size_t SimulationsRun = 0;     ///< simulateLoop requests issued.
  size_t SimulationsPruned = 0;  ///< Requests avoided by class sharing.
  /// Body-level structural sharing inside the compiled fast path
  /// (sim/SimCompile.h): unique post-memopt bodies actually scheduled,
  /// and schedule/liveness computations avoided because a structurally
  /// identical body (same canonical structure, any trip count) was
  /// already in the per-sweep cache. Both are 0 when PruneEquivalent is
  /// off or every simulation was served from the sim cache.
  size_t BodyStatsComputed = 0;
  size_t BodyStatsShared = 0;
  /// Fraction of the (loop, factor) simulation space pruned away.
  double pruningRate() const {
    size_t Total = SimulationsRun + SimulationsPruned;
    return Total ? static_cast<double>(SimulationsPruned) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// Labels one loop of \p Bench; returns the measured medians per factor.
/// The loop's measurement-noise stream is seeded from the benchmark name
/// *and* the loop name, so two same-named loops in different benchmarks
/// can never share a noise stream.
std::array<double, MaxUnrollFactor>
measureLoopAtAllFactors(const Benchmark &Bench, const CorpusLoop &Entry,
                        const MachineModel &Machine,
                        const LabelingOptions &Options);

/// Labels every usable loop in the corpus into a Dataset. Unusable loops
/// (too short or too insensitive) are dropped, mirroring the paper's
/// dataset construction. \p OutTotalLoops optionally receives the raw
/// (pre-filter) loop count.
///
/// Loops are labeled in parallel on the global thread pool (this is the
/// paper's week-of-machine-time step); each loop's noise stream comes
/// from MeasurementSeed + its name, and examples are collected in corpus
/// order, so the dataset is bit-identical however many threads run.
/// \p OutStats optionally receives the pruner's statistics.
Dataset collectLabels(const std::vector<Benchmark> &Corpus,
                      const LabelingOptions &Options,
                      size_t *OutTotalLoops = nullptr,
                      LabelingStats *OutStats = nullptr);

} // namespace metaopt

#endif // METAOPT_CORE_DRIVER_LABELCOLLECTOR_H
