//===- core/driver/SpeedupEvaluator.cpp -----------------------------------===//

#include "core/driver/SpeedupEvaluator.h"

#include "analysis/lint/UnrollInvariants.h"
#include "cache/SimCache.h"
#include "concurrency/Parallel.h"
#include "core/driver/Heuristics.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"
#include "heuristics/OrcLikeHeuristic.h"

#include <stdexcept>

using namespace metaopt;

double metaopt::benchmarkCycles(const Benchmark &Bench,
                                const UnrollHeuristic &Policy,
                                const MachineModel &Machine, bool EnableSwp,
                                double NonLoopCycles, SimCache *Cache) {
  double Total = NonLoopCycles;
  for (const CorpusLoop &Entry : Bench.Loops) {
    unsigned Factor = Policy.chooseFactor(Entry.TheLoop);
    if (Factor < 1 || Factor > MaxUnrollFactor)
      throw std::runtime_error(
          "benchmarkCycles: policy '" + Policy.name() +
          "' chose out-of-range unroll factor " + std::to_string(Factor) +
          " for loop '" + Entry.TheLoop.name() + "' of benchmark '" +
          Bench.Name + "'");
    SimResult Sim = cachedSimulateLoop(Entry.TheLoop, Factor, Machine,
                                       Entry.Ctx, EnableSwp, Cache);
    Total += Sim.Cycles * static_cast<double>(Entry.Executions);
  }
  return Total;
}

double metaopt::nonLoopFromLoopCycles(const Benchmark &Bench,
                                      double LoopCycles) {
  if (!(Bench.NonLoopFraction >= 0.0 && Bench.NonLoopFraction < 1.0))
    throw std::domain_error(
        "nonLoopFromLoopCycles: benchmark '" + Bench.Name +
        "' has non-loop fraction " + std::to_string(Bench.NonLoopFraction) +
        ", outside [0, 1)");
  return LoopCycles * Bench.NonLoopFraction / (1.0 - Bench.NonLoopFraction);
}

double metaopt::nonLoopCycles(const Benchmark &Bench,
                              const UnrollHeuristic &Baseline,
                              const MachineModel &Machine, bool EnableSwp,
                              SimCache *Cache) {
  double LoopCycles = benchmarkCycles(Bench, Baseline, Machine, EnableSwp,
                                      /*NonLoopCycles=*/0.0, Cache);
  return nonLoopFromLoopCycles(Bench, LoopCycles);
}

SpeedupReport
metaopt::evaluateSpeedups(const std::vector<Benchmark> &Corpus,
                          const std::vector<std::string> &EvalNames,
                          const Dataset &FullData,
                          const FeatureSet &Features,
                          const SpeedupOptions &Options) {
  MachineModel Machine(Options.Labeling.Machine);
  bool EnableSwp = Options.Labeling.EnableSwp;
  SimCache *Cache = Options.Labeling.Cache;
  OrcLikeHeuristic Orc(Machine, EnableSwp);

  // Audit every unroll the evaluation simulates, like collectLabels does.
  UnrollAuditGuard AuditGuard;

  SpeedupReport Report;
  double SumNn = 0, SumSvm = 0, SumOracle = 0;
  double SumNnFp = 0, SumSvmFp = 0, SumOracleFp = 0;
  unsigned FpCount = 0;

  // The leave-one-benchmark-out iterations are independent (each trains
  // its own classifiers on its own training split and the subsample
  // stream is seeded by the benchmark name, not shared), so they run in
  // parallel; rows come back in EvalNames order and the mean/win
  // aggregation below stays serial, preserving the serial result to the
  // last bit. The shared simulation cache does not disturb this: a hit
  // returns exactly what the simulator would have computed.
  Report.Rows = parallelMap<SpeedupRow>(EvalNames.size(), [&](size_t Idx) {
    const std::string &Name = EvalNames[Idx];
    const Benchmark *Bench = nullptr;
    for (const Benchmark &Candidate : Corpus)
      if (Candidate.Name == Name)
        Bench = &Candidate;
    if (!Bench)
      throw std::invalid_argument("evaluateSpeedups: evaluation benchmark '" +
                                  Name + "' is missing from the corpus");

    // Leave-one-benchmark-out training sets ("when compiling a benchmark,
    // we exclude all examples in that benchmark", §6.1).
    Dataset Train = FullData.excludingBenchmark(Name);
    Rng Subsampler =
        Rng::splitStream(Options.SubsampleSeed, Rng::hashString(Name));
    Dataset SvmTrain = Train.subsample(Options.SvmTrainCap, Subsampler);

    NearNeighborClassifier Nn(Features, Options.NnRadius);
    Nn.train(Train);
    SvmClassifier Svm(Features);
    Svm.train(SvmTrain);

    LearnedHeuristic NnPolicy(Nn);
    LearnedHeuristic SvmPolicy(Svm);
    // The oracle replays this benchmark's own labels.
    OracleHeuristic Oracle(FullData, /*FallbackFactor=*/1);

    // One baseline simulation pass serves both the non-loop time and the
    // baseline runtime (they used to be computed with two identical
    // sweeps; the cache makes the second sweep cheap, but the call
    // structure should not rely on that).
    double OrcLoopCycles = benchmarkCycles(*Bench, Orc, Machine, EnableSwp,
                                           /*NonLoopCycles=*/0.0, Cache);
    double NonLoop = nonLoopFromLoopCycles(*Bench, OrcLoopCycles);
    double OrcTime = OrcLoopCycles + NonLoop;
    double NnTime =
        benchmarkCycles(*Bench, NnPolicy, Machine, EnableSwp, NonLoop, Cache);
    double SvmTime =
        benchmarkCycles(*Bench, SvmPolicy, Machine, EnableSwp, NonLoop,
                        Cache);
    double OracleTime =
        benchmarkCycles(*Bench, Oracle, Machine, EnableSwp, NonLoop, Cache);

    SpeedupRow Row;
    Row.Benchmark = Name;
    Row.FloatingPoint = Bench->FloatingPoint;
    Row.NnVsOrc = OrcTime / NnTime - 1.0;
    Row.SvmVsOrc = OrcTime / SvmTime - 1.0;
    Row.OracleVsOrc = OrcTime / OracleTime - 1.0;
    return Row;
  });

  for (const SpeedupRow &Row : Report.Rows) {
    SumNn += Row.NnVsOrc;
    SumSvm += Row.SvmVsOrc;
    SumOracle += Row.OracleVsOrc;
    if (Row.FloatingPoint) {
      SumNnFp += Row.NnVsOrc;
      SumSvmFp += Row.SvmVsOrc;
      SumOracleFp += Row.OracleVsOrc;
      ++FpCount;
    }
    if (Row.NnVsOrc > 0.0)
      ++Report.NnWins;
    if (Row.SvmVsOrc > 0.0)
      ++Report.SvmWins;
  }

  size_t N = Report.Rows.size();
  if (N > 0) {
    Report.MeanNn = SumNn / N;
    Report.MeanSvm = SumSvm / N;
    Report.MeanOracle = SumOracle / N;
  }
  if (FpCount > 0) {
    Report.MeanNnFp = SumNnFp / FpCount;
    Report.MeanSvmFp = SumSvmFp / FpCount;
    Report.MeanOracleFp = SumOracleFp / FpCount;
  }

  // Warm-start later processes: flush new entries to the persistent tier
  // (no-op for in-memory-only caches).
  (Cache ? *Cache : SimCache::global()).savePersistentIfDirty();
  return Report;
}
