//===- core/driver/OutlierTriage.h - Confidence triage ----------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The outlier-inspection tool Section 5.1 imagines: "One can imagine a
/// tool that automatically detects outliers by setting low confidence
/// examples aside. An engineer could then visually inspect outlier loops
/// to determine why they are hard to classify."
///
/// For every loop in the dataset the near-neighbor vote is replayed with
/// the loop itself excluded; loops with empty or contested neighborhoods
/// are flagged, together with the facts an engineer would look at first
/// (neighbor count, agreement, whether the prediction was right, and the
/// cost of the miss).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_DRIVER_OUTLIERTRIAGE_H
#define METAOPT_CORE_DRIVER_OUTLIERTRIAGE_H

#include "core/ml/NearNeighbor.h"

namespace metaopt {

/// One flagged loop.
struct OutlierRecord {
  std::string LoopName;
  std::string BenchmarkName;
  unsigned Label = 1;          ///< Empirically best factor.
  unsigned Predicted = 1;      ///< Leave-self-out NN prediction.
  unsigned NeighborCount = 0;  ///< Database entries within the radius.
  double Confidence = 0.0;     ///< Agreeing-neighbor fraction (0 if none).
  double MispredictCost = 1.0; ///< cycles(predicted) / cycles(best).
};

/// Triage configuration.
struct TriageOptions {
  double Radius = 0.3;
  /// Flag examples whose vote confidence falls below this.
  double ConfidenceThreshold = 0.5;
  /// Also flag examples with no neighbors at all (1-NN fallback fired).
  bool FlagEmptyNeighborhoods = true;
};

/// Triage summary.
struct TriageReport {
  std::vector<OutlierRecord> Outliers; ///< Sorted, lowest confidence first.
  size_t TotalExamples = 0;
  size_t EmptyNeighborhoods = 0;
  /// Accuracy split the tool motivates: confident predictions should be
  /// much more accurate than flagged ones.
  double ConfidentAccuracy = 0.0;
  double OutlierAccuracy = 0.0;
};

/// Runs the triage over \p Data with a leave-self-out NN vote.
TriageReport triageOutliers(const Dataset &Data, const FeatureSet &Features,
                            const TriageOptions &Options = {});

} // namespace metaopt

#endif // METAOPT_CORE_DRIVER_OUTLIERTRIAGE_H
