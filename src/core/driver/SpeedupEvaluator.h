//===- core/driver/SpeedupEvaluator.h - Whole-program speedups --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program evaluation (Figures 4 and 5): compiles every loop of a
/// benchmark with the unroll factor a policy chooses, sums the simulated
/// loop runtimes weighted by executions, adds the benchmark's non-loop
/// time, and reports speedup relative to the ORC-like baseline. Matches
/// the paper's protocol: training excludes the benchmark being evaluated
/// (leave-one-benchmark-out), and compiled code is not instrumented.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_DRIVER_SPEEDUPEVALUATOR_H
#define METAOPT_CORE_DRIVER_SPEEDUPEVALUATOR_H

#include "core/driver/LabelCollector.h"
#include "corpus/BenchmarkSuite.h"
#include "heuristics/UnrollHeuristic.h"

namespace metaopt {

class SimCache;

/// Per-benchmark speedup rows for one policy column.
struct SpeedupRow {
  std::string Benchmark;
  bool FloatingPoint = false;
  double NnVsOrc = 0.0;     ///< (t_orc / t_nn) - 1.
  double SvmVsOrc = 0.0;    ///< (t_orc / t_svm) - 1.
  double OracleVsOrc = 0.0; ///< (t_orc / t_oracle) - 1.
};

/// Figure 4/5 evaluation result.
struct SpeedupReport {
  std::vector<SpeedupRow> Rows;
  double MeanNn = 0.0, MeanSvm = 0.0, MeanOracle = 0.0;
  double MeanNnFp = 0.0, MeanSvmFp = 0.0, MeanOracleFp = 0.0;
  unsigned NnWins = 0, SvmWins = 0; ///< Benchmarks beating the baseline.
};

/// Evaluation configuration.
struct SpeedupOptions {
  LabelingOptions Labeling; ///< Machine + SWP mode; noise not used here.
  /// Training subsample cap per left-out benchmark: keeps the 24 LS-SVM
  /// retrainings tractable without visibly moving the results.
  size_t SvmTrainCap = 1000;
  double NnRadius = 0.3;
  uint64_t SubsampleSeed = 7;
};

/// Total modeled runtime of \p Bench when loops are unrolled per
/// \p Policy. \p NonLoopCycles is the benchmark's fixed non-loop time.
/// Loop simulations go through \p Cache (null: the process-global
/// simulation cache). Throws std::runtime_error when the policy produces
/// an out-of-range factor — in every build mode, since a garbage factor
/// would otherwise corrupt the unroller under NDEBUG.
double benchmarkCycles(const Benchmark &Bench, const UnrollHeuristic &Policy,
                       const MachineModel &Machine, bool EnableSwp,
                       double NonLoopCycles, SimCache *Cache = nullptr);

/// Non-loop time derived from a precomputed baseline loop time and the
/// benchmark's NonLoopFraction. Throws std::domain_error when the
/// fraction is not in [0, 1) — a division by zero or a negative time
/// otherwise.
double nonLoopFromLoopCycles(const Benchmark &Bench, double LoopCycles);

/// Non-loop time derived from the baseline policy's loop time and the
/// benchmark's NonLoopFraction. Convenience wrapper over
/// benchmarkCycles + nonLoopFromLoopCycles; evaluateSpeedups computes the
/// baseline loop time once per row and derives both values from it.
double nonLoopCycles(const Benchmark &Bench, const UnrollHeuristic &Baseline,
                     const MachineModel &Machine, bool EnableSwp,
                     SimCache *Cache = nullptr);

/// Runs the full Figure 4/5 protocol over the benchmarks named in
/// \p EvalNames (normally the 24 SPEC 2000 programs): per benchmark,
/// train NN and SVM on \p FullData minus that benchmark's examples, then
/// compare against the ORC-like baseline and the oracle. The per-
/// benchmark iterations run on the global thread pool; the report is
/// identical to the serial (--threads=1) run.
SpeedupReport evaluateSpeedups(const std::vector<Benchmark> &Corpus,
                               const std::vector<std::string> &EvalNames,
                               const Dataset &FullData,
                               const FeatureSet &Features,
                               const SpeedupOptions &Options);

} // namespace metaopt

#endif // METAOPT_CORE_DRIVER_SPEEDUPEVALUATOR_H
