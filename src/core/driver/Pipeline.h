//===- core/driver/Pipeline.h - End-to-end orchestration --------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-stop orchestration used by the examples and the benchmark
/// harnesses: builds the corpus, collects labels for the SWP-off and
/// SWP-on configurations (caching the datasets as CSV on disk, since
/// labeling is by far the most expensive step — a week of machine time in
/// the paper), and hands out the reduced feature set.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_DRIVER_PIPELINE_H
#define METAOPT_CORE_DRIVER_PIPELINE_H

#include "core/driver/LabelCollector.h"

#include <optional>

namespace metaopt {

/// Pipeline configuration.
struct PipelineOptions {
  CorpusOptions Corpus;
  MachineConfig Machine = itanium2Config();
  MeasurementProtocol Protocol;
  /// Directory for cached label CSVs; empty disables caching.
  std::string CacheDir = ".metaopt-cache";
};

/// Lazily materializes the corpus and the labeled datasets.
class Pipeline {
public:
  explicit Pipeline(PipelineOptions Options = {});

  /// The 72-benchmark corpus (built on first use).
  const std::vector<Benchmark> &corpus();

  /// The labeled dataset for the given configuration. The first call
  /// labels the whole corpus (or loads the disk cache); later calls are
  /// free. Total raw loop count available via totalLoops().
  const Dataset &dataset(bool EnableSwp);

  /// Raw (pre-filter) loop count for the configuration; 0 when the
  /// dataset came from the disk cache.
  size_t totalLoops(bool EnableSwp) const;

  /// Labeling options used for the given configuration.
  LabelingOptions labelingOptions(bool EnableSwp) const;

  const PipelineOptions &options() const { return Options; }

  /// Writes the dataset CSV to \p Path (the "released raw loop data").
  bool exportDatasetCsv(bool EnableSwp, const std::string &Path);

private:
  std::string cachePath(bool EnableSwp) const;

  PipelineOptions Options;
  std::optional<std::vector<Benchmark>> Corpus;
  std::optional<Dataset> DataNoSwp, DataSwp;
  size_t TotalLoopsNoSwp = 0, TotalLoopsSwp = 0;
};

} // namespace metaopt

#endif // METAOPT_CORE_DRIVER_PIPELINE_H
