//===- core/driver/Heuristics.h - Learned & oracle policies -----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapters that close the loop from learning back into the compiler: a
/// trained classifier exposed as an UnrollHeuristic ("the learned
/// classifier can easily be incorporated into a compiler", §4.1), and the
/// label-backed oracle policy used for the headroom bars of Figures 4/5.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_DRIVER_HEURISTICS_H
#define METAOPT_CORE_DRIVER_HEURISTICS_H

#include "core/ml/Classifier.h"
#include "heuristics/UnrollHeuristic.h"

#include <map>

namespace metaopt {

/// Wraps a trained classifier: extract features, predict, unroll.
class LearnedHeuristic : public UnrollHeuristic {
public:
  /// Does not take ownership; \p Trained must outlive this object and must
  /// already be trained.
  explicit LearnedHeuristic(const Classifier &Trained);

  std::string name() const override;
  unsigned chooseFactor(const Loop &L) const override;

private:
  const Classifier &Trained;
};

/// Replays the empirically best factor per loop (by loop name). Loops
/// without a label (filtered from the dataset) fall back to a default.
class OracleHeuristic : public UnrollHeuristic {
public:
  OracleHeuristic(const Dataset &Labels, unsigned FallbackFactor = 1);

  std::string name() const override;
  unsigned chooseFactor(const Loop &L) const override;

private:
  std::map<std::string, unsigned> BestFactor;
  unsigned FallbackFactor;
};

} // namespace metaopt

#endif // METAOPT_CORE_DRIVER_HEURISTICS_H
