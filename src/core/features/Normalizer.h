//===- core/features/Normalizer.h - Feature normalization -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feature scaling fitted on a training set and applied to queries: "The
/// feature vector is normalized to weigh all features equally; otherwise,
/// features with large values such as loop tripcount would grossly
/// outweigh small-valued features in the distance calculation." (§5.1).
/// Z-score is the default; min-max is available for comparison.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_FEATURES_NORMALIZER_H
#define METAOPT_CORE_FEATURES_NORMALIZER_H

#include "core/features/FeatureCatalog.h"

#include <optional>
#include <string>
#include <vector>

namespace metaopt {

/// Scaling flavor.
enum class NormalizationKind { ZScore, MinMax };

/// Fits per-feature scaling statistics on training vectors and projects
/// (feature-subset + scale) raw FeatureVectors into classifier space.
class Normalizer {
public:
  Normalizer() = default;

  /// Fits on the given vectors over \p Features, which also fixes the
  /// output dimensionality and ordering.
  void fit(const std::vector<FeatureVector> &Vectors,
           const FeatureSet &Features,
           NormalizationKind Kind = NormalizationKind::ZScore);

  /// Projects a raw vector into the fitted space.
  std::vector<double> apply(const FeatureVector &Vector) const;

  bool fitted() const { return !Features.empty(); }
  size_t dimension() const { return Features.size(); }
  const FeatureSet &featureSet() const { return Features; }

  /// Serializes the fitted statistics to a text block (one line per
  /// dimension); deserialize() reads it back bit-exactly.
  std::string serialize() const;
  static std::optional<Normalizer> deserialize(const std::string &Text);

private:
  FeatureSet Features;
  NormalizationKind Kind = NormalizationKind::ZScore;
  std::vector<double> Shift; ///< Mean (z-score) or min (min-max).
  std::vector<double> Scale; ///< Stddev or range; 1 when degenerate.
};

} // namespace metaopt

#endif // METAOPT_CORE_FEATURES_NORMALIZER_H
