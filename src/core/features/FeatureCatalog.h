//===- core/features/FeatureCatalog.h - The 38 loop features ----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The catalogue of the static loop characteristics used as the feature
/// vector. Table 1 of the paper publishes 22 of them and Tables 3/4 name
/// three more (live range size, instruction fan-in in the DAG, known trip
/// count); the remaining 13 of the paper's 38 were not published and are
/// completed here with static properties of the same flavour. Features
/// whose definitions the paper gives keep those definitions. On top of
/// the paper's 38, the symbolic memory analysis (analysis/symbolic)
/// contributes three prover-derived features — the minimum symbolic
/// dependence distance, the provably-disjoint fraction of access pairs,
/// and the number of reachable predicated stores — for 41 in total.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_FEATURES_FEATURECATALOG_H
#define METAOPT_CORE_FEATURES_FEATURECATALOG_H

#include <array>
#include <string>
#include <vector>

namespace metaopt {

/// Identifies one loop feature. Keep featureName()/featureDescription()
/// in sync when editing.
enum class FeatureId : unsigned {
  // Table 1 features.
  NestLevel,            ///< The loop nest level.
  NumOps,               ///< Operations in the loop body.
  NumFloatOps,          ///< Floating point operations in the body.
  NumBranches,          ///< Branches in the body (exits + calls).
  NumMemOps,            ///< Memory operations in the body.
  NumOperands,          ///< Register operand slots in the body.
  NumImplicitOps,       ///< Compiler-inserted ops (copies, addr, preds).
  NumUniquePredicates,  ///< Distinct predicate registers guarding ops.
  CriticalPathLatency,  ///< Estimated latency of the body critical path.
  EstCycleLength,       ///< Estimated resource-bound cycles of the body.
  Language,             ///< Source language (0 C, 1 Fortran, 2 F90).
  NumParallelComputations, ///< Independent dependence components.
  MaxDependenceHeight,  ///< Max latency-weighted dependence height.
  MaxMemDependenceHeight,   ///< Max memory-dependence chain height.
  MaxControlDependenceHeight, ///< Max control-dependence chain height.
  AvgDependenceHeight,  ///< Mean component dependence height.
  NumIndirectRefs,      ///< Indirect memory references in the body.
  MinMemCarriedDistance, ///< Min mem-to-mem loop-carried dep distance.
  NumMemDeps,           ///< Memory-to-memory dependences.
  TripCount,            ///< Compile-time trip count (-1 if unknown).
  NumUses,              ///< Register uses in the body.
  NumDefs,              ///< Register definitions in the body.
  // Features named by Tables 3/4.
  LiveRangeSize,        ///< Peak simultaneously-live values.
  InstructionFanIn,     ///< Max data-dependence fan-in of one op.
  KnownTripCount,       ///< 1 when the trip count is a compile-time const.
  // Catalogue completion (the paper's remaining 13 were unpublished).
  NumIntOps,            ///< Integer arithmetic/logic operations.
  NumCalls,             ///< Calls in the body.
  NumLoads,             ///< Loads in the body.
  NumStores,            ///< Stores in the body.
  NumEarlyExits,        ///< Early-exit branches in the body.
  SumExitProbability,   ///< Static estimate of exit likelihood.
  RecMii,               ///< Recurrence-constrained min initiation interval.
  NumLoopCarriedValues, ///< Loop-carried scalars (phi nodes).
  NumLiveIns,           ///< Loop-invariant register inputs.
  MaxLiveFloat,         ///< Peak live floating point values.
  MaxLiveInt,           ///< Peak live integer values.
  CodeSizeBytes,        ///< Estimated code bytes of the body.
  NumLongLatencyOps,    ///< Divides, square roots, remainders.
  // Symbolic-prover features (analysis/symbolic/Disjointness.h).
  MinSymbolicDepDistance,   ///< Smallest lag not proven disjoint
                            ///< (MaxUnrollFactor + 1 when all are).
  ProvableDisjointFraction, ///< Fraction of (pair, lag) checks proven.
  ReachablePredicatedStores, ///< Predicated stores not proven dead.
};

/// Number of features: the paper's 38 ("We collected 38 features for
/// these experiments") plus the three symbolic-prover features.
constexpr unsigned NumFeatures = 41;

/// Short machine-readable feature name ("numFloatOps", ...).
const char *featureName(FeatureId Id);

/// Human-readable description, mirroring Table 1's phrasing.
const char *featureDescription(FeatureId Id);

/// All feature values of one loop, indexed by FeatureId.
using FeatureVector = std::array<double, NumFeatures>;

/// An ordered feature subset used by a classifier.
using FeatureSet = std::vector<FeatureId>;

/// All NumFeatures features (the paper's 38 plus the symbolic three).
FeatureSet fullFeatureSet();

/// The reduced set the paper classifies with in Section 6: the union of
/// the Table 3 (mutual information) and Table 4 (greedy selection) lists.
FeatureSet paperReducedFeatureSet();

} // namespace metaopt

#endif // METAOPT_CORE_FEATURES_FEATURECATALOG_H
