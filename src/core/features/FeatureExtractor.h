//===- core/features/FeatureExtractor.h - Loop -> features ------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the 38-entry feature vector of a loop by running the analyses
/// in src/analysis (dependence graph, critical path, computations,
/// liveness, recurrence MII) and counting instruction properties. This is
/// the "feature extraction tool" the paper instruments ORC with.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_FEATURES_FEATUREEXTRACTOR_H
#define METAOPT_CORE_FEATURES_FEATUREEXTRACTOR_H

#include "core/features/FeatureCatalog.h"
#include "ir/Loop.h"

namespace metaopt {

/// Extracts all 38 features of \p L. The loop must be well-formed. The
/// loop-control tail is excluded from the counts, matching a compiler that
/// measures the loop "payload".
FeatureVector extractFeatures(const Loop &L);

} // namespace metaopt

#endif // METAOPT_CORE_FEATURES_FEATUREEXTRACTOR_H
