//===- core/features/FeatureExtractor.cpp ---------------------------------===//

#include "core/features/FeatureExtractor.h"

#include "analysis/CriticalPath.h"
#include "analysis/DependenceGraph.h"
#include "analysis/Liveness.h"
#include "analysis/Recurrence.h"
#include "analysis/symbolic/Disjointness.h"

#include <algorithm>
#include <set>

using namespace metaopt;

FeatureVector metaopt::extractFeatures(const Loop &L) {
  FeatureVector Features;
  Features.fill(0.0);
  auto Set = [&](FeatureId Id, double Value) {
    Features[static_cast<unsigned>(Id)] = Value;
  };

  // Plain instruction-count features.
  unsigned Ops = 0, FloatOps = 0, IntOps = 0, MemOps = 0, Loads = 0;
  unsigned Stores = 0, Branches = 0, Calls = 0, Exits = 0, Implicit = 0;
  unsigned Operands = 0, Uses = 0, Defs = 0, Indirect = 0, LongLatency = 0;
  double ExitProbability = 0.0;
  std::set<RegId> Predicates;

  for (const Instruction &Instr : L.body()) {
    if (Instr.isLoopControl())
      continue;
    ++Ops;
    if (Instr.isFloat())
      ++FloatOps;
    if (Instr.isMemory()) {
      ++MemOps;
      if (Instr.isLoad())
        ++Loads;
      else
        ++Stores;
      if (Instr.Mem.Indirect)
        ++Indirect;
    } else if (!Instr.isFloat() && !Instr.isBranchLike()) {
      ++IntOps;
    }
    if (Instr.isBranchLike())
      ++Branches;
    if (Instr.isCall())
      ++Calls;
    if (Instr.Op == Opcode::ExitIf) {
      ++Exits;
      ExitProbability += Instr.TakenProb;
    }
    if (Instr.isImplicit())
      ++Implicit;
    if (Instr.Op == Opcode::FDiv || Instr.Op == Opcode::FSqrt ||
        Instr.Op == Opcode::IDiv || Instr.Op == Opcode::IRem)
      ++LongLatency;
    Operands += static_cast<unsigned>(Instr.Operands.size());
    Uses += static_cast<unsigned>(Instr.Operands.size());
    if (Instr.Pred != NoReg) {
      Predicates.insert(Instr.Pred);
      ++Uses;
      ++Operands;
    }
    if (Instr.hasDest())
      ++Defs;
  }

  Set(FeatureId::NestLevel, L.nestLevel());
  Set(FeatureId::NumOps, Ops);
  Set(FeatureId::NumFloatOps, FloatOps);
  Set(FeatureId::NumBranches, Branches);
  Set(FeatureId::NumMemOps, MemOps);
  Set(FeatureId::NumOperands, Operands);
  Set(FeatureId::NumImplicitOps, Implicit);
  Set(FeatureId::NumUniquePredicates,
      static_cast<double>(Predicates.size()));
  Set(FeatureId::Language, L.language() == SourceLanguage::C ? 0.0
                           : L.language() == SourceLanguage::Fortran
                               ? 1.0
                               : 2.0);
  Set(FeatureId::NumIndirectRefs, Indirect);
  Set(FeatureId::TripCount, static_cast<double>(L.tripCount()));
  Set(FeatureId::NumUses, Uses);
  Set(FeatureId::NumDefs, Defs);
  Set(FeatureId::KnownTripCount, L.hasKnownTripCount() ? 1.0 : 0.0);
  Set(FeatureId::NumIntOps, IntOps);
  Set(FeatureId::NumCalls, Calls);
  Set(FeatureId::NumLoads, Loads);
  Set(FeatureId::NumStores, Stores);
  Set(FeatureId::NumEarlyExits, Exits);
  Set(FeatureId::SumExitProbability, ExitProbability);
  Set(FeatureId::NumLongLatencyOps, LongLatency);

  // Resource-bound cycle estimate over an abstract 6-issue EPIC machine
  // (4 memory slots, 2 FP, 3 branch), mirroring how a mid-level pass
  // estimates the schedule before code generation.
  double CycleEstimate = std::max(
      {Ops / 6.0, MemOps / 4.0, FloatOps / 2.0, Branches / 3.0, 1.0});
  Set(FeatureId::EstCycleLength, CycleEstimate);

  // Code size: three instruction slots per 16-byte bundle.
  Set(FeatureId::CodeSizeBytes, ((Ops + 2) / 3) * 16.0);

  // Dependence-graph-derived features.
  DependenceGraph DG(L);
  ComputationInfo Computations = analyzeComputations(L, DG);
  Set(FeatureId::CriticalPathLatency, criticalPathLatency(L, DG));
  Set(FeatureId::NumParallelComputations, Computations.NumComputations);
  Set(FeatureId::MaxDependenceHeight, Computations.MaxHeight);
  Set(FeatureId::MaxMemDependenceHeight, Computations.MaxMemoryHeight);
  Set(FeatureId::MaxControlDependenceHeight,
      Computations.MaxControlHeight);
  Set(FeatureId::AvgDependenceHeight, Computations.AvgHeight);
  Set(FeatureId::InstructionFanIn, Computations.MaxFanIn);
  Set(FeatureId::MinMemCarriedDistance, DG.minCarriedMemoryDistance());
  Set(FeatureId::NumMemDeps, DG.numMemoryDeps());
  Set(FeatureId::RecMii, recurrenceMII(L, DG));

  // Liveness-derived features.
  LivenessInfo Live = analyzeLiveness(L);
  Set(FeatureId::LiveRangeSize, Live.MaxLiveTotal);
  Set(FeatureId::MaxLiveFloat, Live.MaxLiveFloat);
  Set(FeatureId::MaxLiveInt, Live.MaxLiveInt);
  Set(FeatureId::NumLiveIns, Live.NumLiveIn);
  Set(FeatureId::NumLoopCarriedValues,
      static_cast<double>(L.phis().size()));

  // Symbolic-prover features: how much cross-iteration memory
  // independence the static analysis can certify, and how many predicated
  // stores can actually execute. These correlate with how profitably the
  // unrolled copies overlap (analysis/symbolic/Disjointness.h).
  SymbolicAnalysis Symbolic(L);
  IndependenceSummary Independence = summarizeIndependence(Symbolic);
  Set(FeatureId::MinSymbolicDepDistance, Independence.MinDependenceLag);
  Set(FeatureId::ProvableDisjointFraction, Independence.DisjointFraction);
  unsigned ReachablePredStores = 0;
  for (const AccessSummary &Access : Symbolic.accesses())
    if (Access.IsStore &&
        L.body()[Access.BodyIndex].Pred != NoReg &&
        Access.Guard != PredFact::AlwaysFalse)
      ++ReachablePredStores;
  Set(FeatureId::ReachablePredicatedStores, ReachablePredStores);

  return Features;
}
