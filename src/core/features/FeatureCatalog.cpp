//===- core/features/FeatureCatalog.cpp -----------------------------------===//

#include "core/features/FeatureCatalog.h"

#include <cassert>

using namespace metaopt;

namespace {

struct FeatureInfo {
  const char *Name;
  const char *Description;
};

const FeatureInfo Infos[NumFeatures] = {
    {"nestLevel", "The loop nest level"},
    {"numOps", "The number of ops. in loop body"},
    {"numFloatOps", "The number of floating point ops. in loop body"},
    {"numBranches", "The number of branches in loop body"},
    {"numMemOps", "The number of memory ops. in loop body"},
    {"numOperands", "The number of operands in loop body"},
    {"numImplicitOps", "The number of implicit instructions in loop body"},
    {"numUniquePredicates",
     "The number of unique predicates in loop body"},
    {"criticalPathLatency",
     "The estimated latency of the critical path of loop"},
    {"estCycleLength", "The estimated cycle length of loop body"},
    {"language", "The language (C or Fortran)"},
    {"numParallelComputations",
     "The number of parallel \"computations\" in loop"},
    {"maxDependenceHeight", "The max. dependence height of computations"},
    {"maxMemDependenceHeight",
     "The max. height of memory dependencies of computations"},
    {"maxControlDependenceHeight",
     "The max. height of control dependencies of computations"},
    {"avgDependenceHeight", "The average dependence height of computations"},
    {"numIndirectRefs", "The number of indirect references in loop body"},
    {"minMemCarriedDistance",
     "The min. memory-to-memory loop-carried dependence"},
    {"numMemDeps", "The number of memory-to-memory dependencies"},
    {"tripCount", "The tripcount of the loop (-1 if unknown)"},
    {"numUses", "The number of uses in the loop"},
    {"numDefs", "The number of defs. in the loop"},
    {"liveRangeSize", "The live range size (peak live values)"},
    {"instructionFanIn", "The instruction fan-in in the dependence DAG"},
    {"knownTripCount", "Whether the tripcount is known at compile time"},
    {"numIntOps", "The number of integer ops. in loop body"},
    {"numCalls", "The number of calls in loop body"},
    {"numLoads", "The number of loads in loop body"},
    {"numStores", "The number of stores in loop body"},
    {"numEarlyExits", "The number of early-exit branches in loop body"},
    {"sumExitProbability", "The static estimate of early-exit likelihood"},
    {"recMii", "The recurrence-constrained min. initiation interval"},
    {"numLoopCarriedValues", "The number of loop-carried scalar values"},
    {"numLiveIns", "The number of loop-invariant register inputs"},
    {"maxLiveFloat", "The peak number of live floating point values"},
    {"maxLiveInt", "The peak number of live integer values"},
    {"codeSizeBytes", "The estimated code bytes of the loop body"},
    {"numLongLatencyOps",
     "The number of long latency ops. (div, sqrt, rem)"},
    {"minSymbolicDepDistance",
     "The min. dependence distance the symbolic prover cannot rule out"},
    {"provableDisjointFraction",
     "The fraction of access pairs proven disjoint across iterations"},
    {"reachablePredicatedStores",
     "The number of predicated stores not proven dead"},
};

} // namespace

const char *metaopt::featureName(FeatureId Id) {
  unsigned Index = static_cast<unsigned>(Id);
  assert(Index < NumFeatures && "feature id out of range");
  return Infos[Index].Name;
}

const char *metaopt::featureDescription(FeatureId Id) {
  unsigned Index = static_cast<unsigned>(Id);
  assert(Index < NumFeatures && "feature id out of range");
  return Infos[Index].Description;
}

FeatureSet metaopt::fullFeatureSet() {
  FeatureSet Set;
  Set.reserve(NumFeatures);
  for (unsigned I = 0; I < NumFeatures; ++I)
    Set.push_back(static_cast<FeatureId>(I));
  return Set;
}

FeatureSet metaopt::paperReducedFeatureSet() {
  // Union of Table 3 (MIS ranking) and Table 4 (greedy selection for NN
  // and the SVM): the ten features the paper actually classified with.
  return {
      FeatureId::NumFloatOps,        // Table 3 #1, Table 4 (SVM) #1.
      FeatureId::NumOperands,        // Table 3 #2, Table 4 (both).
      FeatureId::InstructionFanIn,   // Table 3 #3.
      FeatureId::LiveRangeSize,      // Table 3 #4, Table 4 (NN) #2.
      FeatureId::NumMemOps,          // Table 3 #5, Table 4 (SVM) #5.
      FeatureId::CriticalPathLatency, // Table 4 (NN) #3.
      FeatureId::NumOps,             // Table 4 (NN) #4.
      FeatureId::KnownTripCount,     // Table 4 (NN) #5.
      FeatureId::NestLevel,          // Table 4 (SVM) #2.
      FeatureId::NumBranches,        // Table 4 (SVM) #4.
  };
}
