//===- core/features/Normalizer.cpp ---------------------------------------===//

#include "core/features/Normalizer.h"

#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstdio>
#include <cmath>

using namespace metaopt;

void Normalizer::fit(const std::vector<FeatureVector> &Vectors,
                     const FeatureSet &FeatureSubset,
                     NormalizationKind KindIn) {
  assert(!FeatureSubset.empty() && "cannot fit on an empty feature set");
  Features = FeatureSubset;
  Kind = KindIn;
  Shift.assign(Features.size(), 0.0);
  Scale.assign(Features.size(), 1.0);
  if (Vectors.empty())
    return;

  for (size_t Dim = 0; Dim < Features.size(); ++Dim) {
    unsigned Index = static_cast<unsigned>(Features[Dim]);
    std::vector<double> Column;
    Column.reserve(Vectors.size());
    for (const FeatureVector &Vector : Vectors)
      Column.push_back(Vector[Index]);
    if (Kind == NormalizationKind::ZScore) {
      Shift[Dim] = mean(Column);
      double Dev = stdDev(Column);
      Scale[Dim] = Dev > 1e-12 ? Dev : 1.0;
    } else {
      double Lo = minValue(Column);
      double Hi = maxValue(Column);
      Shift[Dim] = Lo;
      Scale[Dim] = (Hi - Lo) > 1e-12 ? (Hi - Lo) : 1.0;
    }
  }
}

std::vector<double> Normalizer::apply(const FeatureVector &Vector) const {
  assert(fitted() && "normalizer must be fitted before use");
  std::vector<double> Out(Features.size());
  for (size_t Dim = 0; Dim < Features.size(); ++Dim) {
    unsigned Index = static_cast<unsigned>(Features[Dim]);
    Out[Dim] = (Vector[Index] - Shift[Dim]) / Scale[Dim];
  }
  return Out;
}

std::string Normalizer::serialize() const {
  // %.17g round-trips IEEE doubles exactly.
  char Buffer[128];
  std::string Out = "normalizer ";
  Out += Kind == NormalizationKind::ZScore ? "zscore" : "minmax";
  Out += " " + std::to_string(Features.size()) + "\n";
  for (size_t Dim = 0; Dim < Features.size(); ++Dim) {
    std::snprintf(Buffer, sizeof(Buffer), "%u %.17g %.17g\n",
                  static_cast<unsigned>(Features[Dim]), Shift[Dim],
                  Scale[Dim]);
    Out += Buffer;
  }
  return Out;
}

std::optional<Normalizer> Normalizer::deserialize(const std::string &Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.empty())
    return std::nullopt;
  std::vector<std::string> Header = splitWhitespace(Lines[0]);
  if (Header.size() != 3 || Header[0] != "normalizer")
    return std::nullopt;
  Normalizer Result;
  if (Header[1] == "zscore")
    Result.Kind = NormalizationKind::ZScore;
  else if (Header[1] == "minmax")
    Result.Kind = NormalizationKind::MinMax;
  else
    return std::nullopt;
  auto Count = parseInt(Header[2]);
  if (!Count || *Count < 1 || Lines.size() < 1 + static_cast<size_t>(*Count))
    return std::nullopt;
  for (int64_t Dim = 0; Dim < *Count; ++Dim) {
    std::vector<std::string> Parts = splitWhitespace(Lines[1 + Dim]);
    if (Parts.size() != 3)
      return std::nullopt;
    auto Feature = parseInt(Parts[0]);
    auto Shift = parseDouble(Parts[1]);
    auto Scale = parseDouble(Parts[2]);
    if (!Feature || *Feature < 0 ||
        *Feature >= static_cast<int64_t>(NumFeatures) || !Shift || !Scale)
      return std::nullopt;
    Result.Features.push_back(static_cast<FeatureId>(*Feature));
    Result.Shift.push_back(*Shift);
    Result.Scale.push_back(*Scale);
  }
  return Result;
}
