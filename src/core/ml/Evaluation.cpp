//===- core/ml/Evaluation.cpp ---------------------------------------------===//

#include "core/ml/Evaluation.h"

#include "support/TablePrinter.h"

#include <cassert>

using namespace metaopt;

RankDistribution
metaopt::rankDistribution(const Dataset &Data,
                          const std::vector<unsigned> &Predictions) {
  assert(Predictions.size() == Data.size() &&
         "prediction vector size mismatch");
  RankDistribution Result;
  if (Data.empty())
    return Result;
  for (size_t I = 0; I < Data.size(); ++I) {
    unsigned Factor = Predictions[I];
    assert(Factor >= 1 && Factor <= MaxUnrollFactor &&
           "prediction out of range");
    std::array<unsigned, MaxUnrollFactor> Ranks = factorRanks(Data[I]);
    Result.Fraction[Ranks[Factor - 1]] += 1.0;
  }
  for (double &Share : Result.Fraction)
    Share /= static_cast<double>(Data.size());
  return Result;
}

std::array<double, MaxUnrollFactor> metaopt::costByRank(const Dataset &Data) {
  std::array<double, MaxUnrollFactor> Cost = {};
  if (Data.empty())
    return Cost;
  for (const Example &Ex : Data.examples()) {
    std::array<unsigned, MaxUnrollFactor> Ranks = factorRanks(Ex);
    double Best = Ex.CyclesPerFactor[Ex.Label - 1];
    assert(Best > 0.0 && "labels must carry positive cycle counts");
    for (unsigned Factor = 0; Factor < MaxUnrollFactor; ++Factor)
      Cost[Ranks[Factor]] += Ex.CyclesPerFactor[Factor] / Best;
  }
  for (double &Value : Cost)
    Value /= static_cast<double>(Data.size());
  return Cost;
}

double
metaopt::meanCostOfPredictions(const Dataset &Data,
                               const std::vector<unsigned> &Predictions) {
  assert(Predictions.size() == Data.size() &&
         "prediction vector size mismatch");
  if (Data.empty())
    return 1.0;
  double Sum = 0.0;
  for (size_t I = 0; I < Data.size(); ++I) {
    const Example &Ex = Data[I];
    double Best = Ex.CyclesPerFactor[Ex.Label - 1];
    Sum += Ex.CyclesPerFactor[Predictions[I] - 1] / Best;
  }
  return Sum / static_cast<double>(Data.size());
}

ConfusionMatrix
metaopt::confusionMatrix(const Dataset &Data,
                         const std::vector<unsigned> &Predictions) {
  assert(Predictions.size() == Data.size() &&
         "prediction vector size mismatch");
  ConfusionMatrix Confusion = {};
  for (size_t I = 0; I < Data.size(); ++I)
    ++Confusion[Data[I].Label - 1][Predictions[I] - 1];
  return Confusion;
}

std::string
metaopt::renderConfusionMatrix(const ConfusionMatrix &Confusion) {
  TablePrinter Table("Confusion matrix (rows: empirical best; columns: "
                     "predicted)");
  std::vector<std::string> Header = {"best \\ pred"};
  for (unsigned F = 1; F <= MaxUnrollFactor; ++F)
    Header.push_back("u" + std::to_string(F));
  Table.addHeader(Header);
  for (unsigned Row = 0; Row < MaxUnrollFactor; ++Row) {
    std::vector<std::string> Cells = {"u" + std::to_string(Row + 1)};
    for (unsigned Col = 0; Col < MaxUnrollFactor; ++Col)
      Cells.push_back(std::to_string(Confusion[Row][Col]));
    Table.addRow(Cells);
  }
  return Table.render();
}
