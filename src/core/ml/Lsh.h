//===- core/ml/Lsh.h - Approximate near neighbors via LSH -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locality-sensitive hashing for the near neighbor database. Section 5.1
/// claims scalability: "advances in the area of approximate near neighbor
/// lookup permit fast access (sublinear in the size of the database) to
/// databases on the order of hundreds of thousands of examples, so we
/// expect the NN method to scale well with database size [10]."
///
/// This implements the random-hyperplane flavor: each of T tables hashes a
/// point to a B-bit signature of hyperplane sides; a query scans only the
/// points sharing its bucket in any table (falling back to a linear scan
/// when every bucket is empty), then votes within the radius exactly like
/// the exact classifier. bench/microbench_classifiers measures the
/// speedup; tests assert accuracy parity on the real corpus.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_LSH_H
#define METAOPT_CORE_ML_LSH_H

#include "core/ml/Classifier.h"

#include <map>
#include <optional>

namespace metaopt {

/// LSH structure parameters.
struct LshOptions {
  unsigned NumTables = 8;  ///< Independent hash tables (recall knob).
  unsigned NumBits = 10;   ///< Hyperplanes per table (selectivity knob).
  double Radius = 0.3;     ///< Same RMS-normalized vote radius as exact NN.
  uint64_t Seed = 0x15aac1a55;
};

/// Approximate near-neighbor classifier over hyperplane LSH buckets.
class LshNearNeighborClassifier : public Classifier {
public:
  explicit LshNearNeighborClassifier(FeatureSet Features,
                                     LshOptions Options = {});

  std::string name() const override;
  void train(const Dataset &Train) override;
  unsigned predict(const FeatureVector &Features) const override;

  /// Serializes the LSH parameters (including the hyperplane seed),
  /// normalizer, and point database. deserialize() regrows the hash
  /// tables deterministically from the seed, so the restored classifier
  /// is predict-equivalent, buckets and all.
  std::string serialize() const override;
  static std::optional<LshNearNeighborClassifier>
  deserialize(const std::string &Text);

  /// Candidate points examined by the last predict() call; the sublinear
  /// claim is that this stays far below the database size.
  size_t lastCandidateCount() const { return LastCandidates; }

  size_t databaseSize() const { return Points.size(); }

private:
  uint64_t signatureFor(unsigned Table,
                        const std::vector<double> &Point) const;

  /// (Re)draws the hyperplanes from Options.Seed and rebuilds the buckets
  /// over Points — shared by train() and deserialize().
  void rebuildTables();

  FeatureSet Features;
  LshOptions Options;
  Normalizer Norm;
  std::vector<std::vector<double>> Points;
  std::vector<unsigned> Labels;
  /// Hyperplanes[table][bit] is a D-vector; sign of the dot product gives
  /// the bit.
  std::vector<std::vector<std::vector<double>>> Hyperplanes;
  /// Buckets[table]: signature -> point indices.
  std::vector<std::map<uint64_t, std::vector<uint32_t>>> Buckets;
  mutable size_t LastCandidates = 0;
};

} // namespace metaopt

#endif // METAOPT_CORE_ML_LSH_H
