//===- core/ml/Kernel.h - Kernel functions ----------------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The radial basis kernel the paper's SVM uses ("the SVM non-linearly
/// maps the feature space into a higher dimensional space using a radial
/// basis kernel function"), plus Gram-matrix helpers.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_KERNEL_H
#define METAOPT_CORE_ML_KERNEL_H

#include "linalg/Matrix.h"

#include <vector>

namespace metaopt {

/// K(x, z) = exp(-||x - z||^2 / (2 * SigmaSquared)).
class RbfKernel {
public:
  explicit RbfKernel(double SigmaSquared);

  double operator()(const std::vector<double> &A,
                    const std::vector<double> &B) const;

  double sigmaSquared() const { return SigmaSquared; }

private:
  double SigmaSquared;
};

/// Full Gram matrix over \p Points (symmetric, unit diagonal for RBF).
Matrix kernelMatrix(const RbfKernel &Kernel,
                    const std::vector<std::vector<double>> &Points);

/// Kernel evaluations of \p Query against every point.
std::vector<double>
kernelVector(const RbfKernel &Kernel,
             const std::vector<std::vector<double>> &Points,
             const std::vector<double> &Query);

} // namespace metaopt

#endif // METAOPT_CORE_ML_KERNEL_H
