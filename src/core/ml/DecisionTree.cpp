//===- core/ml/DecisionTree.cpp -------------------------------------------===//

#include "core/ml/DecisionTree.h"

#include <algorithm>
#include <cassert>

using namespace metaopt;

DecisionTreeClassifier::DecisionTreeClassifier(FeatureSet FeaturesIn,
                                               DecisionTreeOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(OptionsIn) {
  assert(!Features.empty() && "feature set must not be empty");
  assert(Options.MaxDepth >= 1 && Options.MinLeafSize >= 1 &&
         "degenerate growth limits");
}

std::string DecisionTreeClassifier::name() const { return "decision-tree"; }

namespace {

/// Class counts over a subset of examples.
std::array<unsigned, MaxUnrollFactor>
countLabels(const std::vector<unsigned> &Labels,
            const std::vector<uint32_t> &Indices) {
  std::array<unsigned, MaxUnrollFactor> Counts = {};
  for (uint32_t Index : Indices)
    ++Counts[Labels[Index] - 1];
  return Counts;
}

unsigned majority(const std::array<unsigned, MaxUnrollFactor> &Counts) {
  unsigned Best = 0;
  for (unsigned Class = 1; Class < MaxUnrollFactor; ++Class)
    if (Counts[Class] > Counts[Best])
      Best = Class;
  return Best + 1;
}

double purity(const std::array<unsigned, MaxUnrollFactor> &Counts,
              size_t Total) {
  unsigned Max = 0;
  for (unsigned Count : Counts)
    Max = std::max(Max, Count);
  return Total ? static_cast<double>(Max) / Total : 1.0;
}

/// Gini impurity of a count vector.
double gini(const std::array<unsigned, MaxUnrollFactor> &Counts,
            double Total) {
  if (Total <= 0.0)
    return 0.0;
  double SumSquares = 0.0;
  for (unsigned Count : Counts) {
    double P = Count / Total;
    SumSquares += P * P;
  }
  return 1.0 - SumSquares;
}

} // namespace

int32_t DecisionTreeClassifier::grow(
    const std::vector<std::vector<double>> &Points,
    const std::vector<unsigned> &Labels, std::vector<uint32_t> Indices,
    unsigned Depth) {
  Node Current;
  Current.Depth = Depth;
  auto Counts = countLabels(Labels, Indices);
  Current.Label = majority(Counts);

  bool MustStop = Depth >= Options.MaxDepth ||
                  Indices.size() < 2 * Options.MinLeafSize ||
                  purity(Counts, Indices.size()) >=
                      Options.PurityThreshold;

  unsigned BestDim = 0;
  double BestThreshold = 0.0;
  double BestImpurity = 1e300;
  if (!MustStop) {
    size_t Dims = Points[0].size();
    std::vector<uint32_t> Sorted = Indices;
    for (unsigned Dim = 0; Dim < Dims; ++Dim) {
      std::sort(Sorted.begin(), Sorted.end(),
                [&](uint32_t A, uint32_t B) {
                  if (Points[A][Dim] != Points[B][Dim])
                    return Points[A][Dim] < Points[B][Dim];
                  return A < B;
                });
      // Sweep split positions, maintaining left/right counts.
      std::array<unsigned, MaxUnrollFactor> LeftCounts = {};
      std::array<unsigned, MaxUnrollFactor> RightCounts = Counts;
      for (size_t Position = 0; Position + 1 < Sorted.size(); ++Position) {
        unsigned Class = Labels[Sorted[Position]] - 1;
        ++LeftCounts[Class];
        --RightCounts[Class];
        double Here = Points[Sorted[Position]][Dim];
        double Next = Points[Sorted[Position + 1]][Dim];
        if (Here == Next)
          continue; // Cannot split between equal values.
        size_t LeftSize = Position + 1;
        size_t RightSize = Sorted.size() - LeftSize;
        if (LeftSize < Options.MinLeafSize ||
            RightSize < Options.MinLeafSize)
          continue;
        double Weighted =
            (LeftSize * gini(LeftCounts, LeftSize) +
             RightSize * gini(RightCounts, RightSize)) /
            Sorted.size();
        if (Weighted < BestImpurity) {
          BestImpurity = Weighted;
          BestDim = Dim;
          BestThreshold = 0.5 * (Here + Next);
        }
      }
    }
    // Require an actual improvement over the parent.
    if (BestImpurity >= gini(Counts, Indices.size()) - 1e-12)
      MustStop = true;
  }

  int32_t Self = static_cast<int32_t>(Nodes.size());
  Nodes.push_back(Current);
  if (MustStop)
    return Self;

  std::vector<uint32_t> LeftIndices, RightIndices;
  for (uint32_t Index : Indices) {
    if (Points[Index][BestDim] <= BestThreshold)
      LeftIndices.push_back(Index);
    else
      RightIndices.push_back(Index);
  }
  assert(!LeftIndices.empty() && !RightIndices.empty() &&
         "split produced an empty side");

  Nodes[Self].IsLeaf = false;
  Nodes[Self].SplitDim = BestDim;
  Nodes[Self].Threshold = BestThreshold;
  int32_t Left = grow(Points, Labels, std::move(LeftIndices), Depth + 1);
  Nodes[Self].Left = Left;
  int32_t Right = grow(Points, Labels, std::move(RightIndices), Depth + 1);
  Nodes[Self].Right = Right;
  return Self;
}

void DecisionTreeClassifier::train(const Dataset &Train) {
  assert(!Train.empty() && "cannot train on an empty dataset");
  Norm.fit(Train.featureMatrix(), Features);
  std::vector<std::vector<double>> Points;
  std::vector<unsigned> Labels;
  Points.reserve(Train.size());
  Labels.reserve(Train.size());
  for (const Example &Ex : Train.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Labels.push_back(Ex.Label);
  }
  Nodes.clear();
  std::vector<uint32_t> All(Train.size());
  for (uint32_t I = 0; I < Train.size(); ++I)
    All[I] = I;
  Root = grow(Points, Labels, std::move(All), 0);
}

unsigned DecisionTreeClassifier::predict(
    const FeatureVector &FeaturesIn) const {
  assert(Root >= 0 && "classifier queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);
  int32_t NodeIndex = Root;
  for (;;) {
    const Node &Current = Nodes[NodeIndex];
    if (Current.IsLeaf)
      return Current.Label;
    NodeIndex = Query[Current.SplitDim] <= Current.Threshold
                    ? Current.Left
                    : Current.Right;
  }
}

unsigned DecisionTreeClassifier::depth() const {
  unsigned Max = 0;
  for (const Node &Current : Nodes)
    Max = std::max(Max, Current.Depth);
  return Max;
}
