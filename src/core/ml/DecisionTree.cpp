//===- core/ml/DecisionTree.cpp -------------------------------------------===//

#include "core/ml/DecisionTree.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace metaopt;

DecisionTreeClassifier::DecisionTreeClassifier(FeatureSet FeaturesIn,
                                               DecisionTreeOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(OptionsIn) {
  assert(!Features.empty() && "feature set must not be empty");
  assert(Options.MaxDepth >= 1 && Options.MinLeafSize >= 1 &&
         "degenerate growth limits");
}

std::string DecisionTreeClassifier::name() const { return "decision-tree"; }

namespace {

/// Class counts over a subset of examples.
std::array<unsigned, MaxUnrollFactor>
countLabels(const std::vector<unsigned> &Labels,
            const std::vector<uint32_t> &Indices) {
  std::array<unsigned, MaxUnrollFactor> Counts = {};
  for (uint32_t Index : Indices)
    ++Counts[Labels[Index] - 1];
  return Counts;
}

unsigned majority(const std::array<unsigned, MaxUnrollFactor> &Counts) {
  unsigned Best = 0;
  for (unsigned Class = 1; Class < MaxUnrollFactor; ++Class)
    if (Counts[Class] > Counts[Best])
      Best = Class;
  return Best + 1;
}

double purity(const std::array<unsigned, MaxUnrollFactor> &Counts,
              size_t Total) {
  unsigned Max = 0;
  for (unsigned Count : Counts)
    Max = std::max(Max, Count);
  return Total ? static_cast<double>(Max) / Total : 1.0;
}

/// Gini impurity of a count vector.
double gini(const std::array<unsigned, MaxUnrollFactor> &Counts,
            double Total) {
  if (Total <= 0.0)
    return 0.0;
  double SumSquares = 0.0;
  for (unsigned Count : Counts) {
    double P = Count / Total;
    SumSquares += P * P;
  }
  return 1.0 - SumSquares;
}

} // namespace

int32_t DecisionTreeClassifier::grow(
    const std::vector<std::vector<double>> &Points,
    const std::vector<unsigned> &Labels, std::vector<uint32_t> Indices,
    unsigned Depth) {
  Node Current;
  Current.Depth = Depth;
  auto Counts = countLabels(Labels, Indices);
  Current.Label = majority(Counts);

  bool MustStop = Depth >= Options.MaxDepth ||
                  Indices.size() < 2 * Options.MinLeafSize ||
                  purity(Counts, Indices.size()) >=
                      Options.PurityThreshold;

  unsigned BestDim = 0;
  double BestThreshold = 0.0;
  double BestImpurity = 1e300;
  if (!MustStop) {
    size_t Dims = Points[0].size();
    std::vector<uint32_t> Sorted = Indices;
    for (unsigned Dim = 0; Dim < Dims; ++Dim) {
      std::sort(Sorted.begin(), Sorted.end(),
                [&](uint32_t A, uint32_t B) {
                  if (Points[A][Dim] != Points[B][Dim])
                    return Points[A][Dim] < Points[B][Dim];
                  return A < B;
                });
      // Sweep split positions, maintaining left/right counts.
      std::array<unsigned, MaxUnrollFactor> LeftCounts = {};
      std::array<unsigned, MaxUnrollFactor> RightCounts = Counts;
      for (size_t Position = 0; Position + 1 < Sorted.size(); ++Position) {
        unsigned Class = Labels[Sorted[Position]] - 1;
        ++LeftCounts[Class];
        --RightCounts[Class];
        double Here = Points[Sorted[Position]][Dim];
        double Next = Points[Sorted[Position + 1]][Dim];
        if (Here == Next)
          continue; // Cannot split between equal values.
        size_t LeftSize = Position + 1;
        size_t RightSize = Sorted.size() - LeftSize;
        if (LeftSize < Options.MinLeafSize ||
            RightSize < Options.MinLeafSize)
          continue;
        double Weighted =
            (LeftSize * gini(LeftCounts, LeftSize) +
             RightSize * gini(RightCounts, RightSize)) /
            Sorted.size();
        if (Weighted < BestImpurity) {
          BestImpurity = Weighted;
          BestDim = Dim;
          BestThreshold = 0.5 * (Here + Next);
        }
      }
    }
    // Require an actual improvement over the parent.
    if (BestImpurity >= gini(Counts, Indices.size()) - 1e-12)
      MustStop = true;
  }

  int32_t Self = static_cast<int32_t>(Nodes.size());
  Nodes.push_back(Current);
  if (MustStop)
    return Self;

  std::vector<uint32_t> LeftIndices, RightIndices;
  for (uint32_t Index : Indices) {
    if (Points[Index][BestDim] <= BestThreshold)
      LeftIndices.push_back(Index);
    else
      RightIndices.push_back(Index);
  }
  assert(!LeftIndices.empty() && !RightIndices.empty() &&
         "split produced an empty side");

  Nodes[Self].IsLeaf = false;
  Nodes[Self].SplitDim = BestDim;
  Nodes[Self].Threshold = BestThreshold;
  int32_t Left = grow(Points, Labels, std::move(LeftIndices), Depth + 1);
  Nodes[Self].Left = Left;
  int32_t Right = grow(Points, Labels, std::move(RightIndices), Depth + 1);
  Nodes[Self].Right = Right;
  return Self;
}

void DecisionTreeClassifier::train(const Dataset &Train) {
  assert(!Train.empty() && "cannot train on an empty dataset");
  Norm.fit(Train.featureMatrix(), Features);
  std::vector<std::vector<double>> Points;
  std::vector<unsigned> Labels;
  Points.reserve(Train.size());
  Labels.reserve(Train.size());
  for (const Example &Ex : Train.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Labels.push_back(Ex.Label);
  }
  Nodes.clear();
  std::vector<uint32_t> All(Train.size());
  for (uint32_t I = 0; I < Train.size(); ++I)
    All[I] = I;
  Root = grow(Points, Labels, std::move(All), 0);
}

unsigned DecisionTreeClassifier::predict(
    const FeatureVector &FeaturesIn) const {
  assert(Root >= 0 && "classifier queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);
  int32_t NodeIndex = Root;
  for (;;) {
    const Node &Current = Nodes[NodeIndex];
    if (Current.IsLeaf)
      return Current.Label;
    NodeIndex = Query[Current.SplitDim] <= Current.Threshold
                    ? Current.Left
                    : Current.Right;
  }
}

unsigned DecisionTreeClassifier::depth() const {
  unsigned Max = 0;
  for (const Node &Current : Nodes)
    Max = std::max(Max, Current.Depth);
  return Max;
}

std::string DecisionTreeClassifier::serialize() const {
  assert(Root >= 0 && "serialize() requires a trained classifier");
  char Buffer[64];
  std::string Out = "dtree-model 1\n";
  std::snprintf(Buffer, sizeof(Buffer), "limits %u %u %.17g\n",
                Options.MaxDepth, Options.MinLeafSize,
                Options.PurityThreshold);
  Out += Buffer;
  Out += Norm.serialize();
  Out += "nodes " + std::to_string(Nodes.size()) + " root " +
         std::to_string(Root) + "\n";
  for (const Node &Current : Nodes) {
    std::snprintf(Buffer, sizeof(Buffer), "%d %u %u %.17g %d %d %u\n",
                  Current.IsLeaf ? 1 : 0, Current.Label, Current.SplitDim,
                  Current.Threshold, Current.Left, Current.Right,
                  Current.Depth);
    Out += Buffer;
  }
  return Out;
}

std::optional<DecisionTreeClassifier>
DecisionTreeClassifier::deserialize(const std::string &Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.size() < 4 || trim(Lines[0]) != "dtree-model 1")
    return std::nullopt;
  std::vector<std::string> Limits = splitWhitespace(Lines[1]);
  if (Limits.size() != 4 || Limits[0] != "limits")
    return std::nullopt;
  auto MaxDepth = parseInt(Limits[1]);
  auto MinLeafSize = parseInt(Limits[2]);
  auto PurityThreshold = parseDouble(Limits[3]);
  if (!MaxDepth || !MinLeafSize || !PurityThreshold || *MaxDepth < 1 ||
      *MinLeafSize < 1)
    return std::nullopt;

  size_t Index = 2;
  std::optional<Normalizer> Norm = parseNormalizerBlock(Lines, Index);
  if (!Norm || Lines.size() <= Index)
    return std::nullopt;

  std::vector<std::string> NodesHeader = splitWhitespace(Lines[Index]);
  if (NodesHeader.size() != 4 || NodesHeader[0] != "nodes" ||
      NodesHeader[2] != "root")
    return std::nullopt;
  auto NumNodes = parseInt(NodesHeader[1]);
  auto Root = parseInt(NodesHeader[3]);
  if (!NumNodes || !Root || *NumNodes < 1 || *Root < 0 ||
      *Root >= *NumNodes ||
      Lines.size() < Index + 1 + static_cast<size_t>(*NumNodes))
    return std::nullopt;

  DecisionTreeOptions Options;
  Options.MaxDepth = static_cast<unsigned>(*MaxDepth);
  Options.MinLeafSize = static_cast<unsigned>(*MinLeafSize);
  Options.PurityThreshold = *PurityThreshold;
  DecisionTreeClassifier Result(Norm->featureSet(), Options);
  int64_t Dims = static_cast<int64_t>(Norm->dimension());
  Result.Norm = std::move(*Norm);
  Result.Root = static_cast<int32_t>(*Root);
  for (int64_t I = 0; I < *NumNodes; ++I) {
    std::vector<std::string> Parts =
        splitWhitespace(Lines[Index + 1 + I]);
    if (Parts.size() != 7)
      return std::nullopt;
    auto IsLeaf = parseInt(Parts[0]);
    auto Label = parseInt(Parts[1]);
    auto SplitDim = parseInt(Parts[2]);
    auto Threshold = parseDouble(Parts[3]);
    auto Left = parseInt(Parts[4]);
    auto Right = parseInt(Parts[5]);
    auto Depth = parseInt(Parts[6]);
    if (!IsLeaf || !Label || !SplitDim || !Threshold || !Left || !Right ||
        !Depth)
      return std::nullopt;
    if ((*IsLeaf != 0 && *IsLeaf != 1) || *Label < 1 ||
        *Label > static_cast<int64_t>(MaxUnrollFactor) || *Depth < 0)
      return std::nullopt;
    Node Current;
    Current.IsLeaf = *IsLeaf == 1;
    Current.Label = static_cast<unsigned>(*Label);
    Current.Depth = static_cast<unsigned>(*Depth);
    if (Current.IsLeaf) {
      // Leaves carry no split; reject stray child links so a tampered
      // blob cannot smuggle in dangling indices.
      if (*Left != -1 || *Right != -1)
        return std::nullopt;
    } else {
      if (*SplitDim < 0 || *SplitDim >= Dims || *Left < 0 ||
          *Left >= *NumNodes || *Right < 0 || *Right >= *NumNodes)
        return std::nullopt;
      Current.SplitDim = static_cast<unsigned>(*SplitDim);
      Current.Threshold = *Threshold;
      Current.Left = static_cast<int32_t>(*Left);
      Current.Right = static_cast<int32_t>(*Right);
    }
    Result.Nodes.push_back(Current);
  }
  // Depth must strictly increase along child links; this rules out
  // cycles, so predict()'s walk always terminates.
  for (const Node &Current : Result.Nodes)
    if (!Current.IsLeaf &&
        (Result.Nodes[Current.Left].Depth != Current.Depth + 1 ||
         Result.Nodes[Current.Right].Depth != Current.Depth + 1))
      return std::nullopt;
  return Result;
}
