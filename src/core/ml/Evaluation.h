//===- core/ml/Evaluation.h - Prediction-rank statistics --------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machinery behind Table 2: for a set of predictions, the fraction
/// that picked the optimal / second-best / ... / worst unroll factor, and
/// the average runtime cost of mispredicting at each rank (the table's
/// rightmost column).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_EVALUATION_H
#define METAOPT_CORE_ML_EVALUATION_H

#include "core/ml/Dataset.h"

namespace metaopt {

/// Rank-bucketed prediction quality.
struct RankDistribution {
  /// Fraction[r] = share of predictions whose chosen factor was the
  /// (r+1)-th best for the loop.
  std::array<double, MaxUnrollFactor> Fraction = {};
  double accuracy() const { return Fraction[0]; }
  double topTwoAccuracy() const { return Fraction[0] + Fraction[1]; }
};

/// Buckets \p Predictions by the rank of the chosen factor.
RankDistribution rankDistribution(const Dataset &Data,
                                  const std::vector<unsigned> &Predictions);

/// Cost[r]: mean over the dataset of cycles(r-th best factor) divided by
/// cycles(best factor) — the "Cost" column of Table 2 (1x for rank 0).
std::array<double, MaxUnrollFactor> costByRank(const Dataset &Data);

/// Mean of cycles(predicted) / cycles(best) over the dataset: how far from
/// optimal the policy's choices run on average.
double meanCostOfPredictions(const Dataset &Data,
                             const std::vector<unsigned> &Predictions);

/// Confusion[true-1][predicted-1]: counts of each (label, prediction)
/// pair; the standard companion view to Table 2's rank buckets.
using ConfusionMatrix =
    std::array<std::array<size_t, MaxUnrollFactor>, MaxUnrollFactor>;
ConfusionMatrix confusionMatrix(const Dataset &Data,
                                const std::vector<unsigned> &Predictions);

/// Renders the confusion matrix as an aligned console table.
std::string renderConfusionMatrix(const ConfusionMatrix &Confusion);

} // namespace metaopt

#endif // METAOPT_CORE_ML_EVALUATION_H
