//===- core/ml/Dataset.h - Labeled training data ----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The labeled dataset: one example per usable loop, holding its 38-entry
/// feature vector, the empirically best unroll factor (the label), the
/// median measured cycles at every factor (for rank/cost analysis and the
/// oracle), and provenance. Includes CSV round-tripping: the paper released
/// its raw loop data, and so does this reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_DATASET_H
#define METAOPT_CORE_ML_DATASET_H

#include "core/features/FeatureCatalog.h"
#include "ir/Loop.h"
#include "support/Rng.h"

#include <array>
#include <optional>
#include <string>
#include <vector>

namespace metaopt {

/// One labeled loop.
struct Example {
  FeatureVector Features = {};
  /// Best unroll factor, 1..MaxUnrollFactor.
  unsigned Label = 1;
  /// Median measured cycles at factor f (index f-1).
  std::array<double, MaxUnrollFactor> CyclesPerFactor = {};
  std::string LoopName;
  std::string BenchmarkName;
};

/// A bag of examples with provenance-aware splitting helpers.
class Dataset {
public:
  Dataset() = default;

  void add(Example Ex) { Examples.push_back(std::move(Ex)); }
  size_t size() const { return Examples.size(); }
  bool empty() const { return Examples.empty(); }
  const Example &operator[](size_t Index) const { return Examples[Index]; }
  const std::vector<Example> &examples() const { return Examples; }

  /// All raw feature vectors (e.g. for fitting a Normalizer).
  std::vector<FeatureVector> featureMatrix() const;

  /// Histogram of labels: Counts[f-1] = number of examples labeled f.
  std::array<size_t, MaxUnrollFactor> labelHistogram() const;

  /// Examples not originating from \p BenchmarkName — the paper's
  /// leave-one-benchmark-out protocol for the speedup experiments.
  Dataset excludingBenchmark(const std::string &BenchmarkName) const;

  /// A copy with all but one example; for brute-force LOOCV in tests.
  Dataset withoutExample(size_t Index) const;

  /// Deterministic random subsample of at most \p MaxSize examples.
  Dataset subsample(size_t MaxSize, Rng &Generator) const;

  /// Serializes to CSV (header + one row per example).
  std::string toCsv() const;

  /// Parses a CSV produced by toCsv(). Returns std::nullopt on malformed
  /// input.
  static std::optional<Dataset> fromCsv(const std::string &Text);

private:
  std::vector<Example> Examples;
};

/// Ranks the factors of an example from best (rank 0) to worst by measured
/// cycles. RankOf[f-1] gives the rank of factor f.
std::array<unsigned, MaxUnrollFactor>
factorRanks(const Example &Ex);

} // namespace metaopt

#endif // METAOPT_CORE_ML_DATASET_H
