//===- core/ml/Forest.h - Random forest over CART trees ---------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A random forest: NumTrees CART trees (the existing DecisionTree
/// machinery), each grown on a seeded bootstrap resample of the training
/// set over a seeded random feature subset, voting by majority with ties
/// resolved toward the lowest factor. Monsifrot et al. used boosted trees
/// for the binary unroll decision; the ensemble is the tree-family
/// comparator the ROADMAP's model-zoo item asks for.
///
/// Determinism contract: tree t's bootstrap and feature subset are drawn
/// from Rng::splitStream(Seed, t) — a pure function of (Seed, t) — so the
/// trees may be trained on any number of threads (parallelMap) and the
/// serialized model is byte-identical regardless.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_FOREST_H
#define METAOPT_CORE_ML_FOREST_H

#include "core/ml/DecisionTree.h"

#include <cstdint>
#include <optional>

namespace metaopt {

/// Ensemble shape and seeding.
struct RandomForestOptions {
  unsigned NumTrees = 16;
  /// Fraction of the classifier's feature set each tree sees (at least
  /// one feature survives).
  double FeatureFraction = 0.6;
  /// Base seed for per-tree bootstrap + feature subsampling.
  uint64_t Seed = 0x04e57;
  /// Growth limits shared by every tree.
  DecisionTreeOptions Tree;
};

/// Bagged CART ensemble with per-tree feature subspaces.
class RandomForestClassifier : public Classifier {
public:
  explicit RandomForestClassifier(FeatureSet Features,
                                  RandomForestOptions Options = {});

  std::string name() const override;
  void train(const Dataset &Train) override;
  unsigned predict(const FeatureVector &Features) const override;
  /// Vote fractions per factor.
  std::array<double, MaxUnrollFactor>
  scores(const FeatureVector &Features) const override;

  /// Serializes options plus every member tree's own blob (framed by line
  /// counts), with a trailing FNV-1a checksum line.
  std::string serialize() const override;

  /// Restores a serialized forest. On failure returns std::nullopt and,
  /// when \p Error is non-null, stores a one-line diagnostic (bad tree
  /// count, truncation, checksum mismatch, ...).
  static std::optional<RandomForestClassifier>
  deserialize(const std::string &Text, std::string *Error = nullptr);

  size_t numTrees() const { return Trees.size(); }

private:
  FeatureSet Features;
  RandomForestOptions Options;
  std::vector<DecisionTreeClassifier> Trees;
};

} // namespace metaopt

#endif // METAOPT_CORE_ML_FOREST_H
