//===- core/ml/FeatureSelection.cpp ---------------------------------------===//

#include "core/ml/FeatureSelection.h"

#include "concurrency/Parallel.h"
#include "core/ml/Forest.h"
#include "core/ml/Mlp.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace metaopt;

/// Discretizes a feature column into equal-frequency bins; returns the bin
/// index of every example. Repeated values land in one bin.
static std::vector<int> equalFrequencyBins(const std::vector<double> &Column,
                                           int Bins) {
  size_t N = Column.size();
  std::vector<size_t> Order(N);
  for (size_t I = 0; I < N; ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    if (Column[A] != Column[B])
      return Column[A] < Column[B];
    return A < B;
  });
  std::vector<int> BinOf(N, 0);
  // Walk the sorted order assigning bins, keeping ties together.
  int CurrentBin = 0;
  size_t PerBin = (N + Bins - 1) / Bins;
  size_t InBin = 0;
  for (size_t Position = 0; Position < N; ++Position) {
    if (InBin >= PerBin && Position > 0 &&
        Column[Order[Position]] != Column[Order[Position - 1]] &&
        CurrentBin + 1 < Bins) {
      ++CurrentBin;
      InBin = 0;
    }
    BinOf[Order[Position]] = CurrentBin;
    ++InBin;
  }
  return BinOf;
}

double metaopt::mutualInformationScore(const Dataset &Data,
                                       FeatureId Feature, int Bins) {
  assert(Bins >= 2 && "need at least two bins");
  if (Data.empty())
    return 0.0;
  size_t N = Data.size();
  std::vector<double> Column(N);
  unsigned Index = static_cast<unsigned>(Feature);
  for (size_t I = 0; I < N; ++I)
    Column[I] = Data[I].Features[Index];
  std::vector<int> BinOf = equalFrequencyBins(Column, Bins);

  // Joint and marginal counts over (bin, label).
  std::map<std::pair<int, unsigned>, double> Joint;
  std::map<int, double> BinMarginal;
  std::array<double, MaxUnrollFactor> LabelMarginal = {};
  for (size_t I = 0; I < N; ++I) {
    unsigned Label = Data[I].Label;
    Joint[{BinOf[I], Label}] += 1.0;
    BinMarginal[BinOf[I]] += 1.0;
    LabelMarginal[Label - 1] += 1.0;
  }

  double Information = 0.0;
  double Total = static_cast<double>(N);
  for (const auto &[Key, Count] : Joint) {
    double Pxy = Count / Total;
    double Px = BinMarginal[Key.first] / Total;
    double Py = LabelMarginal[Key.second - 1] / Total;
    Information += Pxy * std::log2(Pxy / (Px * Py));
  }
  return Information;
}

std::vector<std::pair<FeatureId, double>>
metaopt::rankByMutualInformation(const Dataset &Data, int Bins) {
  std::vector<std::pair<FeatureId, double>> Scores;
  Scores.reserve(NumFeatures);
  for (unsigned I = 0; I < NumFeatures; ++I) {
    FeatureId Id = static_cast<FeatureId>(I);
    Scores.emplace_back(Id, mutualInformationScore(Data, Id, Bins));
  }
  std::sort(Scores.begin(), Scores.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return static_cast<unsigned>(A.first) < static_cast<unsigned>(B.first);
  });
  return Scores;
}

std::vector<GreedyStep>
metaopt::greedyFeatureSelection(const Dataset &Data,
                                const TrainErrorFn &Error,
                                unsigned MaxFeatures) {
  assert(MaxFeatures >= 1 && MaxFeatures <= NumFeatures &&
         "feature budget out of range");
  std::vector<GreedyStep> Steps;
  FeatureSet Chosen;
  std::vector<bool> Used(NumFeatures, false);

  for (unsigned Step = 0; Step < MaxFeatures; ++Step) {
    // Score every candidate in parallel (each retrains its own
    // classifier), then pick the winner serially in feature order —
    // identical tie-breaking to the serial scan.
    std::vector<double> Errors =
        parallelMap<double>(NumFeatures, [&](size_t Candidate) {
          if (Used[Candidate])
            return 2.0; // Sentinel above any real error rate.
          FeatureSet Trial = Chosen;
          Trial.push_back(static_cast<FeatureId>(Candidate));
          return Error(Trial, Data);
        });
    double BestError = 2.0;
    unsigned BestFeature = NumFeatures;
    for (unsigned Candidate = 0; Candidate < NumFeatures; ++Candidate) {
      if (Used[Candidate])
        continue;
      if (Errors[Candidate] < BestError) {
        BestError = Errors[Candidate];
        BestFeature = Candidate;
      }
    }
    assert(BestFeature < NumFeatures && "no candidate evaluated");
    Used[BestFeature] = true;
    Chosen.push_back(static_cast<FeatureId>(BestFeature));
    Steps.push_back({static_cast<FeatureId>(BestFeature), BestError});
  }
  return Steps;
}

double metaopt::nearNeighborTrainError(const FeatureSet &Features,
                                       const Dataset &Data) {
  if (Data.empty())
    return 1.0;
  // A tiny radius forces the single-nearest-neighbor fallback, which is
  // the modified algorithm the paper uses for greedy selection.
  NearNeighborClassifier Classifier(Features, /*Radius=*/1e-9);
  Classifier.train(Data);
  size_t Wrong = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    if (Classifier.predictExcluding(I) != Data[I].Label)
      ++Wrong;
  return static_cast<double>(Wrong) / Data.size();
}

double metaopt::svmTrainError(const FeatureSet &Features,
                              const Dataset &Data) {
  if (Data.empty())
    return 1.0;
  SvmClassifier Classifier(Features);
  Classifier.train(Data);
  return 1.0 - Classifier.accuracyOn(Data);
}

double metaopt::mlpTrainError(const FeatureSet &Features,
                              const Dataset &Data) {
  if (Data.empty())
    return 1.0;
  MlpClassifier Classifier(Features);
  Classifier.train(Data);
  return 1.0 - Classifier.accuracyOn(Data);
}

double metaopt::forestTrainError(const FeatureSet &Features,
                                 const Dataset &Data) {
  if (Data.empty())
    return 1.0;
  RandomForestClassifier Classifier(Features);
  Classifier.train(Data);
  return 1.0 - Classifier.accuracyOn(Data);
}
