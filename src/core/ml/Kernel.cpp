//===- core/ml/Kernel.cpp -------------------------------------------------===//

#include "core/ml/Kernel.h"

#include <cassert>
#include <cmath>

using namespace metaopt;

RbfKernel::RbfKernel(double SigmaSquaredIn) : SigmaSquared(SigmaSquaredIn) {
  assert(SigmaSquared > 0.0 && "kernel width must be positive");
}

double RbfKernel::operator()(const std::vector<double> &A,
                             const std::vector<double> &B) const {
  return std::exp(-squaredDistance(A, B) / (2.0 * SigmaSquared));
}

Matrix metaopt::kernelMatrix(
    const RbfKernel &Kernel,
    const std::vector<std::vector<double>> &Points) {
  size_t N = Points.size();
  Matrix K(N, N);
  for (size_t I = 0; I < N; ++I) {
    K.at(I, I) = 1.0; // RBF kernel of a point with itself.
    for (size_t J = I + 1; J < N; ++J) {
      double Value = Kernel(Points[I], Points[J]);
      K.at(I, J) = Value;
      K.at(J, I) = Value;
    }
  }
  return K;
}

std::vector<double> metaopt::kernelVector(
    const RbfKernel &Kernel, const std::vector<std::vector<double>> &Points,
    const std::vector<double> &Query) {
  std::vector<double> Values;
  Values.reserve(Points.size());
  for (const std::vector<double> &Point : Points)
    Values.push_back(Kernel(Point, Query));
  return Values;
}
