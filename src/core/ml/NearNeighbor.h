//===- core/ml/NearNeighbor.h - Radius-vote NN classifier -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's near neighbor (NN) classifier (§5.1): training populates a
/// database of normalized (feature vector, unroll factor) pairs; a query
/// takes the majority label among database entries within a fixed radius
/// (the paper uses 0.3), falling back to the single nearest neighbor when
/// the ball is empty. A confidence (agreeing-neighbor fraction) is exposed
/// for the outlier-triage workflow the paper sketches.
///
/// Distances are Euclidean over normalized features, divided by sqrt(D) so
/// the radius keeps the same meaning whichever feature subset is active.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_NEARNEIGHBOR_H
#define METAOPT_CORE_ML_NEARNEIGHBOR_H

#include "core/ml/Classifier.h"

#include <optional>

namespace metaopt {

/// Radius-voting near neighbor classifier.
class NearNeighborClassifier : public Classifier {
public:
  /// \p Radius in RMS-per-dimension distance units; \p KNearestFallback
  /// configures the 1-NN fallback pool used when the radius is empty.
  explicit NearNeighborClassifier(FeatureSet Features,
                                  double Radius = 0.3);

  std::string name() const override;
  void train(const Dataset &Train) override;
  unsigned predict(const FeatureVector &Features) const override;

  /// Per-factor vote fractions from the radius ball (the 1-NN fallback's
  /// pick gets 1.0 when the ball is empty).
  std::array<double, MaxUnrollFactor>
  scores(const FeatureVector &Features) const override;

  /// Prediction plus vote context for confidence assessment.
  struct Vote {
    unsigned Factor = 1;      ///< Predicted unroll factor.
    unsigned NeighborCount = 0; ///< Entries within the radius.
    unsigned AgreeingCount = 0; ///< Entries voting for Factor.
    /// AgreeingCount / NeighborCount, 0 when the ball was empty (the
    /// 1-NN fallback decided).
    double confidence() const {
      return NeighborCount ? static_cast<double>(AgreeingCount) /
                                 NeighborCount
                           : 0.0;
    }
  };
  Vote predictWithVote(const FeatureVector &Features) const;

  /// Leave-one-out prediction for database entry \p Index: the entry
  /// itself does not vote. This is how LOOCV over the NN database runs in
  /// O(n) per example instead of retraining.
  unsigned predictExcluding(size_t Index) const;

  /// Leave-one-out vote details for entry \p Index (confidence triage).
  Vote voteExcluding(size_t Index) const;

  double radius() const { return Radius; }
  size_t databaseSize() const { return Points.size(); }

  /// Serializes the trained database (radius, normalizer, normalized
  /// points and labels) so a compiler can ship and load the model without
  /// retraining; deserialize() restores a predict-equivalent classifier.
  std::string serialize() const override;
  static std::optional<NearNeighborClassifier>
  deserialize(const std::string &Text);

private:
  Vote voteFor(const std::vector<double> &Query,
               size_t ExcludedIndex) const;

  FeatureSet Features;
  double Radius;
  Normalizer Norm;
  std::vector<std::vector<double>> Points;
  std::vector<unsigned> Labels;
};

} // namespace metaopt

#endif // METAOPT_CORE_ML_NEARNEIGHBOR_H
