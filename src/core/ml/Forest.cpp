//===- core/ml/Forest.cpp -------------------------------------------------===//

#include "core/ml/Forest.h"

#include "concurrency/Parallel.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace metaopt;

RandomForestClassifier::RandomForestClassifier(FeatureSet FeaturesIn,
                                               RandomForestOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(OptionsIn) {
  assert(!Features.empty() && "feature set must not be empty");
  assert(Options.NumTrees >= 1 && "forest needs at least one tree");
  assert(Options.FeatureFraction > 0.0 && Options.FeatureFraction <= 1.0 &&
         "feature fraction outside (0, 1]");
}

std::string RandomForestClassifier::name() const { return "random-forest"; }

void RandomForestClassifier::train(const Dataset &Train) {
  assert(!Train.empty() && "cannot train on an empty dataset");
  // Each tree depends only on (Seed, TreeIndex), never on which thread
  // grows it, and parallelMap orders results by index — so the trained
  // forest (and its serialization) is byte-identical at any --threads.
  std::vector<std::optional<DecisionTreeClassifier>> Grown =
      parallelMap<std::optional<DecisionTreeClassifier>>(
          Options.NumTrees, [&](size_t TreeIndex) {
            Rng Stream = Rng::splitStream(Options.Seed, TreeIndex);

            // Random feature subspace: shuffle, truncate, re-sort by id so
            // the subset (not its order) is what varies per tree.
            FeatureSet Subset = Features;
            Stream.shuffle(Subset);
            // ceil, not round: a fraction of a small feature set must not
            // starve a tree below the features the rule actually needs.
            size_t Keep = std::max<size_t>(
                1, static_cast<size_t>(
                       std::ceil(Options.FeatureFraction *
                                 static_cast<double>(Subset.size()))));
            Subset.resize(std::min(Keep, Subset.size()));
            std::sort(Subset.begin(), Subset.end());

            // Bootstrap: n draws with replacement.
            Dataset Sample;
            for (size_t Draw = 0; Draw < Train.size(); ++Draw)
              Sample.add(Train[Stream.nextBelow(Train.size())]);

            DecisionTreeClassifier Tree(Subset, Options.Tree);
            Tree.train(Sample);
            return std::optional<DecisionTreeClassifier>(std::move(Tree));
          });
  Trees.clear();
  Trees.reserve(Grown.size());
  for (std::optional<DecisionTreeClassifier> &Tree : Grown)
    Trees.push_back(std::move(*Tree));
}

std::array<double, MaxUnrollFactor>
RandomForestClassifier::scores(const FeatureVector &FeaturesIn) const {
  assert(!Trees.empty() && "classifier queried before training");
  std::array<double, MaxUnrollFactor> Votes = {};
  for (const DecisionTreeClassifier &Tree : Trees)
    Votes[Tree.predict(FeaturesIn) - 1] += 1.0;
  for (double &Vote : Votes)
    Vote /= Trees.size();
  return Votes;
}

unsigned
RandomForestClassifier::predict(const FeatureVector &FeaturesIn) const {
  std::array<double, MaxUnrollFactor> Votes = scores(FeaturesIn);
  // Strict comparison: vote ties resolve to the lowest (safest) factor.
  unsigned Best = 0;
  for (unsigned Class = 1; Class < MaxUnrollFactor; ++Class)
    if (Votes[Class] > Votes[Best])
      Best = Class;
  return Best + 1;
}

std::string RandomForestClassifier::serialize() const {
  assert(!Trees.empty() && "serialize() requires a trained classifier");
  char Buffer[128];
  std::string Out = "forest-model 1\n";
  std::snprintf(Buffer, sizeof(Buffer), "options %u %.17g %llu\n",
                Options.NumTrees, Options.FeatureFraction,
                static_cast<unsigned long long>(Options.Seed));
  Out += Buffer;
  std::snprintf(Buffer, sizeof(Buffer), "limits %u %u %.17g\n",
                Options.Tree.MaxDepth, Options.Tree.MinLeafSize,
                Options.Tree.PurityThreshold);
  Out += Buffer;
  // The forest-level feature set is not recoverable from the trees (each
  // sees only its subspace), so it rides along explicitly.
  Out += "features " + std::to_string(Features.size());
  for (FeatureId Id : Features)
    Out += " " + std::to_string(static_cast<unsigned>(Id));
  Out += "\n";
  Out += "trees " + std::to_string(Trees.size()) + "\n";
  for (size_t TreeIndex = 0; TreeIndex < Trees.size(); ++TreeIndex) {
    std::string Blob = Trees[TreeIndex].serialize();
    // Frame each embedded blob by its line count so the loader can slice
    // without understanding the dtree format.
    size_t NumLines =
        static_cast<size_t>(std::count(Blob.begin(), Blob.end(), '\n'));
    Out += "tree " + std::to_string(TreeIndex) + " lines " +
           std::to_string(NumLines) + "\n";
    Out += Blob;
  }
  std::snprintf(Buffer, sizeof(Buffer), "checksum %016llx\n",
                static_cast<unsigned long long>(Rng::hashString(Out)));
  Out += Buffer;
  return Out;
}

namespace {

std::optional<uint64_t> parseU64(const std::string &Str) {
  if (Str.empty() || Str[0] == '-')
    return std::nullopt;
  char *End = nullptr;
  errno = 0;
  uint64_t Value = std::strtoull(Str.c_str(), &End, 10);
  if (errno != 0 || End != Str.c_str() + Str.size())
    return std::nullopt;
  return Value;
}

std::optional<uint64_t> parseHex64(const std::string &Str) {
  if (Str.empty())
    return std::nullopt;
  char *End = nullptr;
  errno = 0;
  uint64_t Value = std::strtoull(Str.c_str(), &End, 16);
  if (errno != 0 || End != Str.c_str() + Str.size())
    return std::nullopt;
  return Value;
}

void fail(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
}

} // namespace

std::optional<RandomForestClassifier>
RandomForestClassifier::deserialize(const std::string &Text,
                                    std::string *Error) {
  size_t ChecksumPos = Text.rfind("\nchecksum ");
  if (ChecksumPos == std::string::npos) {
    fail(Error, "forest: missing checksum line (truncated model?)");
    return std::nullopt;
  }
  std::string Body = Text.substr(0, ChecksumPos + 1);
  std::vector<std::string> TailParts =
      splitWhitespace(Text.substr(ChecksumPos + 1));
  std::optional<uint64_t> Stored =
      TailParts.size() == 2 ? parseHex64(TailParts[1]) : std::nullopt;
  if (!Stored) {
    fail(Error, "forest: malformed checksum line");
    return std::nullopt;
  }
  if (*Stored != Rng::hashString(Body)) {
    fail(Error, "forest: checksum mismatch (corrupt or tampered model)");
    return std::nullopt;
  }

  std::vector<std::string> Lines = split(Body, '\n');
  if (Lines.size() < 5 || trim(Lines[0]) != "forest-model 1") {
    fail(Error, "forest: unrecognized header");
    return std::nullopt;
  }
  std::vector<std::string> Opts = splitWhitespace(Lines[1]);
  if (Opts.size() != 4 || Opts[0] != "options") {
    fail(Error, "forest: malformed options line");
    return std::nullopt;
  }
  auto NumTrees = parseInt(Opts[1]);
  auto FeatureFraction = parseDouble(Opts[2]);
  auto Seed = parseU64(Opts[3]);
  if (!NumTrees || !FeatureFraction || !Seed || *NumTrees < 1 ||
      *FeatureFraction <= 0.0 || *FeatureFraction > 1.0) {
    fail(Error, "forest: malformed options line");
    return std::nullopt;
  }
  std::vector<std::string> Limits = splitWhitespace(Lines[2]);
  if (Limits.size() != 4 || Limits[0] != "limits") {
    fail(Error, "forest: malformed limits line");
    return std::nullopt;
  }
  auto MaxDepth = parseInt(Limits[1]);
  auto MinLeafSize = parseInt(Limits[2]);
  auto PurityThreshold = parseDouble(Limits[3]);
  if (!MaxDepth || !MinLeafSize || !PurityThreshold || *MaxDepth < 1 ||
      *MinLeafSize < 1) {
    fail(Error, "forest: malformed limits line");
    return std::nullopt;
  }
  std::vector<std::string> FeatureParts = splitWhitespace(Lines[3]);
  if (FeatureParts.size() < 2 || FeatureParts[0] != "features") {
    fail(Error, "forest: malformed features line");
    return std::nullopt;
  }
  auto NumFeaturesListed = parseInt(FeatureParts[1]);
  if (!NumFeaturesListed || *NumFeaturesListed < 1 ||
      FeatureParts.size() != static_cast<size_t>(*NumFeaturesListed) + 2) {
    fail(Error, "forest: malformed features line");
    return std::nullopt;
  }
  FeatureSet ForestFeatures;
  for (size_t I = 2; I < FeatureParts.size(); ++I) {
    auto Id = parseInt(FeatureParts[I]);
    if (!Id || *Id < 0 || *Id >= static_cast<int64_t>(NumFeatures)) {
      fail(Error, "forest: feature id out of range");
      return std::nullopt;
    }
    ForestFeatures.push_back(static_cast<FeatureId>(*Id));
  }

  std::vector<std::string> TreesHeader = splitWhitespace(Lines[4]);
  if (TreesHeader.size() != 2 || TreesHeader[0] != "trees") {
    fail(Error, "forest: malformed trees header");
    return std::nullopt;
  }
  auto TreeCount = parseInt(TreesHeader[1]);
  // A forest claiming zero, negative, or absurdly many trees is rejected
  // before any allocation happens.
  if (!TreeCount || *TreeCount < 1 || *TreeCount > 4096 ||
      *TreeCount != *NumTrees) {
    fail(Error, "forest: bad tree count");
    return std::nullopt;
  }

  std::vector<DecisionTreeClassifier> Trees;
  size_t Index = 5;
  for (int64_t TreeIndex = 0; TreeIndex < *TreeCount; ++TreeIndex) {
    if (Lines.size() <= Index) {
      fail(Error, "forest: truncated model (missing tree frame)");
      return std::nullopt;
    }
    std::vector<std::string> Frame = splitWhitespace(Lines[Index]);
    ++Index;
    if (Frame.size() != 4 || Frame[0] != "tree" || Frame[2] != "lines") {
      fail(Error, "forest: malformed tree frame");
      return std::nullopt;
    }
    auto FrameIndex = parseInt(Frame[1]);
    auto FrameLines = parseInt(Frame[3]);
    if (!FrameIndex || !FrameLines || *FrameIndex != TreeIndex ||
        *FrameLines < 1) {
      fail(Error, "forest: malformed tree frame");
      return std::nullopt;
    }
    if (Lines.size() < Index + static_cast<size_t>(*FrameLines)) {
      fail(Error, "forest: truncated model (tree frame overruns blob)");
      return std::nullopt;
    }
    std::string Blob;
    for (int64_t I = 0; I < *FrameLines; ++I)
      Blob += Lines[Index + static_cast<size_t>(I)] + "\n";
    Index += static_cast<size_t>(*FrameLines);
    std::optional<DecisionTreeClassifier> Tree =
        DecisionTreeClassifier::deserialize(Blob);
    if (!Tree) {
      fail(Error, "forest: embedded tree rejected");
      return std::nullopt;
    }
    Trees.push_back(std::move(*Tree));
  }
  // Nothing may trail the last tree inside the checksummed body.
  for (; Index < Lines.size(); ++Index)
    if (!trim(Lines[Index]).empty()) {
      fail(Error, "forest: trailing garbage after last tree");
      return std::nullopt;
    }

  RandomForestOptions Options;
  Options.NumTrees = static_cast<unsigned>(*NumTrees);
  Options.FeatureFraction = *FeatureFraction;
  Options.Seed = *Seed;
  Options.Tree.MaxDepth = static_cast<unsigned>(*MaxDepth);
  Options.Tree.MinLeafSize = static_cast<unsigned>(*MinLeafSize);
  Options.Tree.PurityThreshold = *PurityThreshold;

  RandomForestClassifier Result(std::move(ForestFeatures), Options);
  Result.Trees = std::move(Trees);
  return Result;
}
