//===- core/ml/Lda.cpp ----------------------------------------------------===//

#include "core/ml/Lda.h"

#include "linalg/Eigen.h"

#include <cassert>
#include <cmath>
#include <map>

using namespace metaopt;

std::vector<double>
LdaProjection::project(const FeatureVector &Features) const {
  std::vector<double> Normalized = Norm.apply(Features);
  assert(Normalized.size() == Directions.rows() &&
         "projection dimensionality mismatch");
  std::vector<double> Out(Directions.cols(), 0.0);
  for (size_t K = 0; K < Directions.cols(); ++K)
    for (size_t D = 0; D < Directions.rows(); ++D)
      Out[K] += Normalized[D] * Directions.at(D, K);
  return Out;
}

LdaProjection metaopt::fitLda(const Dataset &Data,
                              const FeatureSet &Features, unsigned OutDims,
                              double Ridge) {
  assert(!Data.empty() && "cannot fit LDA on an empty dataset");
  size_t D = Features.size();
  assert(OutDims >= 1 && OutDims <= D && "output dimension out of range");

  LdaProjection Result;
  Result.Norm.fit(Data.featureMatrix(), Features);

  std::vector<std::vector<double>> Points;
  Points.reserve(Data.size());
  for (const Example &Ex : Data.examples())
    Points.push_back(Result.Norm.apply(Ex.Features));

  // Global and per-class means.
  std::vector<double> GlobalMean(D, 0.0);
  std::map<unsigned, std::vector<double>> ClassMean;
  std::map<unsigned, size_t> ClassCount;
  for (size_t I = 0; I < Points.size(); ++I) {
    unsigned Label = Data[I].Label;
    auto [It, Fresh] = ClassMean.try_emplace(Label,
                                             std::vector<double>(D, 0.0));
    (void)Fresh;
    addScaled(It->second, 1.0, Points[I]);
    ++ClassCount[Label];
    addScaled(GlobalMean, 1.0, Points[I]);
  }
  for (auto &[Label, Mean] : ClassMean)
    for (double &Coord : Mean)
      Coord /= static_cast<double>(ClassCount[Label]);
  for (double &Coord : GlobalMean)
    Coord /= static_cast<double>(Points.size());

  // Scatter matrices.
  Matrix Sw(D, D), Sb(D, D);
  std::vector<double> Diff(D);
  for (size_t I = 0; I < Points.size(); ++I) {
    const std::vector<double> &Mean = ClassMean[Data[I].Label];
    for (size_t A = 0; A < D; ++A)
      Diff[A] = Points[I][A] - Mean[A];
    for (size_t A = 0; A < D; ++A)
      for (size_t B = 0; B < D; ++B)
        Sw.at(A, B) += Diff[A] * Diff[B];
  }
  for (const auto &[Label, Mean] : ClassMean) {
    double Count = static_cast<double>(ClassCount[Label]);
    for (size_t A = 0; A < D; ++A)
      Diff[A] = Mean[A] - GlobalMean[A];
    for (size_t A = 0; A < D; ++A)
      for (size_t B = 0; B < D; ++B)
        Sb.at(A, B) += Count * Diff[A] * Diff[B];
  }
  Sw.addToDiagonal(Ridge * Points.size());

  // Whitening: W = Sw^{-1/2} from Sw's eigendecomposition; then the
  // symmetric M = W Sb W shares eigenvectors with the generalized
  // problem, and directions are W * eigvec.
  EigenDecomposition SwEigen = symmetricEigen(Sw);
  Matrix W(D, D);
  for (size_t K = 0; K < D; ++K) {
    double Value = std::max(SwEigen.Values[K], Ridge);
    double InverseSqrt = 1.0 / std::sqrt(Value);
    for (size_t A = 0; A < D; ++A)
      for (size_t B = 0; B < D; ++B)
        W.at(A, B) += InverseSqrt * SwEigen.Vectors.at(A, K) *
                      SwEigen.Vectors.at(B, K);
  }
  Matrix M = W.multiply(Sb).multiply(W);
  EigenDecomposition MEigen = symmetricEigen(M);

  Result.Directions = Matrix(D, OutDims);
  Result.Eigenvalues.assign(MEigen.Values.begin(),
                            MEigen.Values.begin() + OutDims);
  for (unsigned K = 0; K < OutDims; ++K) {
    // Direction = W * eigenvector K, normalized for stable plotting.
    std::vector<double> Col(D, 0.0);
    for (size_t A = 0; A < D; ++A)
      for (size_t B = 0; B < D; ++B)
        Col[A] += W.at(A, B) * MEigen.Vectors.at(B, K);
    double Norm = vectorNorm(Col);
    if (Norm < 1e-12)
      Norm = 1.0;
    for (size_t A = 0; A < D; ++A)
      Result.Directions.at(A, K) = Col[A] / Norm;
  }
  return Result;
}
