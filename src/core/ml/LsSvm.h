//===- core/ml/LsSvm.h - Least squares SVM ----------------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Least-squares support vector machine machinery. The paper prototyped
/// its SVM with the LS-SVMlab Matlab toolkit [13]; the LS-SVM formulation
/// turns training into one symmetric positive-definite linear solve
///
///     [ K + I/gamma   1 ] [alpha]   [y]
///     [ 1^T           0 ] [  b  ] = [0]
///
/// which this class solves via a Cholesky factorization of A = K + I/gamma
/// and the bordered-system identities. Because the factorization depends
/// only on the inputs (not the labels), all binary problems of a
/// multi-class output code share one factorization, and the exact
/// closed-form leave-one-out decision values
///
///     f_{-i}(x_i) = y_i - alpha_i / (C^{-1})_{ii}
///
/// (Cawley's LS-SVM LOO identity, with C the bordered matrix) make
/// full-dataset LOOCV cost one matrix inversion total.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_LSSVM_H
#define METAOPT_CORE_ML_LSSVM_H

#include "core/ml/Kernel.h"
#include "linalg/Cholesky.h"

#include <memory>
#include <optional>
#include <vector>

namespace metaopt {

/// One trained binary LS-SVM: dual weights plus bias. Decision values are
/// computed against the shared training points.
struct LsSvmBinary {
  std::vector<double> Alpha;
  double Bias = 0.0;

  /// f(x) = sum_i Alpha_i * K(x_i, x) + Bias given precomputed kernel
  /// evaluations K(x_i, query).
  double decision(const std::vector<double> &KernelValues) const;
};

/// The label-independent part of LS-SVM training, shared by all binary
/// subproblems on the same training points.
class LsSvmSolver {
public:
  /// Factors A = K + I/gamma over \p Points. Returns std::nullopt when the
  /// system is not positive definite (cannot happen for gamma > 0 and a
  /// valid kernel, but guarded anyway).
  static std::optional<LsSvmSolver>
  create(const std::vector<std::vector<double>> &Points,
         const RbfKernel &Kernel, double Gamma);

  /// Solves the bordered system for labels \p Y (+1/-1).
  LsSvmBinary solve(const std::vector<double> &Y) const;

  /// Exact leave-one-out decision values for a trained binary problem.
  /// Triggers the one-time O(n^3) inverse computation on first call.
  std::vector<double> looDecisions(const std::vector<double> &Y,
                                   const LsSvmBinary &Trained);

  size_t numPoints() const { return V.size(); }

private:
  LsSvmSolver(Cholesky Factor, std::vector<double> V, double S);

  Cholesky Factor;        ///< Cholesky of A = K + I/gamma.
  std::vector<double> V;  ///< A^{-1} * 1.
  double S = 0.0;         ///< 1^T A^{-1} 1.
  /// diag(C^{-1}) = diag(A^{-1}) - v_i^2 / s; cached after first LOOCV.
  std::vector<double> BorderedInverseDiag;
};

} // namespace metaopt

#endif // METAOPT_CORE_ML_LSSVM_H
