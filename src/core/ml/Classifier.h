//===- core/ml/Classifier.h - Multi-class classifier interface --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface shared by the learned multi-class classifiers (near
/// neighbor, LS-SVM with output codes). A classifier owns its feature
/// subset and normalizer: train() fits them on the training set, and
/// predict() maps a raw 38-entry feature vector to an unroll factor.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_CLASSIFIER_H
#define METAOPT_CORE_ML_CLASSIFIER_H

#include "core/features/Normalizer.h"
#include "core/ml/Dataset.h"

#include <functional>
#include <memory>
#include <string>

namespace metaopt {

/// A trainable unroll-factor classifier.
class Classifier {
public:
  virtual ~Classifier();

  virtual std::string name() const = 0;

  /// Fits the classifier (including its normalizer) on \p Train.
  virtual void train(const Dataset &Train) = 0;

  /// Predicts an unroll factor in 1..MaxUnrollFactor for a raw feature
  /// vector. Must only be called after train().
  virtual unsigned predict(const FeatureVector &Features) const = 0;

  /// Fraction of \p Data classified correctly (prediction == label).
  double accuracyOn(const Dataset &Data) const;
};

/// Creates fresh untrained classifiers; used by cross-validation and
/// greedy feature selection, which retrain many times.
using ClassifierFactory =
    std::function<std::unique_ptr<Classifier>(const FeatureSet &)>;

} // namespace metaopt

#endif // METAOPT_CORE_ML_CLASSIFIER_H
