//===- core/ml/Classifier.h - Multi-class classifier interface --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface shared by the learned multi-class classifiers (near
/// neighbor, LS-SVM with output codes). A classifier owns its feature
/// subset and normalizer: train() fits them on the training set, and
/// predict() maps a raw 38-entry feature vector to an unroll factor.
///
/// Trained classifiers are polymorphically serializable: serialize()
/// emits a self-describing text blob, and the registry-based
/// deserializeClassifier() restores a predict-equivalent instance from it
/// without the caller naming (or downcasting to) a concrete class. Model
/// bundles (serve/ModelBundle.h) and cross-validation utilities rely on
/// this to stay classifier-agnostic.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_CLASSIFIER_H
#define METAOPT_CORE_ML_CLASSIFIER_H

#include "core/features/Normalizer.h"
#include "core/ml/Dataset.h"

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace metaopt {

/// A trainable unroll-factor classifier.
class Classifier {
public:
  virtual ~Classifier();

  virtual std::string name() const = 0;

  /// Fits the classifier (including its normalizer) on \p Train.
  virtual void train(const Dataset &Train) = 0;

  /// Predicts an unroll factor in 1..MaxUnrollFactor for a raw feature
  /// vector. Must only be called after train().
  virtual unsigned predict(const FeatureVector &Features) const = 0;

  /// Per-factor preference scores (index f-1; higher = more preferred).
  /// The argmax always equals predict(). The default implementation is
  /// the one-hot vector of predict(); classifiers with a native notion of
  /// confidence (NN vote fractions, SVM codeword agreement) override it.
  virtual std::array<double, MaxUnrollFactor>
  scores(const FeatureVector &Features) const;

  /// Serializes the trained model to a self-describing text blob whose
  /// first token identifies the format. Must only be called after
  /// train(); deserializeClassifier() restores a predict-equivalent
  /// instance.
  virtual std::string serialize() const = 0;

  /// Fraction of \p Data classified correctly (prediction == label).
  double accuracyOn(const Dataset &Data) const;
};

/// Creates fresh untrained classifiers; used by cross-validation and
/// greedy feature selection, which retrain many times.
using ClassifierFactory =
    std::function<std::unique_ptr<Classifier>(const FeatureSet &)>;

//===----------------------------------------------------------------------===//
// Serialization registry
//===----------------------------------------------------------------------===//

/// Restores a serialized classifier, returning null on unrecognizable or
/// corrupt input. Tries the loader registered under each classifier name;
/// the blobs are self-describing, so a loader only accepts its own format.
using ClassifierLoader =
    std::function<std::unique_ptr<Classifier>(const std::string &)>;

/// Registers \p Loader under \p Name (a Classifier::name() value).
/// Registering the same name again replaces the previous loader. The
/// built-in classifiers (near-neighbor, svm, svm-ecoc, decision-tree,
/// lsh-nn, krr-regression, mlp, random-forest) are pre-registered.
void registerClassifierLoader(const std::string &Name,
                              ClassifierLoader Loader);

/// Names with a registered loader, sorted.
std::vector<std::string> registeredClassifierNames();

/// Restores a classifier serialized by any registered format, trying the
/// loader registered under \p Name first when non-empty. Returns null when
/// no loader accepts \p Text.
std::unique_ptr<Classifier>
deserializeClassifier(const std::string &Text,
                      const std::string &Name = "");

/// Parses an embedded Normalizer::serialize() block starting at
/// \p Lines[Index] and, on success, advances \p Index past it — the
/// shared piece of every classifier's deserialize(). std::nullopt (with
/// \p Index untouched) on a malformed block.
std::optional<Normalizer>
parseNormalizerBlock(const std::vector<std::string> &Lines, size_t &Index);

} // namespace metaopt

#endif // METAOPT_CORE_ML_CLASSIFIER_H
