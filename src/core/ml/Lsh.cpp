//===- core/ml/Lsh.cpp ----------------------------------------------------===//

#include "core/ml/Lsh.h"

#include "linalg/Matrix.h"
#include "support/Rng.h"

#include <cassert>
#include <algorithm>
#include <limits>

using namespace metaopt;

LshNearNeighborClassifier::LshNearNeighborClassifier(FeatureSet FeaturesIn,
                                                     LshOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(OptionsIn) {
  assert(!Features.empty() && "feature set must not be empty");
  assert(Options.NumTables >= 1 && Options.NumBits >= 1 &&
         Options.NumBits <= 63 && "degenerate LSH shape");
  assert(Options.Radius > 0.0 && "radius must be positive");
}

std::string LshNearNeighborClassifier::name() const { return "lsh-nn"; }

uint64_t LshNearNeighborClassifier::signatureFor(
    unsigned Table, const std::vector<double> &Point) const {
  uint64_t Signature = 0;
  for (unsigned Bit = 0; Bit < Options.NumBits; ++Bit) {
    double Dot = dotProduct(Hyperplanes[Table][Bit], Point);
    Signature = (Signature << 1) | (Dot >= 0.0 ? 1u : 0u);
  }
  return Signature;
}

void LshNearNeighborClassifier::train(const Dataset &Train) {
  Norm.fit(Train.featureMatrix(), Features);
  Points.clear();
  Labels.clear();
  Points.reserve(Train.size());
  Labels.reserve(Train.size());
  for (const Example &Ex : Train.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Labels.push_back(Ex.Label);
  }

  // Random hyperplanes through the (z-scored) origin.
  Rng Generator(Options.Seed);
  size_t Dims = Features.size();
  Hyperplanes.assign(Options.NumTables, {});
  for (unsigned Table = 0; Table < Options.NumTables; ++Table) {
    Hyperplanes[Table].resize(Options.NumBits);
    for (unsigned Bit = 0; Bit < Options.NumBits; ++Bit) {
      std::vector<double> Normal(Dims);
      for (double &Coord : Normal)
        Coord = Generator.nextGaussian();
      Hyperplanes[Table][Bit] = std::move(Normal);
    }
  }

  Buckets.assign(Options.NumTables, {});
  for (uint32_t Index = 0; Index < Points.size(); ++Index)
    for (unsigned Table = 0; Table < Options.NumTables; ++Table)
      Buckets[Table][signatureFor(Table, Points[Index])].push_back(Index);
}

unsigned LshNearNeighborClassifier::predict(
    const FeatureVector &FeaturesIn) const {
  assert(!Points.empty() && "classifier queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);

  // Union of the query's buckets across tables (vector + sort/unique is
  // far cheaper than a tree set for the candidate counts involved).
  std::vector<uint32_t> Candidates;
  for (unsigned Table = 0; Table < Options.NumTables; ++Table) {
    auto It = Buckets[Table].find(signatureFor(Table, Query));
    if (It == Buckets[Table].end())
      continue;
    Candidates.insert(Candidates.end(), It->second.begin(),
                      It->second.end());
  }
  std::sort(Candidates.begin(), Candidates.end());
  Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                   Candidates.end());

  // Pathological miss: fall back to the exact linear scan.
  bool Approximate = !Candidates.empty();
  LastCandidates = Approximate ? Candidates.size() : Points.size();

  double RadiusSquared = Options.Radius * Options.Radius *
                         static_cast<double>(Query.size());
  std::array<unsigned, MaxUnrollFactor> Votes = {};
  unsigned NeighborCount = 0;
  uint32_t NearestIndex = 0;
  double NearestDistance = std::numeric_limits<double>::infinity();

  auto Consider = [&](uint32_t Index) {
    double DistanceSquared = squaredDistance(Query, Points[Index]);
    if (DistanceSquared < NearestDistance) {
      NearestDistance = DistanceSquared;
      NearestIndex = Index;
    }
    if (DistanceSquared <= RadiusSquared) {
      ++NeighborCount;
      ++Votes[Labels[Index] - 1];
    }
  };
  if (Approximate) {
    for (uint32_t Index : Candidates)
      Consider(Index);
  } else {
    for (uint32_t Index = 0; Index < Points.size(); ++Index)
      Consider(Index);
  }

  if (NeighborCount == 0)
    return Labels[NearestIndex];
  unsigned Best = 0;
  for (unsigned Class = 1; Class < MaxUnrollFactor; ++Class)
    if (Votes[Class] > Votes[Best])
      Best = Class;
  return Best + 1;
}
