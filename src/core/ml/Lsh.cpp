//===- core/ml/Lsh.cpp ----------------------------------------------------===//

#include "core/ml/Lsh.h"

#include "linalg/Matrix.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <cassert>
#include <algorithm>
#include <cstdio>
#include <limits>

using namespace metaopt;

LshNearNeighborClassifier::LshNearNeighborClassifier(FeatureSet FeaturesIn,
                                                     LshOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(OptionsIn) {
  assert(!Features.empty() && "feature set must not be empty");
  assert(Options.NumTables >= 1 && Options.NumBits >= 1 &&
         Options.NumBits <= 63 && "degenerate LSH shape");
  assert(Options.Radius > 0.0 && "radius must be positive");
}

std::string LshNearNeighborClassifier::name() const { return "lsh-nn"; }

uint64_t LshNearNeighborClassifier::signatureFor(
    unsigned Table, const std::vector<double> &Point) const {
  uint64_t Signature = 0;
  for (unsigned Bit = 0; Bit < Options.NumBits; ++Bit) {
    double Dot = dotProduct(Hyperplanes[Table][Bit], Point);
    Signature = (Signature << 1) | (Dot >= 0.0 ? 1u : 0u);
  }
  return Signature;
}

void LshNearNeighborClassifier::rebuildTables() {
  // Random hyperplanes through the (z-scored) origin.
  Rng Generator(Options.Seed);
  size_t Dims = Features.size();
  Hyperplanes.assign(Options.NumTables, {});
  for (unsigned Table = 0; Table < Options.NumTables; ++Table) {
    Hyperplanes[Table].resize(Options.NumBits);
    for (unsigned Bit = 0; Bit < Options.NumBits; ++Bit) {
      std::vector<double> Normal(Dims);
      for (double &Coord : Normal)
        Coord = Generator.nextGaussian();
      Hyperplanes[Table][Bit] = std::move(Normal);
    }
  }

  Buckets.assign(Options.NumTables, {});
  for (uint32_t Index = 0; Index < Points.size(); ++Index)
    for (unsigned Table = 0; Table < Options.NumTables; ++Table)
      Buckets[Table][signatureFor(Table, Points[Index])].push_back(Index);
}

void LshNearNeighborClassifier::train(const Dataset &Train) {
  Norm.fit(Train.featureMatrix(), Features);
  Points.clear();
  Labels.clear();
  Points.reserve(Train.size());
  Labels.reserve(Train.size());
  for (const Example &Ex : Train.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Labels.push_back(Ex.Label);
  }
  rebuildTables();
}

unsigned LshNearNeighborClassifier::predict(
    const FeatureVector &FeaturesIn) const {
  assert(!Points.empty() && "classifier queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);

  // Union of the query's buckets across tables (vector + sort/unique is
  // far cheaper than a tree set for the candidate counts involved).
  std::vector<uint32_t> Candidates;
  for (unsigned Table = 0; Table < Options.NumTables; ++Table) {
    auto It = Buckets[Table].find(signatureFor(Table, Query));
    if (It == Buckets[Table].end())
      continue;
    Candidates.insert(Candidates.end(), It->second.begin(),
                      It->second.end());
  }
  std::sort(Candidates.begin(), Candidates.end());
  Candidates.erase(std::unique(Candidates.begin(), Candidates.end()),
                   Candidates.end());

  // Pathological miss: fall back to the exact linear scan.
  bool Approximate = !Candidates.empty();
  LastCandidates = Approximate ? Candidates.size() : Points.size();

  double RadiusSquared = Options.Radius * Options.Radius *
                         static_cast<double>(Query.size());
  std::array<unsigned, MaxUnrollFactor> Votes = {};
  unsigned NeighborCount = 0;
  uint32_t NearestIndex = 0;
  double NearestDistance = std::numeric_limits<double>::infinity();

  auto Consider = [&](uint32_t Index) {
    double DistanceSquared = squaredDistance(Query, Points[Index]);
    if (DistanceSquared < NearestDistance) {
      NearestDistance = DistanceSquared;
      NearestIndex = Index;
    }
    if (DistanceSquared <= RadiusSquared) {
      ++NeighborCount;
      ++Votes[Labels[Index] - 1];
    }
  };
  if (Approximate) {
    for (uint32_t Index : Candidates)
      Consider(Index);
  } else {
    for (uint32_t Index = 0; Index < Points.size(); ++Index)
      Consider(Index);
  }

  if (NeighborCount == 0)
    return Labels[NearestIndex];
  unsigned Best = 0;
  for (unsigned Class = 1; Class < MaxUnrollFactor; ++Class)
    if (Votes[Class] > Votes[Best])
      Best = Class;
  return Best + 1;
}

std::string LshNearNeighborClassifier::serialize() const {
  assert(!Points.empty() && "serialize() requires a trained classifier");
  char Buffer[96];
  std::string Out = "lsh-model 1\n";
  std::snprintf(Buffer, sizeof(Buffer), "shape %u %u %.17g %llu\n",
                Options.NumTables, Options.NumBits, Options.Radius,
                static_cast<unsigned long long>(Options.Seed));
  Out += Buffer;
  Out += Norm.serialize();
  Out += "points " + std::to_string(Points.size()) + " " +
         std::to_string(Points[0].size()) + "\n";
  for (size_t I = 0; I < Points.size(); ++I) {
    Out += std::to_string(Labels[I]);
    for (double Coord : Points[I]) {
      std::snprintf(Buffer, sizeof(Buffer), " %.17g", Coord);
      Out += Buffer;
    }
    Out += '\n';
  }
  return Out;
}

std::optional<LshNearNeighborClassifier>
LshNearNeighborClassifier::deserialize(const std::string &Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.size() < 4 || trim(Lines[0]) != "lsh-model 1")
    return std::nullopt;
  std::vector<std::string> Shape = splitWhitespace(Lines[1]);
  if (Shape.size() != 5 || Shape[0] != "shape")
    return std::nullopt;
  auto NumTables = parseInt(Shape[1]);
  auto NumBits = parseInt(Shape[2]);
  auto Radius = parseDouble(Shape[3]);
  auto Seed = parseInt(Shape[4]);
  if (!NumTables || !NumBits || !Radius || !Seed || *NumTables < 1 ||
      *NumBits < 1 || *NumBits > 63 || *Radius <= 0.0 || *Seed < 0)
    return std::nullopt;

  size_t Index = 2;
  std::optional<Normalizer> Norm = parseNormalizerBlock(Lines, Index);
  if (!Norm || Lines.size() <= Index)
    return std::nullopt;

  std::vector<std::string> PointsHeader = splitWhitespace(Lines[Index]);
  if (PointsHeader.size() != 3 || PointsHeader[0] != "points")
    return std::nullopt;
  auto NumPoints = parseInt(PointsHeader[1]);
  auto Dims = parseInt(PointsHeader[2]);
  if (!NumPoints || !Dims || *NumPoints < 1 ||
      *Dims != static_cast<int64_t>(Norm->dimension()) ||
      Lines.size() < Index + 1 + static_cast<size_t>(*NumPoints))
    return std::nullopt;

  LshOptions Options;
  Options.NumTables = static_cast<unsigned>(*NumTables);
  Options.NumBits = static_cast<unsigned>(*NumBits);
  Options.Radius = *Radius;
  Options.Seed = static_cast<uint64_t>(*Seed);
  LshNearNeighborClassifier Result(Norm->featureSet(), Options);
  Result.Norm = std::move(*Norm);
  for (int64_t I = 0; I < *NumPoints; ++I) {
    std::vector<std::string> Parts =
        splitWhitespace(Lines[Index + 1 + I]);
    if (Parts.size() != 1 + static_cast<size_t>(*Dims))
      return std::nullopt;
    auto Label = parseInt(Parts[0]);
    if (!Label || *Label < 1 ||
        *Label > static_cast<int64_t>(MaxUnrollFactor))
      return std::nullopt;
    std::vector<double> Point;
    Point.reserve(static_cast<size_t>(*Dims));
    for (int64_t D = 0; D < *Dims; ++D) {
      auto Coord = parseDouble(Parts[1 + D]);
      if (!Coord)
        return std::nullopt;
      Point.push_back(*Coord);
    }
    Result.Points.push_back(std::move(Point));
    Result.Labels.push_back(static_cast<unsigned>(*Label));
  }
  // The hyperplanes are a pure function of the seed, so the restored
  // tables match the trained ones bit for bit.
  Result.rebuildTables();
  return Result;
}
