//===- core/ml/OutputCode.h - Multi-class via output codes ------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-class classification from binary LS-SVMs via output codes (§5.2):
/// each class gets a codeword, one binary classifier is trained per code
/// bit, and a query is assigned the class whose codeword is closest (in
/// Hamming distance) to the concatenated binary predictions. The paper
/// uses the identity code (one-vs-rest) "for simplicity"; error-correcting
/// random codes are available as the extension the paper mentions, and an
/// ablation bench compares them.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_OUTPUTCODE_H
#define METAOPT_CORE_ML_OUTPUTCODE_H

#include "core/ml/Classifier.h"
#include "core/ml/LsSvm.h"

#include <optional>

namespace metaopt {

/// Configuration of the output-code LS-SVM classifier.
struct SvmOptions {
  /// LS-SVM regularization (larger = fit the training data harder).
  double Gamma = 10.0;
  /// RBF width: sigma^2 = SigmaSquaredPerDim * dimension, so the default
  /// kernel sees normalized distances regardless of the subset size.
  double SigmaSquaredPerDim = 1.0;
  /// Codeword decoding: plain Hamming on prediction signs (the paper's
  /// description) or margin-weighted loss decoding.
  enum class Decoding { Hamming, Loss };
  Decoding Decode = Decoding::Hamming;
  /// Code matrix: identity (one-vs-rest) or random error-correcting bits.
  enum class Code { OneVsRest, RandomEcoc };
  Code CodeKind = Code::OneVsRest;
  /// Bits for RandomEcoc codes.
  unsigned EcocBits = 15;
  uint64_t EcocSeed = 1;
};

/// The paper's "SVM": binary LS-SVMs composed with output codes.
class SvmClassifier : public Classifier {
public:
  explicit SvmClassifier(FeatureSet Features, SvmOptions Options = {});

  std::string name() const override;
  void train(const Dataset &Train) override;
  unsigned predict(const FeatureVector &Features) const override;

  /// Per-class codeword-agreement scores (the decoding objective the
  /// prediction maximizes), shifted so the best class scores 1.0.
  std::array<double, MaxUnrollFactor>
  scores(const FeatureVector &Features) const override;

  /// Exact leave-one-out predictions for every training example, using the
  /// closed-form LS-SVM LOO identity per binary subproblem. Only valid
  /// after train(); triggers a one-time O(n^3) inverse.
  std::vector<unsigned> loocvPredictions();

  const SvmOptions &options() const { return Options; }

  /// Serializes the trained machines (kernel width, code matrix,
  /// normalizer, support points, dual weights). deserialize() restores a
  /// predict-equivalent classifier; the leave-one-out fast path is not
  /// preserved (it needs the training factorization).
  std::string serialize() const override;
  static std::optional<SvmClassifier> deserialize(const std::string &Text);

private:
  std::array<double, MaxUnrollFactor>
  decodingScores(const std::vector<double> &Decisions) const;
  unsigned decode(const std::vector<double> &Decisions) const;

  FeatureSet Features;
  SvmOptions Options;
  Normalizer Norm;
  std::vector<std::vector<double>> Points;
  /// CodeMatrix[class][bit] in {-1, +1}.
  std::vector<std::vector<int>> CodeMatrix;
  /// Per-bit label vectors (cached for LOOCV) and trained machines.
  std::vector<std::vector<double>> BitLabels;
  std::vector<LsSvmBinary> Machines;
  std::optional<LsSvmSolver> Solver;
  std::optional<RbfKernel> Kernel;
};

} // namespace metaopt

#endif // METAOPT_CORE_ML_OUTPUTCODE_H
