//===- core/ml/NearNeighbor.cpp -------------------------------------------===//

#include "core/ml/NearNeighbor.h"

#include "linalg/Matrix.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstdio>
#include <cmath>
#include <limits>

using namespace metaopt;

NearNeighborClassifier::NearNeighborClassifier(FeatureSet FeaturesIn,
                                               double RadiusIn)
    : Features(std::move(FeaturesIn)), Radius(RadiusIn) {
  assert(!Features.empty() && "feature set must not be empty");
  assert(Radius > 0.0 && "radius must be positive");
}

std::string NearNeighborClassifier::name() const { return "near-neighbor"; }

void NearNeighborClassifier::train(const Dataset &Train) {
  Norm.fit(Train.featureMatrix(), Features);
  Points.clear();
  Labels.clear();
  Points.reserve(Train.size());
  Labels.reserve(Train.size());
  for (const Example &Ex : Train.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Labels.push_back(Ex.Label);
  }
}

NearNeighborClassifier::Vote
NearNeighborClassifier::voteFor(const std::vector<double> &Query,
                                size_t ExcludedIndex) const {
  assert(!Points.empty() && "classifier queried before training");
  double Dimensions = static_cast<double>(Query.size());
  // RMS-per-dimension radius: compare squared Euclidean distance against
  // radius^2 * D, keeping the 0.3 radius meaningful for any subset size.
  double RadiusSquared = Radius * Radius * Dimensions;

  std::array<unsigned, MaxUnrollFactor> Votes = {};
  unsigned NeighborCount = 0;
  size_t NearestIndex = 0;
  double NearestDistance = std::numeric_limits<double>::infinity();

  for (size_t I = 0; I < Points.size(); ++I) {
    if (I == ExcludedIndex)
      continue;
    double DistanceSquared = squaredDistance(Query, Points[I]);
    if (DistanceSquared < NearestDistance) {
      NearestDistance = DistanceSquared;
      NearestIndex = I;
    }
    if (DistanceSquared <= RadiusSquared) {
      ++NeighborCount;
      ++Votes[Labels[I] - 1];
    }
  }

  Vote Result;
  Result.NeighborCount = NeighborCount;
  if (NeighborCount == 0) {
    // Low confidence: fall back to the single nearest neighbor.
    Result.Factor = Labels[NearestIndex];
    Result.AgreeingCount = 0;
    return Result;
  }
  unsigned Best = 0;
  for (unsigned F = 1; F < MaxUnrollFactor; ++F)
    if (Votes[F] > Votes[Best])
      Best = F; // Ties keep the smaller factor: cheaper on mispredict.
  Result.Factor = Best + 1;
  Result.AgreeingCount = Votes[Best];
  return Result;
}

unsigned NearNeighborClassifier::predict(
    const FeatureVector &FeaturesIn) const {
  return voteFor(Norm.apply(FeaturesIn), Points.size()).Factor;
}

std::array<double, MaxUnrollFactor>
NearNeighborClassifier::scores(const FeatureVector &FeaturesIn) const {
  assert(!Points.empty() && "classifier queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);
  double RadiusSquared =
      Radius * Radius * static_cast<double>(Query.size());

  std::array<unsigned, MaxUnrollFactor> Votes = {};
  unsigned NeighborCount = 0;
  size_t NearestIndex = 0;
  double NearestDistance = std::numeric_limits<double>::infinity();
  for (size_t I = 0; I < Points.size(); ++I) {
    double DistanceSquared = squaredDistance(Query, Points[I]);
    if (DistanceSquared < NearestDistance) {
      NearestDistance = DistanceSquared;
      NearestIndex = I;
    }
    if (DistanceSquared <= RadiusSquared) {
      ++NeighborCount;
      ++Votes[Labels[I] - 1];
    }
  }

  std::array<double, MaxUnrollFactor> Scores = {};
  if (NeighborCount == 0) {
    Scores[Labels[NearestIndex] - 1] = 1.0; // 1-NN fallback decided.
    return Scores;
  }
  for (unsigned F = 0; F < MaxUnrollFactor; ++F)
    Scores[F] = static_cast<double>(Votes[F]) / NeighborCount;
  return Scores;
}

NearNeighborClassifier::Vote NearNeighborClassifier::predictWithVote(
    const FeatureVector &FeaturesIn) const {
  return voteFor(Norm.apply(FeaturesIn), Points.size());
}

unsigned NearNeighborClassifier::predictExcluding(size_t Index) const {
  assert(Index < Points.size() && "database index out of range");
  return voteFor(Points[Index], Index).Factor;
}

NearNeighborClassifier::Vote
NearNeighborClassifier::voteExcluding(size_t Index) const {
  assert(Index < Points.size() && "database index out of range");
  return voteFor(Points[Index], Index);
}

std::string NearNeighborClassifier::serialize() const {
  assert(!Points.empty() && "serialize() requires a trained classifier");
  char Buffer[64];
  std::string Out = "nn-model 1\n";
  std::snprintf(Buffer, sizeof(Buffer), "radius %.17g\n", Radius);
  Out += Buffer;
  Out += Norm.serialize();
  Out += "points " + std::to_string(Points.size()) + " " +
         std::to_string(Points[0].size()) + "\n";
  for (size_t I = 0; I < Points.size(); ++I) {
    Out += std::to_string(Labels[I]);
    for (double Coord : Points[I]) {
      std::snprintf(Buffer, sizeof(Buffer), " %.17g", Coord);
      Out += Buffer;
    }
    Out += '\n';
  }
  return Out;
}

std::optional<NearNeighborClassifier>
NearNeighborClassifier::deserialize(const std::string &Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.size() < 4 || trim(Lines[0]) != "nn-model 1")
    return std::nullopt;
  std::vector<std::string> RadiusParts = splitWhitespace(Lines[1]);
  if (RadiusParts.size() != 2 || RadiusParts[0] != "radius")
    return std::nullopt;
  auto Radius = parseDouble(RadiusParts[1]);
  if (!Radius || *Radius <= 0.0)
    return std::nullopt;

  // The normalizer block starts at line 2; its header carries its size.
  std::vector<std::string> NormHeader = splitWhitespace(Lines[2]);
  if (NormHeader.size() != 3 || NormHeader[0] != "normalizer")
    return std::nullopt;
  auto NormDims = parseInt(NormHeader[2]);
  if (!NormDims || *NormDims < 1)
    return std::nullopt;
  size_t NormEnd = 3 + static_cast<size_t>(*NormDims);
  if (Lines.size() <= NormEnd)
    return std::nullopt;
  std::string NormBlock;
  for (size_t I = 2; I < NormEnd; ++I)
    NormBlock += Lines[I] + "\n";
  std::optional<Normalizer> Norm = Normalizer::deserialize(NormBlock);
  if (!Norm)
    return std::nullopt;

  std::vector<std::string> PointsHeader = splitWhitespace(Lines[NormEnd]);
  if (PointsHeader.size() != 3 || PointsHeader[0] != "points")
    return std::nullopt;
  auto NumPoints = parseInt(PointsHeader[1]);
  auto Dims = parseInt(PointsHeader[2]);
  if (!NumPoints || !Dims || *NumPoints < 1 ||
      *Dims != static_cast<int64_t>(Norm->dimension()) ||
      Lines.size() < NormEnd + 1 + static_cast<size_t>(*NumPoints))
    return std::nullopt;

  NearNeighborClassifier Result(Norm->featureSet(), *Radius);
  Result.Norm = std::move(*Norm);
  for (int64_t I = 0; I < *NumPoints; ++I) {
    std::vector<std::string> Parts =
        splitWhitespace(Lines[NormEnd + 1 + I]);
    if (Parts.size() != 1 + static_cast<size_t>(*Dims))
      return std::nullopt;
    auto Label = parseInt(Parts[0]);
    if (!Label || *Label < 1 ||
        *Label > static_cast<int64_t>(MaxUnrollFactor))
      return std::nullopt;
    std::vector<double> Point;
    Point.reserve(static_cast<size_t>(*Dims));
    for (int64_t D = 0; D < *Dims; ++D) {
      auto Coord = parseDouble(Parts[1 + D]);
      if (!Coord)
        return std::nullopt;
      Point.push_back(*Coord);
    }
    Result.Points.push_back(std::move(Point));
    Result.Labels.push_back(static_cast<unsigned>(*Label));
  }
  return Result;
}
