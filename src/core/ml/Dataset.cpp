//===- core/ml/Dataset.cpp ------------------------------------------------===//

#include "core/ml/Dataset.h"

#include "support/Csv.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace metaopt;

std::vector<FeatureVector> Dataset::featureMatrix() const {
  std::vector<FeatureVector> Matrix;
  Matrix.reserve(Examples.size());
  for (const Example &Ex : Examples)
    Matrix.push_back(Ex.Features);
  return Matrix;
}

std::array<size_t, MaxUnrollFactor> Dataset::labelHistogram() const {
  std::array<size_t, MaxUnrollFactor> Counts = {};
  for (const Example &Ex : Examples) {
    assert(Ex.Label >= 1 && Ex.Label <= MaxUnrollFactor &&
           "label out of range");
    ++Counts[Ex.Label - 1];
  }
  return Counts;
}

Dataset Dataset::excludingBenchmark(const std::string &BenchmarkName) const {
  Dataset Result;
  for (const Example &Ex : Examples)
    if (Ex.BenchmarkName != BenchmarkName)
      Result.add(Ex);
  return Result;
}

Dataset Dataset::withoutExample(size_t Index) const {
  assert(Index < Examples.size() && "example index out of range");
  Dataset Result;
  for (size_t I = 0; I < Examples.size(); ++I)
    if (I != Index)
      Result.add(Examples[I]);
  return Result;
}

Dataset Dataset::subsample(size_t MaxSize, Rng &Generator) const {
  if (Examples.size() <= MaxSize)
    return *this;
  std::vector<size_t> Indices(Examples.size());
  std::iota(Indices.begin(), Indices.end(), 0);
  Generator.shuffle(Indices);
  Indices.resize(MaxSize);
  std::sort(Indices.begin(), Indices.end()); // Keep a stable order.
  Dataset Result;
  for (size_t Index : Indices)
    Result.add(Examples[Index]);
  return Result;
}

std::string Dataset::toCsv() const {
  CsvWriter Writer;
  std::vector<std::string> Header = {"benchmark", "loop", "label"};
  for (unsigned F = 1; F <= MaxUnrollFactor; ++F)
    Header.push_back("cycles_u" + std::to_string(F));
  for (unsigned I = 0; I < NumFeatures; ++I)
    Header.push_back(featureName(static_cast<FeatureId>(I)));
  Writer.addRow(Header);

  for (const Example &Ex : Examples) {
    std::vector<std::string> Row = {Ex.BenchmarkName, Ex.LoopName,
                                    std::to_string(Ex.Label)};
    for (double Cycles : Ex.CyclesPerFactor)
      Row.push_back(formatDouble(Cycles, 3));
    for (double Value : Ex.Features)
      Row.push_back(formatDouble(Value, 6));
    Writer.addRow(Row);
  }
  return Writer.str();
}

std::optional<Dataset> Dataset::fromCsv(const std::string &Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.empty())
    return std::nullopt;
  constexpr size_t NumColumns = 3 + MaxUnrollFactor + NumFeatures;

  Dataset Result;
  bool SawHeader = false;
  for (const std::string &Line : Lines) {
    if (trim(Line).empty())
      continue;
    if (!SawHeader) {
      SawHeader = true; // The header row carries no data.
      continue;
    }
    // Dataset CSV cells never contain commas or quotes, so a plain split
    // suffices here.
    std::vector<std::string> Cells = split(Line, ',');
    if (Cells.size() != NumColumns)
      return std::nullopt;
    Example Ex;
    Ex.BenchmarkName = Cells[0];
    Ex.LoopName = Cells[1];
    auto Label = parseInt(Cells[2]);
    if (!Label || *Label < 1 ||
        *Label > static_cast<int64_t>(MaxUnrollFactor))
      return std::nullopt;
    Ex.Label = static_cast<unsigned>(*Label);
    for (unsigned F = 0; F < MaxUnrollFactor; ++F) {
      auto Cycles = parseDouble(Cells[3 + F]);
      if (!Cycles)
        return std::nullopt;
      Ex.CyclesPerFactor[F] = *Cycles;
    }
    for (unsigned I = 0; I < NumFeatures; ++I) {
      auto Value = parseDouble(Cells[3 + MaxUnrollFactor + I]);
      if (!Value)
        return std::nullopt;
      Ex.Features[I] = *Value;
    }
    Result.add(std::move(Ex));
  }
  if (!SawHeader)
    return std::nullopt;
  return Result;
}

std::array<unsigned, MaxUnrollFactor>
metaopt::factorRanks(const Example &Ex) {
  std::array<unsigned, MaxUnrollFactor> Order;
  std::iota(Order.begin(), Order.end(), 0u);
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    if (Ex.CyclesPerFactor[A] != Ex.CyclesPerFactor[B])
      return Ex.CyclesPerFactor[A] < Ex.CyclesPerFactor[B];
    return A < B;
  });
  std::array<unsigned, MaxUnrollFactor> Ranks = {};
  for (unsigned Rank = 0; Rank < MaxUnrollFactor; ++Rank)
    Ranks[Order[Rank]] = Rank;
  return Ranks;
}
