//===- core/ml/CrossValidation.cpp ----------------------------------------===//

#include "core/ml/CrossValidation.h"

#include "concurrency/Parallel.h"

#include <cassert>
#include <numeric>

using namespace metaopt;

std::vector<unsigned>
metaopt::loocvPredictions(NearNeighborClassifier &Classifier,
                          const Dataset &Data) {
  Classifier.train(Data);
  std::vector<unsigned> Predictions(Data.size());
  for (size_t I = 0; I < Data.size(); ++I)
    Predictions[I] = Classifier.predictExcluding(I);
  return Predictions;
}

std::vector<unsigned> metaopt::loocvPredictions(SvmClassifier &Classifier,
                                                const Dataset &Data) {
  Classifier.train(Data);
  return Classifier.loocvPredictions();
}

std::vector<unsigned>
metaopt::bruteForceLoocv(const ClassifierFactory &Factory,
                         const FeatureSet &Features, const Dataset &Data) {
  // Each left-out example retrains independently; predictions land in
  // their own slot, so the parallel result equals the serial one.
  std::vector<unsigned> Predictions(Data.size());
  parallelFor(0, Data.size(), [&](size_t I) {
    Dataset Train = Data.withoutExample(I);
    std::unique_ptr<Classifier> Fresh = Factory(Features);
    Fresh->train(Train);
    Predictions[I] = Fresh->predict(Data[I].Features);
  });
  return Predictions;
}

double metaopt::predictionAccuracy(const Dataset &Data,
                                   const std::vector<unsigned> &Predictions) {
  assert(Predictions.size() == Data.size() &&
         "prediction vector size mismatch");
  if (Data.empty())
    return 0.0;
  size_t Correct = 0;
  for (size_t I = 0; I < Data.size(); ++I)
    if (Predictions[I] == Data[I].Label)
      ++Correct;
  return static_cast<double>(Correct) / Data.size();
}

std::vector<unsigned>
metaopt::kFoldPredictions(const ClassifierFactory &Factory,
                          const FeatureSet &Features, const Dataset &Data,
                          unsigned K, uint64_t Seed) {
  assert(K >= 2 && K <= Data.size() && "fold count out of range");
  std::vector<size_t> Order(Data.size());
  std::iota(Order.begin(), Order.end(), 0);
  Rng Generator(Seed);
  Generator.shuffle(Order);

  std::vector<unsigned> FoldOf(Data.size());
  for (size_t Position = 0; Position < Order.size(); ++Position)
    FoldOf[Order[Position]] = static_cast<unsigned>(Position % K);

  // Folds are independent and write disjoint prediction slots (each
  // example belongs to exactly one fold), so they retrain in parallel.
  std::vector<unsigned> Predictions(Data.size(), 1);
  parallelFor(0, K, [&](size_t Fold) {
    Dataset Train;
    for (size_t I = 0; I < Data.size(); ++I)
      if (FoldOf[I] != Fold)
        Train.add(Data[I]);
    std::unique_ptr<Classifier> Fresh = Factory(Features);
    Fresh->train(Train);
    for (size_t I = 0; I < Data.size(); ++I)
      if (FoldOf[I] == Fold)
        Predictions[I] = Fresh->predict(Data[I].Features);
  });
  return Predictions;
}
