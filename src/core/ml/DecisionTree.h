//===- core/ml/DecisionTree.h - CART decision tree --------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CART-style decision tree classifier. The paper's related work leans
/// on trees - Monsifrot et al. decide *whether* to unroll with boosted
/// decision trees and Calder et al. use them for branch prediction - so a
/// tree is the natural third comparator for the multi-class problem
/// (bench/ablation_classifiers). Splits minimize Gini impurity; growth
/// stops on depth, leaf size, or purity.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_DECISIONTREE_H
#define METAOPT_CORE_ML_DECISIONTREE_H

#include "core/ml/Classifier.h"

#include <optional>

namespace metaopt {

/// Tree growth limits.
struct DecisionTreeOptions {
  unsigned MaxDepth = 12;
  unsigned MinLeafSize = 5;
  /// Stop splitting once a node is at least this pure.
  double PurityThreshold = 0.98;
};

/// Multi-class CART over the (normalized) feature subset.
class DecisionTreeClassifier : public Classifier {
public:
  explicit DecisionTreeClassifier(FeatureSet Features,
                                  DecisionTreeOptions Options = {});

  std::string name() const override;
  void train(const Dataset &Train) override;
  unsigned predict(const FeatureVector &Features) const override;

  /// Serializes the grown tree (growth limits, normalizer, node table) so
  /// a compiler can ship and load the model without retraining;
  /// deserialize() restores a predict-equivalent classifier.
  std::string serialize() const override;
  static std::optional<DecisionTreeClassifier>
  deserialize(const std::string &Text);

  /// Number of nodes in the grown tree (diagnostics/tests).
  size_t numNodes() const { return Nodes.size(); }

  /// Depth of the grown tree.
  unsigned depth() const;

private:
  struct Node {
    bool IsLeaf = true;
    unsigned Label = 1;      ///< Leaf: majority class.
    unsigned SplitDim = 0;   ///< Internal: dimension in subset space.
    double Threshold = 0.0;  ///< Internal: go left when value <= threshold.
    int32_t Left = -1;
    int32_t Right = -1;
    unsigned Depth = 0;
  };

  int32_t grow(const std::vector<std::vector<double>> &Points,
               const std::vector<unsigned> &Labels,
               std::vector<uint32_t> Indices, unsigned Depth);

  FeatureSet Features;
  DecisionTreeOptions Options;
  Normalizer Norm;
  std::vector<Node> Nodes;
  int32_t Root = -1;
};

} // namespace metaopt

#endif // METAOPT_CORE_ML_DECISIONTREE_H
