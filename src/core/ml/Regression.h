//===- core/ml/Regression.h - Unroll-factor regression ----------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extension Section 8 sketches: "future work will consider
/// regression, which can predict values outside the range of the labels
/// with which the learning algorithm is trained." This kernel ridge
/// regressor treats the unroll factor as a real-valued target; it shares
/// the LS-SVM machinery (the regularized kernel solve is identical), and
/// the raw real-valued prediction is exposed so callers can see it land
/// outside [1, 8] - exactly the capability classification lacks. As a
/// Classifier the prediction is rounded and clamped.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_REGRESSION_H
#define METAOPT_CORE_ML_REGRESSION_H

#include "core/ml/Classifier.h"
#include "core/ml/LsSvm.h"

#include <optional>

namespace metaopt {

/// Kernel ridge regression hyperparameters.
struct KrrOptions {
  double Gamma = 10.0;           ///< Ridge strength (as LS-SVM's gamma).
  double SigmaSquaredPerDim = 1.0; ///< RBF width per normalized dimension.
};

/// Predicts the unroll factor as a real value via kernel ridge regression.
class KrrUnrollRegressor : public Classifier {
public:
  explicit KrrUnrollRegressor(FeatureSet Features, KrrOptions Options = {});

  std::string name() const override;
  void train(const Dataset &Train) override;

  /// Rounded and clamped to 1..MaxUnrollFactor.
  unsigned predict(const FeatureVector &Features) const override;

  /// The raw regression value - may fall outside [1, MaxUnrollFactor],
  /// which is the capability the paper's future-work section wants.
  double predictValue(const FeatureVector &Features) const;

  /// Serializes the fitted model (hyperparameters, normalizer, dual
  /// weights and bias, training points and targets); deserialize()
  /// restores a predict-equivalent regressor. The kernel solver is
  /// rebuilt lazily only if looValues() is called on a restored model.
  std::string serialize() const override;
  static std::optional<KrrUnrollRegressor>
  deserialize(const std::string &Text);

  /// Exact leave-one-out *regression residuals* via the shared LS-SVM
  /// identity; used to report LOOCV without retraining.
  std::vector<double> looValues();

private:
  FeatureSet Features;
  KrrOptions Options;
  Normalizer Norm;
  std::vector<std::vector<double>> Points;
  std::vector<double> Targets;
  LsSvmBinary Machine; ///< Same dual form: alphas + bias.
  std::optional<LsSvmSolver> Solver;
  std::optional<RbfKernel> Kernel;
};

} // namespace metaopt

#endif // METAOPT_CORE_ML_REGRESSION_H
