//===- core/ml/CrossValidation.h - LOOCV harness ----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leave-one-out cross-validation (§4.2): "On each iteration i, the
/// technique removes the i-th example, trains the classifier using the
/// remaining N-1 examples, and then sees how well the resulting classifier
/// categorizes the left-out example." Both classifiers have exact fast
/// paths (database exclusion for NN, the closed-form LS-SVM identity for
/// the SVM); a brute-force retraining harness exists so tests can verify
/// the fast paths are exact.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_CROSSVALIDATION_H
#define METAOPT_CORE_ML_CROSSVALIDATION_H

#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"

namespace metaopt {

/// LOOCV predictions for the NN classifier (fast path: the left-out
/// example simply does not vote).
std::vector<unsigned> loocvPredictions(NearNeighborClassifier &Classifier,
                                       const Dataset &Data);

/// LOOCV predictions for the output-code LS-SVM (fast path: closed-form
/// leave-one-out decisions from one factorization).
std::vector<unsigned> loocvPredictions(SvmClassifier &Classifier,
                                       const Dataset &Data);

/// Brute-force LOOCV: retrains a fresh classifier N times. Exact but
/// O(N * train cost); used by tests to validate the fast paths and by
/// ablations on small subsets. The N retrainings run on the global
/// thread pool; \p Factory must be callable concurrently (returning a
/// fresh classifier each time satisfies this). Results are identical to
/// the serial run.
std::vector<unsigned> bruteForceLoocv(const ClassifierFactory &Factory,
                                      const FeatureSet &Features,
                                      const Dataset &Data);

/// Fraction of predictions equal to the label.
double predictionAccuracy(const Dataset &Data,
                          const std::vector<unsigned> &Predictions);

/// K-fold cross-validation: deterministic shuffled split into K folds,
/// each predicted by a classifier trained on the other K-1. The paper
/// prefers LOOCV because its dataset is small (Section 4.2: "there are
/// other methods available"); k-fold is that other method, used by
/// ablations to show the estimates agree. Folds retrain on the global
/// thread pool (\p Factory must be callable concurrently); the shuffle
/// and fold assignment are computed up front, so results match the
/// serial run exactly.
std::vector<unsigned> kFoldPredictions(const ClassifierFactory &Factory,
                                       const FeatureSet &Features,
                                       const Dataset &Data, unsigned K,
                                       uint64_t Seed = 1);

} // namespace metaopt

#endif // METAOPT_CORE_ML_CROSSVALIDATION_H
