//===- core/ml/Mlp.h - Multi-layer perceptron classifier --------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fully-connected network over the normalized feature vectors:
/// 1-2 ReLU hidden layers and a softmax over the MaxUnrollFactor classes,
/// trained by minibatch Adam on the cross-entropy loss with L2 weight
/// decay. The modern baseline the ROADMAP's model-zoo item asks for
/// (Balamane/Taklit/Baghdadi's DNN unroll-factor estimator, PAPERS.md).
///
/// Training is deliberately serial and seeded: weight init and the
/// per-epoch example shuffle each draw from Rng::splitStream(Seed, ...),
/// so two trainings from the same seed produce byte-identical serialized
/// models at any --threads setting. All dense math goes through the
/// src/linalg Matrix class.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_MLP_H
#define METAOPT_CORE_ML_MLP_H

#include "core/ml/Classifier.h"
#include "linalg/Matrix.h"

#include <cstdint>
#include <optional>

namespace metaopt {

/// Architecture and optimizer settings. The defaults are sized for the
/// ~1000-loop labeled corpus: one hidden layer keeps a full LOOCV sweep
/// (N retrainings) tractable while clearing the near-neighbor baseline.
struct MlpOptions {
  /// Hidden layer widths, input to output order; 1 or 2 entries.
  std::vector<unsigned> HiddenSizes = {24};
  /// Adam epochs. 0 still fits the normalizer and initializes weights
  /// (the gradient-check tests rely on that).
  unsigned Epochs = 60;
  unsigned BatchSize = 32;
  double LearningRate = 5e-3;
  double Beta1 = 0.9;
  double Beta2 = 0.999;
  double Epsilon = 1e-8;
  /// L2 penalty on weights (not biases).
  double WeightDecay = 1e-4;
  /// Base seed for init and shuffling; fixed default so train() is
  /// deterministic out of the box.
  uint64_t Seed = 0x2005c60;
};

/// Feed-forward softmax classifier over the (normalized) feature subset.
class MlpClassifier : public Classifier {
public:
  explicit MlpClassifier(FeatureSet Features, MlpOptions Options = {});

  std::string name() const override;
  void train(const Dataset &Train) override;
  unsigned predict(const FeatureVector &Features) const override;
  std::array<double, MaxUnrollFactor>
  scores(const FeatureVector &Features) const override;

  /// Serializes options, normalizer, and every layer's weights/biases
  /// bit-exactly (%.17g), with a trailing FNV-1a checksum line so a
  /// truncated or tampered blob is rejected on load.
  std::string serialize() const override;

  /// Restores a serialized model. On failure returns std::nullopt and,
  /// when \p Error is non-null, stores a one-line diagnostic (truncation,
  /// checksum mismatch, bad layer shape, ...).
  static std::optional<MlpClassifier>
  deserialize(const std::string &Text, std::string *Error = nullptr);

  //===--------------------------------------------------------------------===//
  // Test surface (finite-difference gradient checks in tests/mlp_test.cpp)
  //===--------------------------------------------------------------------===//

  /// All weights and biases flattened layer by layer (weights row-major,
  /// then biases). Must only be called after train().
  std::vector<double> parameters() const;

  /// Overwrites the flattened parameters; size must match parameters().
  void setParameters(const std::vector<double> &Flat);

  /// Mean cross-entropy + L2 penalty over \p Data (the exact training
  /// objective, full batch).
  double lossOn(const Dataset &Data) const;

  /// Analytic gradient of lossOn() w.r.t. parameters(), same layout.
  std::vector<double> lossGradient(const Dataset &Data) const;

  /// Number of weight layers (hidden layers + output layer).
  size_t numLayers() const { return Weights.size(); }

private:
  /// Forward pass over a batch: returns the input consumed by each layer
  /// (index 0 is the batch itself, then the ReLU activations); the softmax
  /// probabilities land in \p Probs (Rows x MaxUnrollFactor).
  std::vector<Matrix> forward(const Matrix &Batch, Matrix &Probs) const;

  /// Full-batch loss and (optionally) gradients for \p Points/Labels.
  double lossAndGradient(const std::vector<std::vector<double>> &Points,
                         const std::vector<unsigned> &Labels,
                         std::vector<Matrix> *WeightGrads,
                         std::vector<std::vector<double>> *BiasGrads) const;

  void initializeWeights();

  FeatureSet Features;
  MlpOptions Options;
  Normalizer Norm;
  /// Weights[l] is (fan-out x fan-in); Biases[l] has fan-out entries.
  std::vector<Matrix> Weights;
  std::vector<std::vector<double>> Biases;
};

} // namespace metaopt

#endif // METAOPT_CORE_ML_MLP_H
