//===- core/ml/OutputCode.cpp ---------------------------------------------===//

#include "core/ml/OutputCode.h"

#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cmath>

using namespace metaopt;

SvmClassifier::SvmClassifier(FeatureSet FeaturesIn, SvmOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(OptionsIn) {
  assert(!Features.empty() && "feature set must not be empty");
}

std::string SvmClassifier::name() const {
  return Options.CodeKind == SvmOptions::Code::OneVsRest ? "svm"
                                                         : "svm-ecoc";
}

/// Builds the code matrix: identity (one-vs-rest) or random bits with
/// distinct rows and informative columns.
static std::vector<std::vector<int>> buildCodeMatrix(
    const SvmOptions &Options) {
  std::vector<std::vector<int>> Code(MaxUnrollFactor);
  if (Options.CodeKind == SvmOptions::Code::OneVsRest) {
    for (unsigned Class = 0; Class < MaxUnrollFactor; ++Class) {
      Code[Class].assign(MaxUnrollFactor, -1);
      Code[Class][Class] = 1;
    }
    return Code;
  }
  Rng Generator(Options.EcocSeed);
  for (;;) {
    for (unsigned Class = 0; Class < MaxUnrollFactor; ++Class) {
      Code[Class].assign(Options.EcocBits, -1);
      for (unsigned Bit = 0; Bit < Options.EcocBits; ++Bit)
        Code[Class][Bit] = Generator.nextBool(0.5) ? 1 : -1;
    }
    // Reject degenerate draws: identical rows or constant columns.
    bool Ok = true;
    for (unsigned A = 0; A < MaxUnrollFactor && Ok; ++A)
      for (unsigned B = A + 1; B < MaxUnrollFactor && Ok; ++B)
        if (Code[A] == Code[B])
          Ok = false;
    for (unsigned Bit = 0; Bit < Options.EcocBits && Ok; ++Bit) {
      int Sum = 0;
      for (unsigned Class = 0; Class < MaxUnrollFactor; ++Class)
        Sum += Code[Class][Bit];
      if (Sum == static_cast<int>(MaxUnrollFactor) ||
          Sum == -static_cast<int>(MaxUnrollFactor))
        Ok = false;
    }
    if (Ok)
      return Code;
  }
}

void SvmClassifier::train(const Dataset &Train) {
  assert(!Train.empty() && "cannot train on an empty dataset");
  Norm.fit(Train.featureMatrix(), Features);
  Points.clear();
  Points.reserve(Train.size());
  for (const Example &Ex : Train.examples())
    Points.push_back(Norm.apply(Ex.Features));

  Kernel.emplace(Options.SigmaSquaredPerDim *
                 static_cast<double>(Features.size()));
  Solver = LsSvmSolver::create(Points, *Kernel, Options.Gamma);
  assert(Solver && "kernel system must be positive definite");

  CodeMatrix = buildCodeMatrix(Options);
  size_t NumBits = CodeMatrix[0].size();
  BitLabels.assign(NumBits, std::vector<double>(Train.size()));
  for (size_t I = 0; I < Train.size(); ++I) {
    unsigned Class = Train[I].Label - 1;
    for (size_t Bit = 0; Bit < NumBits; ++Bit)
      BitLabels[Bit][I] = CodeMatrix[Class][Bit];
  }

  Machines.clear();
  Machines.reserve(NumBits);
  for (size_t Bit = 0; Bit < NumBits; ++Bit)
    Machines.push_back(Solver->solve(BitLabels[Bit]));
}

std::array<double, MaxUnrollFactor>
SvmClassifier::decodingScores(const std::vector<double> &Decisions) const {
  size_t NumBits = Decisions.size();
  std::array<double, MaxUnrollFactor> Scores = {};
  for (unsigned Class = 0; Class < MaxUnrollFactor; ++Class) {
    double Score = 0.0;
    for (size_t Bit = 0; Bit < NumBits; ++Bit) {
      double Target = CodeMatrix[Class][Bit];
      if (Options.Decode == SvmOptions::Decoding::Hamming) {
        // Matching signs score a point; margin breaks ties (scaled small
        // so it never overrides a Hamming difference).
        double Sign = Decisions[Bit] >= 0.0 ? 1.0 : -1.0;
        Score += (Sign == Target ? 1.0 : 0.0);
        Score += 1e-6 * Target * Decisions[Bit];
      } else {
        // Loss-based decoding: hinge-style margin agreement.
        Score -= std::max(0.0, 1.0 - Target * Decisions[Bit]);
      }
    }
    Scores[Class] = Score;
  }
  return Scores;
}

unsigned SvmClassifier::decode(const std::vector<double> &Decisions) const {
  std::array<double, MaxUnrollFactor> Scores = decodingScores(Decisions);
  unsigned BestClass = 0;
  for (unsigned Class = 1; Class < MaxUnrollFactor; ++Class)
    if (Scores[Class] > Scores[BestClass])
      BestClass = Class;
  return BestClass + 1;
}

unsigned SvmClassifier::predict(const FeatureVector &FeaturesIn) const {
  assert(!Machines.empty() && "classifier queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);
  std::vector<double> KernelValues = kernelVector(*Kernel, Points, Query);
  std::vector<double> Decisions;
  Decisions.reserve(Machines.size());
  for (const LsSvmBinary &Machine : Machines)
    Decisions.push_back(Machine.decision(KernelValues));
  return decode(Decisions);
}

std::array<double, MaxUnrollFactor>
SvmClassifier::scores(const FeatureVector &FeaturesIn) const {
  assert(!Machines.empty() && "classifier queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);
  std::vector<double> KernelValues = kernelVector(*Kernel, Points, Query);
  std::vector<double> Decisions;
  Decisions.reserve(Machines.size());
  for (const LsSvmBinary &Machine : Machines)
    Decisions.push_back(Machine.decision(KernelValues));
  std::array<double, MaxUnrollFactor> Scores = decodingScores(Decisions);
  // Shift so the winning class scores exactly 1.0; relative gaps between
  // classes (the decoding objective) are preserved.
  double Best = *std::max_element(Scores.begin(), Scores.end());
  for (double &Score : Scores)
    Score += 1.0 - Best;
  return Scores;
}

std::vector<unsigned> SvmClassifier::loocvPredictions() {
  assert(Solver && !Machines.empty() &&
         "classifier must be trained before LOOCV");
  size_t N = Points.size();
  std::vector<std::vector<double>> LooPerBit;
  LooPerBit.reserve(Machines.size());
  for (size_t Bit = 0; Bit < Machines.size(); ++Bit)
    LooPerBit.push_back(Solver->looDecisions(BitLabels[Bit],
                                             Machines[Bit]));
  std::vector<unsigned> Predictions(N);
  std::vector<double> Decisions(Machines.size());
  for (size_t I = 0; I < N; ++I) {
    for (size_t Bit = 0; Bit < Machines.size(); ++Bit)
      Decisions[Bit] = LooPerBit[Bit][I];
    Predictions[I] = decode(Decisions);
  }
  return Predictions;
}

std::string SvmClassifier::serialize() const {
  assert(!Machines.empty() && "serialize() requires a trained classifier");
  char Buffer[64];
  std::string Out = "svm-model 1\n";
  std::snprintf(Buffer, sizeof(Buffer), "kernel %.17g\n",
                Kernel->sigmaSquared());
  Out += Buffer;
  Out += std::string("decode ") +
         (Options.Decode == SvmOptions::Decoding::Hamming ? "hamming"
                                                          : "loss") +
         "\n";
  Out += "code " + std::to_string(CodeMatrix.size()) + " " +
         std::to_string(CodeMatrix[0].size()) + "\n";
  for (const std::vector<int> &Row : CodeMatrix) {
    for (size_t Bit = 0; Bit < Row.size(); ++Bit)
      Out += (Bit ? " " : "") + std::to_string(Row[Bit]);
    Out += '\n';
  }
  Out += Norm.serialize();
  Out += "points " + std::to_string(Points.size()) + " " +
         std::to_string(Points[0].size()) + "\n";
  for (const std::vector<double> &Point : Points) {
    for (size_t D = 0; D < Point.size(); ++D) {
      std::snprintf(Buffer, sizeof(Buffer), D ? " %.17g" : "%.17g",
                    Point[D]);
      Out += Buffer;
    }
    Out += '\n';
  }
  Out += "machines " + std::to_string(Machines.size()) + "\n";
  for (const LsSvmBinary &Machine : Machines) {
    std::snprintf(Buffer, sizeof(Buffer), "%.17g", Machine.Bias);
    Out += Buffer;
    for (double Alpha : Machine.Alpha) {
      std::snprintf(Buffer, sizeof(Buffer), " %.17g", Alpha);
      Out += Buffer;
    }
    Out += '\n';
  }
  return Out;
}

std::optional<SvmClassifier>
SvmClassifier::deserialize(const std::string &Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  size_t Cursor = 0;
  auto Next = [&]() -> std::vector<std::string> {
    if (Cursor >= Lines.size())
      return {};
    return splitWhitespace(Lines[Cursor++]);
  };

  if (Cursor >= Lines.size() || trim(Lines[Cursor++]) != "svm-model 1")
    return std::nullopt;
  std::vector<std::string> KernelLine = Next();
  if (KernelLine.size() != 2 || KernelLine[0] != "kernel")
    return std::nullopt;
  auto SigmaSquared = parseDouble(KernelLine[1]);
  if (!SigmaSquared || *SigmaSquared <= 0.0)
    return std::nullopt;
  std::vector<std::string> DecodeLine = Next();
  if (DecodeLine.size() != 2 || DecodeLine[0] != "decode")
    return std::nullopt;

  std::vector<std::string> CodeHeader = Next();
  if (CodeHeader.size() != 3 || CodeHeader[0] != "code")
    return std::nullopt;
  auto Rows = parseInt(CodeHeader[1]);
  auto Bits = parseInt(CodeHeader[2]);
  if (!Rows || !Bits || *Rows != static_cast<int64_t>(MaxUnrollFactor) ||
      *Bits < 1)
    return std::nullopt;
  std::vector<std::vector<int>> Code;
  for (int64_t Row = 0; Row < *Rows; ++Row) {
    std::vector<std::string> Parts = Next();
    if (Parts.size() != static_cast<size_t>(*Bits))
      return std::nullopt;
    std::vector<int> CodeRow;
    for (const std::string &Part : Parts) {
      auto Value = parseInt(Part);
      if (!Value || (*Value != 1 && *Value != -1))
        return std::nullopt;
      CodeRow.push_back(static_cast<int>(*Value));
    }
    Code.push_back(std::move(CodeRow));
  }

  // The normalizer block: header names its own length.
  if (Cursor >= Lines.size())
    return std::nullopt;
  std::vector<std::string> NormHeader = splitWhitespace(Lines[Cursor]);
  if (NormHeader.size() != 3 || NormHeader[0] != "normalizer")
    return std::nullopt;
  auto NormDims = parseInt(NormHeader[2]);
  if (!NormDims || *NormDims < 1 ||
      Lines.size() < Cursor + 1 + static_cast<size_t>(*NormDims))
    return std::nullopt;
  std::string NormBlock;
  for (size_t I = Cursor; I < Cursor + 1 + static_cast<size_t>(*NormDims);
       ++I)
    NormBlock += Lines[I] + "\n";
  Cursor += 1 + static_cast<size_t>(*NormDims);
  std::optional<Normalizer> Norm = Normalizer::deserialize(NormBlock);
  if (!Norm)
    return std::nullopt;

  std::vector<std::string> PointsHeader = Next();
  if (PointsHeader.size() != 3 || PointsHeader[0] != "points")
    return std::nullopt;
  auto NumPoints = parseInt(PointsHeader[1]);
  auto Dims = parseInt(PointsHeader[2]);
  if (!NumPoints || !Dims || *NumPoints < 1 ||
      *Dims != static_cast<int64_t>(Norm->dimension()))
    return std::nullopt;
  std::vector<std::vector<double>> Points;
  for (int64_t I = 0; I < *NumPoints; ++I) {
    std::vector<std::string> Parts = Next();
    if (Parts.size() != static_cast<size_t>(*Dims))
      return std::nullopt;
    std::vector<double> Point;
    for (const std::string &Part : Parts) {
      auto Coord = parseDouble(Part);
      if (!Coord)
        return std::nullopt;
      Point.push_back(*Coord);
    }
    Points.push_back(std::move(Point));
  }

  std::vector<std::string> MachinesHeader = Next();
  if (MachinesHeader.size() != 2 || MachinesHeader[0] != "machines")
    return std::nullopt;
  auto NumMachines = parseInt(MachinesHeader[1]);
  if (!NumMachines || *NumMachines != *Bits)
    return std::nullopt;
  std::vector<LsSvmBinary> Machines;
  for (int64_t M = 0; M < *NumMachines; ++M) {
    std::vector<std::string> Parts = Next();
    if (Parts.size() != 1 + static_cast<size_t>(*NumPoints))
      return std::nullopt;
    LsSvmBinary Machine;
    auto Bias = parseDouble(Parts[0]);
    if (!Bias)
      return std::nullopt;
    Machine.Bias = *Bias;
    for (int64_t I = 0; I < *NumPoints; ++I) {
      auto Alpha = parseDouble(Parts[1 + I]);
      if (!Alpha)
        return std::nullopt;
      Machine.Alpha.push_back(*Alpha);
    }
    Machines.push_back(std::move(Machine));
  }

  SvmOptions Options;
  Options.Decode = DecodeLine[1] == "loss" ? SvmOptions::Decoding::Loss
                                           : SvmOptions::Decoding::Hamming;
  Options.CodeKind = static_cast<size_t>(*Bits) == MaxUnrollFactor
                         ? SvmOptions::Code::OneVsRest
                         : SvmOptions::Code::RandomEcoc;
  Options.EcocBits = static_cast<unsigned>(*Bits);
  SvmClassifier Result(Norm->featureSet(), Options);
  Result.Norm = std::move(*Norm);
  Result.Points = std::move(Points);
  Result.CodeMatrix = std::move(Code);
  Result.Machines = std::move(Machines);
  Result.Kernel.emplace(*SigmaSquared);
  return Result;
}
