//===- core/ml/LsSvm.cpp --------------------------------------------------===//

#include "core/ml/LsSvm.h"

#include <cassert>

using namespace metaopt;

double LsSvmBinary::decision(const std::vector<double> &KernelValues) const {
  assert(KernelValues.size() == Alpha.size() &&
         "kernel vector size mismatch");
  return dotProduct(Alpha, KernelValues) + Bias;
}

LsSvmSolver::LsSvmSolver(Cholesky FactorIn, std::vector<double> VIn,
                         double SIn)
    : Factor(std::move(FactorIn)), V(std::move(VIn)), S(SIn) {}

std::optional<LsSvmSolver>
LsSvmSolver::create(const std::vector<std::vector<double>> &Points,
                    const RbfKernel &Kernel, double Gamma) {
  assert(!Points.empty() && "cannot train on an empty set");
  assert(Gamma > 0.0 && "regularization must be positive");
  Matrix A = kernelMatrix(Kernel, Points);
  A.addToDiagonal(1.0 / Gamma);
  std::optional<Cholesky> Factor = Cholesky::factor(A);
  if (!Factor)
    return std::nullopt;
  std::vector<double> Ones(Points.size(), 1.0);
  std::vector<double> V = Factor->solve(Ones);
  double S = 0.0;
  for (double Value : V)
    S += Value;
  if (S <= 0.0)
    return std::nullopt; // A^{-1} is PD, so s > 0 always holds.
  return LsSvmSolver(std::move(*Factor), std::move(V), S);
}

LsSvmBinary LsSvmSolver::solve(const std::vector<double> &Y) const {
  assert(Y.size() == V.size() && "label vector size mismatch");
  // eta = A^{-1} y; b = (1^T eta) / (1^T A^{-1} 1); alpha = eta - b * v.
  std::vector<double> Eta = Factor.solve(Y);
  double EtaSum = 0.0;
  for (double Value : Eta)
    EtaSum += Value;
  LsSvmBinary Result;
  Result.Bias = EtaSum / S;
  Result.Alpha = std::move(Eta);
  addScaled(Result.Alpha, -Result.Bias, V);
  return Result;
}

std::vector<double>
LsSvmSolver::looDecisions(const std::vector<double> &Y,
                          const LsSvmBinary &Trained) {
  assert(Y.size() == V.size() && Trained.Alpha.size() == V.size() &&
         "LOOCV input size mismatch");
  if (BorderedInverseDiag.empty()) {
    // One-time O(n^3): diag(C^{-1}) from the block inverse of the bordered
    // system, diag(A^{-1}) - v_i^2 / s.
    Matrix Inverse = Factor.inverse();
    BorderedInverseDiag.resize(V.size());
    for (size_t I = 0; I < V.size(); ++I)
      BorderedInverseDiag[I] = Inverse.at(I, I) - V[I] * V[I] / S;
  }
  std::vector<double> Decisions(V.size());
  for (size_t I = 0; I < V.size(); ++I) {
    assert(BorderedInverseDiag[I] > 0.0 &&
           "bordered inverse diagonal must stay positive");
    Decisions[I] = Y[I] - Trained.Alpha[I] / BorderedInverseDiag[I];
  }
  return Decisions;
}
