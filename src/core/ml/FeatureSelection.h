//===- core/ml/FeatureSelection.h - MIS and greedy selection ----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two feature-selection methods of Section 7: the mutual information
/// score I(f; u) between a (binned) feature and the optimal unroll factor
/// (Table 3), and greedy forward selection that repeatedly adds the feature
/// minimizing a classifier's training error (Table 4).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_FEATURESELECTION_H
#define METAOPT_CORE_ML_FEATURESELECTION_H

#include "core/ml/Dataset.h"

#include <functional>
#include <utility>

namespace metaopt {

/// I(f; u) in bits. Continuous features are discretized into \p Bins
/// equal-frequency bins before the probability mass functions are
/// estimated ("We bin the values of continuous features", §7.1).
double mutualInformationScore(const Dataset &Data, FeatureId Feature,
                              int Bins = 10);

/// All features ranked by MIS, best first.
std::vector<std::pair<FeatureId, double>>
rankByMutualInformation(const Dataset &Data, int Bins = 10);

/// Training-set error of a classifier restricted to a feature subset;
/// pluggable so both Table 4 columns (NN and SVM) reuse one greedy loop.
/// Candidate features are scored concurrently on the global thread pool,
/// so the callable must be safe to invoke from several threads at once
/// (training a fresh classifier per call, as both built-in error
/// functions do, satisfies this).
using TrainErrorFn =
    std::function<double(const FeatureSet &Features, const Dataset &Data)>;

/// One greedy step: the feature added and the resulting training error.
struct GreedyStep {
  FeatureId Feature;
  double TrainError;
};

/// Greedy forward selection: starts empty, repeatedly adds the feature
/// whose addition minimizes the training error, for \p MaxFeatures steps.
std::vector<GreedyStep> greedyFeatureSelection(const Dataset &Data,
                                               const TrainErrorFn &Error,
                                               unsigned MaxFeatures);

/// Table 4's NN column: leave-self-out 1-nearest-neighbor training error
/// ("we modified the algorithm so that it looks for the single closest
/// point in the database").
double nearNeighborTrainError(const FeatureSet &Features,
                              const Dataset &Data);

/// Table 4's SVM column: LS-SVM training-set error.
double svmTrainError(const FeatureSet &Features, const Dataset &Data);

/// Model-zoo greedy columns: MLP and random-forest training-set error.
/// Both retrain a fresh, default-configured model per call, so they are
/// safe under the concurrent candidate scan like the two above.
double mlpTrainError(const FeatureSet &Features, const Dataset &Data);
double forestTrainError(const FeatureSet &Features, const Dataset &Data);

} // namespace metaopt

#endif // METAOPT_CORE_ML_FEATURESELECTION_H
