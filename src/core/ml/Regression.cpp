//===- core/ml/Regression.cpp ---------------------------------------------===//

#include "core/ml/Regression.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace metaopt;

KrrUnrollRegressor::KrrUnrollRegressor(FeatureSet FeaturesIn,
                                       KrrOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(OptionsIn) {
  assert(!Features.empty() && "feature set must not be empty");
}

std::string KrrUnrollRegressor::name() const { return "krr-regression"; }

void KrrUnrollRegressor::train(const Dataset &Train) {
  assert(!Train.empty() && "cannot train on an empty dataset");
  Norm.fit(Train.featureMatrix(), Features);
  Points.clear();
  Targets.clear();
  Points.reserve(Train.size());
  Targets.reserve(Train.size());
  for (const Example &Ex : Train.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Targets.push_back(static_cast<double>(Ex.Label));
  }
  Kernel.emplace(Options.SigmaSquaredPerDim *
                 static_cast<double>(Features.size()));
  Solver = LsSvmSolver::create(Points, *Kernel, Options.Gamma);
  assert(Solver && "kernel system must be positive definite");
  Machine = Solver->solve(Targets);
}

double
KrrUnrollRegressor::predictValue(const FeatureVector &FeaturesIn) const {
  assert(!Points.empty() && "regressor queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);
  return Machine.decision(kernelVector(*Kernel, Points, Query));
}

unsigned KrrUnrollRegressor::predict(const FeatureVector &FeaturesIn) const {
  double Value = predictValue(FeaturesIn);
  long Rounded = std::lround(Value);
  return static_cast<unsigned>(
      std::clamp<long>(Rounded, 1, MaxUnrollFactor));
}

std::vector<double> KrrUnrollRegressor::looValues() {
  assert(!Points.empty() && "regressor must be trained before LOOCV");
  // A deserialized model carries only the dual weights; refactor the
  // kernel system on first use.
  if (!Solver) {
    Solver = LsSvmSolver::create(Points, *Kernel, Options.Gamma);
    assert(Solver && "kernel system must be positive definite");
  }
  return Solver->looDecisions(Targets, Machine);
}

std::string KrrUnrollRegressor::serialize() const {
  assert(!Points.empty() && "serialize() requires a trained regressor");
  char Buffer[96];
  std::string Out = "krr-model 1\n";
  std::snprintf(Buffer, sizeof(Buffer), "options %.17g %.17g\n",
                Options.Gamma, Options.SigmaSquaredPerDim);
  Out += Buffer;
  Out += Norm.serialize();
  std::snprintf(Buffer, sizeof(Buffer), "bias %.17g\n", Machine.Bias);
  Out += Buffer;
  Out += "points " + std::to_string(Points.size()) + " " +
         std::to_string(Points[0].size()) + "\n";
  for (size_t I = 0; I < Points.size(); ++I) {
    std::snprintf(Buffer, sizeof(Buffer), "%.17g %.17g", Targets[I],
                  Machine.Alpha[I]);
    Out += Buffer;
    for (double Coord : Points[I]) {
      std::snprintf(Buffer, sizeof(Buffer), " %.17g", Coord);
      Out += Buffer;
    }
    Out += '\n';
  }
  return Out;
}

std::optional<KrrUnrollRegressor>
KrrUnrollRegressor::deserialize(const std::string &Text) {
  std::vector<std::string> Lines = split(Text, '\n');
  if (Lines.size() < 5 || trim(Lines[0]) != "krr-model 1")
    return std::nullopt;
  std::vector<std::string> OptionsParts = splitWhitespace(Lines[1]);
  if (OptionsParts.size() != 3 || OptionsParts[0] != "options")
    return std::nullopt;
  auto Gamma = parseDouble(OptionsParts[1]);
  auto SigmaSquaredPerDim = parseDouble(OptionsParts[2]);
  if (!Gamma || !SigmaSquaredPerDim || *Gamma <= 0.0 ||
      *SigmaSquaredPerDim <= 0.0)
    return std::nullopt;

  size_t Index = 2;
  std::optional<Normalizer> Norm = parseNormalizerBlock(Lines, Index);
  if (!Norm || Lines.size() <= Index + 1)
    return std::nullopt;

  std::vector<std::string> BiasParts = splitWhitespace(Lines[Index]);
  if (BiasParts.size() != 2 || BiasParts[0] != "bias")
    return std::nullopt;
  auto Bias = parseDouble(BiasParts[1]);
  if (!Bias)
    return std::nullopt;

  std::vector<std::string> PointsHeader =
      splitWhitespace(Lines[Index + 1]);
  if (PointsHeader.size() != 3 || PointsHeader[0] != "points")
    return std::nullopt;
  auto NumPoints = parseInt(PointsHeader[1]);
  auto Dims = parseInt(PointsHeader[2]);
  if (!NumPoints || !Dims || *NumPoints < 1 ||
      *Dims != static_cast<int64_t>(Norm->dimension()) ||
      Lines.size() < Index + 2 + static_cast<size_t>(*NumPoints))
    return std::nullopt;

  KrrOptions Options;
  Options.Gamma = *Gamma;
  Options.SigmaSquaredPerDim = *SigmaSquaredPerDim;
  KrrUnrollRegressor Result(Norm->featureSet(), Options);
  Result.Norm = std::move(*Norm);
  Result.Machine.Bias = *Bias;
  for (int64_t I = 0; I < *NumPoints; ++I) {
    std::vector<std::string> Parts =
        splitWhitespace(Lines[Index + 2 + I]);
    if (Parts.size() != 2 + static_cast<size_t>(*Dims))
      return std::nullopt;
    auto Target = parseDouble(Parts[0]);
    auto Alpha = parseDouble(Parts[1]);
    if (!Target || !Alpha)
      return std::nullopt;
    std::vector<double> Point;
    Point.reserve(static_cast<size_t>(*Dims));
    for (int64_t D = 0; D < *Dims; ++D) {
      auto Coord = parseDouble(Parts[2 + D]);
      if (!Coord)
        return std::nullopt;
      Point.push_back(*Coord);
    }
    Result.Points.push_back(std::move(Point));
    Result.Targets.push_back(*Target);
    Result.Machine.Alpha.push_back(*Alpha);
  }
  Result.Kernel.emplace(Result.Options.SigmaSquaredPerDim *
                        static_cast<double>(Result.Features.size()));
  return Result;
}
