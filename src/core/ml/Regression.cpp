//===- core/ml/Regression.cpp ---------------------------------------------===//

#include "core/ml/Regression.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace metaopt;

KrrUnrollRegressor::KrrUnrollRegressor(FeatureSet FeaturesIn,
                                       KrrOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(OptionsIn) {
  assert(!Features.empty() && "feature set must not be empty");
}

std::string KrrUnrollRegressor::name() const { return "krr-regression"; }

void KrrUnrollRegressor::train(const Dataset &Train) {
  assert(!Train.empty() && "cannot train on an empty dataset");
  Norm.fit(Train.featureMatrix(), Features);
  Points.clear();
  Targets.clear();
  Points.reserve(Train.size());
  Targets.reserve(Train.size());
  for (const Example &Ex : Train.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Targets.push_back(static_cast<double>(Ex.Label));
  }
  Kernel.emplace(Options.SigmaSquaredPerDim *
                 static_cast<double>(Features.size()));
  Solver = LsSvmSolver::create(Points, *Kernel, Options.Gamma);
  assert(Solver && "kernel system must be positive definite");
  Machine = Solver->solve(Targets);
}

double
KrrUnrollRegressor::predictValue(const FeatureVector &FeaturesIn) const {
  assert(!Points.empty() && "regressor queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);
  return Machine.decision(kernelVector(*Kernel, Points, Query));
}

unsigned KrrUnrollRegressor::predict(const FeatureVector &FeaturesIn) const {
  double Value = predictValue(FeaturesIn);
  long Rounded = std::lround(Value);
  return static_cast<unsigned>(
      std::clamp<long>(Rounded, 1, MaxUnrollFactor));
}

std::vector<double> KrrUnrollRegressor::looValues() {
  assert(Solver && "regressor must be trained before LOOCV");
  return Solver->looDecisions(Targets, Machine);
}
