//===- core/ml/Mlp.cpp ----------------------------------------------------===//

#include "core/ml/Mlp.h"

#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace metaopt;

MlpClassifier::MlpClassifier(FeatureSet FeaturesIn, MlpOptions OptionsIn)
    : Features(std::move(FeaturesIn)), Options(std::move(OptionsIn)) {
  assert(!Features.empty() && "feature set must not be empty");
  assert(!Options.HiddenSizes.empty() && Options.HiddenSizes.size() <= 2 &&
         "1 or 2 hidden layers");
  assert(Options.BatchSize >= 1 && "degenerate batch size");
}

std::string MlpClassifier::name() const { return "mlp"; }

namespace {

/// Parses an unsigned 64-bit decimal with no trailing garbage (seeds can
/// exceed int64, so parseInt() is not enough).
std::optional<uint64_t> parseU64(const std::string &Str) {
  if (Str.empty() || Str[0] == '-')
    return std::nullopt;
  char *End = nullptr;
  errno = 0;
  uint64_t Value = std::strtoull(Str.c_str(), &End, 10);
  if (errno != 0 || End != Str.c_str() + Str.size())
    return std::nullopt;
  return Value;
}

/// Parses a 64-bit hex word (the checksum line payload).
std::optional<uint64_t> parseHex64(const std::string &Str) {
  if (Str.empty())
    return std::nullopt;
  char *End = nullptr;
  errno = 0;
  uint64_t Value = std::strtoull(Str.c_str(), &End, 16);
  if (errno != 0 || End != Str.c_str() + Str.size())
    return std::nullopt;
  return Value;
}

void fail(std::string *Error, const char *Message) {
  if (Error)
    *Error = Message;
}

} // namespace

void MlpClassifier::initializeWeights() {
  // He-normal init sized by fan-in; one dedicated stream (index 0) so the
  // epoch shuffles (indices 1..Epochs) never perturb it.
  Rng Init = Rng::splitStream(Options.Seed, 0);
  std::vector<unsigned> Sizes;
  Sizes.push_back(static_cast<unsigned>(Norm.dimension()));
  for (unsigned Hidden : Options.HiddenSizes)
    Sizes.push_back(Hidden);
  Sizes.push_back(MaxUnrollFactor);

  Weights.clear();
  Biases.clear();
  for (size_t Layer = 0; Layer + 1 < Sizes.size(); ++Layer) {
    unsigned FanIn = Sizes[Layer];
    unsigned FanOut = Sizes[Layer + 1];
    double StdDev = std::sqrt(2.0 / FanIn);
    Matrix W(FanOut, FanIn);
    for (size_t Row = 0; Row < FanOut; ++Row)
      for (size_t Col = 0; Col < FanIn; ++Col)
        W.at(Row, Col) = Init.nextGaussian(0.0, StdDev);
    Weights.push_back(std::move(W));
    Biases.emplace_back(FanOut, 0.0);
  }
}

std::vector<Matrix> MlpClassifier::forward(const Matrix &Batch,
                                           Matrix &Probs) const {
  // Inputs[l] is what layer l consumes: Inputs[0] is the batch itself,
  // Inputs[l>0] the ReLU activations of layer l-1.
  std::vector<Matrix> Inputs;
  Inputs.reserve(Weights.size());
  Inputs.push_back(Batch);
  for (size_t Layer = 0; Layer < Weights.size(); ++Layer) {
    Matrix Z = Inputs.back().multiply(Weights[Layer].transpose());
    for (size_t Row = 0; Row < Z.rows(); ++Row) {
      double *RowPtr = Z.rowPtr(Row);
      for (size_t Col = 0; Col < Z.cols(); ++Col)
        RowPtr[Col] += Biases[Layer][Col];
    }
    if (Layer + 1 == Weights.size()) {
      // Row-wise stable softmax.
      Probs = std::move(Z);
      for (size_t Row = 0; Row < Probs.rows(); ++Row) {
        double *RowPtr = Probs.rowPtr(Row);
        double Max = RowPtr[0];
        for (size_t Col = 1; Col < Probs.cols(); ++Col)
          Max = std::max(Max, RowPtr[Col]);
        double Sum = 0.0;
        for (size_t Col = 0; Col < Probs.cols(); ++Col) {
          RowPtr[Col] = std::exp(RowPtr[Col] - Max);
          Sum += RowPtr[Col];
        }
        for (size_t Col = 0; Col < Probs.cols(); ++Col)
          RowPtr[Col] /= Sum;
      }
    } else {
      for (size_t Row = 0; Row < Z.rows(); ++Row) {
        double *RowPtr = Z.rowPtr(Row);
        for (size_t Col = 0; Col < Z.cols(); ++Col)
          RowPtr[Col] = std::max(0.0, RowPtr[Col]);
      }
      Inputs.push_back(std::move(Z));
    }
  }
  return Inputs;
}

double MlpClassifier::lossAndGradient(
    const std::vector<std::vector<double>> &Points,
    const std::vector<unsigned> &Labels, std::vector<Matrix> *WeightGrads,
    std::vector<std::vector<double>> *BiasGrads) const {
  assert(!Points.empty() && Points.size() == Labels.size());
  size_t BatchRows = Points.size();
  Matrix Batch(BatchRows, Norm.dimension());
  for (size_t Row = 0; Row < BatchRows; ++Row)
    std::copy(Points[Row].begin(), Points[Row].end(), Batch.rowPtr(Row));

  Matrix Probs;
  std::vector<Matrix> Inputs = forward(Batch, Probs);

  double Loss = 0.0;
  for (size_t Row = 0; Row < BatchRows; ++Row)
    Loss -= std::log(std::max(Probs.at(Row, Labels[Row] - 1), 1e-300));
  Loss /= BatchRows;
  for (const Matrix &W : Weights) {
    double SumSquares = 0.0;
    for (size_t Row = 0; Row < W.rows(); ++Row) {
      const double *RowPtr = W.rowPtr(Row);
      for (size_t Col = 0; Col < W.cols(); ++Col)
        SumSquares += RowPtr[Col] * RowPtr[Col];
    }
    Loss += 0.5 * Options.WeightDecay * SumSquares;
  }
  if (!WeightGrads)
    return Loss;

  WeightGrads->assign(Weights.size(), Matrix());
  BiasGrads->assign(Weights.size(), {});
  // dLoss/dZ for the softmax layer is (P - onehot) / batch.
  Matrix Delta = std::move(Probs);
  for (size_t Row = 0; Row < BatchRows; ++Row) {
    double *RowPtr = Delta.rowPtr(Row);
    RowPtr[Labels[Row] - 1] -= 1.0;
    for (size_t Col = 0; Col < Delta.cols(); ++Col)
      RowPtr[Col] /= BatchRows;
  }
  for (size_t Layer = Weights.size(); Layer-- > 0;) {
    Matrix Grad = Delta.transpose().multiply(Inputs[Layer]);
    for (size_t Row = 0; Row < Grad.rows(); ++Row) {
      double *GradRow = Grad.rowPtr(Row);
      const double *WRow = Weights[Layer].rowPtr(Row);
      for (size_t Col = 0; Col < Grad.cols(); ++Col)
        GradRow[Col] += Options.WeightDecay * WRow[Col];
    }
    (*WeightGrads)[Layer] = std::move(Grad);
    std::vector<double> BiasGrad(Delta.cols(), 0.0);
    for (size_t Row = 0; Row < Delta.rows(); ++Row) {
      const double *RowPtr = Delta.rowPtr(Row);
      for (size_t Col = 0; Col < Delta.cols(); ++Col)
        BiasGrad[Col] += RowPtr[Col];
    }
    (*BiasGrads)[Layer] = std::move(BiasGrad);
    if (Layer == 0)
      break;
    // Propagate through the weights, then gate by the ReLU mask of the
    // previous layer's activations (Inputs[Layer] > 0 iff its Z was > 0).
    Matrix Upstream = Delta.multiply(Weights[Layer]);
    for (size_t Row = 0; Row < Upstream.rows(); ++Row) {
      double *UpRow = Upstream.rowPtr(Row);
      const double *ActRow = Inputs[Layer].rowPtr(Row);
      for (size_t Col = 0; Col < Upstream.cols(); ++Col)
        if (ActRow[Col] <= 0.0)
          UpRow[Col] = 0.0;
    }
    Delta = std::move(Upstream);
  }
  return Loss;
}

void MlpClassifier::train(const Dataset &Train) {
  assert(!Train.empty() && "cannot train on an empty dataset");
  Norm.fit(Train.featureMatrix(), Features);
  initializeWeights();

  std::vector<std::vector<double>> Points;
  std::vector<unsigned> Labels;
  Points.reserve(Train.size());
  Labels.reserve(Train.size());
  for (const Example &Ex : Train.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Labels.push_back(Ex.Label);
  }

  std::vector<double> Params = parameters();
  std::vector<double> FirstMoment(Params.size(), 0.0);
  std::vector<double> SecondMoment(Params.size(), 0.0);
  uint64_t Step = 0;

  std::vector<uint32_t> Order(Points.size());
  for (uint32_t I = 0; I < Points.size(); ++I)
    Order[I] = I;

  std::vector<std::vector<double>> BatchPoints;
  std::vector<unsigned> BatchLabels;
  std::vector<Matrix> WeightGrads;
  std::vector<std::vector<double>> BiasGrads;
  for (unsigned Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    // One decorrelated stream per epoch keyed by the stable epoch index:
    // the visit order never depends on thread count or prior epochs.
    Rng Shuffler = Rng::splitStream(Options.Seed, 1 + Epoch);
    Shuffler.shuffle(Order);
    for (size_t Begin = 0; Begin < Order.size();
         Begin += Options.BatchSize) {
      size_t End = std::min(Order.size(),
                            Begin + static_cast<size_t>(Options.BatchSize));
      BatchPoints.clear();
      BatchLabels.clear();
      for (size_t I = Begin; I < End; ++I) {
        BatchPoints.push_back(Points[Order[I]]);
        BatchLabels.push_back(Labels[Order[I]]);
      }
      lossAndGradient(BatchPoints, BatchLabels, &WeightGrads, &BiasGrads);

      // Flatten the gradients in parameters() order and take one Adam
      // step with bias correction.
      size_t Offset = 0;
      ++Step;
      double Correction1 = 1.0 - std::pow(Options.Beta1, double(Step));
      double Correction2 = 1.0 - std::pow(Options.Beta2, double(Step));
      auto adamStep = [&](double Gradient) {
        FirstMoment[Offset] = Options.Beta1 * FirstMoment[Offset] +
                              (1.0 - Options.Beta1) * Gradient;
        SecondMoment[Offset] = Options.Beta2 * SecondMoment[Offset] +
                               (1.0 - Options.Beta2) * Gradient * Gradient;
        double MHat = FirstMoment[Offset] / Correction1;
        double VHat = SecondMoment[Offset] / Correction2;
        Params[Offset] -=
            Options.LearningRate * MHat / (std::sqrt(VHat) + Options.Epsilon);
        ++Offset;
      };
      for (size_t Layer = 0; Layer < Weights.size(); ++Layer) {
        const Matrix &Grad = WeightGrads[Layer];
        for (size_t Row = 0; Row < Grad.rows(); ++Row) {
          const double *RowPtr = Grad.rowPtr(Row);
          for (size_t Col = 0; Col < Grad.cols(); ++Col)
            adamStep(RowPtr[Col]);
        }
        for (double Gradient : BiasGrads[Layer])
          adamStep(Gradient);
      }
      assert(Offset == Params.size() && "gradient/parameter layout skew");
      setParameters(Params);
    }
  }
}

std::array<double, MaxUnrollFactor>
MlpClassifier::scores(const FeatureVector &FeaturesIn) const {
  assert(!Weights.empty() && "classifier queried before training");
  std::vector<double> Query = Norm.apply(FeaturesIn);
  Matrix Batch(1, Query.size());
  std::copy(Query.begin(), Query.end(), Batch.rowPtr(0));
  Matrix Probs;
  forward(Batch, Probs);
  std::array<double, MaxUnrollFactor> Scores = {};
  for (unsigned Class = 0; Class < MaxUnrollFactor; ++Class)
    Scores[Class] = Probs.at(0, Class);
  return Scores;
}

unsigned MlpClassifier::predict(const FeatureVector &FeaturesIn) const {
  std::array<double, MaxUnrollFactor> Scores = scores(FeaturesIn);
  // Strict comparison: ties resolve to the lowest (safest) factor.
  unsigned Best = 0;
  for (unsigned Class = 1; Class < MaxUnrollFactor; ++Class)
    if (Scores[Class] > Scores[Best])
      Best = Class;
  return Best + 1;
}

std::vector<double> MlpClassifier::parameters() const {
  assert(!Weights.empty() && "parameters() requires initialized weights");
  std::vector<double> Flat;
  for (size_t Layer = 0; Layer < Weights.size(); ++Layer) {
    const Matrix &W = Weights[Layer];
    for (size_t Row = 0; Row < W.rows(); ++Row) {
      const double *RowPtr = W.rowPtr(Row);
      Flat.insert(Flat.end(), RowPtr, RowPtr + W.cols());
    }
    Flat.insert(Flat.end(), Biases[Layer].begin(), Biases[Layer].end());
  }
  return Flat;
}

void MlpClassifier::setParameters(const std::vector<double> &Flat) {
  size_t Offset = 0;
  for (size_t Layer = 0; Layer < Weights.size(); ++Layer) {
    Matrix &W = Weights[Layer];
    for (size_t Row = 0; Row < W.rows(); ++Row) {
      assert(Offset + W.cols() <= Flat.size() && "parameter vector too short");
      std::copy(Flat.begin() + Offset, Flat.begin() + Offset + W.cols(),
                W.rowPtr(Row));
      Offset += W.cols();
    }
    assert(Offset + Biases[Layer].size() <= Flat.size());
    std::copy(Flat.begin() + Offset,
              Flat.begin() + Offset + Biases[Layer].size(),
              Biases[Layer].begin());
    Offset += Biases[Layer].size();
  }
  assert(Offset == Flat.size() && "parameter vector size mismatch");
}

double MlpClassifier::lossOn(const Dataset &Data) const {
  assert(!Weights.empty() && "lossOn() requires initialized weights");
  std::vector<std::vector<double>> Points;
  std::vector<unsigned> Labels;
  for (const Example &Ex : Data.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Labels.push_back(Ex.Label);
  }
  return lossAndGradient(Points, Labels, nullptr, nullptr);
}

std::vector<double> MlpClassifier::lossGradient(const Dataset &Data) const {
  assert(!Weights.empty() && "lossGradient() requires initialized weights");
  std::vector<std::vector<double>> Points;
  std::vector<unsigned> Labels;
  for (const Example &Ex : Data.examples()) {
    Points.push_back(Norm.apply(Ex.Features));
    Labels.push_back(Ex.Label);
  }
  std::vector<Matrix> WeightGrads;
  std::vector<std::vector<double>> BiasGrads;
  lossAndGradient(Points, Labels, &WeightGrads, &BiasGrads);
  std::vector<double> Flat;
  for (size_t Layer = 0; Layer < WeightGrads.size(); ++Layer) {
    const Matrix &Grad = WeightGrads[Layer];
    for (size_t Row = 0; Row < Grad.rows(); ++Row) {
      const double *RowPtr = Grad.rowPtr(Row);
      Flat.insert(Flat.end(), RowPtr, RowPtr + Grad.cols());
    }
    Flat.insert(Flat.end(), BiasGrads[Layer].begin(), BiasGrads[Layer].end());
  }
  return Flat;
}

std::string MlpClassifier::serialize() const {
  assert(!Weights.empty() && "serialize() requires a trained classifier");
  char Buffer[256];
  std::string Out = "mlp-model 1\n";
  std::snprintf(Buffer, sizeof(Buffer),
                "options %u %u %.17g %.17g %.17g %.17g %.17g %llu\n",
                Options.Epochs, Options.BatchSize, Options.LearningRate,
                Options.Beta1, Options.Beta2, Options.Epsilon,
                Options.WeightDecay,
                static_cast<unsigned long long>(Options.Seed));
  Out += Buffer;
  Out += Norm.serialize();
  Out += "layers " + std::to_string(Weights.size()) + "\n";
  for (size_t Layer = 0; Layer < Weights.size(); ++Layer) {
    const Matrix &W = Weights[Layer];
    Out += "layer " + std::to_string(Layer) + " " + std::to_string(W.rows()) +
           " " + std::to_string(W.cols()) + "\n";
    for (size_t Row = 0; Row < W.rows(); ++Row) {
      const double *RowPtr = W.rowPtr(Row);
      for (size_t Col = 0; Col < W.cols(); ++Col) {
        std::snprintf(Buffer, sizeof(Buffer), "%s%.17g",
                      Col == 0 ? "" : " ", RowPtr[Col]);
        Out += Buffer;
      }
      Out += "\n";
    }
    Out += "bias";
    for (double Bias : Biases[Layer]) {
      std::snprintf(Buffer, sizeof(Buffer), " %.17g", Bias);
      Out += Buffer;
    }
    Out += "\n";
  }
  // The checksum covers every preceding byte, so truncation or a flipped
  // digit anywhere above is caught at load time.
  std::snprintf(Buffer, sizeof(Buffer), "checksum %016llx\n",
                static_cast<unsigned long long>(Rng::hashString(Out)));
  Out += Buffer;
  return Out;
}

std::optional<MlpClassifier>
MlpClassifier::deserialize(const std::string &Text, std::string *Error) {
  size_t ChecksumPos = Text.rfind("\nchecksum ");
  if (ChecksumPos == std::string::npos) {
    fail(Error, "mlp: missing checksum line (truncated model?)");
    return std::nullopt;
  }
  std::string Body = Text.substr(0, ChecksumPos + 1);
  std::vector<std::string> TailParts =
      splitWhitespace(Text.substr(ChecksumPos + 1));
  std::optional<uint64_t> Stored =
      TailParts.size() == 2 ? parseHex64(TailParts[1]) : std::nullopt;
  if (!Stored) {
    fail(Error, "mlp: malformed checksum line");
    return std::nullopt;
  }
  if (*Stored != Rng::hashString(Body)) {
    fail(Error, "mlp: checksum mismatch (corrupt or tampered model)");
    return std::nullopt;
  }

  std::vector<std::string> Lines = split(Body, '\n');
  if (Lines.size() < 4 || trim(Lines[0]) != "mlp-model 1") {
    fail(Error, "mlp: unrecognized header");
    return std::nullopt;
  }
  std::vector<std::string> Opts = splitWhitespace(Lines[1]);
  if (Opts.size() != 9 || Opts[0] != "options") {
    fail(Error, "mlp: malformed options line");
    return std::nullopt;
  }
  auto Epochs = parseInt(Opts[1]);
  auto BatchSize = parseInt(Opts[2]);
  auto LearningRate = parseDouble(Opts[3]);
  auto Beta1 = parseDouble(Opts[4]);
  auto Beta2 = parseDouble(Opts[5]);
  auto Epsilon = parseDouble(Opts[6]);
  auto WeightDecay = parseDouble(Opts[7]);
  auto Seed = parseU64(Opts[8]);
  if (!Epochs || !BatchSize || !LearningRate || !Beta1 || !Beta2 ||
      !Epsilon || !WeightDecay || !Seed || *Epochs < 0 || *BatchSize < 1) {
    fail(Error, "mlp: malformed options line");
    return std::nullopt;
  }

  size_t Index = 2;
  std::optional<Normalizer> Norm = parseNormalizerBlock(Lines, Index);
  if (!Norm) {
    fail(Error, "mlp: malformed normalizer block");
    return std::nullopt;
  }
  if (Lines.size() <= Index) {
    fail(Error, "mlp: truncated model (missing layers header)");
    return std::nullopt;
  }
  std::vector<std::string> LayersHeader = splitWhitespace(Lines[Index]);
  ++Index;
  if (LayersHeader.size() != 2 || LayersHeader[0] != "layers") {
    fail(Error, "mlp: malformed layers header");
    return std::nullopt;
  }
  auto NumLayers = parseInt(LayersHeader[1]);
  // 1-2 hidden layers plus the softmax layer.
  if (!NumLayers || *NumLayers < 2 || *NumLayers > 3) {
    fail(Error, "mlp: bad layer count");
    return std::nullopt;
  }

  std::vector<Matrix> Weights;
  std::vector<std::vector<double>> Biases;
  size_t PreviousOut = Norm->dimension();
  for (int64_t Layer = 0; Layer < *NumLayers; ++Layer) {
    if (Lines.size() <= Index) {
      fail(Error, "mlp: truncated model (missing layer header)");
      return std::nullopt;
    }
    std::vector<std::string> Shape = splitWhitespace(Lines[Index]);
    ++Index;
    if (Shape.size() != 4 || Shape[0] != "layer") {
      fail(Error, "mlp: malformed layer header");
      return std::nullopt;
    }
    auto LayerIndex = parseInt(Shape[1]);
    auto FanOut = parseInt(Shape[2]);
    auto FanIn = parseInt(Shape[3]);
    if (!LayerIndex || !FanOut || !FanIn || *LayerIndex != Layer) {
      fail(Error, "mlp: malformed layer header");
      return std::nullopt;
    }
    bool IsLast = Layer + 1 == *NumLayers;
    if (*FanIn < 1 || *FanOut < 1 ||
        static_cast<size_t>(*FanIn) != PreviousOut ||
        (IsLast &&
         *FanOut != static_cast<int64_t>(MaxUnrollFactor))) {
      fail(Error, "mlp: bad layer shape");
      return std::nullopt;
    }
    Matrix W(static_cast<size_t>(*FanOut), static_cast<size_t>(*FanIn));
    for (int64_t Row = 0; Row < *FanOut; ++Row) {
      if (Lines.size() <= Index) {
        fail(Error, "mlp: truncated model (missing weight row)");
        return std::nullopt;
      }
      std::vector<std::string> Values = splitWhitespace(Lines[Index]);
      ++Index;
      if (Values.size() != static_cast<size_t>(*FanIn)) {
        fail(Error, "mlp: bad layer shape (weight row width)");
        return std::nullopt;
      }
      for (int64_t Col = 0; Col < *FanIn; ++Col) {
        auto Value = parseDouble(Values[Col]);
        if (!Value) {
          fail(Error, "mlp: malformed weight value");
          return std::nullopt;
        }
        W.at(static_cast<size_t>(Row), static_cast<size_t>(Col)) = *Value;
      }
    }
    if (Lines.size() <= Index) {
      fail(Error, "mlp: truncated model (missing bias line)");
      return std::nullopt;
    }
    std::vector<std::string> BiasParts = splitWhitespace(Lines[Index]);
    ++Index;
    if (BiasParts.size() != static_cast<size_t>(*FanOut) + 1 ||
        BiasParts[0] != "bias") {
      fail(Error, "mlp: bad layer shape (bias width)");
      return std::nullopt;
    }
    std::vector<double> Bias;
    for (size_t I = 1; I < BiasParts.size(); ++I) {
      auto Value = parseDouble(BiasParts[I]);
      if (!Value) {
        fail(Error, "mlp: malformed bias value");
        return std::nullopt;
      }
      Bias.push_back(*Value);
    }
    PreviousOut = static_cast<size_t>(*FanOut);
    Weights.push_back(std::move(W));
    Biases.push_back(std::move(Bias));
  }

  MlpOptions Options;
  Options.HiddenSizes.clear();
  for (size_t Layer = 0; Layer + 1 < Weights.size(); ++Layer)
    Options.HiddenSizes.push_back(static_cast<unsigned>(Weights[Layer].rows()));
  Options.Epochs = static_cast<unsigned>(*Epochs);
  Options.BatchSize = static_cast<unsigned>(*BatchSize);
  Options.LearningRate = *LearningRate;
  Options.Beta1 = *Beta1;
  Options.Beta2 = *Beta2;
  Options.Epsilon = *Epsilon;
  Options.WeightDecay = *WeightDecay;
  Options.Seed = *Seed;

  MlpClassifier Result(Norm->featureSet(), Options);
  Result.Norm = std::move(*Norm);
  Result.Weights = std::move(Weights);
  Result.Biases = std::move(Biases);
  return Result;
}
