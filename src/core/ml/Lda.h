//===- core/ml/Lda.h - Linear discriminant analysis -------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fisher linear discriminant analysis, used to find the "good plane" the
/// paper projects loops onto for Figures 1 and 2 ("we use the linear
/// discriminant analysis algorithm described in [8]"). Solves the
/// generalized eigenproblem Sb v = lambda Sw v through symmetric
/// whitening, so only the Jacobi symmetric eigensolver is needed.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORE_ML_LDA_H
#define METAOPT_CORE_ML_LDA_H

#include "core/features/Normalizer.h"
#include "core/ml/Dataset.h"
#include "linalg/Matrix.h"

namespace metaopt {

/// A fitted LDA projection.
struct LdaProjection {
  /// Normalizer fitted on the dataset (projection inputs are normalized).
  Normalizer Norm;
  /// D x K projection directions (columns).
  Matrix Directions;
  /// Discriminability of each direction (generalized eigenvalues).
  std::vector<double> Eigenvalues;

  /// Projects a raw feature vector to K coordinates.
  std::vector<double> project(const FeatureVector &Features) const;
};

/// Fits LDA on \p Data over \p Features, producing \p OutDims directions.
/// A small ridge keeps the within-class scatter invertible.
LdaProjection fitLda(const Dataset &Data, const FeatureSet &Features,
                     unsigned OutDims = 2, double Ridge = 1e-6);

} // namespace metaopt

#endif // METAOPT_CORE_ML_LDA_H
