//===- core/ml/Classifier.cpp ---------------------------------------------===//

#include "core/ml/Classifier.h"

#include "core/ml/DecisionTree.h"
#include "core/ml/Forest.h"
#include "core/ml/Lsh.h"
#include "core/ml/Mlp.h"
#include "core/ml/NearNeighbor.h"
#include "core/ml/OutputCode.h"
#include "core/ml/Regression.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <mutex>

using namespace metaopt;

Classifier::~Classifier() = default;

std::array<double, MaxUnrollFactor>
Classifier::scores(const FeatureVector &Features) const {
  std::array<double, MaxUnrollFactor> Scores = {};
  Scores[predict(Features) - 1] = 1.0;
  return Scores;
}

double Classifier::accuracyOn(const Dataset &Data) const {
  if (Data.empty())
    return 0.0;
  size_t Correct = 0;
  for (const Example &Ex : Data.examples())
    if (predict(Ex.Features) == Ex.Label)
      ++Correct;
  return static_cast<double>(Correct) / Data.size();
}

//===----------------------------------------------------------------------===//
// Serialization registry
//===----------------------------------------------------------------------===//

namespace {

struct LoaderRegistry {
  std::mutex Mutex;
  std::map<std::string, ClassifierLoader> Loaders;
};

// The built-ins are registered here, not via static initializers in their
// own translation units, so static-library dead stripping can never drop
// the registrations.
void registerBuiltins(LoaderRegistry &R) {
  R.Loaders["near-neighbor"] =
      [](const std::string &Text) -> std::unique_ptr<Classifier> {
    if (auto Nn = NearNeighborClassifier::deserialize(Text))
      return std::make_unique<NearNeighborClassifier>(std::move(*Nn));
    return nullptr;
  };
  ClassifierLoader SvmLoader =
      [](const std::string &Text) -> std::unique_ptr<Classifier> {
    if (auto Svm = SvmClassifier::deserialize(Text))
      return std::make_unique<SvmClassifier>(std::move(*Svm));
    return nullptr;
  };
  R.Loaders["svm"] = SvmLoader;
  R.Loaders["svm-ecoc"] = SvmLoader;
  R.Loaders["decision-tree"] =
      [](const std::string &Text) -> std::unique_ptr<Classifier> {
    if (auto Tree = DecisionTreeClassifier::deserialize(Text))
      return std::make_unique<DecisionTreeClassifier>(std::move(*Tree));
    return nullptr;
  };
  R.Loaders["lsh-nn"] =
      [](const std::string &Text) -> std::unique_ptr<Classifier> {
    if (auto Lsh = LshNearNeighborClassifier::deserialize(Text))
      return std::make_unique<LshNearNeighborClassifier>(std::move(*Lsh));
    return nullptr;
  };
  R.Loaders["krr-regression"] =
      [](const std::string &Text) -> std::unique_ptr<Classifier> {
    if (auto Krr = KrrUnrollRegressor::deserialize(Text))
      return std::make_unique<KrrUnrollRegressor>(std::move(*Krr));
    return nullptr;
  };
  R.Loaders["mlp"] =
      [](const std::string &Text) -> std::unique_ptr<Classifier> {
    if (auto Mlp = MlpClassifier::deserialize(Text))
      return std::make_unique<MlpClassifier>(std::move(*Mlp));
    return nullptr;
  };
  R.Loaders["random-forest"] =
      [](const std::string &Text) -> std::unique_ptr<Classifier> {
    if (auto Forest = RandomForestClassifier::deserialize(Text))
      return std::make_unique<RandomForestClassifier>(std::move(*Forest));
    return nullptr;
  };
}

LoaderRegistry &registry() {
  static LoaderRegistry *Registry = [] {
    auto *R = new LoaderRegistry;
    registerBuiltins(*R);
    return R;
  }();
  return *Registry;
}

} // namespace

void metaopt::registerClassifierLoader(const std::string &Name,
                                       ClassifierLoader Loader) {
  LoaderRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Loaders[Name] = std::move(Loader);
}

std::vector<std::string> metaopt::registeredClassifierNames() {
  LoaderRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  std::vector<std::string> Names;
  Names.reserve(R.Loaders.size());
  for (const auto &[Name, Loader] : R.Loaders)
    Names.push_back(Name);
  return Names;
}

std::unique_ptr<Classifier>
metaopt::deserializeClassifier(const std::string &Text,
                               const std::string &Name) {
  // Snapshot the loaders so user loaders may run without holding the lock.
  std::vector<std::pair<std::string, ClassifierLoader>> Loaders;
  {
    LoaderRegistry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mutex);
    Loaders.assign(R.Loaders.begin(), R.Loaders.end());
  }
  if (!Name.empty()) {
    auto Preferred =
        std::find_if(Loaders.begin(), Loaders.end(),
                     [&](const auto &Entry) { return Entry.first == Name; });
    if (Preferred != Loaders.end())
      if (std::unique_ptr<Classifier> Loaded = Preferred->second(Text))
        return Loaded;
  }
  for (const auto &[LoaderName, Loader] : Loaders)
    if (std::unique_ptr<Classifier> Loaded = Loader(Text))
      return Loaded;
  return nullptr;
}

std::optional<Normalizer>
metaopt::parseNormalizerBlock(const std::vector<std::string> &Lines,
                              size_t &Index) {
  if (Index >= Lines.size())
    return std::nullopt;
  std::vector<std::string> Header = splitWhitespace(Lines[Index]);
  if (Header.size() != 3 || Header[0] != "normalizer")
    return std::nullopt;
  auto Dims = parseInt(Header[2]);
  if (!Dims || *Dims < 1)
    return std::nullopt;
  size_t End = Index + 1 + static_cast<size_t>(*Dims);
  if (Lines.size() < End)
    return std::nullopt;
  std::string Block;
  for (size_t I = Index; I < End; ++I)
    Block += Lines[I] + "\n";
  std::optional<Normalizer> Norm = Normalizer::deserialize(Block);
  if (Norm)
    Index = End;
  return Norm;
}
