//===- core/ml/Classifier.cpp ---------------------------------------------===//

#include "core/ml/Classifier.h"

using namespace metaopt;

Classifier::~Classifier() = default;

double Classifier::accuracyOn(const Dataset &Data) const {
  if (Data.empty())
    return 0.0;
  size_t Correct = 0;
  for (const Example &Ex : Data.examples())
    if (predict(Ex.Features) == Ex.Label)
      ++Correct;
  return static_cast<double>(Correct) / Data.size();
}
