//===- linalg/Matrix.cpp --------------------------------------------------===//

#include "linalg/Matrix.h"

#include <cmath>

using namespace metaopt;

Matrix Matrix::identity(size_t N) {
  Matrix Result(N, N);
  for (size_t I = 0; I < N; ++I)
    Result.at(I, I) = 1.0;
  return Result;
}

Matrix Matrix::multiply(const Matrix &Other) const {
  assert(NumCols == Other.NumRows && "dimension mismatch in multiply");
  Matrix Result(NumRows, Other.NumCols);
  for (size_t I = 0; I < NumRows; ++I) {
    for (size_t K = 0; K < NumCols; ++K) {
      double Scale = at(I, K);
      if (Scale == 0.0)
        continue;
      const double *OtherRow = Other.rowPtr(K);
      double *OutRow = Result.rowPtr(I);
      for (size_t J = 0; J < Other.NumCols; ++J)
        OutRow[J] += Scale * OtherRow[J];
    }
  }
  return Result;
}

Matrix Matrix::transpose() const {
  Matrix Result(NumCols, NumRows);
  for (size_t I = 0; I < NumRows; ++I)
    for (size_t J = 0; J < NumCols; ++J)
      Result.at(J, I) = at(I, J);
  return Result;
}

std::vector<double> Matrix::multiply(const std::vector<double> &V) const {
  assert(V.size() == NumCols && "dimension mismatch in matrix-vector");
  std::vector<double> Result(NumRows, 0.0);
  for (size_t I = 0; I < NumRows; ++I) {
    const double *Row = rowPtr(I);
    double Sum = 0.0;
    for (size_t J = 0; J < NumCols; ++J)
      Sum += Row[J] * V[J];
    Result[I] = Sum;
  }
  return Result;
}

void Matrix::addToDiagonal(double Value) {
  assert(NumRows == NumCols && "addToDiagonal requires a square matrix");
  for (size_t I = 0; I < NumRows; ++I)
    at(I, I) += Value;
}

double Matrix::distanceFrom(const Matrix &Other) const {
  assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
         "dimension mismatch in distanceFrom");
  double Sum = 0.0;
  for (size_t I = 0; I < Data.size(); ++I) {
    double Diff = Data[I] - Other.Data[I];
    Sum += Diff * Diff;
  }
  return std::sqrt(Sum);
}

double metaopt::dotProduct(const std::vector<double> &A,
                           const std::vector<double> &B) {
  assert(A.size() == B.size() && "dotProduct size mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    Sum += A[I] * B[I];
  return Sum;
}

double metaopt::squaredDistance(const std::vector<double> &A,
                                const std::vector<double> &B) {
  assert(A.size() == B.size() && "squaredDistance size mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I) {
    double Diff = A[I] - B[I];
    Sum += Diff * Diff;
  }
  return Sum;
}

double metaopt::vectorNorm(const std::vector<double> &A) {
  return std::sqrt(dotProduct(A, A));
}

void metaopt::addScaled(std::vector<double> &A, double Scale,
                        const std::vector<double> &B) {
  assert(A.size() == B.size() && "addScaled size mismatch");
  for (size_t I = 0; I < A.size(); ++I)
    A[I] += Scale * B[I];
}
