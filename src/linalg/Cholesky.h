//===- linalg/Cholesky.h - Cholesky factorization ---------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cholesky factorization of symmetric positive-definite matrices, used to
/// train the LS-SVM (the regularized kernel system (K + I/gamma) a = y) and
/// to compute the inverse diagonal needed by the exact leave-one-out
/// shortcut.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_LINALG_CHOLESKY_H
#define METAOPT_LINALG_CHOLESKY_H

#include "linalg/Matrix.h"

#include <optional>
#include <vector>

namespace metaopt {

/// Holds the lower-triangular Cholesky factor L with A = L * L^T.
class Cholesky {
public:
  /// Factors the symmetric positive-definite matrix \p A. Returns
  /// std::nullopt if A is not (numerically) positive definite.
  static std::optional<Cholesky> factor(const Matrix &A);

  /// Solves A x = b given the factorization.
  std::vector<double> solve(const std::vector<double> &B) const;

  /// Solves A X = B column-wise.
  Matrix solve(const Matrix &B) const;

  /// Returns the full inverse of A. O(n^3); used by the exact LOOCV
  /// shortcut which needs the inverse's diagonal and rows.
  Matrix inverse() const;

  /// Returns the log-determinant of A (sum of 2*log(L_ii)).
  double logDeterminant() const;

  size_t order() const { return Factor.rows(); }
  const Matrix &factorMatrix() const { return Factor; }

private:
  explicit Cholesky(Matrix L) : Factor(std::move(L)) {}
  Matrix Factor;
};

} // namespace metaopt

#endif // METAOPT_LINALG_CHOLESKY_H
