//===- linalg/Eigen.cpp ---------------------------------------------------===//

#include "linalg/Eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace metaopt;

EigenDecomposition metaopt::symmetricEigen(const Matrix &A, int MaxSweeps) {
  assert(A.rows() == A.cols() && "symmetricEigen requires a square matrix");
  size_t N = A.rows();

  // Work on a symmetrized copy to be robust to tiny asymmetries from
  // accumulated floating point error in scatter-matrix construction.
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = 0; J < N; ++J)
      M.at(I, J) = 0.5 * (A.at(I, J) + A.at(J, I));

  Matrix V = Matrix::identity(N);

  for (int Sweep = 0; Sweep < MaxSweeps; ++Sweep) {
    double OffDiagonal = 0.0;
    for (size_t I = 0; I < N; ++I)
      for (size_t J = I + 1; J < N; ++J)
        OffDiagonal += M.at(I, J) * M.at(I, J);
    if (OffDiagonal < 1e-24)
      break;

    for (size_t P = 0; P < N; ++P) {
      for (size_t Q = P + 1; Q < N; ++Q) {
        double Apq = M.at(P, Q);
        if (std::fabs(Apq) < 1e-300)
          continue;
        double App = M.at(P, P);
        double Aqq = M.at(Q, Q);
        double Theta = (Aqq - App) / (2.0 * Apq);
        double T = (Theta >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;

        // Apply the rotation to rows/columns P and Q of M.
        for (size_t K = 0; K < N; ++K) {
          double Mkp = M.at(K, P);
          double Mkq = M.at(K, Q);
          M.at(K, P) = C * Mkp - S * Mkq;
          M.at(K, Q) = S * Mkp + C * Mkq;
        }
        for (size_t K = 0; K < N; ++K) {
          double Mpk = M.at(P, K);
          double Mqk = M.at(Q, K);
          M.at(P, K) = C * Mpk - S * Mqk;
          M.at(Q, K) = S * Mpk + C * Mqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (size_t K = 0; K < N; ++K) {
          double Vkp = V.at(K, P);
          double Vkq = V.at(K, Q);
          V.at(K, P) = C * Vkp - S * Vkq;
          V.at(K, Q) = S * Vkp + C * Vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  std::vector<double> Diagonal(N);
  for (size_t I = 0; I < N; ++I)
    Diagonal[I] = M.at(I, I);
  std::sort(Order.begin(), Order.end(), [&](size_t Lhs, size_t Rhs) {
    if (Diagonal[Lhs] != Diagonal[Rhs])
      return Diagonal[Lhs] > Diagonal[Rhs];
    return Lhs < Rhs; // Deterministic tie-break.
  });

  EigenDecomposition Result;
  Result.Values.resize(N);
  Result.Vectors = Matrix(N, N);
  for (size_t Col = 0; Col < N; ++Col) {
    Result.Values[Col] = Diagonal[Order[Col]];
    for (size_t Row = 0; Row < N; ++Row)
      Result.Vectors.at(Row, Col) = V.at(Row, Order[Col]);
  }
  return Result;
}
