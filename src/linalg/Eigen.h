//===- linalg/Eigen.h - Symmetric eigendecomposition ------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cyclic Jacobi eigendecomposition for symmetric matrices. Used by the
/// linear discriminant analysis projection that reproduces the 2-D scatter
/// plots of Figures 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_LINALG_EIGEN_H
#define METAOPT_LINALG_EIGEN_H

#include "linalg/Matrix.h"

#include <vector>

namespace metaopt {

/// Eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> Values;
  /// Eigenvectors as matrix columns, in the same order as Values.
  Matrix Vectors;
};

/// Computes all eigenpairs of the symmetric matrix \p A with the cyclic
/// Jacobi method. Asymmetry within a small tolerance is symmetrized first.
EigenDecomposition symmetricEigen(const Matrix &A, int MaxSweeps = 64);

} // namespace metaopt

#endif // METAOPT_LINALG_EIGEN_H
