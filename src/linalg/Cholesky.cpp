//===- linalg/Cholesky.cpp ------------------------------------------------===//

#include "linalg/Cholesky.h"

#include <cmath>

using namespace metaopt;

std::optional<Cholesky> Cholesky::factor(const Matrix &A) {
  assert(A.rows() == A.cols() && "Cholesky requires a square matrix");
  size_t N = A.rows();
  Matrix L(N, N);
  for (size_t J = 0; J < N; ++J) {
    double Diag = A.at(J, J);
    const double *LRowJ = L.rowPtr(J);
    for (size_t K = 0; K < J; ++K)
      Diag -= LRowJ[K] * LRowJ[K];
    if (Diag <= 0.0 || !std::isfinite(Diag))
      return std::nullopt;
    double Pivot = std::sqrt(Diag);
    L.at(J, J) = Pivot;
    for (size_t I = J + 1; I < N; ++I) {
      double Sum = A.at(I, J);
      const double *LRowI = L.rowPtr(I);
      for (size_t K = 0; K < J; ++K)
        Sum -= LRowI[K] * LRowJ[K];
      L.at(I, J) = Sum / Pivot;
    }
  }
  return Cholesky(std::move(L));
}

std::vector<double> Cholesky::solve(const std::vector<double> &B) const {
  size_t N = order();
  assert(B.size() == N && "right-hand side size mismatch");
  // Forward substitution: L y = b.
  std::vector<double> Y(N);
  for (size_t I = 0; I < N; ++I) {
    double Sum = B[I];
    const double *Row = Factor.rowPtr(I);
    for (size_t K = 0; K < I; ++K)
      Sum -= Row[K] * Y[K];
    Y[I] = Sum / Row[I];
  }
  // Backward substitution: L^T x = y.
  std::vector<double> X(N);
  for (size_t I = N; I-- > 0;) {
    double Sum = Y[I];
    for (size_t K = I + 1; K < N; ++K)
      Sum -= Factor.at(K, I) * X[K];
    X[I] = Sum / Factor.at(I, I);
  }
  return X;
}

Matrix Cholesky::solve(const Matrix &B) const {
  assert(B.rows() == order() && "right-hand side rows mismatch");
  Matrix X(B.rows(), B.cols());
  std::vector<double> Column(B.rows());
  for (size_t J = 0; J < B.cols(); ++J) {
    for (size_t I = 0; I < B.rows(); ++I)
      Column[I] = B.at(I, J);
    std::vector<double> Solved = solve(Column);
    for (size_t I = 0; I < B.rows(); ++I)
      X.at(I, J) = Solved[I];
  }
  return X;
}

Matrix Cholesky::inverse() const {
  size_t N = order();
  // First invert the lower-triangular factor in place, then form
  // A^-1 = L^-T * L^-1. This halves the work versus N triangular solves
  // against identity columns done naively.
  Matrix Linv(N, N);
  for (size_t J = 0; J < N; ++J) {
    Linv.at(J, J) = 1.0 / Factor.at(J, J);
    for (size_t I = J + 1; I < N; ++I) {
      double Sum = 0.0;
      const double *Row = Factor.rowPtr(I);
      for (size_t K = J; K < I; ++K)
        Sum -= Row[K] * Linv.at(K, J);
      Linv.at(I, J) = Sum / Row[I];
    }
  }
  Matrix Result(N, N);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J <= I; ++J) {
      double Sum = 0.0;
      // (L^-T L^-1)_{ij} = sum_k Linv_{ki} * Linv_{kj}, k >= max(i,j) = I.
      for (size_t K = I; K < N; ++K)
        Sum += Linv.at(K, I) * Linv.at(K, J);
      Result.at(I, J) = Sum;
      Result.at(J, I) = Sum;
    }
  }
  return Result;
}

double Cholesky::logDeterminant() const {
  double Sum = 0.0;
  for (size_t I = 0; I < order(); ++I)
    Sum += 2.0 * std::log(Factor.at(I, I));
  return Sum;
}
