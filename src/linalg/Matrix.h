//===- linalg/Matrix.h - Dense matrix and vector ops ------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense row-major matrix class plus the handful of vector
/// operations the learning algorithms need (LS-SVM kernel systems, LDA
/// scatter matrices). No expression templates, no cleverness: the matrices
/// are at most a few thousand square and the code favors clarity.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_LINALG_MATRIX_H
#define METAOPT_LINALG_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace metaopt {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// Creates a Rows x Cols matrix filled with \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  /// Returns the identity matrix of the given order.
  static Matrix identity(size_t N);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }

  double &at(size_t Row, size_t Col) {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }
  double at(size_t Row, size_t Col) const {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }

  /// Raw row pointer; rows are contiguous.
  double *rowPtr(size_t Row) { return &Data[Row * NumCols]; }
  const double *rowPtr(size_t Row) const { return &Data[Row * NumCols]; }

  /// Returns this * Other. Dimensions must agree.
  Matrix multiply(const Matrix &Other) const;

  /// Returns the transpose.
  Matrix transpose() const;

  /// Returns this * V. V.size() must equal cols().
  std::vector<double> multiply(const std::vector<double> &V) const;

  /// Adds Value to every diagonal entry (must be square).
  void addToDiagonal(double Value);

  /// Frobenius-norm of (this - Other); dimensions must agree.
  double distanceFrom(const Matrix &Other) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Dot product of two equal-length vectors.
double dotProduct(const std::vector<double> &A, const std::vector<double> &B);

/// Squared Euclidean distance between two equal-length vectors.
double squaredDistance(const std::vector<double> &A,
                       const std::vector<double> &B);

/// Euclidean norm.
double vectorNorm(const std::vector<double> &A);

/// A += Scale * B (in place); sizes must agree.
void addScaled(std::vector<double> &A, double Scale,
               const std::vector<double> &B);

} // namespace metaopt

#endif // METAOPT_LINALG_MATRIX_H
