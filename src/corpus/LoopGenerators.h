//===- corpus/LoopGenerators.h - Synthetic loop kernels ---------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized generators for the loop shapes that populate the training
/// corpus, standing in for the innermost loops of SPEC 2000/95/92,
/// Mediabench, Perfect, and assorted kernels. Fifteen families cover the
/// spectrum that makes unroll-factor selection interesting: streaming FP
/// (daxpy/stencil/fir), reductions, tight recurrences, indirect accesses,
/// early exits, predicated bodies, calls, long-latency math, and random
/// mixed DAGs. Every generated loop verifies (tests enforce this across
/// thousands of seeds).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORPUS_LOOPGENERATORS_H
#define METAOPT_CORPUS_LOOPGENERATORS_H

#include "ir/Loop.h"
#include "support/Rng.h"

#include <string>

namespace metaopt {

/// The loop-shape families the corpus draws from.
enum class LoopKind {
  Daxpy,         ///< y[i] = alpha * x[i] + y[i]; 1-3 streams.
  DotReduce,     ///< acc += x[i] * y[i]; 1-4 partial accumulators.
  Stencil,       ///< y[i] = sum of 3-5 taps of x[i+k].
  MatmulInner,   ///< Dense kernel inner loop; deep nest, known trip.
  Fir,           ///< Filter: K coefficient taps against a sliding window.
  IirRecurrence, ///< y[i] = a * y[i-1] + x[i]; tight carried recurrence.
  StreamCopy,    ///< y[i] = x[i]; pure memory bandwidth.
  Gather,        ///< y[i] = x[idx[i]]; indirect loads.
  Histogram,     ///< h[a[i]] += 1; indirect read-modify-write.
  PointerChase,  ///< p = p->next; serial indirect recurrence.
  Branchy,       ///< Integer work with data-dependent early exits.
  Predicated,    ///< If-converted body with predicated FP updates.
  CallBearing,   ///< Body containing an opaque call.
  DivHeavy,      ///< FP divide / sqrt chains.
  Mixed,         ///< Random DAG over loads, int/FP ops, optional stores.
};

constexpr unsigned NumLoopKinds = static_cast<unsigned>(LoopKind::Mixed) + 1;

/// Returns a short family name ("daxpy", "mixed", ...).
const char *loopKindName(LoopKind Kind);

/// Generation knobs, chosen by the benchmark synthesizer.
struct LoopGenParams {
  std::string Name = "loop";
  SourceLanguage Lang = SourceLanguage::C;
  int NestLevel = 1;
  /// Compile-time trip count; Loop::UnknownTripCount for unknown.
  int64_t TripCount = Loop::UnknownTripCount;
  /// Concrete trip count executed at measurement time.
  int64_t RuntimeTripCount = 256;
  /// Rough body size scaling (1 = minimal kernel, larger = more streams /
  /// taps / mixed ops).
  int SizeScale = 1;
};

/// Generates one loop of the given family. \p Generator provides all
/// randomness, so identical (Kind, Params, seed) triples reproduce the
/// identical loop.
Loop generateLoop(LoopKind Kind, const LoopGenParams &Params,
                  Rng &Generator);

} // namespace metaopt

#endif // METAOPT_CORPUS_LOOPGENERATORS_H
