//===- corpus/BenchmarkSuite.h - The 72-benchmark corpus --------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the synthetic stand-in for the paper's training corpus: 72
/// benchmarks spanning SPEC 2000 (the 24 evaluated in Figures 4/5), SPEC
/// '95, SPEC '92, Mediabench, the Perfect suite, and a handful of kernels,
/// in C / Fortran / Fortran90, together containing ~3,000 innermost loops.
/// Each loop carries its program context (effective i-cache share, d-cache
/// behaviour, executions per run) and a runtime weight, so whole-program
/// speedups can be computed the way SPEC dilutes per-loop gains.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORPUS_BENCHMARKSUITE_H
#define METAOPT_CORPUS_BENCHMARKSUITE_H

#include "corpus/LoopGenerators.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace metaopt {

/// One innermost loop plus its program context.
struct CorpusLoop {
  Loop TheLoop;
  SimContext Ctx;
  /// How many times the program enters this loop per run; multiplies the
  /// per-entry simulated cycles into the loop's total runtime.
  int64_t Executions = 1;
  LoopKind Kind = LoopKind::Mixed;
};

/// A synthetic benchmark: a bag of weighted loops plus non-loop time.
struct Benchmark {
  std::string Name;
  std::string Suite; ///< "SPEC2000", "SPEC95", "SPEC92", "Mediabench",
                     ///< "Perfect", or "Kernels".
  SourceLanguage Lang = SourceLanguage::C;
  bool FloatingPoint = false; ///< SPECfp-style vs SPECint-style.
  std::vector<CorpusLoop> Loops;
  /// Fraction of total runtime spent outside instrumentable innermost
  /// loops; dilutes whole-program speedups realistically.
  double NonLoopFraction = 0.4;
};

/// Corpus construction knobs.
struct CorpusOptions {
  uint64_t Seed = 20050320; ///< CGO 2005 :-).
  int MinLoopsPerBenchmark = 30;
  int MaxLoopsPerBenchmark = 55;
};

/// Builds all 72 benchmarks deterministically from the options. Throws
/// std::invalid_argument on malformed options and std::logic_error if the
/// generators ever produce two loops with the same name anywhere in the
/// corpus — downstream consumers (oracle replay, dataset joins, the
/// per-loop measurement-noise streams) key on loop names and silently
/// misbehave on duplicates.
std::vector<Benchmark> buildCorpus(const CorpusOptions &Options = {});

/// Returns every loop name appearing more than once across \p Corpus,
/// each reported once, in first-occurrence order. Empty means names are
/// corpus-unique (the invariant buildCorpus enforces).
std::vector<std::string>
duplicateLoopNames(const std::vector<Benchmark> &Corpus);

/// Returns the names of the 24 SPEC 2000 benchmarks evaluated in the
/// paper's Figures 4 and 5, in the figures' order.
const std::vector<std::string> &spec2000BenchmarkNames();

/// True when \p Name is one of the SPEC 2000 floating point benchmarks.
bool isSpecFp(const std::string &Name);

} // namespace metaopt

#endif // METAOPT_CORPUS_BENCHMARKSUITE_H
