//===- corpus/CorpusAudit.cpp ---------------------------------------------===//

#include "corpus/CorpusAudit.h"

#include "concurrency/Parallel.h"

using namespace metaopt;

CorpusAuditResult
metaopt::auditBenchmarks(const std::vector<Benchmark> &Corpus,
                         const LintOptions &Options) {
  // Flatten to an ordered work-list, mirroring collectLabels: a stable
  // index per loop is what makes the parallel sweep deterministic.
  std::vector<std::pair<const Benchmark *, const CorpusLoop *>> Loops;
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops)
      Loops.emplace_back(&Bench, &Entry);

  std::vector<DiagnosticReport> Reports = parallelMap<DiagnosticReport>(
      Loops.size(),
      [&](size_t I) { return lintLoop(Loops[I].second->TheLoop, Options); });

  CorpusAuditResult Result;
  Result.LoopsAudited = Loops.size();
  for (size_t I = 0; I < Loops.size(); ++I) {
    Result.Errors += Reports[I].errorCount();
    Result.Warnings += Reports[I].warningCount();
    Result.Notes += Reports[I].noteCount();
    if (!Reports[I].empty())
      Result.Findings.push_back({Loops[I].first->Name,
                                 Loops[I].second->TheLoop.name(),
                                 std::move(Reports[I])});
  }
  return Result;
}
