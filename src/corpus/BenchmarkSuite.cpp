//===- corpus/BenchmarkSuite.cpp ------------------------------------------===//

#include "corpus/BenchmarkSuite.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

using namespace metaopt;

namespace {

struct BenchmarkSpecEntry {
  const char *Name;
  const char *Suite;
  SourceLanguage Lang;
  bool FloatingPoint;
};

/// The 72 benchmarks. The first 24 are the SPEC 2000 programs evaluated in
/// Figures 4/5 (252.eon and 191.fma3d are excluded exactly as in the
/// paper); the rest fill out the training-only suites.
const BenchmarkSpecEntry Specs[] = {
    // SPEC 2000 (paper's evaluation set, figure order).
    {"164.gzip", "SPEC2000", SourceLanguage::C, false},
    {"168.wupwise", "SPEC2000", SourceLanguage::Fortran, true},
    {"171.swim", "SPEC2000", SourceLanguage::Fortran, true},
    {"172.mgrid", "SPEC2000", SourceLanguage::Fortran, true},
    {"173.applu", "SPEC2000", SourceLanguage::Fortran, true},
    {"175.vpr", "SPEC2000", SourceLanguage::C, false},
    {"176.gcc", "SPEC2000", SourceLanguage::C, false},
    {"177.mesa", "SPEC2000", SourceLanguage::C, true},
    {"178.galgel", "SPEC2000", SourceLanguage::Fortran90, true},
    {"179.art", "SPEC2000", SourceLanguage::C, true},
    {"181.mcf", "SPEC2000", SourceLanguage::C, false},
    {"183.equake", "SPEC2000", SourceLanguage::C, true},
    {"186.crafty", "SPEC2000", SourceLanguage::C, false},
    {"187.facerec", "SPEC2000", SourceLanguage::Fortran90, true},
    {"188.ammp", "SPEC2000", SourceLanguage::C, true},
    {"189.lucas", "SPEC2000", SourceLanguage::Fortran90, true},
    {"197.parser", "SPEC2000", SourceLanguage::C, false},
    {"200.sixtrack", "SPEC2000", SourceLanguage::Fortran, true},
    {"253.perlbmk", "SPEC2000", SourceLanguage::C, false},
    {"254.gap", "SPEC2000", SourceLanguage::C, false},
    {"255.vortex", "SPEC2000", SourceLanguage::C, false},
    {"256.bzip2", "SPEC2000", SourceLanguage::C, false},
    {"300.twolf", "SPEC2000", SourceLanguage::C, false},
    {"301.apsi", "SPEC2000", SourceLanguage::Fortran, true},
    // SPEC '95 (programs not superseded by a SPEC 2000 version).
    {"101.tomcatv", "SPEC95", SourceLanguage::Fortran, true},
    {"103.su2cor", "SPEC95", SourceLanguage::Fortran, true},
    {"104.hydro2d", "SPEC95", SourceLanguage::Fortran, true},
    {"125.turb3d", "SPEC95", SourceLanguage::Fortran, true},
    {"141.apsi95", "SPEC95", SourceLanguage::Fortran, true},
    {"145.fpppp", "SPEC95", SourceLanguage::Fortran, true},
    {"146.wave5", "SPEC95", SourceLanguage::Fortran, true},
    {"099.go", "SPEC95", SourceLanguage::C, false},
    {"124.m88ksim", "SPEC95", SourceLanguage::C, false},
    {"129.compress", "SPEC95", SourceLanguage::C, false},
    {"130.li", "SPEC95", SourceLanguage::C, false},
    {"132.ijpeg", "SPEC95", SourceLanguage::C, false},
    {"134.perl", "SPEC95", SourceLanguage::C, false},
    // SPEC '92 (again, only programs without newer versions).
    {"015.doduc", "SPEC92", SourceLanguage::Fortran, true},
    {"034.mdljdp2", "SPEC92", SourceLanguage::Fortran, true},
    {"039.wave5_92", "SPEC92", SourceLanguage::Fortran, true},
    {"047.tomcatv_92", "SPEC92", SourceLanguage::Fortran, true},
    {"048.ora", "SPEC92", SourceLanguage::Fortran, true},
    {"052.alvinn", "SPEC92", SourceLanguage::C, true},
    {"056.ear", "SPEC92", SourceLanguage::C, true},
    {"008.espresso", "SPEC92", SourceLanguage::C, false},
    {"022.li_92", "SPEC92", SourceLanguage::C, false},
    {"023.eqntott", "SPEC92", SourceLanguage::C, false},
    {"026.compress_92", "SPEC92", SourceLanguage::C, false},
    {"072.sc", "SPEC92", SourceLanguage::C, false},
    // Mediabench.
    {"adpcm", "Mediabench", SourceLanguage::C, false},
    {"epic", "Mediabench", SourceLanguage::C, true},
    {"g721", "Mediabench", SourceLanguage::C, false},
    {"gsm", "Mediabench", SourceLanguage::C, false},
    {"jpeg", "Mediabench", SourceLanguage::C, false},
    {"mpeg2", "Mediabench", SourceLanguage::C, true},
    {"pegwit", "Mediabench", SourceLanguage::C, false},
    {"rasta", "Mediabench", SourceLanguage::C, true},
    // Perfect Club.
    {"adm", "Perfect", SourceLanguage::Fortran, true},
    {"arc2d", "Perfect", SourceLanguage::Fortran, true},
    {"bdna", "Perfect", SourceLanguage::Fortran, true},
    {"dyfesm", "Perfect", SourceLanguage::Fortran, true},
    {"flo52", "Perfect", SourceLanguage::Fortran, true},
    {"mdg", "Perfect", SourceLanguage::Fortran, true},
    {"ocean", "Perfect", SourceLanguage::Fortran, true},
    {"qcd", "Perfect", SourceLanguage::Fortran, true},
    {"spec77", "Perfect", SourceLanguage::Fortran, true},
    {"track", "Perfect", SourceLanguage::Fortran, true},
    {"trfd", "Perfect", SourceLanguage::Fortran, true},
    // Kernels.
    {"livermore", "Kernels", SourceLanguage::Fortran, true},
    {"linpackd", "Kernels", SourceLanguage::Fortran, true},
    {"fftk", "Kernels", SourceLanguage::C, true},
    {"stencilk", "Kernels", SourceLanguage::C, true},
};

constexpr size_t NumSpecs = sizeof(Specs) / sizeof(Specs[0]);
static_assert(NumSpecs == 72, "the paper trains on 72 benchmarks");

/// Per-kind sampling weights for floating point vs integer benchmarks.
std::vector<double> kindWeights(bool FloatingPoint) {
  std::vector<double> Weights(NumLoopKinds, 0.0);
  auto Set = [&](LoopKind Kind, double Weight) {
    Weights[static_cast<unsigned>(Kind)] = Weight;
  };
  if (FloatingPoint) {
    Set(LoopKind::Daxpy, 10);
    Set(LoopKind::DotReduce, 10);
    Set(LoopKind::Stencil, 9);
    Set(LoopKind::MatmulInner, 7);
    Set(LoopKind::Fir, 6);
    Set(LoopKind::IirRecurrence, 6);
    Set(LoopKind::StreamCopy, 4);
    Set(LoopKind::Gather, 4);
    Set(LoopKind::Histogram, 1);
    Set(LoopKind::PointerChase, 1);
    Set(LoopKind::Branchy, 2);
    Set(LoopKind::Predicated, 4);
    Set(LoopKind::CallBearing, 2);
    Set(LoopKind::DivHeavy, 5);
    Set(LoopKind::Mixed, 18);
  } else {
    Set(LoopKind::Daxpy, 1);
    Set(LoopKind::DotReduce, 2);
    Set(LoopKind::Stencil, 1);
    Set(LoopKind::MatmulInner, 1);
    Set(LoopKind::Fir, 1);
    Set(LoopKind::IirRecurrence, 2);
    Set(LoopKind::StreamCopy, 8);
    Set(LoopKind::Gather, 7);
    Set(LoopKind::Histogram, 6);
    Set(LoopKind::PointerChase, 6);
    Set(LoopKind::Branchy, 10);
    Set(LoopKind::Predicated, 5);
    Set(LoopKind::CallBearing, 5);
    Set(LoopKind::DivHeavy, 1);
    Set(LoopKind::Mixed, 20);
  }
  return Weights;
}

/// Log-uniform integer in [Lo, Hi].
int64_t logUniform(Rng &Generator, int64_t Lo, int64_t Hi) {
  assert(Lo >= 1 && Lo <= Hi);
  double Value = std::exp(Generator.nextDoubleInRange(
      std::log(static_cast<double>(Lo)), std::log(static_cast<double>(Hi))));
  return std::clamp<int64_t>(static_cast<int64_t>(Value), Lo, Hi);
}

/// Trip counts in real programs cluster on round numbers: powers of two
/// (buffers), multiples of ten (problem sizes), multiples of four
/// (vectors), with an arbitrary remainder. Divisibility is what makes
/// power-of-two unroll factors cheap (no remainder loop), so the mixture
/// matters for the label distribution.
int64_t sampleTripCount(Rng &Generator) {
  switch (Generator.pickWeighted({0.45, 0.1, 0.25, 0.2})) {
  case 0: // Power of two, 32..4096.
    return int64_t(32) << Generator.nextBelow(8);
  case 1: // Multiple of ten, 60..8000.
    return 10 * logUniform(Generator, 6, 800);
  case 2: // Multiple of four, 64..8192.
    return 4 * logUniform(Generator, 16, 2048);
  default: // Arbitrary.
    return logUniform(Generator, 50, 6000);
  }
}

CorpusLoop makeLoop(const BenchmarkSpecEntry &Spec, int Index,
                    const std::vector<double> &Weights, Rng &Generator) {
  CorpusLoop Entry;
  Entry.Kind = static_cast<LoopKind>(Generator.pickWeighted(Weights));

  LoopGenParams Params;
  Params.Lang = Spec.Lang;
  Params.Name = std::string(Spec.Name) + "/" + loopKindName(Entry.Kind) +
                std::to_string(Index);
  // Fortran codes sit in deeper scientific nests.
  bool Fortran = Spec.Lang != SourceLanguage::C;
  Params.NestLevel =
      1 + static_cast<int>(Generator.nextBelow(Fortran ? 4 : 3));
  // A fat-body tail: unrolled-by-hand sources and big straight-line
  // bodies are common in real suites, and they are the loops for which
  // unrolling is visibly (from numOps / codeSizeBytes) a bad idea.
  Params.SizeScale = Generator.nextBool(0.15)
                         ? 6 + static_cast<int>(Generator.nextBelow(5))
                         : 1 + static_cast<int>(Generator.nextBelow(5));
  double KnownProb = Fortran ? 0.8 : 0.5;
  if (Generator.nextBool(KnownProb)) {
    Params.RuntimeTripCount = sampleTripCount(Generator);
    Params.TripCount = Params.RuntimeTripCount;
  } else {
    // Unknown-trip (while-style) loops skew short at run time, which is
    // exactly why unrolling them is risky: the remainder and setup can
    // swallow the gain.
    Params.RuntimeTripCount = logUniform(Generator, 8, 600);
    Params.TripCount = Loop::UnknownTripCount;
  }

  Entry.TheLoop = generateLoop(Entry.Kind, Params, Generator);

  // Program context: the loop owns a random share of the i-cache, its
  // kind determines cache friendliness, and the enclosing function leaves
  // it only part of the register files. None of this is visible to the
  // static features - which is precisely why even an ideal classifier
  // cannot reach 100% accuracy (the paper's best is 65%).
  // Code-rich C programs leave each loop a small slice of the i-cache;
  // tight Fortran scientific codes leave a lot more. The split is visible
  // to the classifiers through the language feature, which is part of why
  // the paper found the language informative.
  static const int IcacheShares[] = {128,  256,  512, 1024,
                                     2048, 4096, 8192};
  Entry.Ctx.EffectiveIcacheBytes =
      Fortran
          ? IcacheShares[1 + Generator.pickWeighted({2.5, 2.5, 2, 1, 1})]
          : IcacheShares[Generator.pickWeighted({4, 3, 2, 1, 0.5})];
  double MissRate = 0.01 + Generator.nextDouble() * 0.03;
  Entry.Ctx.DcacheVisibleFraction = 0.6;
  if (Entry.Kind == LoopKind::Gather || Entry.Kind == LoopKind::Histogram ||
      Entry.Kind == LoopKind::PointerChase) {
    MissRate = 0.08 + Generator.nextDouble() * 0.17;
    Entry.Ctx.DcacheVisibleFraction = 0.8; // Dependent misses barely hide.
  }
  Entry.Ctx.DcacheMissRate = MissRate;
  Entry.Ctx.DcacheMissCycles = 10 + static_cast<int>(Generator.nextBelow(8));
  // Outer loops of a deep nest keep values live across the inner loop, so
  // deeper nests leave the innermost loop fewer registers. Nest level is a
  // classifier feature, keeping this pressure learnable.
  int NestSqueeze = 5 * (Params.NestLevel - 1);
  Entry.Ctx.IntRegBudget =
      std::max(12, 40 - NestSqueeze +
                       static_cast<int>(Generator.nextBelow(13)));
  Entry.Ctx.FpRegBudget =
      std::max(10, 32 - NestSqueeze +
                       static_cast<int>(Generator.nextBelow(13)));

  // Hot loops run many times per benchmark execution; the distribution is
  // heavy-tailed like real profiles.
  Entry.Executions = logUniform(Generator, 64, 40000);
  return Entry;
}

} // namespace

std::vector<std::string>
metaopt::duplicateLoopNames(const std::vector<Benchmark> &Corpus) {
  std::unordered_set<std::string> Seen, Reported;
  std::vector<std::string> Duplicates;
  for (const Benchmark &Bench : Corpus)
    for (const CorpusLoop &Entry : Bench.Loops) {
      const std::string &Name = Entry.TheLoop.name();
      if (!Seen.insert(Name).second && Reported.insert(Name).second)
        Duplicates.push_back(Name);
    }
  return Duplicates;
}

std::vector<Benchmark> metaopt::buildCorpus(const CorpusOptions &Options) {
  // Checked in every build mode: a Min > Max range would feed
  // Rng::nextBelow a zero bound below, which is undefined.
  if (Options.MinLoopsPerBenchmark < 1 ||
      Options.MinLoopsPerBenchmark > Options.MaxLoopsPerBenchmark)
    throw std::invalid_argument(
        "buildCorpus: loop-count range [" +
        std::to_string(Options.MinLoopsPerBenchmark) + ", " +
        std::to_string(Options.MaxLoopsPerBenchmark) + "] is malformed");
  std::vector<Benchmark> Corpus;
  Corpus.reserve(NumSpecs);
  for (const BenchmarkSpecEntry &Spec : Specs) {
    Rng Generator(Options.Seed ^ Rng::hashString(Spec.Name));
    Benchmark Bench;
    Bench.Name = Spec.Name;
    Bench.Suite = Spec.Suite;
    Bench.Lang = Spec.Lang;
    Bench.FloatingPoint = Spec.FloatingPoint;
    // Innermost unrollable loops carry only part of a SPEC program's
    // runtime; the rest (outer loops, non-loop code, loops ORC cannot
    // unroll) dilutes whole-program speedups into the few-percent range.
    Bench.NonLoopFraction =
        Spec.FloatingPoint ? Generator.nextDoubleInRange(0.50, 0.75)
                           : Generator.nextDoubleInRange(0.65, 0.88);

    std::vector<double> Weights = kindWeights(Spec.FloatingPoint);
    int NumLoops = Options.MinLoopsPerBenchmark +
                   static_cast<int>(Generator.nextBelow(
                       Options.MaxLoopsPerBenchmark -
                       Options.MinLoopsPerBenchmark + 1));
    Bench.Loops.reserve(NumLoops);
    for (int Index = 0; Index < NumLoops; ++Index)
      Bench.Loops.push_back(makeLoop(Spec, Index, Weights, Generator));
    Corpus.push_back(std::move(Bench));
  }

  // Loop names are the join key everywhere downstream (oracle replay,
  // dataset/corpus joins, measurement-noise streams); refuse to hand out
  // a corpus that violates uniqueness rather than corrupting results.
  std::vector<std::string> Duplicates = duplicateLoopNames(Corpus);
  if (!Duplicates.empty())
    throw std::logic_error("buildCorpus: duplicate loop name '" +
                           Duplicates.front() + "' (" +
                           std::to_string(Duplicates.size()) +
                           " duplicated name(s) in total)");
  return Corpus;
}

const std::vector<std::string> &metaopt::spec2000BenchmarkNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> Result;
    for (size_t I = 0; I < 24; ++I)
      Result.push_back(Specs[I].Name);
    return Result;
  }();
  return Names;
}

bool metaopt::isSpecFp(const std::string &Name) {
  for (size_t I = 0; I < 24; ++I)
    if (Name == Specs[I].Name)
      return Specs[I].FloatingPoint;
  return false;
}
