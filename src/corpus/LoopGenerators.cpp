//===- corpus/LoopGenerators.cpp ------------------------------------------===//

#include "corpus/LoopGenerators.h"

#include "ir/LoopBuilder.h"

#include <algorithm>
#include <cassert>

using namespace metaopt;

const char *metaopt::loopKindName(LoopKind Kind) {
  switch (Kind) {
  case LoopKind::Daxpy:
    return "daxpy";
  case LoopKind::DotReduce:
    return "dot";
  case LoopKind::Stencil:
    return "stencil";
  case LoopKind::MatmulInner:
    return "matmul";
  case LoopKind::Fir:
    return "fir";
  case LoopKind::IirRecurrence:
    return "iir";
  case LoopKind::StreamCopy:
    return "copy";
  case LoopKind::Gather:
    return "gather";
  case LoopKind::Histogram:
    return "histogram";
  case LoopKind::PointerChase:
    return "chase";
  case LoopKind::Branchy:
    return "branchy";
  case LoopKind::Predicated:
    return "predicated";
  case LoopKind::CallBearing:
    return "call";
  case LoopKind::DivHeavy:
    return "div";
  case LoopKind::Mixed:
    return "mixed";
  }
  return "?";
}

namespace {

/// Shared state while emitting one loop.
struct GenState {
  LoopBuilder Builder;
  Rng &Generator;
  int32_t NextSym = 0;

  GenState(const LoopGenParams &Params, Rng &Generator)
      : Builder(Params.Name, Params.Lang, Params.NestLevel,
                Params.TripCount),
        Generator(Generator) {
    Builder.loop().setRuntimeTripCount(Params.RuntimeTripCount);
  }

  int32_t freshSym() { return NextSym++; }

  /// A unit- or occasionally non-unit-stride FP reference.
  MemRef fpRef(int32_t Sym, int64_t ElemOffset = 0) {
    int64_t Stride = Generator.nextBool(0.15) ? 16 : 8;
    return MemRef{Sym, Stride, ElemOffset * Stride, false, 8};
  }

  MemRef intRef(int32_t Sym, int64_t ElemOffset = 0) {
    int64_t Stride = Generator.nextBool(0.2) ? 8 : 4;
    return MemRef{Sym, Stride, ElemOffset * Stride, false,
                  static_cast<int32_t>(Stride == 8 ? 8 : 4)};
  }

  Loop finish() { return Builder.finalize(); }
};

Loop generateDaxpy(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  int Streams = 1 + static_cast<int>(Generator.nextBelow(
                        1 + std::min(Params.SizeScale * 2, 7)));
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  for (int Stream = 0; Stream < Streams; ++Stream) {
    int32_t XSym = S.freshSym();
    int32_t YSym = S.freshSym();
    RegId X = B.load(RegClass::Float, S.fpRef(XSym));
    MemRef YRef = S.fpRef(YSym);
    RegId Y = B.load(RegClass::Float, YRef);
    RegId R = B.fma(Alpha, X, Y);
    B.store(R, YRef);
  }
  return S.finish();
}

Loop generateDotReduce(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  int Accumulators = 1 + static_cast<int>(Generator.nextBelow(4));
  for (int A = 0; A < Accumulators; ++A) {
    RegId Acc = B.phi(RegClass::Float, "acc" + std::to_string(A));
    RegId X = B.load(RegClass::Float, S.fpRef(S.freshSym()));
    RegId Y = B.load(RegClass::Float, S.fpRef(S.freshSym()));
    RegId Next = Generator.nextBool(0.7) ? B.fma(X, Y, Acc)
                                         : B.fadd(Acc, B.fmul(X, Y));
    B.setPhiRecur(Acc, Next);
  }
  return S.finish();
}

Loop generateStencil(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  int Taps = 3 + static_cast<int>(Generator.nextBelow(
                     static_cast<uint64_t>(2 + 2 * Params.SizeScale)));
  int32_t XSym = S.freshSym();
  int32_t YSym = S.freshSym();
  RegId Sum = NoReg;
  for (int Tap = 0; Tap < Taps; ++Tap) {
    RegId Coef = B.liveIn(RegClass::Float, "c" + std::to_string(Tap));
    MemRef Ref{XSym, 8, (Tap - Taps / 2) * 8, false, 8};
    RegId X = B.load(RegClass::Float, Ref);
    Sum = Sum == NoReg ? B.fmul(Coef, X) : B.fma(Coef, X, Sum);
  }
  B.store(Sum, MemRef{YSym, 8, 0, false, 8});
  return S.finish();
}

Loop generateMatmulInner(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId Acc = B.phi(RegClass::Float, "c");
  RegId A = B.load(RegClass::Float, MemRef{S.freshSym(), 8, 0, false, 8});
  // The B matrix walks a column: non-unit stride.
  int64_t RowBytes = 8 * (8 + static_cast<int64_t>(Generator.nextBelow(120)));
  RegId Bv = B.load(RegClass::Float,
                    MemRef{S.freshSym(), RowBytes, 0, false, 8});
  B.setPhiRecur(Acc, B.fma(A, Bv, Acc));
  return S.finish();
}

Loop generateFir(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  int Taps = 4 + static_cast<int>(Generator.nextBelow(8));
  int32_t XSym = S.freshSym();
  RegId Sum = NoReg;
  for (int Tap = 0; Tap < Taps; ++Tap) {
    RegId Coef = B.liveIn(RegClass::Float, "h" + std::to_string(Tap));
    RegId X = B.load(RegClass::Float, MemRef{XSym, 8, Tap * 8, false, 8});
    Sum = Sum == NoReg ? B.fmul(Coef, X) : B.fma(Coef, X, Sum);
  }
  B.store(Sum, MemRef{S.freshSym(), 8, 0, false, 8});
  return S.finish();
}

Loop generateIirRecurrence(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId A = B.liveIn(RegClass::Float, "a");
  int32_t XSym = S.freshSym();
  int32_t YSym = S.freshSym();
  RegId X = B.load(RegClass::Float, MemRef{XSym, 8, 0, false, 8});
  if (Generator.nextBool(0.5)) {
    // Register-carried form: y[i] = a * y[i-1] + x[i] via a phi.
    RegId YPrev = B.phi(RegClass::Float, "yprev");
    RegId Y = B.fma(A, YPrev, X);
    B.store(Y, MemRef{YSym, 8, 0, false, 8});
    B.setPhiRecur(YPrev, Y);
  } else {
    // Memory-carried form: the load of y[i-1] collides with the store of
    // y[i] one iteration later (distance-1 memory dependence).
    RegId YPrev = B.load(RegClass::Float, MemRef{YSym, 8, -8, false, 8});
    RegId Y = B.fma(A, YPrev, X);
    B.store(Y, MemRef{YSym, 8, 0, false, 8});
  }
  return S.finish();
}

Loop generateStreamCopy(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  int Streams = 1 + static_cast<int>(Generator.nextBelow(4));
  for (int Stream = 0; Stream < Streams; ++Stream) {
    bool Fp = Generator.nextBool(0.5);
    if (Fp) {
      RegId V = B.load(RegClass::Float, S.fpRef(S.freshSym()));
      B.store(V, S.fpRef(S.freshSym()));
    } else {
      RegId V = B.load(RegClass::Int, S.intRef(S.freshSym()));
      B.store(V, S.intRef(S.freshSym()));
    }
  }
  return S.finish();
}

Loop generateGather(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId Alpha = B.liveIn(RegClass::Float, "alpha");
  RegId Index = B.load(RegClass::Int, S.intRef(S.freshSym()));
  RegId Value = B.load(RegClass::Float,
                       MemRef{S.freshSym(), 0, 0, true, 8}, Index);
  RegId R = Generator.nextBool(0.5) ? B.fmul(Alpha, Value)
                                    : B.fadd(Alpha, Value);
  B.store(R, S.fpRef(S.freshSym()));
  return S.finish();
}

Loop generateHistogram(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId Index = B.load(RegClass::Int, S.intRef(S.freshSym()));
  int32_t HistSym = S.freshSym();
  RegId Count = B.load(RegClass::Int, MemRef{HistSym, 0, 0, true, 8},
                       Index);
  RegId One = B.iconst(1);
  RegId Bumped = B.iadd(Count, One);
  B.store(Bumped, MemRef{HistSym, 0, 0, true, 8}, Index);
  return S.finish();
}

Loop generatePointerChase(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId Node = B.phi(RegClass::Int, "node");
  int32_t HeapSym = S.freshSym();
  RegId Next = B.load(RegClass::Int, MemRef{HeapSym, 0, 0, true, 8}, Node);
  if (Generator.nextBool(0.6)) {
    // Also accumulate a payload field.
    RegId Acc = B.phi(RegClass::Float, "sum");
    RegId Payload = B.load(RegClass::Float,
                           MemRef{HeapSym, 0, 8, true, 8}, Node);
    B.setPhiRecur(Acc, B.fadd(Acc, Payload));
  }
  B.setPhiRecur(Node, Next);
  return S.finish();
}

Loop generateBranchy(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId Value = B.load(RegClass::Int, S.intRef(S.freshSym()));
  RegId Limit = B.liveIn(RegClass::Int, "limit");
  RegId ExitCond = B.icmp(Value, Limit);
  B.exitIf(ExitCond, 0.0005 + Generator.nextDouble() * 0.004);
  int Work = 2 + static_cast<int>(Generator.nextBelow(5));
  RegId Current = Value;
  for (int Op = 0; Op < Work; ++Op) {
    switch (Generator.nextBelow(4)) {
    case 0:
      Current = B.iadd(Current, Value);
      break;
    case 1:
      Current = B.bitXor(Current, Value);
      break;
    case 2:
      Current = B.shl(Current, Limit);
      break;
    default:
      Current = B.isub(Current, Limit);
      break;
    }
  }
  if (Generator.nextBool(0.4)) {
    RegId SecondCond = B.icmp(Current, Limit);
    B.exitIf(SecondCond, 0.0005 + Generator.nextDouble() * 0.002);
  }
  B.store(Current, S.intRef(S.freshSym()));
  return S.finish();
}

Loop generatePredicated(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId Threshold = B.liveIn(RegClass::Float, "threshold");
  RegId X = B.load(RegClass::Float, S.fpRef(S.freshSym()));
  RegId Cond = B.fcmp(X, Threshold);
  B.setPredicate(Cond);
  RegId Scaled = B.fmul(X, Threshold);
  RegId Adjusted = B.fadd(Scaled, X);
  B.clearPredicate();
  RegId Chosen = B.select(Cond, Adjusted, X);
  if (Generator.nextBool(0.5)) {
    B.setPredicate(Cond);
    B.store(Chosen, S.fpRef(S.freshSym()));
    B.clearPredicate();
  } else {
    B.store(Chosen, S.fpRef(S.freshSym()));
  }
  return S.finish();
}

Loop generateCallBearing(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId X = B.load(RegClass::Float, S.fpRef(S.freshSym()));
  B.call({X});
  if (Generator.nextBool(0.6)) {
    RegId Alpha = B.liveIn(RegClass::Float, "alpha");
    RegId R = B.fadd(X, Alpha);
    B.store(R, S.fpRef(S.freshSym()));
  }
  return S.finish();
}

Loop generateDivHeavy(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;
  RegId X = B.load(RegClass::Float, S.fpRef(S.freshSym()));
  RegId Y = B.load(RegClass::Float, S.fpRef(S.freshSym()));
  RegId Quotient = B.fdiv(X, Y);
  RegId Result = Quotient;
  if (Generator.nextBool(0.5))
    Result = B.fsqrt(Quotient);
  if (Generator.nextBool(0.5)) {
    RegId Alpha = B.liveIn(RegClass::Float, "alpha");
    Result = B.fma(Result, Alpha, X);
  }
  B.store(Result, S.fpRef(S.freshSym()));
  return S.finish();
}

Loop generateMixed(const LoopGenParams &Params, Rng &Generator) {
  GenState S(Params, Generator);
  LoopBuilder &B = S.Builder;

  std::vector<RegId> IntVals;
  std::vector<RegId> FloatVals;
  IntVals.push_back(B.liveIn(RegClass::Int, "k0"));
  FloatVals.push_back(B.liveIn(RegClass::Float, "a0"));

  int Streams = 1 + static_cast<int>(
                        Generator.nextBelow(2 + std::min(Params.SizeScale,
                                                         5) * 2));
  for (int Stream = 0; Stream < Streams; ++Stream) {
    if (Generator.nextBool(0.55))
      FloatVals.push_back(B.load(RegClass::Float, S.fpRef(S.freshSym())));
    else
      IntVals.push_back(B.load(RegClass::Int, S.intRef(S.freshSym())));
  }

  // Optional reduction.
  RegId Phi = NoReg;
  bool FloatPhi = Generator.nextBool(0.6);
  if (Generator.nextBool(0.35)) {
    Phi = B.phi(FloatPhi ? RegClass::Float : RegClass::Int, "red");
    (FloatPhi ? FloatVals : IntVals).push_back(Phi);
  }

  auto PickInt = [&] {
    return IntVals[Generator.nextBelow(IntVals.size())];
  };
  auto PickFloat = [&] {
    return FloatVals[Generator.nextBelow(FloatVals.size())];
  };

  int Ops = 3 + static_cast<int>(Generator.nextBelow(
                    static_cast<uint64_t>(5 + 13 * Params.SizeScale)));
  for (int Op = 0; Op < Ops; ++Op) {
    bool FloatOp = Generator.nextBool(0.55) && !FloatVals.empty();
    if (FloatOp) {
      RegId A = PickFloat();
      RegId Bv = PickFloat();
      RegId R;
      switch (Generator.nextBelow(5)) {
      case 0:
        R = B.fadd(A, Bv);
        break;
      case 1:
        R = B.fsub(A, Bv);
        break;
      case 2:
        R = B.fmul(A, Bv);
        break;
      case 3:
        R = B.fma(A, Bv, PickFloat());
        break;
      default:
        R = Generator.nextBool(0.2) ? B.fdiv(A, Bv) : B.fmul(A, Bv);
        break;
      }
      FloatVals.push_back(R);
    } else {
      RegId A = PickInt();
      RegId Bv = PickInt();
      RegId R;
      switch (Generator.nextBelow(6)) {
      case 0:
        R = B.iadd(A, Bv);
        break;
      case 1:
        R = B.isub(A, Bv);
        break;
      case 2:
        R = B.imul(A, Bv);
        break;
      case 3:
        R = B.bitAnd(A, Bv);
        break;
      case 4:
        R = B.bitXor(A, Bv);
        break;
      default:
        R = B.shr(A, Bv);
        break;
      }
      IntVals.push_back(R);
    }
  }

  // Optional predicated tail.
  if (Generator.nextBool(0.2) && FloatVals.size() >= 2) {
    RegId Cond = B.fcmp(PickFloat(), PickFloat());
    B.setPredicate(Cond);
    FloatVals.push_back(B.fadd(PickFloat(), PickFloat()));
    B.clearPredicate();
  }

  // Optional early exit.
  if (Generator.nextBool(0.12) && IntVals.size() >= 2) {
    RegId Cond = B.icmp(PickInt(), PickInt());
    B.exitIf(Cond, 0.0005 + Generator.nextDouble() * 0.003);
  }

  // Stores.
  int Stores = static_cast<int>(Generator.nextBelow(3));
  for (int Store = 0; Store < Stores; ++Store) {
    if (Generator.nextBool(0.6))
      B.store(PickFloat(), S.fpRef(S.freshSym()));
    else
      B.store(PickInt(), S.intRef(S.freshSym()));
  }

  if (Phi != NoReg) {
    RegId Next;
    if (FloatPhi) {
      // Fold fresh work into the accumulator so the recurrence is real.
      Next = B.fadd(Phi, FloatVals.back());
    } else {
      Next = B.iadd(Phi, IntVals.back());
    }
    B.setPhiRecur(Phi, Next);
  }
  return S.finish();
}

} // namespace

Loop metaopt::generateLoop(LoopKind Kind, const LoopGenParams &Params,
                           Rng &Generator) {
  switch (Kind) {
  case LoopKind::Daxpy:
    return generateDaxpy(Params, Generator);
  case LoopKind::DotReduce:
    return generateDotReduce(Params, Generator);
  case LoopKind::Stencil:
    return generateStencil(Params, Generator);
  case LoopKind::MatmulInner:
    return generateMatmulInner(Params, Generator);
  case LoopKind::Fir:
    return generateFir(Params, Generator);
  case LoopKind::IirRecurrence:
    return generateIirRecurrence(Params, Generator);
  case LoopKind::StreamCopy:
    return generateStreamCopy(Params, Generator);
  case LoopKind::Gather:
    return generateGather(Params, Generator);
  case LoopKind::Histogram:
    return generateHistogram(Params, Generator);
  case LoopKind::PointerChase:
    return generatePointerChase(Params, Generator);
  case LoopKind::Branchy:
    return generateBranchy(Params, Generator);
  case LoopKind::Predicated:
    return generatePredicated(Params, Generator);
  case LoopKind::CallBearing:
    return generateCallBearing(Params, Generator);
  case LoopKind::DivHeavy:
    return generateDivHeavy(Params, Generator);
  case LoopKind::Mixed:
    return generateMixed(Params, Generator);
  }
  assert(false && "unknown loop kind");
  return Loop();
}
