//===- corpus/CorpusAudit.h - Lint sweep over the corpus --------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the lint engine (analysis/lint) over every loop of a built corpus,
/// in parallel on the work-stealing runtime. Loops are audited by stable
/// corpus index and the reports are concatenated in that order, so the
/// result — and anything rendered from it — is byte-identical whatever
/// the thread count. The metaopt-lint tool and the lint tests share this
/// sweep; the corpus generators are required to produce loops that lint
/// without errors.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CORPUS_CORPUSAUDIT_H
#define METAOPT_CORPUS_CORPUSAUDIT_H

#include "analysis/lint/Lint.h"
#include "corpus/BenchmarkSuite.h"

#include <string>
#include <vector>

namespace metaopt {

/// One audited loop with a non-empty report.
struct AuditedLoop {
  std::string Benchmark;
  std::string LoopName;
  DiagnosticReport Report;
};

/// Result of sweeping a corpus.
struct CorpusAuditResult {
  /// Reports that contained at least one diagnostic, in stable corpus
  /// order (benchmark declaration order, then loop order).
  std::vector<AuditedLoop> Findings;
  size_t LoopsAudited = 0;
  size_t Errors = 0;
  size_t Warnings = 0;
  size_t Notes = 0;

  bool clean() const { return Errors == 0; }
};

/// Lints every loop in \p Corpus with \p Options on the global thread
/// pool. Deterministic: the result is independent of the thread count.
CorpusAuditResult auditBenchmarks(const std::vector<Benchmark> &Corpus,
                                  const LintOptions &Options = {});

} // namespace metaopt

#endif // METAOPT_CORPUS_CORPUSAUDIT_H
