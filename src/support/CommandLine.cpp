//===- support/CommandLine.cpp --------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>

using namespace metaopt;

const char *metaopt::metaoptVersion() { return "0.4.0"; }

CommandLine::CommandLine(int Argc, const char *const *Argv) {
  if (Argc > 0)
    ProgramName = Argv[0];
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.size() < 3 || Arg.substr(0, 2) != "--") {
      Positional.push_back(Arg);
      continue;
    }
    // Only "--key=value" carries a value; a bare "--flag" is boolean.
    // ("--key value" is deliberately unsupported: it is ambiguous with a
    // following positional argument, e.g. "--orc file.loop".)
    std::string Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Options[Body.substr(0, Eq)] = Body.substr(Eq + 1);
      continue;
    }
    Options[Body] = "";
  }
}

bool CommandLine::has(const std::string &Key) const {
  return Options.count(Key) != 0;
}

std::string CommandLine::getString(const std::string &Key,
                                   const std::string &Default) const {
  auto It = Options.find(Key);
  return It == Options.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Key, int64_t Default) const {
  auto It = Options.find(Key);
  if (It == Options.end())
    return Default;
  if (auto Value = parseInt(It->second))
    return *Value;
  return Default;
}

double CommandLine::getDouble(const std::string &Key, double Default) const {
  auto It = Options.find(Key);
  if (It == Options.end())
    return Default;
  if (auto Value = parseDouble(It->second))
    return *Value;
  return Default;
}

//===----------------------------------------------------------------------===//
// CliParser
//===----------------------------------------------------------------------===//

CliParser::CliParser(std::string ToolIn, std::string SummaryIn)
    : Tool(std::move(ToolIn)), Summary(std::move(SummaryIn)) {}

void CliParser::flag(const std::string &Name, const std::string &Help) {
  Specs.push_back({Name, "", Help});
}

void CliParser::option(const std::string &Name,
                       const std::string &ValueName,
                       const std::string &Help) {
  Specs.push_back({Name, ValueName, Help});
}

void CliParser::positionalHelp(std::string Placeholder, std::string Help) {
  PositionalPlaceholder = std::move(Placeholder);
  PositionalHelp = std::move(Help);
}

std::string CliParser::usage() const {
  std::string Out = "usage: " + Tool + " [options]";
  if (!PositionalPlaceholder.empty())
    Out += " " + PositionalPlaceholder;
  Out += "\n\n" + Summary + "\n";
  if (!PositionalHelp.empty())
    Out += "\n  " + PositionalPlaceholder + "\n      " + PositionalHelp +
           "\n";
  Out += "\noptions:\n";
  std::vector<OptionSpec> Sorted = Specs;
  Sorted.push_back({"help", "", "print this message and exit"});
  Sorted.push_back({"version", "", "print the version and exit"});
  size_t Widest = 0;
  std::vector<std::string> Rendered;
  Rendered.reserve(Sorted.size());
  for (const OptionSpec &Spec : Sorted) {
    std::string Left = "--" + Spec.Name;
    if (!Spec.ValueName.empty())
      Left += "=<" + Spec.ValueName + ">";
    Widest = std::max(Widest, Left.size());
    Rendered.push_back(std::move(Left));
  }
  for (size_t I = 0; I < Sorted.size(); ++I) {
    Out += "  " + Rendered[I];
    Out.append(Widest - Rendered[I].size() + 2, ' ');
    Out += Sorted[I].Help + "\n";
  }
  return Out;
}

std::optional<int> CliParser::parse(int Argc, const char *const *Argv) {
  // --help/-h and --version win over everything else on the line, before
  // unknown-option checking, so "tool --whatever --help" still helps.
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return 0;
    }
    if (Arg == "--version") {
      std::printf("%s (metaopt) %s\n", Tool.c_str(), metaoptVersion());
      return 0;
    }
  }
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.size() < 3 || Arg.substr(0, 2) != "--")
      continue; // Positional (or "-" / "--"); always accepted.
    std::string Name = Arg.substr(2, Arg.find('=') - 2);
    bool HasValue = Arg.find('=') != std::string::npos;
    auto Spec = std::find_if(
        Specs.begin(), Specs.end(),
        [&](const OptionSpec &S) { return S.Name == Name; });
    if (Spec == Specs.end()) {
      std::fprintf(stderr, "%s: unknown option '%s'\n%s", Tool.c_str(),
                   Arg.c_str(), usage().c_str());
      return 2;
    }
    if (!Spec->ValueName.empty() && !HasValue) {
      std::fprintf(stderr, "%s: option '--%s' requires a value (--%s=<%s>)\n",
                   Tool.c_str(), Name.c_str(), Name.c_str(),
                   Spec->ValueName.c_str());
      return 2;
    }
    if (Spec->ValueName.empty() && HasValue) {
      std::fprintf(stderr, "%s: option '--%s' does not take a value\n",
                   Tool.c_str(), Name.c_str());
      return 2;
    }
  }
  Parsed.emplace(Argc, Argv);
  return std::nullopt;
}

bool CliParser::has(const std::string &Key) const {
  return Parsed && Parsed->has(Key);
}

std::string CliParser::getString(const std::string &Key,
                                 const std::string &Default) const {
  return Parsed ? Parsed->getString(Key, Default) : Default;
}

int64_t CliParser::getInt(const std::string &Key, int64_t Default) const {
  return Parsed ? Parsed->getInt(Key, Default) : Default;
}

double CliParser::getDouble(const std::string &Key, double Default) const {
  return Parsed ? Parsed->getDouble(Key, Default) : Default;
}

const std::vector<std::string> &CliParser::positional() const {
  static const std::vector<std::string> Empty;
  return Parsed ? Parsed->positional() : Empty;
}
