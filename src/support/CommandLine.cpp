//===- support/CommandLine.cpp --------------------------------------------===//

#include "support/CommandLine.h"

#include "support/StringUtils.h"

using namespace metaopt;

CommandLine::CommandLine(int Argc, const char *const *Argv) {
  if (Argc > 0)
    ProgramName = Argv[0];
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.size() < 3 || Arg.substr(0, 2) != "--") {
      Positional.push_back(Arg);
      continue;
    }
    // Only "--key=value" carries a value; a bare "--flag" is boolean.
    // ("--key value" is deliberately unsupported: it is ambiguous with a
    // following positional argument, e.g. "--orc file.loop".)
    std::string Body = Arg.substr(2);
    size_t Eq = Body.find('=');
    if (Eq != std::string::npos) {
      Options[Body.substr(0, Eq)] = Body.substr(Eq + 1);
      continue;
    }
    Options[Body] = "";
  }
}

bool CommandLine::has(const std::string &Key) const {
  return Options.count(Key) != 0;
}

std::string CommandLine::getString(const std::string &Key,
                                   const std::string &Default) const {
  auto It = Options.find(Key);
  return It == Options.end() ? Default : It->second;
}

int64_t CommandLine::getInt(const std::string &Key, int64_t Default) const {
  auto It = Options.find(Key);
  if (It == Options.end())
    return Default;
  if (auto Value = parseInt(It->second))
    return *Value;
  return Default;
}

double CommandLine::getDouble(const std::string &Key, double Default) const {
  auto It = Options.find(Key);
  if (It == Options.end())
    return Default;
  if (auto Value = parseDouble(It->second))
    return *Value;
  return Default;
}
