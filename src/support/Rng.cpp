//===- support/Rng.cpp ----------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace metaopt;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Rng::Rng(uint64_t Seed) {
  uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
}

Rng::Rng(const std::string &SeedString) : Rng(hashString(SeedString)) {}

Rng Rng::splitStream(uint64_t Seed, uint64_t Index) {
  return Rng(Seed ^ Index);
}

uint64_t Rng::hashString(const std::string &Str) {
  uint64_t Hash = 0xcbf29ce484222325ULL;
  for (unsigned char C : Str) {
    Hash ^= C;
    Hash *= 0x100000001b3ULL;
  }
  return Hash;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[0] + State[3], 23) + State[0];
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow() requires a nonzero bound");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = (0ULL - Bound) % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "nextInRange() requires Lo <= Hi");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

double Rng::nextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextDoubleInRange(double Lo, double Hi) {
  assert(Lo <= Hi && "nextDoubleInRange() requires Lo <= Hi");
  return Lo + (Hi - Lo) * nextDouble();
}

double Rng::nextGaussian(double Mean, double StdDev) {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return Mean + StdDev * SpareGaussian;
  }
  double U, V, S;
  do {
    U = 2.0 * nextDouble() - 1.0;
    V = 2.0 * nextDouble() - 1.0;
    S = U * U + V * V;
  } while (S >= 1.0 || S == 0.0);
  double Factor = std::sqrt(-2.0 * std::log(S) / S);
  SpareGaussian = V * Factor;
  HasSpareGaussian = true;
  return Mean + StdDev * U * Factor;
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "pickWeighted() requires at least one weight");
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "weights must be non-negative");
    Total += W;
  }
  assert(Total > 0.0 && "weights must not all be zero");
  double Target = nextDouble() * Total;
  double Running = 0.0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Running += Weights[I];
    if (Target < Running)
      return I;
  }
  return Weights.size() - 1;
}
