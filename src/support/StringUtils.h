//===- support/StringUtils.h - String helpers ------------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the IR text parser, the CSV writer, and
/// the console table printer.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SUPPORT_STRINGUTILS_H
#define METAOPT_SUPPORT_STRINGUTILS_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace metaopt {

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view Str);

/// Splits \p Str on \p Sep; does not merge adjacent separators. An empty
/// input yields a single empty piece.
std::vector<std::string> split(std::string_view Str, char Sep);

/// Splits on arbitrary whitespace runs, discarding empty pieces.
std::vector<std::string> splitWhitespace(std::string_view Str);

/// Parses a signed integer; returns std::nullopt on any trailing garbage.
std::optional<int64_t> parseInt(std::string_view Str);

/// Parses a double; returns std::nullopt on any trailing garbage.
std::optional<double> parseDouble(std::string_view Str);

/// Returns \p Value formatted with \p Digits digits after the point.
std::string formatDouble(double Value, int Digits);

/// Returns a percent string like "12.3%" from a ratio (0.123 -> "12.3%").
std::string formatPercent(double Ratio, int Digits = 1);

/// Returns true if \p Str consists solely of an identifier:
/// [A-Za-z_][A-Za-z0-9_.]*.
bool isIdentifier(std::string_view Str);

/// Joins the pieces with \p Sep between them.
std::string join(const std::vector<std::string> &Pieces,
                 std::string_view Sep);

} // namespace metaopt

#endif // METAOPT_SUPPORT_STRINGUTILS_H
