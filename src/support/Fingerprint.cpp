//===- support/Fingerprint.cpp ----------------------------------------------===//

#include "support/Fingerprint.h"

#include <cstring>

using namespace metaopt;

namespace {

/// The splitmix64 finalizer: a full-avalanche 64-bit permutation.
uint64_t mix(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

} // namespace

void FingerprintHasher::word(uint64_t W) {
  // Two lanes absorb each word through different permutation chains so a
  // collision must defeat both simultaneously (~2^-128 by chance).
  Lo = mix(Lo ^ W);
  Hi = mix(Hi + (W ^ 0x94d049bb133111ebULL));
}

void FingerprintHasher::absorbWord(uint64_t W) {
  // Absorbs 8 little-endian bytes in one step, merging across a partial
  // word if one is buffered: the low 8-PendingBytes bytes of W complete
  // Pending, the high PendingBytes bytes start the next partial word.
  // Byte-identical to feeding the 8 bytes individually.
  if (PendingBytes == 0) {
    word(W);
    return;
  }
  unsigned Shift = 8 * PendingBytes;
  word(Pending | (W << Shift));
  Pending = W >> (64 - Shift);
}

void FingerprintHasher::bytes(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  TotalBytes += Size;
  // Bulk path: absorb whole 8-byte groups word-at-a-time. The explicit
  // little-endian assembly keeps the stream byte-identical to the
  // byte-buffered tail on any host (compilers fold it to a single load
  // on little-endian targets), and absorbWord merges across any partial
  // word already buffered.
  while (Size >= 8) {
    uint64_t W = static_cast<uint64_t>(Bytes[0]) |
                 static_cast<uint64_t>(Bytes[1]) << 8 |
                 static_cast<uint64_t>(Bytes[2]) << 16 |
                 static_cast<uint64_t>(Bytes[3]) << 24 |
                 static_cast<uint64_t>(Bytes[4]) << 32 |
                 static_cast<uint64_t>(Bytes[5]) << 40 |
                 static_cast<uint64_t>(Bytes[6]) << 48 |
                 static_cast<uint64_t>(Bytes[7]) << 56;
    absorbWord(W);
    Bytes += 8;
    Size -= 8;
  }
  for (size_t I = 0; I < Size; ++I) {
    Pending |= static_cast<uint64_t>(Bytes[I]) << (8 * PendingBytes);
    if (++PendingBytes == 8) {
      word(Pending);
      Pending = 0;
      PendingBytes = 0;
    }
  }
}

void FingerprintHasher::str(std::string_view Str) {
  u64(Str.size());
  bytes(Str.data(), Str.size());
}

void FingerprintHasher::u64(uint64_t Value) {
  // Packing little-endian and re-assembling little-endian is the
  // identity, so the value absorbs as one word with no byte shuffling.
  TotalBytes += 8;
  absorbWord(Value);
}

void FingerprintHasher::i64(int64_t Value) {
  u64(static_cast<uint64_t>(Value));
}

void FingerprintHasher::f64(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  u64(Bits);
}

void FingerprintHasher::boolean(bool Value) { u64(Value ? 1 : 0); }

Fingerprint FingerprintHasher::digest() const {
  // Flush the partial word and the total length without disturbing the
  // streaming state (digest must be callable repeatedly).
  uint64_t DLo = Lo, DHi = Hi;
  if (PendingBytes > 0) {
    DLo = mix(DLo ^ Pending);
    DHi = mix(DHi + (Pending ^ 0x94d049bb133111ebULL));
  }
  DLo = mix(DLo ^ TotalBytes);
  DHi = mix(DHi + (TotalBytes ^ 0x94d049bb133111ebULL));
  return {DLo, DHi};
}
