//===- support/Csv.h - CSV emission -----------------------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV writing for experiment outputs (figure series, raw loop data). The
/// paper released its raw loop dataset; `Pipeline::exportDatasetCsv` uses
/// this writer to do the same.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SUPPORT_CSV_H
#define METAOPT_SUPPORT_CSV_H

#include <string>
#include <vector>

namespace metaopt {

/// Accumulates rows and serializes them as RFC-4180-ish CSV (quotes fields
/// containing commas, quotes, or newlines).
class CsvWriter {
public:
  /// Appends a row of cells.
  void addRow(const std::vector<std::string> &Cells);

  /// Serializes all rows.
  std::string str() const;

  /// Writes the CSV to \p Path. Returns false (and leaves no partial file
  /// guarantee) if the file cannot be opened or written.
  bool writeToFile(const std::string &Path) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace metaopt

#endif // METAOPT_SUPPORT_CSV_H
