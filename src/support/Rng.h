//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generation used throughout the
/// corpus generators and the instrumentation-noise model. All randomness in
/// the repository flows through this class so experiments are reproducible
/// bit-for-bit from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SUPPORT_RNG_H
#define METAOPT_SUPPORT_RNG_H

#include <cstdint>
#include <string>
#include <vector>

namespace metaopt {

/// A xoshiro256++ pseudo random generator seeded through splitmix64.
///
/// The generator is tiny, fast, and has well-understood statistical
/// behaviour; it is not cryptographic and does not need to be. Two Rng
/// instances constructed from the same seed produce identical streams on
/// every platform.
class Rng {
public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL);

  /// Constructs a generator from a string (e.g. a benchmark name) by
  /// hashing it with FNV-1a; convenient for per-benchmark determinism.
  explicit Rng(const std::string &SeedString);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed integer in [0, Bound). \p Bound must
  /// be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniformly distributed double in [0, 1).
  double nextDouble();

  /// Returns a uniformly distributed double in [Lo, Hi).
  double nextDoubleInRange(double Lo, double Hi);

  /// Returns a normally distributed double with the given mean and
  /// standard deviation (Box-Muller).
  double nextGaussian(double Mean = 0.0, double StdDev = 1.0);

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P = 0.5);

  /// Picks an index in [0, Weights.size()) with probability proportional
  /// to the weights. Weights must be non-negative and not all zero.
  size_t pickWeighted(const std::vector<double> &Weights);

  /// Shuffles \p Values in place (Fisher-Yates).
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.empty())
      return;
    for (size_t I = Values.size() - 1; I > 0; --I) {
      size_t J = static_cast<size_t>(nextBelow(I + 1));
      std::swap(Values[I], Values[J]);
    }
  }

  /// Hashes a string with FNV-1a; exposed so callers can derive child
  /// seeds ("benchmarkName/loop17") deterministically.
  static uint64_t hashString(const std::string &Str);

  /// Derives an independent child stream from a base seed and a stable
  /// stream index (a loop-name hash, a task index, ...). This is the one
  /// blessed way to give each unit of work its own generator: two
  /// distinct indices under the same seed yield decorrelated streams
  /// (the splitmix64 seeding stage scrambles nearby inputs), and the
  /// result depends only on (Seed, Index) — never on which thread asks —
  /// so parallel runs reproduce serial runs bit-for-bit. See
  /// concurrency/Determinism.h for the full contract.
  static Rng splitStream(uint64_t Seed, uint64_t Index);

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace metaopt

#endif // METAOPT_SUPPORT_RNG_H
