//===- support/CommandLine.h - Tiny flag parser -----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small command-line flag parser for the example programs
/// and benchmark harnesses (--flag and --key=value; "--key value" is
/// deliberately not supported - it is ambiguous with positionals).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SUPPORT_COMMANDLINE_H
#define METAOPT_SUPPORT_COMMANDLINE_H

#include <map>
#include <string>
#include <vector>

namespace metaopt {

/// Parses argv into named options and positional arguments.
///
/// "--key=value" binds a value; a bare "--flag" binds the empty string
/// (test with has()). Everything else is positional.
class CommandLine {
public:
  CommandLine(int Argc, const char *const *Argv);

  /// Returns true if the option was present (with or without a value).
  bool has(const std::string &Key) const;

  /// Returns the option's string value or \p Default when absent.
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;

  /// Returns the option parsed as integer, or \p Default when absent or
  /// malformed.
  int64_t getInt(const std::string &Key, int64_t Default) const;

  /// Returns the option parsed as double, or \p Default when absent or
  /// malformed.
  double getDouble(const std::string &Key, double Default) const;

  const std::vector<std::string> &positional() const { return Positional; }
  const std::string &programName() const { return ProgramName; }

private:
  std::string ProgramName;
  std::map<std::string, std::string> Options;
  std::vector<std::string> Positional;
};

} // namespace metaopt

#endif // METAOPT_SUPPORT_COMMANDLINE_H
