//===- support/CommandLine.h - Tiny flag parser -----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small command-line flag parser for the example programs
/// and benchmark harnesses (--flag and --key=value; "--key value" is
/// deliberately not supported - it is ambiguous with positionals), plus
/// CliParser, the declarative front-end the metaopt-* tools share: it
/// registers the legal options, generates --help, answers --version, and
/// rejects unknown flags with a non-zero exit instead of silently
/// ignoring them.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SUPPORT_COMMANDLINE_H
#define METAOPT_SUPPORT_COMMANDLINE_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace metaopt {

/// The project version reported by every tool's --version.
const char *metaoptVersion();

/// Parses argv into named options and positional arguments.
///
/// "--key=value" binds a value; a bare "--flag" binds the empty string
/// (test with has()). Everything else is positional.
class CommandLine {
public:
  CommandLine(int Argc, const char *const *Argv);

  /// Returns true if the option was present (with or without a value).
  bool has(const std::string &Key) const;

  /// Returns the option's string value or \p Default when absent.
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;

  /// Returns the option parsed as integer, or \p Default when absent or
  /// malformed.
  int64_t getInt(const std::string &Key, int64_t Default) const;

  /// Returns the option parsed as double, or \p Default when absent or
  /// malformed.
  double getDouble(const std::string &Key, double Default) const;

  const std::vector<std::string> &positional() const { return Positional; }
  const std::string &programName() const { return ProgramName; }

private:
  std::string ProgramName;
  std::map<std::string, std::string> Options;
  std::vector<std::string> Positional;
};

/// Declarative command-line front-end for the metaopt-* tools.
///
/// Usage:
///   CliParser Cli("metaopt-foo", "one-line summary");
///   Cli.flag("corpus", "sweep the built-in corpus");
///   Cli.option("threads", "n", "worker threads");
///   Cli.positionalHelp("<file.loop> ...", "loop files to process");
///   if (std::optional<int> Exit = Cli.parse(Argc, Argv))
///     return *Exit;
///
/// parse() handles --help/-h and --version itself (exit 0) and rejects
/// any option that was not registered (error + usage to stderr, exit 2),
/// so a typo like --treads=4 can never be silently ignored. After a
/// successful parse the CommandLine accessors (has/getString/getInt/
/// getDouble/positional) answer queries.
class CliParser {
public:
  CliParser(std::string Tool, std::string Summary);

  /// Registers a boolean flag (--name).
  void flag(const std::string &Name, const std::string &Help);

  /// Registers a value option (--name=<value>).
  void option(const std::string &Name, const std::string &ValueName,
              const std::string &Help);

  /// Describes the positional arguments in the usage line (help only;
  /// positionals are always accepted).
  void positionalHelp(std::string Placeholder, std::string Help);

  /// Parses argv. Returns the process exit code when the tool should stop
  /// (0 after --help/--version, 2 on an unknown or malformed option) and
  /// std::nullopt when parsing succeeded and the tool should run.
  std::optional<int> parse(int Argc, const char *const *Argv);

  /// Renders the generated usage/help text.
  std::string usage() const;

  const std::string &tool() const { return Tool; }

  // Query interface; valid after a successful parse().
  bool has(const std::string &Key) const;
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  int64_t getInt(const std::string &Key, int64_t Default) const;
  double getDouble(const std::string &Key, double Default) const;
  const std::vector<std::string> &positional() const;

private:
  struct OptionSpec {
    std::string Name;
    std::string ValueName; ///< "" for boolean flags.
    std::string Help;
  };

  std::string Tool;
  std::string Summary;
  std::string PositionalPlaceholder;
  std::string PositionalHelp;
  std::vector<OptionSpec> Specs;
  std::optional<CommandLine> Parsed;
};

} // namespace metaopt

#endif // METAOPT_SUPPORT_COMMANDLINE_H
