//===- support/Statistics.cpp ---------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace metaopt;

double metaopt::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double metaopt::stdDev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  double M = mean(Values);
  double Sum = 0.0;
  for (double V : Values)
    Sum += (V - M) * (V - M);
  return std::sqrt(Sum / static_cast<double>(Values.size()));
}

double metaopt::median(std::vector<double> Values) {
  if (Values.empty())
    return 0.0;
  size_t Mid = Values.size() / 2;
  std::nth_element(Values.begin(), Values.begin() + Mid, Values.end());
  double Upper = Values[Mid];
  if (Values.size() % 2 == 1)
    return Upper;
  double Lower = *std::max_element(Values.begin(), Values.begin() + Mid);
  return 0.5 * (Lower + Upper);
}

double metaopt::quantile(std::vector<double> Values, double Q) {
  if (Values.empty())
    return 0.0;
  assert(Q >= 0.0 && Q <= 1.0 && "quantile requires Q in [0,1]");
  std::sort(Values.begin(), Values.end());
  double Pos = Q * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double metaopt::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 1.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometricMean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double metaopt::minValue(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  return *std::min_element(Values.begin(), Values.end());
}

double metaopt::maxValue(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  return *std::max_element(Values.begin(), Values.end());
}

size_t metaopt::argMin(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  return static_cast<size_t>(
      std::min_element(Values.begin(), Values.end()) - Values.begin());
}

size_t metaopt::argMax(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  return static_cast<size_t>(
      std::max_element(Values.begin(), Values.end()) - Values.begin());
}

void RunningStats::add(double Value) {
  ++Count;
  double Delta = Value - Mean;
  Mean += Delta / static_cast<double>(Count);
  M2 += Delta * (Value - Mean);
}

double RunningStats::variance() const {
  if (Count < 2)
    return 0.0;
  return M2 / static_cast<double>(Count);
}

double RunningStats::stdDev() const { return std::sqrt(variance()); }
