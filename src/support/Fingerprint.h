//===- support/Fingerprint.h - Streaming 128-bit fingerprints ---*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming hasher producing 128-bit fingerprints, used as the
/// content address of the simulation cache (cache/SimCache.h). The hash is
/// not cryptographic; it only needs to make accidental collisions across a
/// corpus of at most millions of distinct (loop, factor, machine, context)
/// tuples vanishingly unlikely, and to be byte-for-byte reproducible across
/// platforms, compilers, and processes so persistent cache files remain
/// valid. Inputs are therefore packed little-endian explicitly, doubles are
/// hashed by their IEEE-754 bit pattern, and strings are length-prefixed so
/// concatenation cannot alias ("ab"+"c" vs "a"+"bc").
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SUPPORT_FINGERPRINT_H
#define METAOPT_SUPPORT_FINGERPRINT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace metaopt {

/// A 128-bit content fingerprint (two independent 64-bit lanes).
struct Fingerprint {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  friend bool operator==(const Fingerprint &A, const Fingerprint &B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(const Fingerprint &A, const Fingerprint &B) {
    return !(A == B);
  }
  friend bool operator<(const Fingerprint &A, const Fingerprint &B) {
    return A.Hi != B.Hi ? A.Hi < B.Hi : A.Lo < B.Lo;
  }
};

/// Accumulates typed inputs into a Fingerprint. Feed order matters; the
/// digest also folds in the total byte length so a stream cannot alias a
/// prefix of a longer one.
class FingerprintHasher {
public:
  /// Hashes \p Size raw bytes (packed into little-endian 64-bit words).
  void bytes(const void *Data, size_t Size);

  /// Hashes a length-prefixed string.
  void str(std::string_view Str);

  /// Hashes one unsigned 64-bit value.
  void u64(uint64_t Value);

  /// Hashes a signed value via its two's-complement bit pattern.
  void i64(int64_t Value);

  /// Hashes a double via its IEEE-754 bit pattern (NaNs hash by payload).
  void f64(double Value);

  /// Hashes a boolean as 0/1.
  void boolean(bool Value);

  /// Returns the fingerprint of everything fed so far. The hasher may
  /// keep accumulating afterwards; digest() is non-destructive.
  Fingerprint digest() const;

private:
  void word(uint64_t W);
  void absorbWord(uint64_t W);

  uint64_t Lo = 0x9e3779b97f4a7c15ULL;
  uint64_t Hi = 0xbf58476d1ce4e5b9ULL;
  uint64_t TotalBytes = 0;
  uint64_t Pending = 0;
  unsigned PendingBytes = 0;
};

} // namespace metaopt

#endif // METAOPT_SUPPORT_FINGERPRINT_H
