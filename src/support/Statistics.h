//===- support/Statistics.h - Small descriptive statistics -----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics used by the measurement protocol (median of 30
/// trials), the speedup evaluation (means over benchmarks), and the feature
/// normalizers (mean/stddev, min/max).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SUPPORT_STATISTICS_H
#define METAOPT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace metaopt {

/// Returns the arithmetic mean; 0 for an empty range.
double mean(const std::vector<double> &Values);

/// Returns the population standard deviation; 0 for fewer than two values.
double stdDev(const std::vector<double> &Values);

/// Returns the median. Copies and partially sorts; 0 for an empty range.
double median(std::vector<double> Values);

/// Returns the Q-th quantile for Q in [0,1] with linear interpolation.
double quantile(std::vector<double> Values, double Q);

/// Returns the geometric mean; all inputs must be positive. 1 for empty.
double geometricMean(const std::vector<double> &Values);

/// Returns the smallest element; 0 for an empty range.
double minValue(const std::vector<double> &Values);

/// Returns the largest element; 0 for an empty range.
double maxValue(const std::vector<double> &Values);

/// Returns the index of the smallest element (first on ties); 0 if empty.
size_t argMin(const std::vector<double> &Values);

/// Returns the index of the largest element (first on ties); 0 if empty.
size_t argMax(const std::vector<double> &Values);

/// Running mean/variance accumulator (Welford's algorithm). Used where
/// streaming values would make materializing a vector wasteful.
class RunningStats {
public:
  void add(double Value);
  size_t count() const { return Count; }
  double mean() const { return Count ? Mean : 0.0; }
  double variance() const;
  double stdDev() const;

private:
  size_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
};

} // namespace metaopt

#endif // METAOPT_SUPPORT_STATISTICS_H
