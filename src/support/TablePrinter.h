//===- support/TablePrinter.h - Aligned console tables ---------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny aligned-column table renderer used by the benchmark harnesses to
/// print the paper's tables (Table 2, Table 3, Table 4, ...) on stdout.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_SUPPORT_TABLEPRINTER_H
#define METAOPT_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace metaopt {

/// Collects rows of string cells and renders them with aligned columns.
///
/// Numeric-looking cells are right-aligned, everything else left-aligned.
/// The first row added with addHeader() is separated from the body by a
/// rule. Rendering returns a string so callers can print or log it.
class TablePrinter {
public:
  explicit TablePrinter(std::string Title = "") : Title(std::move(Title)) {}

  /// Sets the header row (column names).
  void addHeader(std::vector<std::string> Cells);

  /// Appends a body row. Rows may be ragged; short rows are padded.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table with a title, header rule, and aligned columns.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

private:
  std::string Title;
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace metaopt

#endif // METAOPT_SUPPORT_TABLEPRINTER_H
