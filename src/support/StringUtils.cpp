//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace metaopt;

std::string_view metaopt::trim(std::string_view Str) {
  size_t Begin = 0;
  size_t End = Str.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Str[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Str[End - 1])))
    --End;
  return Str.substr(Begin, End - Begin);
}

std::vector<std::string> metaopt::split(std::string_view Str, char Sep) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I <= Str.size(); ++I) {
    if (I == Str.size() || Str[I] == Sep) {
      Pieces.emplace_back(Str.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Pieces;
}

std::vector<std::string> metaopt::splitWhitespace(std::string_view Str) {
  std::vector<std::string> Pieces;
  size_t I = 0;
  while (I < Str.size()) {
    while (I < Str.size() &&
           std::isspace(static_cast<unsigned char>(Str[I])))
      ++I;
    size_t Start = I;
    while (I < Str.size() &&
           !std::isspace(static_cast<unsigned char>(Str[I])))
      ++I;
    if (I > Start)
      Pieces.emplace_back(Str.substr(Start, I - Start));
  }
  return Pieces;
}

std::optional<int64_t> metaopt::parseInt(std::string_view Str) {
  Str = trim(Str);
  if (Str.empty())
    return std::nullopt;
  std::string Buffer(Str);
  char *End = nullptr;
  long long Value = std::strtoll(Buffer.c_str(), &End, 10);
  if (End != Buffer.c_str() + Buffer.size())
    return std::nullopt;
  return static_cast<int64_t>(Value);
}

std::optional<double> metaopt::parseDouble(std::string_view Str) {
  Str = trim(Str);
  if (Str.empty())
    return std::nullopt;
  std::string Buffer(Str);
  char *End = nullptr;
  double Value = std::strtod(Buffer.c_str(), &End);
  if (End != Buffer.c_str() + Buffer.size())
    return std::nullopt;
  return Value;
}

std::string metaopt::formatDouble(double Value, int Digits) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Digits, Value);
  return Buffer;
}

std::string metaopt::formatPercent(double Ratio, int Digits) {
  return formatDouble(Ratio * 100.0, Digits) + "%";
}

bool metaopt::isIdentifier(std::string_view Str) {
  if (Str.empty())
    return false;
  unsigned char First = static_cast<unsigned char>(Str[0]);
  if (!std::isalpha(First) && Str[0] != '_')
    return false;
  for (char C : Str.substr(1)) {
    unsigned char U = static_cast<unsigned char>(C);
    if (!std::isalnum(U) && C != '_' && C != '.')
      return false;
  }
  return true;
}

std::string metaopt::join(const std::vector<std::string> &Pieces,
                          std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I)
      Result += Sep;
    Result += Pieces[I];
  }
  return Result;
}
