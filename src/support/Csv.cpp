//===- support/Csv.cpp ----------------------------------------------------===//

#include "support/Csv.h"

#include <cstdio>

using namespace metaopt;

void CsvWriter::addRow(const std::vector<std::string> &Cells) {
  Rows.push_back(Cells);
}

static bool needsQuoting(const std::string &Cell) {
  for (char C : Cell)
    if (C == ',' || C == '"' || C == '\n' || C == '\r')
      return true;
  return false;
}

static void appendQuoted(std::string &Out, const std::string &Cell) {
  Out += '"';
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
}

std::string CsvWriter::str() const {
  std::string Out;
  for (const auto &Row : Rows) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        Out += ',';
      if (needsQuoting(Row[I]))
        appendQuoted(Out, Row[I]);
      else
        Out += Row[I];
    }
    Out += '\n';
  }
  return Out;
}

bool CsvWriter::writeToFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::string Data = str();
  size_t Written = std::fwrite(Data.data(), 1, Data.size(), File);
  bool Ok = Written == Data.size();
  Ok &= std::fclose(File) == 0;
  return Ok;
}
