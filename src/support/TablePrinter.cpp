//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

using namespace metaopt;

void TablePrinter::addHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

/// Returns true if the cell looks like a number (possibly a percentage or a
/// trailing multiplier like "1.07x"), in which case it is right-aligned.
static bool looksNumeric(const std::string &Cell) {
  std::string_view Trimmed = trim(Cell);
  if (Trimmed.empty())
    return false;
  size_t End = Trimmed.size();
  if (Trimmed.back() == '%' || Trimmed.back() == 'x')
    --End;
  if (End == 0)
    return false;
  bool SawDigit = false;
  for (size_t I = 0; I < End; ++I) {
    char C = Trimmed[I];
    if (std::isdigit(static_cast<unsigned char>(C))) {
      SawDigit = true;
      continue;
    }
    if (C == '+' || C == '-' || C == '.' || C == ',')
      continue;
    return false;
  }
  return SawDigit;
}

std::string TablePrinter::render() const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Widths(NumCols, 0);
  auto Widen = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  if (!Header.empty())
    Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < NumCols; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : "";
      size_t Pad = Widths[I] - Cell.size();
      if (I)
        Line += "  ";
      if (looksNumeric(Cell)) {
        Line.append(Pad, ' ');
        Line += Cell;
      } else {
        Line += Cell;
        Line.append(Pad, ' ');
      }
    }
    // Trim trailing padding.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line;
  };

  std::string Out;
  if (!Title.empty()) {
    Out += Title;
    Out += '\n';
    Out.append(Title.size(), '=');
    Out += '\n';
  }
  if (!Header.empty()) {
    std::string HeaderLine = RenderRow(Header);
    Out += HeaderLine;
    Out += '\n';
    Out.append(HeaderLine.size(), '-');
    Out += '\n';
  }
  for (const auto &Row : Rows) {
    Out += RenderRow(Row);
    Out += '\n';
  }
  return Out;
}

void TablePrinter::print() const {
  std::string Rendered = render();
  std::fwrite(Rendered.data(), 1, Rendered.size(), stdout);
  std::fflush(stdout);
}
