//===- transform/MemoryOpt.cpp --------------------------------------------===//

#include "transform/MemoryOpt.h"

#include "analysis/symbolic/Disjointness.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>

using namespace metaopt;

namespace {

/// Exact-address key for forwarding and redundancy: two direct references
/// with equal keys touch the same bytes every iteration.
struct AddressKey {
  int32_t Sym;
  int64_t Stride;
  int64_t Offset;
  int32_t Size;

  auto operator<=>(const AddressKey &) const = default;
};

AddressKey keyOf(const MemRef &Ref) {
  return {Ref.BaseSym, Ref.Stride, Ref.Offset, Ref.SizeBytes};
}

/// True when two same-iteration references may touch common bytes.
bool mayOverlap(const MemRef &A, const MemRef &B) {
  if (A.BaseSym != B.BaseSym)
    return false;
  if (A.Indirect || B.Indirect)
    return true;
  if (A.Stride != B.Stride)
    return true; // Conservative: different walks can cross.
  int64_t Delta = std::llabs(A.Offset - B.Offset);
  return Delta < std::max(A.SizeBytes, B.SizeBytes);
}

/// Availability tables for one forward walk. Entries remember the access
/// summary of the instruction that produced them (null without a symbolic
/// analysis) so a later store can be proven disjoint instead of killing.
class AvailabilityState {
public:
  AvailabilityState(const SymbolicAnalysis *SA, MemoryOptStats &Stats)
      : SA(SA), Stats(Stats) {}

  /// Kills every entry a write to \p Store could touch, then (for a clean
  /// direct store) records the stored value.
  void onStore(const Instruction &Store, const AccessSummary *Summary) {
    // A store proven never to execute writes nothing: it invalidates no
    // availability entry and provides no value.
    if (Summary && Summary->Guard == PredFact::AlwaysFalse) {
      ++Stats.DeadStoresIgnored;
      return;
    }
    killOverlapping(Store.Mem, Summary);
    bool Unpredicated = Store.Pred == NoReg;
    if (!Unpredicated && Summary &&
        Summary->Guard == PredFact::AlwaysTrue) {
      Unpredicated = true;
      ++Stats.PromotedGuards;
    }
    // A narrow store truncates the register on the way to memory (int64
    // to int32, double to float), so the stored register does not hold
    // the bytes a later load of the slot would produce; only full-width
    // stores may forward. Found by differential fuzzing
    // (tests/fuzz_seeds/). Load-to-load redundancy stays width-agnostic:
    // two loads of one slot narrow identically.
    if (!Store.Mem.Indirect && Unpredicated && Store.Mem.SizeBytes == 8)
      StoredValue[keyOf(Store.Mem)] = {Store.Operands[0], Store.Mem,
                                       Summary};
  }

  void onCall() {
    StoredValue.clear();
    LoadedValue.clear();
  }

  /// Returns the register already holding the bytes \p Ref would load, or
  /// NoReg.
  RegId lookup(const MemRef &Ref, bool &FromStore) const {
    auto Store = StoredValue.find(keyOf(Ref));
    if (Store != StoredValue.end()) {
      FromStore = true;
      return Store->second.Value;
    }
    auto Load = LoadedValue.find(keyOf(Ref));
    if (Load != LoadedValue.end()) {
      FromStore = false;
      return Load->second.Value;
    }
    return NoReg;
  }

  void recordLoad(const Instruction &Load, const AccessSummary *Summary) {
    LoadedValue[keyOf(Load.Mem)] = {Load.Dest, Load.Mem, Summary};
  }

private:
  struct Entry {
    RegId Value = NoReg;
    MemRef Ref;
    const AccessSummary *Summary = nullptr;
  };

  void killOverlapping(const MemRef &Ref,
                       const AccessSummary *StoreSummary) {
    auto Sweep = [&](std::map<AddressKey, Entry> &Table) {
      for (auto It = Table.begin(); It != Table.end();) {
        bool Kill = mayOverlap(It->second.Ref, Ref);
        // Same-iteration disjointness proof: the write cannot touch the
        // bytes this entry holds, so the entry survives.
        if (Kill && SA && StoreSummary && It->second.Summary &&
            provesDisjoint(*SA, *It->second.Summary, *StoreSummary, 0)) {
          Kill = false;
          ++Stats.DisjointnessWins;
        }
        if (Kill)
          It = Table.erase(It);
        else
          ++It;
      }
    };
    Sweep(StoredValue);
    Sweep(LoadedValue);
  }

  const SymbolicAnalysis *SA;
  MemoryOptStats &Stats;
  std::map<AddressKey, Entry> StoredValue;
  std::map<AddressKey, Entry> LoadedValue;
};

} // namespace

MemoryOptStats metaopt::optimizeMemory(Loop &L,
                                       const SymbolicAnalysis *Symbolic) {
  MemoryOptStats Stats;

  //===------------------------------------------------------------------===
  // Pass 1: store-to-load forwarding and redundant load elimination.
  //===------------------------------------------------------------------===
  AvailabilityState Avail(Symbolic, Stats);
  std::map<RegId, RegId> Replacement;
  auto Resolve = [&](RegId Reg) {
    while (true) {
      auto It = Replacement.find(Reg);
      if (It == Replacement.end())
        return Reg;
      Reg = It->second;
    }
  };

  // Summaries ride along with the surviving instructions so pass 2 can
  // consult the prover by post-rewrite body index.
  std::vector<Instruction> NewBody;
  std::vector<const AccessSummary *> NewSummaries;
  NewBody.reserve(L.body().size());
  NewSummaries.reserve(L.body().size());
  for (uint32_t Index = 0; Index < L.body().size(); ++Index) {
    Instruction Instr = L.body()[Index];
    const AccessSummary *Summary =
        Symbolic ? Symbolic->accessAt(Index) : nullptr;
    // Rewrite operands through the replacement map first. (Replacements
    // preserve values, so the pre-pass summaries remain accurate.)
    for (RegId &Operand : Instr.Operands)
      Operand = Resolve(Operand);
    if (Instr.Pred != NoReg)
      Instr.Pred = Resolve(Instr.Pred);

    if (Instr.isCall()) {
      Avail.onCall();
      NewBody.push_back(std::move(Instr));
      NewSummaries.push_back(Summary);
      continue;
    }
    if (Instr.isStore()) {
      Avail.onStore(Instr, Summary);
      NewBody.push_back(std::move(Instr));
      NewSummaries.push_back(Summary);
      continue;
    }
    bool Predicated = Instr.Pred != NoReg;
    if (Predicated && Summary && Summary->Guard == PredFact::AlwaysTrue) {
      // The guard is proven true on every iteration: the load always
      // executes and its destination always holds the loaded bytes.
      Predicated = false;
      ++Stats.PromotedGuards;
    }
    if (!Instr.isLoad() || Instr.Mem.Indirect || Predicated) {
      NewBody.push_back(std::move(Instr));
      NewSummaries.push_back(Summary);
      continue;
    }

    bool FromStore = false;
    RegId Known = Avail.lookup(Instr.Mem, FromStore);
    if (Known != NoReg && L.regClass(Known) == L.regClass(Instr.Dest)) {
      // The bytes are already in a register: drop the load.
      Replacement[Instr.Dest] = Known;
      if (FromStore)
        ++Stats.ForwardedLoads;
      else
        ++Stats.RedundantLoads;
      continue;
    }
    Avail.recordLoad(Instr, Summary);
    NewBody.push_back(std::move(Instr));
    NewSummaries.push_back(Summary);
  }
  L.body() = std::move(NewBody);
  for (PhiNode &Phi : L.phis())
    Phi.Recur = Resolve(Phi.Recur);

  //===------------------------------------------------------------------===
  // Pass 2: pair adjacent 8-byte loads into one wide access.
  //===------------------------------------------------------------------===
  // Candidates grouped by (sym, stride); each entry is (offset, index).
  std::map<std::pair<int32_t, int64_t>,
           std::vector<std::pair<int64_t, uint32_t>>>
      Groups;
  for (uint32_t Index = 0; Index < L.body().size(); ++Index) {
    const Instruction &Instr = L.body()[Index];
    bool Predicated = Instr.Pred != NoReg;
    if (Predicated && NewSummaries[Index] &&
        NewSummaries[Index]->Guard == PredFact::AlwaysTrue) {
      Predicated = false;
      ++Stats.PromotedGuards;
    }
    if (!Instr.isLoad() || Instr.Mem.Indirect || Predicated ||
        Instr.Paired || Instr.Mem.SizeBytes != 8 || Instr.Mem.Stride == 0)
      continue;
    Groups[{Instr.Mem.BaseSym, Instr.Mem.Stride}].emplace_back(
        Instr.Mem.Offset, Index);
  }

  // A pair is only legal when no store to the same symbol sits between
  // the two loads (the wide access would read stale bytes) — unless the
  // prover certifies the store touches neither load's bytes on any
  // iteration.
  auto StoreBetween = [&](int32_t Sym, uint32_t Lo, uint32_t Hi) {
    for (uint32_t Index = Lo + 1; Index < Hi; ++Index) {
      const Instruction &Instr = L.body()[Index];
      if (Instr.isCall())
        return true;
      if (!Instr.isStore() ||
          (Instr.Mem.BaseSym != Sym && !Instr.Mem.Indirect))
        continue;
      if (Symbolic && NewSummaries[Index] && NewSummaries[Lo] &&
          NewSummaries[Hi] &&
          provesDisjoint(*Symbolic, *NewSummaries[Lo],
                         *NewSummaries[Index], 0) &&
          provesDisjoint(*Symbolic, *NewSummaries[Hi],
                         *NewSummaries[Index], 0)) {
        ++Stats.DisjointnessWins;
        continue;
      }
      return true;
    }
    return false;
  };

  for (auto &[Key, Loads] : Groups) {
    std::sort(Loads.begin(), Loads.end());
    for (size_t I = 0; I + 1 < Loads.size(); ++I) {
      auto [OffsetA, IndexA] = Loads[I];
      auto [OffsetB, IndexB] = Loads[I + 1];
      if (OffsetB - OffsetA != 8)
        continue;
      if (L.body()[IndexA].Paired || L.body()[IndexB].Paired)
        continue;
      uint32_t Lo = std::min(IndexA, IndexB);
      uint32_t Hi = std::max(IndexA, IndexB);
      if (StoreBetween(Key.first, Lo, Hi))
        continue;
      // The later body position rides along with the earlier one.
      L.body()[Hi].Paired = true;
      ++Stats.PairedLoads;
      ++I; // Neither half may join another pair.
    }
  }
  return Stats;
}
