//===- transform/Unroller.cpp ---------------------------------------------===//

#include "transform/Unroller.h"

#include <atomic>
#include <cassert>
#include <vector>

using namespace metaopt;

namespace {
std::atomic<UnrollAuditHook> AuditHook{nullptr};
} // namespace

UnrollAuditHook metaopt::setUnrollAuditHook(UnrollAuditHook Hook) {
  return AuditHook.exchange(Hook, std::memory_order_acq_rel);
}

UnrolledTripInfo metaopt::unrolledTripInfo(int64_t TripCount,
                                           unsigned Factor) {
  assert(Factor >= 1 && "unroll factor must be at least one");
  UnrolledTripInfo Info;
  if (TripCount <= 0)
    return Info;
  Info.MainIterations = TripCount / Factor;
  Info.EpilogueIterations = TripCount % Factor;
  return Info;
}

bool metaopt::isSplittableReduction(const Loop &L, const PhiNode &Phi) {
  // Reassociation is only sound when the running value is not observed:
  // the phi must feed exactly the accumulating operation and the new value
  // must feed only the phi (not, say, a store of the running total).
  unsigned DestUses = 0, RecurUses = 0;
  for (const Instruction &Instr : L.body()) {
    for (RegId Operand : Instr.Operands) {
      DestUses += Operand == Phi.Dest;
      RecurUses += Operand == Phi.Recur;
    }
    if (Instr.Pred == Phi.Dest)
      ++DestUses;
  }
  if (DestUses != 1 || RecurUses != 0)
    return false;
  // A sibling phi whose recurrence reads this phi's running value (either
  // the carried register or the freshly accumulated one) observes every
  // partial sum, so splitting would hand it one lane's partial instead.
  // Found by differential fuzzing (tests/fuzz_seeds/).
  for (const PhiNode &Other : L.phis()) {
    if (Other.Dest == Phi.Dest)
      continue;
    if (Other.Recur == Phi.Dest || Other.Recur == Phi.Recur)
      return false;
  }
  for (const Instruction &Instr : L.body()) {
    if (Instr.Dest != Phi.Recur)
      continue;
    switch (Instr.Op) {
    case Opcode::FAdd:
    case Opcode::FMul:
    case Opcode::IAdd:
    case Opcode::IMul:
      return Instr.Operands.size() == 2 &&
             (Instr.Operands[0] == Phi.Dest ||
              Instr.Operands[1] == Phi.Dest);
    case Opcode::FMA:
      return Instr.Operands.size() == 3 && Instr.Operands[2] == Phi.Dest;
    default:
      return false;
    }
  }
  return false;
}

namespace {

/// Carries the register renaming state across body copies. All tables are
/// flat arrays indexed by source RegId (x copy where needed) with NoReg as
/// the "absent" sentinel — unrollLoop runs 8x per simulated loop on the
/// labeling hot path, and the node-keyed maps this class used to hold
/// dominated its profile. The tables are lookup-only (never iterated), so
/// the representation cannot change the output.
class UnrollContext {
public:
  UnrollContext(const Loop &Source, Loop &Target, unsigned Factor)
      : Source(Source), Target(Target),
        LiveInMap(Source.numRegs(), NoReg),
        PhiDestMap(Source.numRegs(), NoReg),
        SplitPhiDest(static_cast<size_t>(Source.numRegs()) * Factor, NoReg),
        IsPhiDest(Source.numRegs(), 0), RecurOf(Source.numRegs(), NoReg),
        DefMap(static_cast<size_t>(Source.numRegs()) * Factor, NoReg),
        NumRegs(Source.numRegs()), Factor(Factor) {
    for (const PhiNode &Phi : Source.phis()) {
      IsPhiDest[Phi.Dest] = 1;
      RecurOf[Phi.Dest] = Phi.Recur;
    }
  }

  /// Declares that source phi \p Dest was split: copy k reads its own
  /// per-copy phi destination.
  void setSplitPhiDest(RegId SourceDest, unsigned Copy, RegId TargetDest) {
    SplitPhiDest[static_cast<size_t>(SourceDest) * Factor + Copy] =
        TargetDest;
  }

  /// Maps a live-in register of the source into the target, creating it on
  /// first use.
  RegId mapLiveIn(RegId Reg) {
    if (LiveInMap[Reg] != NoReg)
      return LiveInMap[Reg];
    RegId NewReg = Target.addReg(Source.regClass(Reg), Source.regName(Reg));
    LiveInMap[Reg] = NewReg;
    return NewReg;
  }

  /// Registers the target-side phi destination for source phi \p Dest.
  void setPhiDest(RegId SourceDest, RegId TargetDest) {
    PhiDestMap[SourceDest] = TargetDest;
  }

  /// Records that copy \p Copy renamed defined register \p Reg to \p New.
  void setDef(unsigned Copy, RegId Reg, RegId New) {
    DefMap[static_cast<size_t>(Copy) * NumRegs + Reg] = New;
  }

  /// Resolves the target register holding the value of source register
  /// \p Reg as seen by body copy \p Copy.
  RegId resolve(RegId Reg, unsigned Copy) {
    RegId Split = SplitPhiDest[static_cast<size_t>(Reg) * Factor + Copy];
    if (Split != NoReg)
      return Split;
    if (IsPhiDest[Reg]) {
      // A phi destination: copy 0 reads the (single) target phi; copy k>0
      // reads the value the previous copy computed for the recurrence.
      if (Copy == 0) {
        assert(PhiDestMap[Reg] != NoReg && "phi not pre-created");
        return PhiDestMap[Reg];
      }
      return resolve(RecurOf[Reg], Copy - 1);
    }
    RegId Def = DefMap[static_cast<size_t>(Copy) * NumRegs + Reg];
    if (Def != NoReg)
      return Def;
    assert(Source.isLiveIn(Reg) &&
           "operand neither live-in, phi, nor defined in an earlier copy");
    return mapLiveIn(Reg);
  }

private:
  const Loop &Source;
  Loop &Target;
  std::vector<RegId> LiveInMap;
  std::vector<RegId> PhiDestMap;
  std::vector<RegId> SplitPhiDest; ///< [SourceDest * Factor + Copy].
  std::vector<char> IsPhiDest;
  std::vector<RegId> RecurOf;
  std::vector<RegId> DefMap; ///< [Copy * NumRegs + Reg].
  unsigned NumRegs;
  unsigned Factor;
};

} // namespace

Loop metaopt::unrollLoop(const Loop &L, unsigned Factor) {
  assert(Factor >= 1 && Factor <= MaxUnrollFactor &&
         "unroll factor out of range");

  int64_t NewTrip = L.hasKnownTripCount()
                        ? L.tripCount() / static_cast<int64_t>(Factor)
                        : Loop::UnknownTripCount;
  Loop Result(L.name() + ".u" + std::to_string(Factor), L.language(),
              L.nestLevel(), NewTrip);
  Result.setRuntimeTripCount(
      unrolledTripInfo(L.runtimeTripCount(), Factor).MainIterations);

  UnrollContext Ctx(L, Result, Factor);

  // Pre-create the phis; the recurrences are wired up after the copies
  // are emitted. Associative accumulations are split into one independent
  // accumulator per copy (reassociation) — this is how unrolling breaks a
  // reduction's recurrence and exposes ILP; the extra accumulators are
  // combined once after the loop, which the epilogue accounting absorbs.
  struct PendingPhi {
    RegId SourceRecur;
    size_t TargetIndex;
    unsigned Copy; ///< Which copy feeds this phi (Factor-1 when unsplit).
  };
  std::vector<PendingPhi> Pending;
  for (const PhiNode &Phi : L.phis()) {
    if (Factor > 1 && isSplittableReduction(L, Phi)) {
      for (unsigned Copy = 0; Copy < Factor; ++Copy) {
        PhiNode NewPhi;
        NewPhi.SrcLine = Phi.SrcLine;
        std::string Suffix = "." + std::to_string(Copy);
        NewPhi.Dest = Result.addReg(L.regClass(Phi.Dest),
                                    L.regName(Phi.Dest) + Suffix);
        // Copy 0 continues from the original initial value; the other
        // accumulators start from the operation's identity element,
        // modeled as fresh live-ins.
        NewPhi.Init =
            Copy == 0 ? Ctx.mapLiveIn(Phi.Init)
                      : Result.addReg(L.regClass(Phi.Init),
                                      L.regName(Phi.Init) + Suffix);
        NewPhi.Recur = NoReg;
        Ctx.setSplitPhiDest(Phi.Dest, Copy, NewPhi.Dest);
        Result.addPhi(NewPhi);
        Pending.push_back({Phi.Recur, Result.phis().size() - 1, Copy});
      }
      continue;
    }
    PhiNode NewPhi;
    NewPhi.SrcLine = Phi.SrcLine;
    NewPhi.Dest = Result.addReg(L.regClass(Phi.Dest), L.regName(Phi.Dest));
    NewPhi.Init = Ctx.mapLiveIn(Phi.Init);
    NewPhi.Recur = NoReg;
    Ctx.setPhiDest(Phi.Dest, NewPhi.Dest);
    Result.addPhi(NewPhi);
    Pending.push_back({Phi.Recur, Result.phis().size() - 1, Factor - 1});
  }

  for (unsigned Copy = 0; Copy < Factor; ++Copy) {
    for (const Instruction &Instr : L.body()) {
      if (Instr.isLoopControl())
        continue; // A single fresh tail is appended below.
      Instruction Clone = Instr;
      Clone.Operands.clear();
      for (RegId Operand : Instr.Operands)
        Clone.Operands.push_back(Ctx.resolve(Operand, Copy));
      if (Instr.Pred != NoReg)
        Clone.Pred = Ctx.resolve(Instr.Pred, Copy);
      if (Instr.hasDest()) {
        std::string NewName = L.regName(Instr.Dest);
        if (Factor > 1)
          NewName += "." + std::to_string(Copy);
        Clone.Dest = Result.addReg(L.regClass(Instr.Dest), NewName);
        Ctx.setDef(Copy, Instr.Dest, Clone.Dest);
      }
      if (Instr.isMemory()) {
        Clone.Mem.Offset =
            Instr.Mem.Offset +
            Instr.Mem.Stride * static_cast<int64_t>(Copy);
        Clone.Mem.Stride = Instr.Mem.Stride * static_cast<int64_t>(Factor);
      }
      Result.addInstruction(std::move(Clone));
    }
  }

  // Wire the phi recurrences: split accumulators recur on their own
  // copy's value, unsplit phis on the last copy's.
  for (const PendingPhi &P : Pending)
    Result.phis()[P.TargetIndex].Recur =
        Ctx.resolve(P.SourceRecur, P.Copy);

  // Fresh canonical loop-control tail.
  RegId Iv = Result.addReg(RegClass::Int, "iv");
  Instruction Inc;
  Inc.Op = Opcode::IvAdd;
  Inc.Operands.push_back(Iv);
  Inc.Dest = Result.addReg(RegClass::Int, "iv.next");
  Result.addInstruction(Inc);

  Instruction Cmp;
  Cmp.Op = Opcode::IvCmp;
  Cmp.Operands.push_back(Result.body().back().Dest);
  Cmp.Dest = Result.addReg(RegClass::Pred, "iv.cond");
  Result.addInstruction(Cmp);

  Instruction Br;
  Br.Op = Opcode::BackBr;
  Br.Operands.push_back(Result.body().back().Dest);
  Result.addInstruction(Br);

  if (UnrollAuditHook Hook = AuditHook.load(std::memory_order_acquire))
    Hook(L, Result, Factor);

  return Result;
}
