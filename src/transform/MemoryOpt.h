//===- transform/MemoryOpt.h - Post-unroll memory optimization --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory cleanups Section 3 credits unrolling with enabling:
///
///  - "If the loop accesses the same memory locations on consecutive
///    iterations, many of these references can be eliminated altogether
///    with scalar replacement" - store-to-load forwarding and redundant
///    load elimination across the unrolled copies;
///  - "Unrolling is key to exposing adjacent memory references so that
///    they can be merged into a single wide reference" - pairing adjacent
///    8-byte loads into one two-register access (Itanium's ldfpd), modeled
///    by marking the second load of a pair as riding along for free.
///
/// The simulator runs this pass right after unrolling, so these benefits
/// (and their interaction with the unroll factor) are part of every label.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_TRANSFORM_MEMORYOPT_H
#define METAOPT_TRANSFORM_MEMORYOPT_H

#include "ir/Loop.h"

namespace metaopt {

/// What the pass did (diagnostics/tests).
struct MemoryOptStats {
  unsigned ForwardedLoads = 0; ///< Loads replaced by a stored value.
  unsigned RedundantLoads = 0; ///< Loads replaced by an earlier load.
  unsigned PairedLoads = 0;    ///< Loads merged into a wide access.
};

/// Optimizes \p L in place; the result remains well-formed. Only
/// unpredicated direct references participate; indirect references and
/// anything across a call are left alone.
MemoryOptStats optimizeMemory(Loop &L);

} // namespace metaopt

#endif // METAOPT_TRANSFORM_MEMORYOPT_H
