//===- transform/MemoryOpt.h - Post-unroll memory optimization --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory cleanups Section 3 credits unrolling with enabling:
///
///  - "If the loop accesses the same memory locations on consecutive
///    iterations, many of these references can be eliminated altogether
///    with scalar replacement" - store-to-load forwarding and redundant
///    load elimination across the unrolled copies;
///  - "Unrolling is key to exposing adjacent memory references so that
///    they can be merged into a single wide reference" - pairing adjacent
///    8-byte loads into one two-register access (Itanium's ldfpd), modeled
///    by marking the second load of a pair as riding along for free.
///
/// The simulator runs this pass right after unrolling, so these benefits
/// (and their interaction with the unroll factor) are part of every label.
///
/// When a SymbolicAnalysis of the loop is supplied, the pass upgrades its
/// conservative bail-outs with the analysis's proofs (every proof is also
/// replayed against the reference interpreter by the static-claims and
/// memory-opt fuzz oracles):
///  - a memory op whose guard is proven always-true participates as if it
///    were unpredicated;
///  - a store proven always-false never executes and invalidates nothing;
///  - a store proven disjoint (same iteration) from an available load or
///    stored value no longer kills that availability entry, and a store
///    sitting between two pairable loads no longer blocks the pair.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_TRANSFORM_MEMORYOPT_H
#define METAOPT_TRANSFORM_MEMORYOPT_H

#include "ir/Loop.h"

namespace metaopt {

class SymbolicAnalysis;

/// What the pass did (diagnostics/tests).
struct MemoryOptStats {
  unsigned ForwardedLoads = 0; ///< Loads replaced by a stored value.
  unsigned RedundantLoads = 0; ///< Loads replaced by an earlier load.
  unsigned PairedLoads = 0;    ///< Loads merged into a wide access.
  // Symbolic refinements; all zero when no analysis was supplied.
  unsigned PromotedGuards = 0;    ///< Ops handled via always-true proofs.
  unsigned DisjointnessWins = 0;  ///< Bail-outs skipped via disjointness.
  unsigned DeadStoresIgnored = 0; ///< Always-false stores that killed
                                  ///< nothing.
};

/// Optimizes \p L in place; the result remains well-formed. Only
/// unpredicated direct references participate; indirect references and
/// anything across a call are left alone. \p Symbolic, when non-null,
/// must be an analysis of \p L in its current form; its proofs relax the
/// conservative checks as described above.
MemoryOptStats optimizeMemory(Loop &L,
                              const SymbolicAnalysis *Symbolic = nullptr);

} // namespace metaopt

#endif // METAOPT_TRANSFORM_MEMORYOPT_H
