//===- transform/Unroller.h - Loop unrolling --------------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop unroller. Unrolling by factor U replicates the body U times
/// with full register renaming, chains loop-carried phi values through the
/// copies, rewrites the symbolic memory addresses (stride *= U, copy k
/// gets offset += stride_orig * k), replicates early exits (the compiler
/// cannot prove they are not taken), and keeps a single loop-control tail
/// — which is exactly the branch-overhead amortization unrolling buys.
///
/// The unrolled loop executes floor(N/U) iterations of the new body; the
/// remaining N mod U original iterations form the epilogue, which the
/// measurement layer accounts for by running the original body.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_TRANSFORM_UNROLLER_H
#define METAOPT_TRANSFORM_UNROLLER_H

#include "ir/Loop.h"

namespace metaopt {

/// True when \p Phi is a plain associative accumulation (acc = acc + x,
/// acc = acc * x, or acc = fma(a, b, acc)) whose running value is not
/// otherwise observed. The unroller splits such phis into one independent
/// accumulator per copy (reassociation), which is how unrolling breaks a
/// reduction's recurrence; heuristics consult the same predicate.
bool isSplittableReduction(const Loop &L, const PhiNode &Phi);

/// Returns \p L unrolled by \p Factor (1 returns a plain copy). The input
/// must be well-formed (verifyLoop) and end in the canonical loop-control
/// tail; the result is well-formed again.
Loop unrollLoop(const Loop &L, unsigned Factor);

/// Audit hook type: called after every unrollLoop with the original loop,
/// the unrolled result, and the factor. The hook may throw to reject the
/// transform; unrollLoop may run on worker threads, so hooks must be
/// thread-safe (pure functions of their arguments are).
using UnrollAuditHook = void (*)(const Loop &Original, const Loop &Unrolled,
                                 unsigned Factor);

/// Installs \p Hook (nullptr disables auditing) and returns the previously
/// installed hook, so scoped installers can restore it. The lint layer's
/// UnrollAuditGuard (analysis/lint/UnrollInvariants.h) is the standard
/// client, wiring the post-transform invariant checker into labeling and
/// evaluation sweeps.
UnrollAuditHook setUnrollAuditHook(UnrollAuditHook Hook);

/// Returns how many iterations the unrolled body executes and how many
/// original iterations remain for the epilogue, given a runtime trip count.
struct UnrolledTripInfo {
  int64_t MainIterations = 0;     ///< Unrolled-body executions.
  int64_t EpilogueIterations = 0; ///< Leftover original iterations.
};
UnrolledTripInfo unrolledTripInfo(int64_t TripCount, unsigned Factor);

} // namespace metaopt

#endif // METAOPT_TRANSFORM_UNROLLER_H
