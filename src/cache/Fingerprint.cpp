//===- cache/Fingerprint.cpp ----------------------------------------------===//

#include "cache/Fingerprint.h"

#include <cstring>

using namespace metaopt;

namespace {

/// The splitmix64 finalizer: a full-avalanche 64-bit permutation.
uint64_t mix(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

} // namespace

void FingerprintHasher::word(uint64_t W) {
  // Two lanes absorb each word through different permutation chains so a
  // collision must defeat both simultaneously (~2^-128 by chance).
  Lo = mix(Lo ^ W);
  Hi = mix(Hi + (W ^ 0x94d049bb133111ebULL));
}

void FingerprintHasher::bytes(const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  TotalBytes += Size;
  for (size_t I = 0; I < Size; ++I) {
    Pending |= static_cast<uint64_t>(Bytes[I]) << (8 * PendingBytes);
    if (++PendingBytes == 8) {
      word(Pending);
      Pending = 0;
      PendingBytes = 0;
    }
  }
}

void FingerprintHasher::str(std::string_view Str) {
  u64(Str.size());
  bytes(Str.data(), Str.size());
}

void FingerprintHasher::u64(uint64_t Value) {
  unsigned char Packed[8];
  for (int I = 0; I < 8; ++I)
    Packed[I] = static_cast<unsigned char>(Value >> (8 * I));
  bytes(Packed, sizeof(Packed));
}

void FingerprintHasher::i64(int64_t Value) {
  u64(static_cast<uint64_t>(Value));
}

void FingerprintHasher::f64(double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  std::memcpy(&Bits, &Value, sizeof(Bits));
  u64(Bits);
}

void FingerprintHasher::boolean(bool Value) { u64(Value ? 1 : 0); }

Fingerprint FingerprintHasher::digest() const {
  // Flush the partial word and the total length without disturbing the
  // streaming state (digest must be callable repeatedly).
  uint64_t DLo = Lo, DHi = Hi;
  if (PendingBytes > 0) {
    DLo = mix(DLo ^ Pending);
    DHi = mix(DHi + (Pending ^ 0x94d049bb133111ebULL));
  }
  DLo = mix(DLo ^ TotalBytes);
  DHi = mix(DHi + (TotalBytes ^ 0x94d049bb133111ebULL));
  return {DLo, DHi};
}
