//===- cache/SimCache.cpp -------------------------------------------------===//

#include "cache/SimCache.h"

#include "ir/Printer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

using namespace metaopt;

//===----------------------------------------------------------------------===//
// Key derivation
//===----------------------------------------------------------------------===//

SimKey metaopt::simCacheKey(const Loop &L, unsigned Factor,
                            const MachineModel &Machine,
                            const SimContext &Ctx, bool EnableSwp) {
  return simCacheKey(L, printLoop(L), Factor, Machine, Ctx, EnableSwp);
}

SimKey metaopt::simCacheKey(const Loop &L, const std::string &PrintedLoop,
                            unsigned Factor, const MachineModel &Machine,
                            const SimContext &Ctx, bool EnableSwp) {
  FingerprintHasher H;
  // Domain tag: a key-derivation change must never collide with the old
  // scheme inside one persistent file generation. v2: exit probabilities
  // are additionally hashed as exact IEEE-754 bits — the printed text
  // truncates them to six significant digits, which could alias two loops
  // whose exit-penalty terms differ below that precision.
  H.str("metaopt-simcache-key-v2");

  // The loop, as its canonical textual print — the exact representation
  // the parser round-trips, covering name, language, nest level, trip and
  // runtime-trip counts, phis, predication, memory shapes, exit
  // probabilities, and pairing. Everything simulateLoop reads from the
  // Loop is in this string (with the exit probabilities re-hashed exactly
  // below). Hot callers print once per loop and reuse the text across the
  // eight factor keys.
  H.str(PrintedLoop);
  for (const Instruction &Instr : L.body())
    if (Instr.Op == Opcode::ExitIf)
      H.f64(Instr.TakenProb);

  H.u64(Factor);
  H.boolean(EnableSwp);

  // Every MachineConfig field: the schedulers and the cost model read all
  // of them, so all of them are fingerprint inputs.
  const MachineConfig &C = Machine.config();
  H.str(C.Name);
  H.i64(C.IssueWidth);
  H.u64(C.UnitCount.size());
  for (int Units : C.UnitCount)
    H.i64(Units);
  H.i64(C.IntRegs);
  H.i64(C.FloatRegs);
  H.i64(C.PredRegs);
  H.u64(C.Latency.size());
  for (int Latency : C.Latency)
    H.i64(Latency);
  H.i64(C.BundleBytes);
  H.i64(C.SlotsPerBundle);
  H.i64(C.L1ICapacityBytes);
  H.i64(C.L1ILineBytes);
  H.i64(C.L1IMissCycles);
  H.i64(C.MispredictPenalty);
  H.i64(C.SpillCycles);

  // Every SimContext field, likewise.
  H.i64(Ctx.EffectiveIcacheBytes);
  H.f64(Ctx.DcacheMissRate);
  H.i64(Ctx.DcacheMissCycles);
  H.f64(Ctx.DcacheVisibleFraction);
  H.i64(Ctx.IntRegBudget);
  H.i64(Ctx.FpRegBudget);

  return H.digest();
}

//===----------------------------------------------------------------------===//
// In-memory tier
//===----------------------------------------------------------------------===//

namespace {

unsigned roundUpPow2(unsigned Value) {
  unsigned Pow = 1;
  while (Pow < Value && Pow < (1u << 16))
    Pow <<= 1;
  return Pow;
}

} // namespace

SimCache::SimCache(SimCacheConfig ConfigIn) : Config(std::move(ConfigIn)) {
  unsigned Count = roundUpPow2(std::max(1u, Config.Shards));
  ShardMask = Count - 1;
  Shards.reserve(Count);
  for (unsigned I = 0; I < Count; ++I)
    Shards.push_back(std::make_unique<Shard>());
  if (Config.Enabled && !Config.PersistentDir.empty())
    loadPersistent();
}

SimCache::~SimCache() = default;

SimCache::Shard &SimCache::shardFor(const SimKey &Key) {
  return *Shards[static_cast<unsigned>(Key.Lo) & ShardMask];
}

std::optional<SimResult> SimCache::lookup(const SimKey &Key) {
  if (!Config.Enabled)
    return std::nullopt;
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void SimCache::insert(const SimKey &Key, const SimResult &Result) {
  if (!Config.Enabled)
    return;
  Shard &S = shardFor(Key);
  bool Fresh;
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Fresh = S.Map.emplace(Key, Result).second;
  }
  if (Fresh) {
    Inserts.fetch_add(1, std::memory_order_relaxed);
    Dirty.store(true, std::memory_order_relaxed);
  }
}

SimResult SimCache::simulate(const Loop &L, unsigned Factor,
                             const MachineModel &Machine,
                             const SimContext &Ctx, bool EnableSwp) {
  if (!Config.Enabled)
    return simulateLoop(L, Factor, Machine, Ctx, EnableSwp);
  SimKey Key = simCacheKey(L, Factor, Machine, Ctx, EnableSwp);
  if (std::optional<SimResult> Found = lookup(Key))
    return *Found;
  // Concurrent misses on one key may both simulate; both produce the
  // identical result (the simulator is pure), so first-writer-wins below
  // cannot change any observable output.
  SimResult Result = simulateLoop(L, Factor, Machine, Ctx, EnableSwp);
  insert(Key, Result);
  return Result;
}

size_t SimCache::size() const {
  size_t Total = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Map.size();
  }
  return Total;
}

SimCacheStats SimCache::stats() const {
  SimCacheStats Stats;
  Stats.Hits = Hits.load(std::memory_order_relaxed);
  Stats.Misses = Misses.load(std::memory_order_relaxed);
  Stats.Inserts = Inserts.load(std::memory_order_relaxed);
  Stats.PersistentLoaded = PersistentLoaded.load(std::memory_order_relaxed);
  return Stats;
}

void SimCache::resetStats() {
  Hits.store(0, std::memory_order_relaxed);
  Misses.store(0, std::memory_order_relaxed);
  Inserts.store(0, std::memory_order_relaxed);
  PersistentLoaded.store(0, std::memory_order_relaxed);
}

void SimCache::clear() {
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Map.clear();
  }
}

//===----------------------------------------------------------------------===//
// Persistent tier
//===----------------------------------------------------------------------===//

namespace {

constexpr char SimCacheMagic[8] = {'M', 'O', 'S', 'I', 'M', 'C', 'C', 'H'};
constexpr size_t HeaderBytes = 8 + 3 * 8; // magic, version, count, checksum.
constexpr size_t RecordWords = 9;
constexpr size_t RecordBytes = RecordWords * 8;

void appendU64(std::string &Out, uint64_t Value) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>(Value >> (8 * I)));
}

uint64_t readU64(const unsigned char *Data) {
  uint64_t Value = 0;
  for (int I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(Data[I]) << (8 * I);
  return Value;
}

uint64_t doubleBits(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

double bitsDouble(uint64_t Bits) {
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

void appendRecord(std::string &Out, const SimKey &Key,
                  const SimResult &Result) {
  appendU64(Out, Key.Lo);
  appendU64(Out, Key.Hi);
  appendU64(Out, doubleBits(Result.Cycles));
  appendU64(Out, doubleBits(Result.CyclesPerIteration));
  appendU64(Out, Result.UsedSwp ? 1 : 0);
  appendU64(Out, static_cast<uint64_t>(static_cast<int64_t>(Result.II)));
  appendU64(Out, Result.SpillPairs);
  appendU64(Out, Result.ScheduleLength);
  appendU64(Out,
            static_cast<uint64_t>(static_cast<int64_t>(Result.CodeBytes)));
}

void parseRecord(const unsigned char *Data, SimKey &Key, SimResult &Result) {
  Key.Lo = readU64(Data + 0 * 8);
  Key.Hi = readU64(Data + 1 * 8);
  Result.Cycles = bitsDouble(readU64(Data + 2 * 8));
  Result.CyclesPerIteration = bitsDouble(readU64(Data + 3 * 8));
  Result.UsedSwp = readU64(Data + 4 * 8) != 0;
  Result.II = static_cast<int>(static_cast<int64_t>(readU64(Data + 5 * 8)));
  Result.SpillPairs = static_cast<unsigned>(readU64(Data + 6 * 8));
  Result.ScheduleLength = static_cast<uint32_t>(readU64(Data + 7 * 8));
  Result.CodeBytes =
      static_cast<int>(static_cast<int64_t>(readU64(Data + 8 * 8)));
}

uint64_t payloadChecksum(const unsigned char *Data, size_t Size) {
  FingerprintHasher H;
  H.str("metaopt-simcache-file-v1");
  H.bytes(Data, Size);
  return H.digest().Lo;
}

std::string readFileIfPresent(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return "";
  std::string Content;
  char Buffer[1 << 16];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Content.append(Buffer, Read);
  std::fclose(File);
  return Content;
}

/// Validates the container and returns the payload pointer/size, or an
/// error. Shared by inspectSimCacheFile and loadPersistent.
SimCacheFileInfo parseContainer(const std::string &Content,
                                const unsigned char **OutPayload) {
  SimCacheFileInfo Info;
  const unsigned char *Data =
      reinterpret_cast<const unsigned char *>(Content.data());
  if (Content.empty()) {
    Info.Error = "file missing or empty";
    return Info;
  }
  if (Content.size() < HeaderBytes) {
    Info.Error = "truncated header";
    return Info;
  }
  if (std::memcmp(Data, SimCacheMagic, sizeof(SimCacheMagic)) != 0) {
    Info.Error = "bad magic (not a metaopt simulation cache)";
    return Info;
  }
  Info.Version = readU64(Data + 8);
  if (Info.Version != SimCacheFileVersion) {
    Info.Error = "version mismatch (file v" + std::to_string(Info.Version) +
                 ", expected v" + std::to_string(SimCacheFileVersion) + ")";
    return Info;
  }
  Info.Entries = readU64(Data + 16);
  uint64_t Checksum = readU64(Data + 24);
  size_t PayloadSize = Content.size() - HeaderBytes;
  if (PayloadSize != Info.Entries * RecordBytes) {
    Info.Error = "payload size does not match the entry count";
    return Info;
  }
  if (payloadChecksum(Data + HeaderBytes, PayloadSize) != Checksum) {
    Info.Error = "checksum mismatch (corrupt payload)";
    return Info;
  }
  Info.Valid = true;
  if (OutPayload)
    *OutPayload = Data + HeaderBytes;
  return Info;
}

} // namespace

SimCacheFileInfo metaopt::inspectSimCacheFile(const std::string &Path) {
  return parseContainer(readFileIfPresent(Path), nullptr);
}

std::string SimCache::persistentPath() const {
  if (Config.PersistentDir.empty())
    return "";
  return Config.PersistentDir + "/sim_cache.bin";
}

bool SimCache::loadPersistent() {
  std::string Path = persistentPath();
  if (Path.empty())
    return false;
  std::string Content = readFileIfPresent(Path);
  const unsigned char *Payload = nullptr;
  SimCacheFileInfo Info = parseContainer(Content, &Payload);
  if (!Info.Valid)
    return false;
  for (uint64_t I = 0; I < Info.Entries; ++I) {
    SimKey Key;
    SimResult Result;
    parseRecord(Payload + I * RecordBytes, Key, Result);
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Map.emplace(Key, Result);
  }
  PersistentLoaded.fetch_add(Info.Entries, std::memory_order_relaxed);
  return true;
}

bool SimCache::savePersistent() {
  std::string Path = persistentPath();
  if (Path.empty() || !Config.Enabled)
    return false;
  std::lock_guard<std::mutex> SaveLock(SaveMutex);

  // Snapshot and sort so the file bytes are a pure function of the cache
  // contents, not of insertion order or thread interleaving.
  std::vector<std::pair<SimKey, SimResult>> Entries;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Entries.insert(Entries.end(), S->Map.begin(), S->Map.end());
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  std::string Payload;
  Payload.reserve(Entries.size() * RecordBytes);
  for (const auto &[Key, Result] : Entries)
    appendRecord(Payload, Key, Result);

  std::string Content;
  Content.reserve(HeaderBytes + Payload.size());
  Content.append(SimCacheMagic, sizeof(SimCacheMagic));
  appendU64(Content, SimCacheFileVersion);
  appendU64(Content, Entries.size());
  appendU64(Content,
            payloadChecksum(
                reinterpret_cast<const unsigned char *>(Payload.data()),
                Payload.size()));
  Content += Payload;

  std::error_code Ignored;
  std::filesystem::create_directories(Config.PersistentDir, Ignored);

  // Atomic publish: readers either see the old complete file or the new
  // complete file, never a torn write.
  std::string Tmp = Path + ".tmp";
  std::FILE *File = std::fopen(Tmp.c_str(), "wb");
  if (!File)
    return false;
  size_t Written = std::fwrite(Content.data(), 1, Content.size(), File);
  bool Ok = Written == Content.size();
  Ok &= std::fclose(File) == 0;
  if (!Ok) {
    std::filesystem::remove(Tmp, Ignored);
    return false;
  }
  std::filesystem::rename(Tmp, Path, Ignored);
  if (Ignored) {
    std::filesystem::remove(Tmp, Ignored);
    return false;
  }
  Dirty.store(false, std::memory_order_relaxed);
  return true;
}

bool SimCache::savePersistentIfDirty() {
  if (persistentPath().empty() || !Dirty.load(std::memory_order_relaxed))
    return false;
  return savePersistent();
}

//===----------------------------------------------------------------------===//
// Process-global cache
//===----------------------------------------------------------------------===//

namespace {

SimCacheConfig configFromEnvironment() {
  SimCacheConfig Config;
  if (const char *Env = std::getenv("METAOPT_SIM_CACHE")) {
    std::string Value(Env);
    if (Value == "0" || Value == "off" || Value == "OFF")
      Config.Enabled = false;
  }
  if (const char *Dir = std::getenv("METAOPT_CACHE_DIR"))
    Config.PersistentDir = Dir;
  return Config;
}

std::unique_ptr<SimCache> &globalSlot() {
  static std::unique_ptr<SimCache> Cache =
      std::make_unique<SimCache>(configFromEnvironment());
  return Cache;
}

} // namespace

SimCache &SimCache::global() { return *globalSlot(); }

void SimCache::configureGlobal(SimCacheConfig Config) {
  globalSlot() = std::make_unique<SimCache>(std::move(Config));
}

SimResult metaopt::cachedSimulateLoop(const Loop &L, unsigned Factor,
                                      const MachineModel &Machine,
                                      const SimContext &Ctx, bool EnableSwp,
                                      SimCache *Cache) {
  return (Cache ? *Cache : SimCache::global())
      .simulate(L, Factor, Machine, Ctx, EnableSwp);
}
