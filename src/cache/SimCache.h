//===- cache/SimCache.h - Content-addressed simulation cache ----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, sharded, content-addressed cache for simulateLoop()
/// results — the labeling/evaluation hot path. Every pipeline stage
/// re-"compiles" the same loops (collectLabels at all 8 factors, the
/// leave-one-benchmark-out speedup protocol per row and policy, the
/// fig/table benches once more per process); since simulateLoop is a pure
/// function of (loop, unroll factor, machine config, program context, SWP
/// flag), its results can be memoized under a fingerprint of exactly those
/// inputs.
///
/// Key = 128-bit fingerprint of the loop's canonical textual print
/// (ir/Printer.h, the same representation the parser round-trips) x unroll
/// factor x every MachineConfig field x the SWP flag x every SimContext
/// field. Value = the SimResult. Because the key covers every input the
/// simulator reads, a hit returns the byte-identical SimResult the
/// simulator would have produced: cache-on and cache-off runs — at any
/// thread count — produce byte-identical datasets and reports. That
/// invariant is enforced by tests/cache_test.cpp.
///
/// Tiers:
///  - In-memory: a striped (sharded) hash map safe under the work-stealing
///    pool; locks are per-shard so concurrent labeling threads rarely
///    contend. Hit/miss/insert statistics are kept with relaxed atomics.
///  - Persistent (optional): a versioned, checksummed, atomically-written
///    binary file under a cache directory (--cache-dir on the bench
///    harnesses, METAOPT_CACHE_DIR for any process), so repeated pipeline,
///    LOOCV, and bench runs warm-start across processes. Corrupt,
///    truncated, or version-mismatched files are rejected wholesale and
///    the cache starts cold — never trusted partially.
///
/// See docs/CACHING.md for the design rationale.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CACHE_SIMCACHE_H
#define METAOPT_CACHE_SIMCACHE_H

#include "support/Fingerprint.h"
#include "sim/Simulator.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace metaopt {

/// The cache key: a content fingerprint of every simulateLoop input.
using SimKey = Fingerprint;

/// Hash adaptor for unordered containers; the fingerprint lanes are
/// already avalanched, so the low lane is a ready-made hash.
struct SimKeyHash {
  size_t operator()(const SimKey &Key) const {
    return static_cast<size_t>(Key.Lo);
  }
};

/// Computes the content address of one simulateLoop invocation.
SimKey simCacheKey(const Loop &L, unsigned Factor,
                   const MachineModel &Machine, const SimContext &Ctx,
                   bool EnableSwp);

/// Same key, but with printLoop(L) precomputed by the caller. The printed
/// text dominates the key-derivation cost, and every labeling sweep needs
/// all eight factor keys of each loop — printing once and deriving eight
/// keys from the same text keeps key derivation off the hot path's
/// profile. \p PrintedLoop must be exactly printLoop(L).
SimKey simCacheKey(const Loop &L, const std::string &PrintedLoop,
                   unsigned Factor, const MachineModel &Machine,
                   const SimContext &Ctx, bool EnableSwp);

/// Cache counters. Totals are exact; under concurrency the individual
/// counters are each exact but are sampled without a global lock.
struct SimCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Inserts = 0;
  uint64_t PersistentLoaded = 0; ///< Entries adopted from the disk tier.

  uint64_t lookups() const { return Hits + Misses; }
  double hitRate() const {
    uint64_t Total = lookups();
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// Construction-time configuration of a cache handle.
struct SimCacheConfig {
  /// When false the handle is a pure pass-through to simulateLoop: no
  /// lookups, no storage, no statistics. Used to A/B the determinism
  /// invariant and by METAOPT_SIM_CACHE=0.
  bool Enabled = true;
  /// Directory of the persistent tier; empty keeps the cache in-memory
  /// only. Loaded on construction, written by savePersistent().
  std::string PersistentDir;
  /// Stripe count for the in-memory tier; rounded up to a power of two.
  unsigned Shards = 64;
};

/// Result of probing a persistent cache file without loading it.
struct SimCacheFileInfo {
  bool Valid = false;
  std::string Error;   ///< Why the file was rejected (when !Valid).
  uint64_t Version = 0;
  uint64_t Entries = 0;
};

/// Parses and validates the header/checksum of \p Path. Shared by
/// loadPersistent() and the metaopt-simcache inspection tool.
SimCacheFileInfo inspectSimCacheFile(const std::string &Path);

/// File-format version; bumped whenever the record layout or the key
/// derivation changes so stale files are rejected instead of misread.
/// v2: key derivation gained exact exit-probability bits (domain tag
/// "metaopt-simcache-key-v2"); v1 files hold keys no current lookup can
/// produce, so they are rejected wholesale rather than carried as dead
/// weight.
constexpr uint64_t SimCacheFileVersion = 2;

/// The cache handle. All member functions are thread-safe except where
/// noted; a single instance is intended to be shared by every thread of a
/// parallel region (that is the point of the striping).
class SimCache {
public:
  explicit SimCache(SimCacheConfig Config = {});
  ~SimCache();

  SimCache(const SimCache &) = delete;
  SimCache &operator=(const SimCache &) = delete;

  bool enabled() const { return Config.Enabled; }
  const SimCacheConfig &config() const { return Config; }

  /// simulateLoop through the cache: compute the key, return the stored
  /// result on a hit, otherwise simulate and store. Byte-identical to a
  /// direct simulateLoop call in all cases.
  SimResult simulate(const Loop &L, unsigned Factor,
                     const MachineModel &Machine, const SimContext &Ctx,
                     bool EnableSwp);

  /// Probes the in-memory tier; counts a hit or a miss.
  std::optional<SimResult> lookup(const SimKey &Key);

  /// Stores \p Result under \p Key. First writer wins (all writers of one
  /// key necessarily carry the identical result); counts an insert only
  /// when the key was new.
  void insert(const SimKey &Key, const SimResult &Result);

  /// Number of cached entries.
  size_t size() const;

  SimCacheStats stats() const;
  void resetStats();

  /// Drops every entry (statistics are kept).
  void clear();

  /// Path of the persistent file ("" when no PersistentDir).
  std::string persistentPath() const;

  /// Re-reads the persistent tier into memory. Returns false (leaving the
  /// in-memory tier unchanged) when the file is absent, corrupt,
  /// truncated, or of a different version.
  bool loadPersistent();

  /// Atomically rewrites the persistent file (write temp + rename) with
  /// the current contents in sorted key order, so the file bytes are
  /// deterministic regardless of thread count or insertion order.
  /// Returns false when no PersistentDir is configured or on I/O error.
  bool savePersistent();

  /// savePersistent(), but only when entries were inserted since the last
  /// save; cheap to call after every labeling or evaluation sweep.
  bool savePersistentIfDirty();

  /// The process-wide cache used when call sites do not pass one.
  /// Configured from the environment on first use: METAOPT_SIM_CACHE=0
  /// (or "off") disables it, METAOPT_CACHE_DIR=<dir> attaches the
  /// persistent tier.
  static SimCache &global();

  /// Replaces the global cache with a fresh one built from \p Config
  /// (dropping the old contents). Must not be called while a parallel
  /// region is using the global cache — same contract as
  /// ThreadPool::setGlobalThreads.
  static void configureGlobal(SimCacheConfig Config);

private:
  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<SimKey, SimResult, SimKeyHash> Map;
  };

  Shard &shardFor(const SimKey &Key);

  SimCacheConfig Config;
  std::vector<std::unique_ptr<Shard>> Shards;
  unsigned ShardMask = 0;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Inserts{0};
  std::atomic<uint64_t> PersistentLoaded{0};
  std::atomic<bool> Dirty{false};
  std::mutex SaveMutex;
};

/// simulateLoop through \p Cache; a null \p Cache means the process-wide
/// SimCache::global(). This is the call every labeling/evaluation/bench
/// site uses in place of a raw simulateLoop.
SimResult cachedSimulateLoop(const Loop &L, unsigned Factor,
                             const MachineModel &Machine,
                             const SimContext &Ctx, bool EnableSwp,
                             SimCache *Cache = nullptr);

} // namespace metaopt

#endif // METAOPT_CACHE_SIMCACHE_H
