//===- concurrency/Determinism.h - Parallel == serial contract --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The determinism contract for parallel call sites. Every parallel run of
/// the pipeline must be bit-identical to the --threads=1 serial run, which
/// requires exactly three disciplines (docs/CONCURRENCY.md elaborates):
///
///  1. Stable task identity: each task is an index into an ordered
///     work-list built up front; never "whatever the queue yields next".
///  2. Private RNG streams: a task derives its generator from a base seed
///     plus its stable identity via Rng::splitStream — never by drawing
///     from a generator shared across tasks, whose interleaving would
///     depend on scheduling.
///  3. Ordered reduction: per-task results land in an index-addressed
///     slot (parallelMap) and any reduction over them runs serially in
///     index order afterwards, so floating-point accumulation order never
///     changes.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CONCURRENCY_DETERMINISM_H
#define METAOPT_CONCURRENCY_DETERMINISM_H

#include "support/Rng.h"

namespace metaopt {

/// The task-stream rule in one helper: the RNG for the task with stable
/// identity \p TaskIndex under \p BaseSeed. Equivalent streams come out
/// whether the task runs on a worker, on the caller, or serially.
inline Rng taskRng(uint64_t BaseSeed, uint64_t TaskIndex) {
  return Rng::splitStream(BaseSeed, TaskIndex);
}

} // namespace metaopt

#endif // METAOPT_CONCURRENCY_DETERMINISM_H
