//===- concurrency/Parallel.h - parallelFor/parallelMap facade --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The façade every parallel call site uses. parallelFor(I) runs a body
/// over an index range on the work-stealing pool; parallelMap collects one
/// result per index into a vector ordered by index, so the output is
/// independent of which worker ran which index — the cornerstone of the
/// determinism contract (docs/CONCURRENCY.md). Bodies that need
/// randomness must derive their stream from a base seed and the stable
/// index via Rng::splitStream (see concurrency/Determinism.h), never from
/// a shared generator.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CONCURRENCY_PARALLEL_H
#define METAOPT_CONCURRENCY_PARALLEL_H

#include "concurrency/ThreadPool.h"

#include <vector>

namespace metaopt {

/// Runs Fn(I) for every I in [Begin, End) on \p Pool (the global pool
/// when null). Serial when the pool has one thread. Rethrows the
/// lowest-index exception after all indices ran.
inline void parallelFor(size_t Begin, size_t End,
                        const std::function<void(size_t)> &Fn,
                        ThreadPool *Pool = nullptr) {
  (Pool ? *Pool : ThreadPool::global()).run(Begin, End, Fn);
}

/// Computes Fn(I) for I in [0, N) and returns the results ordered by
/// index — bit-identical whichever threads computed them. T must be
/// default-constructible and movable.
template <typename T, typename MapFn>
std::vector<T> parallelMap(size_t N, const MapFn &Fn,
                           ThreadPool *Pool = nullptr) {
  std::vector<T> Results(N);
  parallelFor(
      0, N, [&](size_t I) { Results[I] = Fn(I); }, Pool);
  return Results;
}

} // namespace metaopt

#endif // METAOPT_CONCURRENCY_PARALLEL_H
