//===- concurrency/ThreadPool.h - Work-stealing runtime ---------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic work-stealing parallel runtime. Labeling the corpus is
/// the paper's dominant cost (a week of machine time for 2,500 loops x 8
/// unroll factors x 30 noisy trials); this pool parallelizes that and the
/// other embarrassingly parallel hot paths (brute-force LOOCV, the
/// leave-one-benchmark-out speedup protocol, greedy feature selection)
/// while keeping every result bit-identical to the serial run — see
/// docs/CONCURRENCY.md for the determinism contract.
///
/// Structure: one worker thread per slot beyond the caller, each owning a
/// Chase-Lev-style deque (owner pushes/pops the bottom, thieves steal the
/// top), an injection queue for submissions from threads outside the pool,
/// and condition-variable parking for idle workers. Waiting threads help
/// execute outstanding tasks, so nested parallel regions never deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_CONCURRENCY_THREADPOOL_H
#define METAOPT_CONCURRENCY_THREADPOOL_H

#include <cstddef>
#include <functional>
#include <memory>

namespace metaopt {

namespace detail {
struct Job;
struct PoolImpl;
struct GroupImpl;
} // namespace detail

/// A work-stealing thread pool with a fixed degree of parallelism.
///
/// A pool constructed with thread count N owns N-1 worker threads; the
/// thread that calls run() (or TaskGroup::wait()) participates as the Nth
/// executor, so N is the total parallelism. N == 1 creates no threads at
/// all and every parallel construct degrades to the plain serial loop —
/// the golden reference path.
class ThreadPool {
public:
  /// \p Threads is the total parallelism; 0 means defaultThreadCount().
  explicit ThreadPool(unsigned Threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total parallelism (worker threads + the calling thread).
  unsigned threadCount() const;

  /// Runs Fn(I) for every I in [Begin, End), distributing chunks over the
  /// pool and helping from the calling thread until all are done. With a
  /// thread count of 1 (or a single-index range) this is the plain serial
  /// loop. Exceptions thrown by Fn are rethrown here; when several indices
  /// throw, the lowest index wins (matching which exception the serial
  /// loop would have surfaced). Prefer the parallelFor/parallelMap facade
  /// in concurrency/Parallel.h.
  void run(size_t Begin, size_t End, const std::function<void(size_t)> &Fn);

  /// The --threads / METAOPT_THREADS / hardware-concurrency resolution:
  /// METAOPT_THREADS (when set to a positive integer) wins, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static unsigned defaultThreadCount();

  /// The process-wide pool used when call sites do not pass one. Created
  /// lazily with defaultThreadCount() threads.
  static ThreadPool &global();

  /// Replaces the global pool with one of \p Threads threads (0 resets to
  /// defaultThreadCount()). Must not be called while a parallel region is
  /// executing on the global pool.
  static void setGlobalThreads(unsigned Threads);

private:
  friend class TaskGroup;
  friend struct detail::GroupImpl;
  std::unique_ptr<detail::PoolImpl> Impl;
};

/// Structured fork-join: spawn() forks tasks into the pool, wait() joins
/// them (helping execute outstanding work while waiting) and rethrows the
/// first error in spawn order. On a single-thread pool each task runs
/// inline at its spawn point, which is exactly the serial execution order.
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool &Pool = ThreadPool::global());
  ~TaskGroup();

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  /// Forks \p Fn. Thread-safe: tasks may spawn siblings into their own
  /// group before the join.
  void spawn(std::function<void()> Fn);

  /// Joins every spawned task. If any task threw, rethrows the exception
  /// of the earliest-spawned failing task. May be called once; the
  /// destructor joins (without rethrowing) if wait() was never reached.
  void wait();

private:
  std::unique_ptr<detail::GroupImpl> Group;
};

} // namespace metaopt

#endif // METAOPT_CONCURRENCY_THREADPOOL_H
