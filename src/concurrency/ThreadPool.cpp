//===- concurrency/ThreadPool.cpp -----------------------------------------===//

#include "concurrency/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace metaopt;
using namespace metaopt::detail;

namespace metaopt {
namespace detail {

struct Task;

/// One parallel region: a parallelFor range or a TaskGroup. Lives on the
/// waiter's stack (run()) or inside the TaskGroup; tasks reference it and
/// are all consumed before the waiter returns, so no refcounting is
/// needed. Completion is signalled through the pool-wide event channel
/// (the pool always outlives its jobs), which avoids the classic
/// destroy-while-notifying race of a per-job condition variable.
struct Job {
  std::function<void(size_t)> Body; ///< Null for task groups.
  std::atomic<size_t> Pending{0};   ///< Indices not yet finished.
  std::mutex ErrorMutex;
  std::exception_ptr Error;
  size_t ErrorIndex = static_cast<size_t>(-1);

  void recordError(size_t Index, std::exception_ptr E) {
    std::lock_guard<std::mutex> Lock(ErrorMutex);
    if (!Error || Index < ErrorIndex) {
      Error = std::move(E);
      ErrorIndex = Index;
    }
  }

  void rethrowIfError() {
    if (Error)
      std::rethrow_exception(Error);
  }
};

/// A unit of work: either a chunk [Begin, End) of a parallel-for job, or
/// one spawned TaskGroup closure (End == Begin + 1, GroupFn set).
struct Task {
  Job *Parent = nullptr;
  size_t Begin = 0;
  size_t End = 0;
  std::function<void()> GroupFn;
};

/// Chase-Lev work-stealing deque of Task pointers. The owner pushes and
/// pops at the bottom; any other thread steals from the top. All atomics
/// use seq_cst rather than the weakest correct orders: the tasks here are
/// milliseconds of simulation or training each, so deque overhead is
/// irrelevant, and seq_cst avoids the standalone fences of the
/// weak-memory formulation (which ThreadSanitizer does not model).
class WorkDeque {
public:
  WorkDeque() : Buffer(new Ring(InitialCapacity)) {}
  ~WorkDeque() {
    delete Buffer.load();
    for (Ring *Old : Retired)
      delete Old;
  }

  /// Owner only.
  void push(Task *T) {
    int64_t B = Bottom.load();
    int64_t F = Top.load();
    Ring *R = Buffer.load();
    if (B - F >= R->Capacity) {
      R = grow(R, F, B);
      Buffer.store(R);
    }
    R->slot(B).store(T);
    Bottom.store(B + 1);
  }

  /// Owner only. Returns nullptr when empty.
  Task *pop() {
    int64_t B = Bottom.load() - 1;
    Ring *R = Buffer.load();
    Bottom.store(B);
    int64_t F = Top.load();
    if (F > B) {
      Bottom.store(B + 1); // Empty: undo.
      return nullptr;
    }
    Task *T = R->slot(B).load();
    if (F != B)
      return T; // More than one element left; no race with thieves.
    // Last element: race the thieves for it via the top counter.
    bool Won = Top.compare_exchange_strong(F, F + 1);
    Bottom.store(B + 1);
    return Won ? T : nullptr;
  }

  /// Any thread. Returns nullptr when empty or when the steal raced.
  Task *steal() {
    int64_t F = Top.load();
    int64_t B = Bottom.load();
    if (F >= B)
      return nullptr;
    Task *T = Buffer.load()->slot(F).load();
    if (!Top.compare_exchange_strong(F, F + 1))
      return nullptr; // Lost the race; T must not be used.
    return T;
  }

private:
  static constexpr int64_t InitialCapacity = 256;

  struct Ring {
    explicit Ring(int64_t N) : Capacity(N), Slots(new std::atomic<Task *>[N]) {}
    ~Ring() { delete[] Slots; }
    std::atomic<Task *> &slot(int64_t I) { return Slots[I & (Capacity - 1)]; }
    const int64_t Capacity; ///< Power of two.
    std::atomic<Task *> *Slots;
  };

  Ring *grow(Ring *Old, int64_t F, int64_t B) {
    Ring *Bigger = new Ring(Old->Capacity * 2);
    for (int64_t I = F; I < B; ++I)
      Bigger->slot(I).store(Old->slot(I).load());
    // Thieves may still be reading the old ring; retire it until the
    // deque dies instead of freeing it.
    Retired.push_back(Old);
    return Bigger;
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  std::atomic<Ring *> Buffer;
  std::vector<Ring *> Retired;
};

struct PoolImpl {
  explicit PoolImpl(unsigned Threads);
  ~PoolImpl();

  unsigned ThreadCount; ///< Workers + the calling thread.
  std::vector<std::unique_ptr<WorkDeque>> Deques; ///< One per worker.
  std::vector<std::thread> Workers;

  std::mutex InjectMutex;
  std::deque<Task *> Injected; ///< Submissions from non-worker threads.

  /// Event channel: bumped (and broadcast) whenever work is pushed or a
  /// job completes, so parked workers and helping waiters re-scan.
  std::mutex EventMutex;
  std::condition_variable EventCv;
  std::atomic<uint64_t> EventEpoch{0};
  std::atomic<int> Waiters{0};
  std::atomic<bool> Stop{false};

  void signalEvent() {
    EventEpoch.fetch_add(1);
    if (Waiters.load() > 0) {
      // Empty critical section: serializes with a waiter that passed its
      // predicate check but has not blocked yet (it holds EventMutex in
      // that window), so the notification cannot be lost.
      { std::lock_guard<std::mutex> Lock(EventMutex); }
      EventCv.notify_all();
    }
  }

  template <typename QuitFn>
  void waitEvent(uint64_t SeenEpoch, const QuitFn &Quit) {
    std::unique_lock<std::mutex> Lock(EventMutex);
    Waiters.fetch_add(1);
    EventCv.wait(Lock, [&] {
      return EventEpoch.load() != SeenEpoch || Stop.load() || Quit();
    });
    Waiters.fetch_sub(1);
  }

  void workerLoop(unsigned WorkerIndex);
  Task *findWork(int SelfIndex);
  void execute(Task &T);
  void submit(Task *T, int SelfIndex);
  void helpUntilDone(Job &J);
  int currentWorkerIndex() const;
};

namespace {
/// Which pool (if any) owns the current thread, and which worker slot it
/// occupies; lets nested parallel regions push to their own deque.
thread_local PoolImpl *CurrentPool = nullptr;
thread_local int CurrentWorker = -1;
} // namespace

PoolImpl::PoolImpl(unsigned Threads) : ThreadCount(Threads) {
  assert(Threads >= 1 && "thread count must be at least 1");
  unsigned NumWorkers = Threads - 1;
  Deques.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Deques.push_back(std::make_unique<WorkDeque>());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

PoolImpl::~PoolImpl() {
  Stop.store(true);
  signalEvent();
  // signalEvent() skips the broadcast when no worker is parked, but a
  // worker may be about to park having seen Stop == false; the epoch
  // bump above makes its wait predicate true. Broadcast unconditionally
  // once more to cover workers already inside wait().
  {
    std::lock_guard<std::mutex> Lock(EventMutex);
  }
  EventCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

int PoolImpl::currentWorkerIndex() const {
  return CurrentPool == this ? CurrentWorker : -1;
}

Task *PoolImpl::findWork(int SelfIndex) {
  // Own deque first (LIFO: depth-first on nested regions), then the
  // injection queue, then steal a task from another worker (FIFO on the
  // victim: steals take the oldest, largest-remaining work first).
  if (SelfIndex >= 0)
    if (Task *T = Deques[SelfIndex]->pop())
      return T;
  {
    std::lock_guard<std::mutex> Lock(InjectMutex);
    if (!Injected.empty()) {
      Task *T = Injected.front();
      Injected.pop_front();
      return T;
    }
  }
  size_t N = Deques.size();
  size_t Start = SelfIndex >= 0 ? static_cast<size_t>(SelfIndex) + 1 : 0;
  // Two sweeps: a failed CAS in steal() is a race, not proof of empty.
  for (int Sweep = 0; Sweep < 2; ++Sweep)
    for (size_t I = 0; I < N; ++I) {
      size_t Victim = (Start + I) % N;
      if (static_cast<int>(Victim) == SelfIndex)
        continue;
      if (Task *T = Deques[Victim]->steal())
        return T;
    }
  return nullptr;
}

void PoolImpl::execute(Task &T) {
  Job &J = *T.Parent;
  size_t Count = T.End - T.Begin;
  for (size_t I = T.Begin; I < T.End; ++I) {
    try {
      if (T.GroupFn)
        T.GroupFn();
      else
        J.Body(I);
    } catch (...) {
      J.recordError(I, std::current_exception());
    }
  }
  if (J.Pending.fetch_sub(Count) == Count)
    signalEvent(); // Job complete: wake its waiter.
}

void PoolImpl::submit(Task *T, int SelfIndex) {
  if (SelfIndex >= 0) {
    Deques[SelfIndex]->push(T);
  } else {
    std::lock_guard<std::mutex> Lock(InjectMutex);
    Injected.push_back(T);
  }
}

void PoolImpl::workerLoop(unsigned WorkerIndex) {
  CurrentPool = this;
  CurrentWorker = static_cast<int>(WorkerIndex);
  for (;;) {
    uint64_t Epoch = EventEpoch.load();
    if (Task *T = findWork(static_cast<int>(WorkerIndex))) {
      execute(*T);
      continue;
    }
    if (Stop.load())
      return;
    waitEvent(Epoch, [] { return false; });
  }
}

void PoolImpl::helpUntilDone(Job &J) {
  int SelfIndex = currentWorkerIndex();
  while (J.Pending.load() != 0) {
    uint64_t Epoch = EventEpoch.load();
    if (Task *T = findWork(SelfIndex)) {
      execute(*T);
      continue;
    }
    // All of this job's tasks are taken but some are still running (or
    // new work appeared between the scan and here — the epoch catches
    // that). Park until an event rather than spinning.
    waitEvent(Epoch, [&] { return J.Pending.load() == 0; });
  }
}

struct GroupImpl {
  explicit GroupImpl(ThreadPool &P) : Pool(*P.Impl) {}
  PoolImpl &Pool;
  Job TheJob;
  std::mutex SpawnMutex;
  std::deque<Task> Tasks; ///< Stable addresses; guarded by SpawnMutex.
  size_t NextIndex = 0;
  bool Joined = false;
};

} // namespace detail
} // namespace metaopt

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

ThreadPool::ThreadPool(unsigned Threads)
    : Impl(std::make_unique<PoolImpl>(Threads ? Threads
                                              : defaultThreadCount())) {}

ThreadPool::~ThreadPool() = default;

unsigned ThreadPool::threadCount() const { return Impl->ThreadCount; }

unsigned ThreadPool::defaultThreadCount() {
  if (const char *Env = std::getenv("METAOPT_THREADS")) {
    char *End = nullptr;
    long Value = std::strtol(Env, &End, 10);
    if (End && *End == '\0' && Value >= 1 && Value <= 4096)
      return static_cast<unsigned>(Value);
  }
  unsigned Hardware = std::thread::hardware_concurrency();
  return Hardware ? Hardware : 1;
}

void ThreadPool::run(size_t Begin, size_t End,
                     const std::function<void(size_t)> &Fn) {
  if (Begin >= End)
    return;
  size_t N = End - Begin;
  if (Impl->ThreadCount == 1 || N == 1) {
    // The golden serial path: plain loop, natural exception propagation.
    for (size_t I = Begin; I < End; ++I)
      Fn(I);
    return;
  }

  Job J;
  J.Body = Fn;
  J.Pending.store(N);

  // Small chunks so stealing can rebalance skewed per-index costs; each
  // index is typically milliseconds of work, so per-task overhead is
  // negligible even at chunk size 1.
  size_t ChunkSize = std::max<size_t>(1, N / (size_t{8} * Impl->ThreadCount));
  size_t NumChunks = (N + ChunkSize - 1) / ChunkSize;
  std::vector<Task> Chunks(NumChunks);
  int SelfIndex = Impl->currentWorkerIndex();
  for (size_t C = 0; C < NumChunks; ++C) {
    Chunks[C].Parent = &J;
    Chunks[C].Begin = Begin + C * ChunkSize;
    Chunks[C].End = std::min(End, Chunks[C].Begin + ChunkSize);
    Impl->submit(&Chunks[C], SelfIndex);
  }
  Impl->signalEvent();

  Impl->helpUntilDone(J);
  J.rethrowIfError();
}

namespace {
std::mutex GlobalPoolMutex;
std::unique_ptr<ThreadPool> GlobalPool;
} // namespace

ThreadPool &ThreadPool::global() {
  std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
  if (!GlobalPool)
    GlobalPool = std::make_unique<ThreadPool>();
  return *GlobalPool;
}

void ThreadPool::setGlobalThreads(unsigned Threads) {
  std::lock_guard<std::mutex> Lock(GlobalPoolMutex);
  GlobalPool.reset(); // Join the old pool's workers first.
  GlobalPool = std::make_unique<ThreadPool>(Threads);
}

//===----------------------------------------------------------------------===//
// TaskGroup
//===----------------------------------------------------------------------===//

TaskGroup::TaskGroup(ThreadPool &Pool)
    : Group(std::make_unique<GroupImpl>(Pool)) {}

void TaskGroup::spawn(std::function<void()> Fn) {
  PoolImpl &Pool = Group->Pool;
  if (Pool.ThreadCount == 1) {
    Fn(); // Serial golden path: run at the spawn point.
    return;
  }
  Task *T;
  {
    std::lock_guard<std::mutex> Lock(Group->SpawnMutex);
    Group->Tasks.emplace_back();
    T = &Group->Tasks.back();
    T->Parent = &Group->TheJob;
    T->Begin = Group->NextIndex++;
    T->End = T->Begin + 1;
    T->GroupFn = std::move(Fn);
  }
  Group->TheJob.Pending.fetch_add(1);
  Pool.submit(T, Pool.currentWorkerIndex());
  Pool.signalEvent();
}

void TaskGroup::wait() {
  Group->Pool.helpUntilDone(Group->TheJob);
  Group->Joined = true;
  Group->TheJob.rethrowIfError();
}

TaskGroup::~TaskGroup() {
  if (Group && !Group->Joined)
    Group->Pool.helpUntilDone(Group->TheJob); // Join, but never throw.
}
