//===- ir/LoopBuilder.h - Fluent loop construction --------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A convenience builder for constructing well-formed loops. The corpus
/// generators, the tests, and the examples all construct loops through this
/// class; finalize() appends the canonical loop-control tail (induction
/// increment, trip test, backedge branch) that the unroller amortizes.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_LOOPBUILDER_H
#define METAOPT_IR_LOOPBUILDER_H

#include "ir/Loop.h"

#include <string>
#include <vector>

namespace metaopt {

/// Builds a Loop instruction by instruction.
///
/// Typical usage:
/// \code
///   LoopBuilder B("daxpy", SourceLanguage::C, 1, 1024);
///   RegId Alpha = B.liveIn(RegClass::Float, "alpha");
///   RegId X = B.load(RegClass::Float, {/*BaseSym=*/0, /*Stride=*/8});
///   RegId Y = B.load(RegClass::Float, {/*BaseSym=*/1, /*Stride=*/8});
///   RegId R = B.fma(Alpha, X, Y);
///   B.store(R, {/*BaseSym=*/1, /*Stride=*/8});
///   Loop L = B.finalize();
/// \endcode
class LoopBuilder {
public:
  LoopBuilder(std::string Name, SourceLanguage Lang, int NestLevel,
              int64_t TripCount);

  /// Creates a live-in (loop-invariant) register.
  RegId liveIn(RegClass RC, std::string Name = "");

  /// Opens a loop-carried phi of class \p RC; returns the register the body
  /// reads. A fresh live-in is created as the initial value. The recurrence
  /// source must be provided later via setPhiRecur.
  RegId phi(RegClass RC, std::string Name = "");

  /// Closes the phi whose destination is \p PhiDest by naming the value the
  /// body computes for the next iteration.
  void setPhiRecur(RegId PhiDest, RegId Recur);

  /// Sets/clears the predicate guarding subsequently emitted instructions.
  void setPredicate(RegId Pred);
  void clearPredicate();

  // Integer arithmetic.
  RegId iadd(RegId A, RegId B) { return emitBinary(Opcode::IAdd, A, B); }
  RegId isub(RegId A, RegId B) { return emitBinary(Opcode::ISub, A, B); }
  RegId imul(RegId A, RegId B) { return emitBinary(Opcode::IMul, A, B); }
  RegId idiv(RegId A, RegId B) { return emitBinary(Opcode::IDiv, A, B); }
  RegId irem(RegId A, RegId B) { return emitBinary(Opcode::IRem, A, B); }
  RegId shl(RegId A, RegId B) { return emitBinary(Opcode::Shl, A, B); }
  RegId shr(RegId A, RegId B) { return emitBinary(Opcode::Shr, A, B); }
  RegId bitAnd(RegId A, RegId B) { return emitBinary(Opcode::And, A, B); }
  RegId bitOr(RegId A, RegId B) { return emitBinary(Opcode::Or, A, B); }
  RegId bitXor(RegId A, RegId B) { return emitBinary(Opcode::Xor, A, B); }
  RegId icmp(RegId A, RegId B) { return emitBinary(Opcode::ICmp, A, B); }
  RegId iconst(int64_t Value);

  // Floating point.
  RegId fadd(RegId A, RegId B) { return emitBinary(Opcode::FAdd, A, B); }
  RegId fsub(RegId A, RegId B) { return emitBinary(Opcode::FSub, A, B); }
  RegId fmul(RegId A, RegId B) { return emitBinary(Opcode::FMul, A, B); }
  RegId fdiv(RegId A, RegId B) { return emitBinary(Opcode::FDiv, A, B); }
  RegId fcmp(RegId A, RegId B) { return emitBinary(Opcode::FCmp, A, B); }
  RegId fma(RegId A, RegId B, RegId C);
  RegId fsqrt(RegId A);
  RegId fcvt(RegId IntValue);
  RegId fconst(int64_t Bits);

  // Data movement and predication.
  RegId copy(RegId Src);
  RegId select(RegId Pred, RegId A, RegId B);
  RegId predAnd(RegId A, RegId B);

  // Memory. \p Index must be an integer register when Ref.Indirect.
  RegId load(RegClass DestClass, MemRef Ref, RegId Index = NoReg);
  void store(RegId Value, MemRef Ref, RegId Index = NoReg);
  RegId addrGen(RegId A, RegId B = NoReg);

  // Control.
  void exitIf(RegId Pred, double TakenProb);
  void call(std::vector<RegId> Args = {});

  /// Returns a mutable view of the loop under construction (e.g. to tweak
  /// metadata before finalize()).
  Loop &loop() { return Result; }

  /// Appends the loop-control tail and returns the finished loop. All phis
  /// must have been closed. The builder must not be reused afterwards.
  Loop finalize();

private:
  RegId emitBinary(Opcode Op, RegId A, RegId B);
  RegId emitTo(Opcode Op, RegClass DestClass, std::vector<RegId> Operands,
               int64_t Imm = 0);

  Loop Result;
  RegId CurrentPred = NoReg;
  std::vector<RegId> OpenPhis;
  bool Finalized = false;
};

} // namespace metaopt

#endif // METAOPT_IR_LOOPBUILDER_H
