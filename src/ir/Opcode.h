//===- ir/Opcode.h - Loop IR opcodes ----------------------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The opcode set of the loop IR, together with static per-opcode traits
/// (operand signature, register classes, category flags). The set mirrors
/// the operations that matter to unrolling on an in-order EPIC machine:
/// integer/floating arithmetic, memory accesses with symbolic linear
/// addresses, predication (Itanium-style if-conversion), early loop exits,
/// and calls.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_OPCODE_H
#define METAOPT_IR_OPCODE_H

#include <string>

namespace metaopt {

/// Register classes of the IR's virtual registers.
enum class RegClass { Int, Float, Pred };

/// Returns a one-letter prefix used in the textual format ("i"/"f"/"p").
const char *regClassPrefix(RegClass RC);

/// All IR opcodes.
enum class Opcode {
  // Integer arithmetic / logic.
  IAdd,
  ISub,
  IMul,
  IDiv,
  IRem,
  Shl,
  Shr,
  And,
  Or,
  Xor,
  ICmp, // Integer compare, defines a predicate register.
  IConst,
  // Floating point.
  FAdd,
  FSub,
  FMul,
  FMA, // Fused multiply-add: three operands.
  FDiv,
  FSqrt,
  FCmp, // FP compare, defines a predicate register.
  FConst,
  FCvt, // Int <-> float conversion.
  // Data movement.
  Copy,   // Register copy (compiler-inserted, "implicit").
  Select, // Dest = Pred ? A : B.
  // Memory.
  Load,
  Store,
  // Address arithmetic made explicit (compiler-inserted, "implicit").
  AddrGen,
  // Predicates and control.
  PredSet, // Combine/initialize predicate registers.
  ExitIf,  // Early loop exit, guarded by a predicate operand.
  Call,    // Opaque call; scheduling barrier.
  // Loop control (added by LoopBuilder::finalize, one copy per unrolled
  // body): induction increment, trip test, backedge branch.
  IvAdd,
  IvCmp,
  BackBr,
};

/// Number of distinct opcodes (for table sizing).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::BackBr) + 1;

/// Static information about an opcode.
struct OpcodeInfo {
  const char *Name;      ///< Mnemonic used by printer/parser.
  int NumOperands;       ///< Register operand count (-1: variable, not used).
  bool HasDest;          ///< Defines a destination register.
  RegClass DestClass;    ///< Class of the destination when HasDest.
  RegClass OperandClass; ///< Class of register operands (homogeneous except
                         ///< where noted in opcodeOperandClass()).
  bool IsFloat;          ///< Counts as a floating point operation.
  bool IsMemory;         ///< Load or store.
  bool IsBranchLike;     ///< Branch-category (ExitIf, BackBr, Call).
  bool IsImplicit;       ///< Compiler-inserted bookkeeping (Copy, AddrGen,
                         ///< PredSet).
  bool IsLoopControl;    ///< IvAdd/IvCmp/BackBr.
};

/// Returns the static traits of \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Returns the mnemonic of \p Op.
const char *opcodeName(Opcode Op);

/// Parses a mnemonic; returns false if unknown.
bool parseOpcode(const std::string &Name, Opcode &Out);

/// Returns the register class required for operand \p Index of \p Op.
/// Handles the heterogeneous cases (Select's predicate operand, FCvt, ...).
RegClass opcodeOperandClass(Opcode Op, int Index);

} // namespace metaopt

#endif // METAOPT_IR_OPCODE_H
