//===- ir/Printer.h - Textual loop format emission --------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes loops to the textual loop format that Parser.h reads back.
/// Round-tripping (print -> parse -> print) is stable and is covered by
/// property tests.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_PRINTER_H
#define METAOPT_IR_PRINTER_H

#include "ir/Loop.h"

#include <string>

namespace metaopt {

/// Returns the textual form of \p L, e.g.:
/// \code
/// loop "daxpy" lang=C nest=1 trip=1024 rtrip=1024 {
///   phi %f_acc = [%f_acc.init, %f_s3]
///   %f_s1 = load.f @0[stride=8, offset=0]
///   %f_s3 = fma %f_alpha, %f_s1, %f_acc
///   store %f_s3, @1[stride=8, offset=0]
///   ...loop control tail...
/// }
/// \endcode
std::string printLoop(const Loop &L);

/// Prints a single instruction (as it would appear inside a loop body);
/// useful in diagnostics and tests.
std::string printInstruction(const Loop &L, const Instruction &Instr);

} // namespace metaopt

#endif // METAOPT_IR_PRINTER_H
