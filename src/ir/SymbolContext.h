//===- ir/SymbolContext.h - Declared array context for a loop ---*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations the program context makes about a loop's memory symbols:
/// the byte extent of the underlying array and the stride the surrounding
/// code walks it with. The loop IR itself never carries this information —
/// a MemRef names a symbol and its per-iteration advance, but nothing
/// bounds the object behind the symbol. Extractors may know both, and the
/// mloop interchange format records them with "array" directives
/// (docs/IMPORT.md); the importer resolves them against the interned
/// symbol ids and attaches a LoopSymbolContext to every ImportedLoop.
///
/// Consumers treat the context as *claims to check against*, not ground
/// truth: the A-series lint passes (docs/DIAGNOSTICS.md) compare the
/// symbolic access ranges proven by analysis/symbolic against the declared
/// extents (A001) and strides (A004) and diagnose contradictions.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_SYMBOLCONTEXT_H
#define METAOPT_IR_SYMBOLCONTEXT_H

#include <cstdint>
#include <string>
#include <vector>

namespace metaopt {

/// One declared memory symbol.
struct SymbolDecl {
  int32_t Sym = 0;          ///< Interned symbol id in the lowered loop.
  std::string Name;         ///< Declared name ("" for numeric symbols).
  int64_t ExtentBytes = -1; ///< Object size in bytes, -1 when undeclared.
  int64_t DeclaredStride = 0; ///< Stride the context claims, see HasStride.
  bool HasStride = false;   ///< DeclaredStride was stated explicitly.

  bool operator==(const SymbolDecl &Other) const = default;
};

/// The per-loop collection of symbol declarations, in declaration order.
struct LoopSymbolContext {
  std::vector<SymbolDecl> Decls;

  bool empty() const { return Decls.empty(); }

  /// The declaration for \p Sym, or nullptr when the context says nothing
  /// about it.
  const SymbolDecl *find(int32_t Sym) const {
    for (const SymbolDecl &Decl : Decls)
      if (Decl.Sym == Sym)
        return &Decl;
    return nullptr;
  }
};

} // namespace metaopt

#endif // METAOPT_IR_SYMBOLCONTEXT_H
