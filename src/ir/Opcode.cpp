//===- ir/Opcode.cpp ------------------------------------------------------===//

#include "ir/Opcode.h"

#include <cassert>

using namespace metaopt;

const char *metaopt::regClassPrefix(RegClass RC) {
  switch (RC) {
  case RegClass::Int:
    return "i";
  case RegClass::Float:
    return "f";
  case RegClass::Pred:
    return "p";
  }
  assert(false && "unknown register class");
  return "?";
}

namespace {
constexpr RegClass RCI = RegClass::Int;
constexpr RegClass RCF = RegClass::Float;
constexpr RegClass RCP = RegClass::Pred;
} // namespace

/// Indexed by Opcode; order must match the enum declaration exactly.
static const OpcodeInfo Infos[NumOpcodes] = {
    //            Name      #Ops Dest DestC OperC  Flt    Mem    Br     Impl   LoopC
    /*IAdd*/ {"iadd", 2, true, RCI, RCI, false, false, false, false, false},
    /*ISub*/ {"isub", 2, true, RCI, RCI, false, false, false, false, false},
    /*IMul*/ {"imul", 2, true, RCI, RCI, false, false, false, false, false},
    /*IDiv*/ {"idiv", 2, true, RCI, RCI, false, false, false, false, false},
    /*IRem*/ {"irem", 2, true, RCI, RCI, false, false, false, false, false},
    /*Shl*/ {"shl", 2, true, RCI, RCI, false, false, false, false, false},
    /*Shr*/ {"shr", 2, true, RCI, RCI, false, false, false, false, false},
    /*And*/ {"and", 2, true, RCI, RCI, false, false, false, false, false},
    /*Or*/ {"or", 2, true, RCI, RCI, false, false, false, false, false},
    /*Xor*/ {"xor", 2, true, RCI, RCI, false, false, false, false, false},
    /*ICmp*/ {"icmp", 2, true, RCP, RCI, false, false, false, false, false},
    /*IConst*/
    {"iconst", 0, true, RCI, RCI, false, false, false, false, false},
    /*FAdd*/ {"fadd", 2, true, RCF, RCF, true, false, false, false, false},
    /*FSub*/ {"fsub", 2, true, RCF, RCF, true, false, false, false, false},
    /*FMul*/ {"fmul", 2, true, RCF, RCF, true, false, false, false, false},
    /*FMA*/ {"fma", 3, true, RCF, RCF, true, false, false, false, false},
    /*FDiv*/ {"fdiv", 2, true, RCF, RCF, true, false, false, false, false},
    /*FSqrt*/ {"fsqrt", 1, true, RCF, RCF, true, false, false, false, false},
    /*FCmp*/ {"fcmp", 2, true, RCP, RCF, true, false, false, false, false},
    /*FConst*/
    {"fconst", 0, true, RCF, RCF, true, false, false, false, false},
    /*FCvt*/ {"fcvt", 1, true, RCF, RCI, true, false, false, false, false},
    /*Copy*/ {"copy", 1, true, RCI, RCI, false, false, false, true, false},
    /*Select*/
    {"select", 3, true, RCI, RCI, false, false, false, false, false},
    /*Load*/ {"load", -1, true, RCI, RCI, false, true, false, false, false},
    /*Store*/
    {"store", -1, false, RCI, RCI, false, true, false, false, false},
    /*AddrGen*/
    {"addrgen", -1, true, RCI, RCI, false, false, false, true, false},
    /*PredSet*/
    {"predset", -1, true, RCP, RCP, false, false, false, true, false},
    /*ExitIf*/
    {"exit_if", 1, false, RCI, RCP, false, false, true, false, false},
    /*Call*/ {"call", -1, false, RCI, RCI, false, false, true, false, false},
    /*IvAdd*/ {"iv_add", 1, true, RCI, RCI, false, false, false, false, true},
    /*IvCmp*/ {"iv_cmp", 1, true, RCP, RCI, false, false, false, false, true},
    /*BackBr*/
    {"back_br", 1, false, RCI, RCP, false, false, true, false, true},
};

const OpcodeInfo &metaopt::opcodeInfo(Opcode Op) {
  unsigned Index = static_cast<unsigned>(Op);
  assert(Index < NumOpcodes && "opcode out of range");
  return Infos[Index];
}

const char *metaopt::opcodeName(Opcode Op) { return opcodeInfo(Op).Name; }

bool metaopt::parseOpcode(const std::string &Name, Opcode &Out) {
  for (unsigned I = 0; I < NumOpcodes; ++I) {
    if (Name == Infos[I].Name) {
      Out = static_cast<Opcode>(I);
      return true;
    }
  }
  return false;
}

RegClass metaopt::opcodeOperandClass(Opcode Op, int Index) {
  // Heterogeneous signatures first.
  switch (Op) {
  case Opcode::Select:
    return Index == 0 ? RegClass::Pred : RegClass::Int;
  default:
    break;
  }
  return opcodeInfo(Op).OperandClass;
}
