//===- ir/LoopBuilder.cpp -------------------------------------------------===//

#include "ir/LoopBuilder.h"

#include <algorithm>
#include <cassert>

using namespace metaopt;

LoopBuilder::LoopBuilder(std::string Name, SourceLanguage Lang, int NestLevel,
                         int64_t TripCount)
    : Result(std::move(Name), Lang, NestLevel, TripCount) {}

RegId LoopBuilder::liveIn(RegClass RC, std::string Name) {
  return Result.addReg(RC, std::move(Name));
}

RegId LoopBuilder::phi(RegClass RC, std::string Name) {
  RegId Dest = Result.addReg(RC, Name.empty() ? "phi" : Name);
  RegId Init = Result.addReg(RC, Result.regName(Dest) + ".init");
  PhiNode Phi;
  Phi.Dest = Dest;
  Phi.Init = Init;
  Phi.Recur = NoReg;
  Result.addPhi(Phi);
  OpenPhis.push_back(Dest);
  return Dest;
}

void LoopBuilder::setPhiRecur(RegId PhiDest, RegId Recur) {
  for (PhiNode &Phi : Result.phis()) {
    if (Phi.Dest != PhiDest)
      continue;
    assert(Phi.Recur == NoReg && "phi recurrence already set");
    assert(Result.regClass(Recur) == Result.regClass(PhiDest) &&
           "phi recurrence register class mismatch");
    Phi.Recur = Recur;
    OpenPhis.erase(std::find(OpenPhis.begin(), OpenPhis.end(), PhiDest));
    return;
  }
  assert(false && "setPhiRecur: no phi with this destination");
}

void LoopBuilder::setPredicate(RegId Pred) {
  assert(Result.regClass(Pred) == RegClass::Pred &&
         "predicate must be a predicate register");
  CurrentPred = Pred;
}

void LoopBuilder::clearPredicate() { CurrentPred = NoReg; }

RegId LoopBuilder::emitBinary(Opcode Op, RegId A, RegId B) {
  return emitTo(Op, opcodeInfo(Op).DestClass, {A, B});
}

RegId LoopBuilder::emitTo(Opcode Op, RegClass DestClass,
                          std::vector<RegId> Operands, int64_t Imm) {
  assert(!Finalized && "builder already finalized");
  Instruction Instr;
  Instr.Op = Op;
  Instr.Operands = std::move(Operands);
  Instr.Imm = Imm;
  Instr.Pred = CurrentPred;
  Instr.Dest =
      opcodeInfo(Op).HasDest ? Result.addReg(DestClass) : NoReg;
  Result.addInstruction(std::move(Instr));
  return Result.body().back().Dest;
}

RegId LoopBuilder::iconst(int64_t Value) {
  return emitTo(Opcode::IConst, RegClass::Int, {}, Value);
}

RegId LoopBuilder::fma(RegId A, RegId B, RegId C) {
  return emitTo(Opcode::FMA, RegClass::Float, {A, B, C});
}

RegId LoopBuilder::fsqrt(RegId A) {
  return emitTo(Opcode::FSqrt, RegClass::Float, {A});
}

RegId LoopBuilder::fcvt(RegId IntValue) {
  return emitTo(Opcode::FCvt, RegClass::Float, {IntValue});
}

RegId LoopBuilder::fconst(int64_t Bits) {
  return emitTo(Opcode::FConst, RegClass::Float, {}, Bits);
}

RegId LoopBuilder::copy(RegId Src) {
  return emitTo(Opcode::Copy, Result.regClass(Src), {Src});
}

RegId LoopBuilder::select(RegId Pred, RegId A, RegId B) {
  assert(Result.regClass(A) == Result.regClass(B) &&
         "select arms must have matching classes");
  return emitTo(Opcode::Select, Result.regClass(A), {Pred, A, B});
}

RegId LoopBuilder::predAnd(RegId A, RegId B) {
  return emitTo(Opcode::PredSet, RegClass::Pred, {A, B});
}

RegId LoopBuilder::load(RegClass DestClass, MemRef Ref, RegId Index) {
  assert((DestClass == RegClass::Int || DestClass == RegClass::Float) &&
         "loads produce int or float values");
  assert(!Finalized && "builder already finalized");
  Instruction Instr;
  Instr.Op = Opcode::Load;
  Instr.Mem = Ref;
  Instr.Pred = CurrentPred;
  if (Ref.Indirect) {
    assert(Index != NoReg && "indirect load requires an index register");
    Instr.Operands.push_back(Index);
  }
  Instr.Dest = Result.addReg(DestClass);
  Result.addInstruction(std::move(Instr));
  return Result.body().back().Dest;
}

void LoopBuilder::store(RegId Value, MemRef Ref, RegId Index) {
  assert(!Finalized && "builder already finalized");
  Instruction Instr;
  Instr.Op = Opcode::Store;
  Instr.Mem = Ref;
  Instr.Pred = CurrentPred;
  Instr.Operands.push_back(Value);
  if (Ref.Indirect) {
    assert(Index != NoReg && "indirect store requires an index register");
    Instr.Operands.push_back(Index);
  }
  Result.addInstruction(std::move(Instr));
}

RegId LoopBuilder::addrGen(RegId A, RegId B) {
  std::vector<RegId> Operands = {A};
  if (B != NoReg)
    Operands.push_back(B);
  return emitTo(Opcode::AddrGen, RegClass::Int, std::move(Operands));
}

void LoopBuilder::exitIf(RegId Pred, double TakenProb) {
  assert(!Finalized && "builder already finalized");
  assert(TakenProb >= 0.0 && TakenProb <= 1.0 &&
         "exit probability must be in [0,1]");
  Instruction Instr;
  Instr.Op = Opcode::ExitIf;
  Instr.Operands.push_back(Pred);
  Instr.TakenProb = TakenProb;
  Result.addInstruction(std::move(Instr));
}

void LoopBuilder::call(std::vector<RegId> Args) {
  assert(!Finalized && "builder already finalized");
  Instruction Instr;
  Instr.Op = Opcode::Call;
  Instr.Operands = std::move(Args);
  Instr.Pred = CurrentPred;
  Result.addInstruction(std::move(Instr));
}

Loop LoopBuilder::finalize() {
  assert(!Finalized && "finalize() called twice");
  assert(OpenPhis.empty() && "finalize() with unclosed phi nodes");
  Finalized = true;

  // Canonical loop control tail. One copy survives per *unrolled* body,
  // which is exactly the branch-overhead amortization unrolling buys.
  RegId Iv = Result.addReg(RegClass::Int, "iv");
  Instruction Inc;
  Inc.Op = Opcode::IvAdd;
  Inc.Operands.push_back(Iv);
  Inc.Dest = Result.addReg(RegClass::Int, "iv.next");
  Result.addInstruction(Inc);

  Instruction Cmp;
  Cmp.Op = Opcode::IvCmp;
  Cmp.Operands.push_back(Result.body().back().Dest);
  Cmp.Dest = Result.addReg(RegClass::Pred, "iv.cond");
  Result.addInstruction(Cmp);

  Instruction Br;
  Br.Op = Opcode::BackBr;
  Br.Operands.push_back(Result.body().back().Dest);
  Result.addInstruction(Br);

  return std::move(Result);
}
