//===- ir/Parser.h - Textual loop format parsing ----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual loop format produced by Printer.h. A file may contain
/// any number of loops; '#' starts a comment. The parser reports the first
/// syntax error with its line number; semantic well-formedness is the
/// Verifier's job.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_PARSER_H
#define METAOPT_IR_PARSER_H

#include "ir/Loop.h"

#include <string>
#include <string_view>
#include <vector>

namespace metaopt {

/// Result of parsing a loop file.
struct ParseResult {
  std::vector<Loop> Loops;
  std::string Error; ///< Empty on success.
  size_t ErrorLine = 0;

  bool succeeded() const { return Error.empty(); }
};

/// Parses all loops in \p Text. \p FileName, when non-empty, is recorded
/// as each loop's sourceFile(); every parsed loop carries 1-based source
/// lines on its header, phis, and instructions so downstream diagnostics
/// (ir/Diagnostics.h) can point back into the input.
ParseResult parseLoops(std::string_view Text, std::string FileName = "");

} // namespace metaopt

#endif // METAOPT_IR_PARSER_H
