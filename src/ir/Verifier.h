//===- ir/Verifier.h - Loop well-formedness checks --------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of loops: SSA-style single definitions, ordered
/// uses, class-correct operands, well-formed memory references and loop
/// control. Every loop that enters the measurement or learning pipeline is
/// expected to verify cleanly; the corpus generators and the unroller are
/// tested to only produce verifying loops.
///
/// The verifier reports on the shared diagnostic model (ir/Diagnostics.h)
/// with stable V###-prefixed IDs and per-violation loop/instruction
/// context, and it reports every violation it can reach in one pass —
/// entities with out-of-range register ids skip only their own
/// class-sensitive checks, not the rest of the loop. The deeper semantic
/// analyses (dataflow, memory shapes, dependence legality) live in
/// analysis/lint on the same model.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_VERIFIER_H
#define METAOPT_IR_VERIFIER_H

#include "ir/Diagnostics.h"
#include "ir/Loop.h"

#include <string>
#include <vector>

namespace metaopt {

/// Options controlling strictness.
struct VerifyOptions {
  /// Require the canonical IvAdd/IvCmp/BackBr tail (present after
  /// LoopBuilder::finalize and preserved by the unroller).
  bool RequireLoopControl = true;
};

/// Stable verifier diagnostic IDs (catalog: docs/DIAGNOSTICS.md).
namespace diag {
inline constexpr const char *RegOutOfRange = "V001-reg-out-of-range";
inline constexpr const char *PhiUnsetReg = "V002-phi-unset-reg";
inline constexpr const char *MultipleDef = "V003-multiple-def";
inline constexpr const char *PhiClassMismatch = "V004-phi-class-mismatch";
inline constexpr const char *PhiInitNotLiveIn = "V005-phi-init-not-live-in";
inline constexpr const char *PhiSelfRecurrence = "V006-phi-self-recurrence";
inline constexpr const char *PhiRecurNotComputed =
    "V007-phi-recur-not-computed";
inline constexpr const char *DestArity = "V008-dest-arity";
inline constexpr const char *GuardNotPredicate = "V009-guard-not-predicate";
inline constexpr const char *GuardBeforeDef = "V010-guard-before-def";
inline constexpr const char *PredicatedControl = "V011-predicated-control";
inline constexpr const char *UseBeforeDef = "V012-use-before-def";
inline constexpr const char *OperandCount = "V013-operand-count";
inline constexpr const char *OperandClass = "V014-operand-class";
inline constexpr const char *MemSize = "V015-mem-size";
inline constexpr const char *ExitProb = "V016-exit-prob";
inline constexpr const char *DestClass = "V017-dest-class";
inline constexpr const char *LoopControl = "V018-loop-control";
} // namespace diag

/// Verifies \p L, reporting every violation as an error diagnostic.
DiagnosticReport verifyLoopDiagnostics(const Loop &L,
                                       const VerifyOptions &Options = {});

/// Returns all well-formedness violations in \p L as rendered strings
/// (empty if none). Compatibility wrapper over verifyLoopDiagnostics.
std::vector<std::string> verifyLoop(const Loop &L,
                                    const VerifyOptions &Options = {});

/// Convenience: true when verifyLoop reports no violations.
bool isWellFormed(const Loop &L, const VerifyOptions &Options = {});

} // namespace metaopt

#endif // METAOPT_IR_VERIFIER_H
