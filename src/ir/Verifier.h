//===- ir/Verifier.h - Loop well-formedness checks --------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verification of loops: SSA-style single definitions, ordered
/// uses, class-correct operands, well-formed memory references and loop
/// control. Every loop that enters the measurement or learning pipeline is
/// expected to verify cleanly; the corpus generators and the unroller are
/// tested to only produce verifying loops.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_VERIFIER_H
#define METAOPT_IR_VERIFIER_H

#include "ir/Loop.h"

#include <string>
#include <vector>

namespace metaopt {

/// Options controlling strictness.
struct VerifyOptions {
  /// Require the canonical IvAdd/IvCmp/BackBr tail (present after
  /// LoopBuilder::finalize and preserved by the unroller).
  bool RequireLoopControl = true;
};

/// Returns all well-formedness violations in \p L (empty if none).
std::vector<std::string> verifyLoop(const Loop &L,
                                    const VerifyOptions &Options = {});

/// Convenience: true when verifyLoop reports no violations.
bool isWellFormed(const Loop &L, const VerifyOptions &Options = {});

} // namespace metaopt

#endif // METAOPT_IR_VERIFIER_H
