//===- ir/Instruction.h - Loop IR instructions ------------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction, memory reference, and loop-carried phi representations.
///
/// A loop body is a straight-line sequence of (optionally predicated)
/// instructions; internal control flow is expressed Itanium-style through
/// predicate registers, and early exits through ExitIf instructions. Memory
/// addresses are symbolic linear functions of the loop induction variable
/// (base symbol + stride * i + offset), which is what both the dependence
/// analysis and the unroller's address rewriting consume.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_INSTRUCTION_H
#define METAOPT_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace metaopt {

/// Virtual register id. Register classes live in the owning Loop.
using RegId = uint32_t;

/// Sentinel for "no register" (absent destination / unpredicated).
constexpr RegId NoReg = std::numeric_limits<RegId>::max();

/// A symbolic memory address: BaseSym + Stride * i + Offset (bytes), where
/// i is the innermost induction variable. Indirect references (a[b[i]])
/// additionally consume an index register operand and defeat dependence
/// distance computation.
struct MemRef {
  int32_t BaseSym = 0;   ///< Array/base identity; equal syms may alias.
  int64_t Stride = 0;    ///< Bytes advanced per loop iteration.
  int64_t Offset = 0;    ///< Constant byte offset.
  bool Indirect = false; ///< Address depends on a run-time value.
  int32_t SizeBytes = 8; ///< Access width in bytes.

  bool operator==(const MemRef &Other) const = default;
};

/// A single (optionally predicated) instruction.
struct Instruction {
  Opcode Op = Opcode::IAdd;
  RegId Dest = NoReg;          ///< Defined register, NoReg if none.
  std::vector<RegId> Operands; ///< Register operands.
  RegId Pred = NoReg;          ///< Guarding predicate, NoReg if always-on.
  int64_t Imm = 0;             ///< Immediate (constants, shift counts).
  MemRef Mem;                  ///< Valid when Op is Load/Store.
  double TakenProb = 0.0;      ///< ExitIf: per-iteration exit probability.
  /// Load only: second half of a merged wide access (Itanium ldfpd); it
  /// rides along with its partner and occupies no issue slot or M unit.
  bool Paired = false;
  /// 1-based source line in the textual loop format, 0 when the
  /// instruction was built programmatically. Transforms propagate the
  /// originating line to clones so diagnostics on transformed loops still
  /// point into the source.
  unsigned SrcLine = 0;

  bool isMemory() const { return opcodeInfo(Op).IsMemory; }
  bool isFloat() const { return opcodeInfo(Op).IsFloat; }
  bool isBranchLike() const { return opcodeInfo(Op).IsBranchLike; }
  bool isImplicit() const { return opcodeInfo(Op).IsImplicit; }
  bool isLoopControl() const { return opcodeInfo(Op).IsLoopControl; }
  bool hasDest() const { return Dest != NoReg; }
  bool isLoad() const { return Op == Opcode::Load; }
  bool isStore() const { return Op == Opcode::Store; }
  bool isCall() const { return Op == Opcode::Call; }
};

/// A loop-carried value: at the top of every iteration, \c Dest holds the
/// loop-live-in \c Init on the first iteration and the previous iteration's
/// \c Recur afterwards (dependence distance 1).
struct PhiNode {
  RegId Dest = NoReg;  ///< Register the body reads.
  RegId Init = NoReg;  ///< Live-in initial value.
  RegId Recur = NoReg; ///< Value computed by the body each iteration.
  unsigned SrcLine = 0; ///< 1-based source line, 0 when unknown.
};

} // namespace metaopt

#endif // METAOPT_IR_INSTRUCTION_H
