//===- ir/Diagnostics.cpp -------------------------------------------------===//

#include "ir/Diagnostics.h"

#include <cassert>

using namespace metaopt;

const char *metaopt::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  assert(false && "unknown severity");
  return "?";
}

bool Diagnostic::hasId(std::string_view Code) const {
  if (Id.size() < Code.size())
    return false;
  if (std::string_view(Id).substr(0, Code.size()) != Code)
    return false;
  // "L001" must not match "L001x-..."; accept exact match or a '-' next.
  return Id.size() == Code.size() || Id[Code.size()] == '-';
}

std::string metaopt::renderDiagnostic(const Diagnostic &D) {
  std::string Out;
  if (!D.LoopName.empty())
    Out += D.LoopName + ":";
  if (D.SrcLine != 0)
    Out += std::to_string(D.SrcLine) + ":";
  if (!Out.empty())
    Out += " ";
  Out += std::string(severityName(D.Sev)) + ": [" + D.Id + "] " + D.Message;
  if (!D.Context.empty())
    Out += " {" + D.Context + "}";
  return Out;
}

std::string metaopt::jsonEscape(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string metaopt::renderDiagnosticJson(const Diagnostic &D) {
  std::string Out = "{\"id\": \"" + jsonEscape(D.Id) + "\"";
  Out += ", \"severity\": \"" + std::string(severityName(D.Sev)) + "\"";
  if (!D.LoopName.empty())
    Out += ", \"loop\": \"" + jsonEscape(D.LoopName) + "\"";
  if (D.BodyIndex >= 0)
    Out += ", \"instr\": " + std::to_string(D.BodyIndex);
  if (D.SrcLine != 0)
    Out += ", \"line\": " + std::to_string(D.SrcLine);
  Out += ", \"message\": \"" + jsonEscape(D.Message) + "\"";
  if (!D.Context.empty())
    Out += ", \"context\": \"" + jsonEscape(D.Context) + "\"";
  Out += "}";
  return Out;
}

std::string metaopt::renderDiagnosticJson(const Diagnostic &D,
                                          std::string_view Origin) {
  return "{\"origin\":\"" + jsonEscape(Origin) +
         "\",\"diagnostic\":" + renderDiagnosticJson(D) + "}";
}

void DiagnosticReport::append(const DiagnosticReport &Other) {
  Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
}

size_t DiagnosticReport::count(Severity Sev) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Sev;
  return N;
}

size_t DiagnosticReport::countId(std::string_view Code) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.hasId(Code);
  return N;
}

std::string DiagnosticReport::renderText() const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += renderDiagnostic(D) + "\n";
  return Out;
}

std::string DiagnosticReport::renderJson() const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += renderDiagnosticJson(D) + "\n";
  return Out;
}

const std::vector<DiagnosticCatalogEntry> &metaopt::diagnosticCatalog() {
  static const std::vector<DiagnosticCatalogEntry> Catalog = {
      // V### — structural verifier (ir/Verifier.h), all errors.
      {"V001-reg-out-of-range", "error",
       "A phi or instruction mentions a register that was never created "
       "on the loop."},
      {"V002-phi-unset-reg", "error",
       "A phi's Dest, Init, or Recur field is unset (NoReg)."},
      {"V003-multiple-def", "error",
       "A register is defined twice (by instructions or phis); the IR is "
       "single static assignment."},
      {"V004-phi-class-mismatch", "error",
       "A phi's Init or Recur register class differs from its "
       "destination's class."},
      {"V005-phi-init-not-live-in", "error",
       "A phi initial value is computed in the body; inits must be "
       "live-in (loop-invariant)."},
      {"V006-phi-self-recurrence", "error",
       "A phi recurs directly on its own destination."},
      {"V007-phi-recur-not-computed", "error",
       "A phi's recurrence source is not defined by any body "
       "instruction."},
      {"V008-dest-arity", "error",
       "A value-producing opcode lacks a destination, or an effect-only "
       "opcode has one."},
      {"V009-guard-not-predicate", "error",
       "An instruction guard is not a predicate-class register."},
      {"V010-guard-before-def", "error",
       "A guard register is read before it is defined and is not a "
       "live-in or phi."},
      {"V011-predicated-control", "error",
       "A loop-control instruction (iv_add/iv_cmp/back_br) carries a "
       "predicate."},
      {"V012-use-before-def", "error",
       "An operand is read before definition and is not a live-in or phi "
       "destination."},
      {"V013-operand-count", "error",
       "Operand count does not match the opcode signature."},
      {"V014-operand-class", "error",
       "An operand's register class does not match the opcode "
       "signature."},
      {"V015-mem-size", "error",
       "A memory reference's access size is not a positive power of "
       "two."},
      {"V016-exit-prob", "error",
       "An exit_if taken probability lies outside [0, 1]."},
      {"V017-dest-class", "error",
       "The destination's register class does not match the opcode "
       "result class."},
      {"V018-loop-control", "error",
       "The canonical iv_add/iv_cmp/back_br tail is missing, mis-wired, "
       "or not last (checked under VerifyOptions::RequireLoopControl, "
       "the default)."},
      // A### — symbolic-analysis-backed lint passes (analysis/lint,
      // analysis/symbolic).
      {"A001-context-out-of-bounds", "warning",
       "The symbolic address range of an access provably leaves the "
       "extent its imported 'array' directive declared: the prover "
       "evaluates base + offset + stride*i over the full iteration range "
       "and compares against the declared byte size."},
      {"A002-dead-predicated-store", "warning",
       "A store is guarded by a predicate the stride-interval analysis "
       "proves always-false: it can never execute, and every feature or "
       "dependence derived from it is noise."},
      {"A003-overflow-prone-iv-arithmetic", "warning",
       "Induction arithmetic whose affine evaluation leaves the int64 "
       "range somewhere in the iteration space: the value still wraps "
       "deterministically, but range and comparison proofs are refused "
       "for it and dependent analyses go conservative."},
      {"A004-contradictory-stride-declaration", "warning",
       "An imported 'array' directive declares a stride that contradicts "
       "the effective symbolic stride the analysis computes for an "
       "access to that symbol."},
      // L### — dataflow lint passes (analysis/lint).
      {"L001-use-before-def", "error",
       "An operand (or guard) register that no definition reaches: read "
       "before its definition and not live-in."},
      {"L002-maybe-undef-under-predication", "warning",
       "A read of a value whose only definition is guarded, from an "
       "instruction that is unguarded or differently guarded; the value "
       "is undefined on iterations where the guard is false."},
      {"L003-dead-def", "note",
       "A computed value that no store, call, exit, recurrence, or later "
       "use observes; dead code dilutes the resource-usage features the "
       "classifier learns from."},
      {"L004-constant-exit", "note / warning",
       "An exit_if whose taken probability is exactly 0 (note: the exit "
       "never fires, pure overhead) or exactly 1 (warning: the loop "
       "exits on the first iteration)."},
      {"L005-constant-predicate", "warning",
       "A guard or select condition that is compile-time constant, "
       "propagated through copy/select/predset by a fixed point; the "
       "predication is vacuous."},
      {"L006-memory-waw", "warning",
       "Store hazards: two stores that provably hit the same address "
       "every iteration, stride-0 stores, or stores whose |stride| is "
       "smaller than the access size (self-overlapping)."},
      {"L007-stride-shape", "warning / note",
       "Memory-shape inconsistencies that force the dependence analysis "
       "conservative: one array's references disagreeing on stride, "
       "partial overlaps with mixed access sizes, or indirect references "
       "carrying a nonzero (ignored) stride."},
      {"L008-depgraph-legality", "error",
       "A DependenceGraph violates the schedulers' legality assumptions: "
       "a backward intra-iteration edge, an uncovered def-use or "
       "may-alias pair, or an unordered early exit or call."},
      // X### — post-unroll invariants (analysis/lint/UnrollInvariants.h),
      // all errors.
      {"X001-unrolled-shape", "error",
       "An unrolled loop fails to verify, or does not consist of exactly "
       "Factor straight-line replicas plus one fresh loop-control tail."},
      {"X002-replica-isomorphism", "error",
       "A replica is not the original body under a consistent register "
       "renaming (opcodes, immediates, or def-use wiring differ)."},
      {"X003-stride-scaling", "error",
       "A memory clone in replica k does not read/write offset + "
       "stride*k with stride scaled by Factor, or changed symbol, "
       "indirection, or size."},
      {"X004-live-out-coverage", "error",
       "An original phi did not survive unrolling as one phi or Factor "
       "split accumulators, fully wired."},
      {"X005-trip-accounting", "error",
       "main * Factor + epilogue does not equal the original trip count "
       "(static and runtime)."},
      // I### — mloop importer (src/import), all errors.
      {"I000-io-error", "error",
       "The input file is unreadable, or a directory sweep matched "
       "nothing."},
      {"I001-missing-header", "error",
       "The first meaningful line is not an 'mloop <version>' header."},
      {"I002-bad-version", "error",
       "The mloop format version is unsupported."},
      {"I003-syntax", "error",
       "Malformed line: header, statement, clause, or tail shape."},
      {"I004-unknown-directive", "error",
       "A top-level word is not loop/source/context."},
      {"I005-unknown-opcode", "error", "Unknown instruction mnemonic."},
      {"I006-bad-type", "error",
       "A type token is invalid for this mnemonic (e.g. 'or i1')."},
      {"I007-duplicate-value", "error", "An SSA name is defined twice."},
      {"I008-phi-recur-undefined", "error",
       "A phi's recur operand is never defined in the body."},
      {"I009-def-use-cycle", "error",
       "A body instruction uses a later body definition (loop-carried "
       "values need a phi)."},
      {"I010-trip-out-of-range", "error",
       "trip/rtrip/depth outside their allowed ranges, or rtrip "
       "contradicting a known trip."},
      {"I011-bad-memref", "error",
       "Malformed @sym[...] reference, bad attribute, or access size "
       "outside {1,2,4,8,16}."},
      {"I012-bad-probability", "error",
       "An exit without prob=, or a probability outside [0, 1]."},
      {"I013-operand-count", "error",
       "Wrong operand arity (e.g. a 2-operand fma)."},
      {"I014-class-mismatch", "error",
       "An operand or guard register class is wrong at its use."},
      {"I015-truncated", "error", "A loop body is not closed by '}'."},
      {"I016-empty-loop", "error", "A loop contains no statements."},
      {"I017-bad-guard", "error",
       "A when() guard on an exit or loop-control instruction."},
      {"I018-bad-index", "error",
       "An ind() index on a non-memory op, or an indirect memref without "
       "ind()."},
      {"I019-phi-init-defined", "error",
       "A phi's init operand is defined inside the loop."},
      {"I020-bad-directive-arg", "error",
       "An unparsable or out-of-range source/context directive value "
       "(including 'array' extents)."},
  };
  return Catalog;
}

const DiagnosticCatalogEntry *
metaopt::findDiagnosticEntry(std::string_view IdOrPrefix) {
  if (IdOrPrefix.empty())
    return nullptr;
  for (const DiagnosticCatalogEntry &Entry : diagnosticCatalog()) {
    std::string_view Id = Entry.Id;
    if (Id.substr(0, IdOrPrefix.size()) != IdOrPrefix)
      continue;
    if (Id.size() == IdOrPrefix.size() || Id[IdOrPrefix.size()] == '-')
      return &Entry;
  }
  return nullptr;
}
