//===- ir/Diagnostics.cpp -------------------------------------------------===//

#include "ir/Diagnostics.h"

#include <cassert>

using namespace metaopt;

const char *metaopt::severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  assert(false && "unknown severity");
  return "?";
}

bool Diagnostic::hasId(std::string_view Code) const {
  if (Id.size() < Code.size())
    return false;
  if (std::string_view(Id).substr(0, Code.size()) != Code)
    return false;
  // "L001" must not match "L001x-..."; accept exact match or a '-' next.
  return Id.size() == Code.size() || Id[Code.size()] == '-';
}

std::string metaopt::renderDiagnostic(const Diagnostic &D) {
  std::string Out;
  if (!D.LoopName.empty())
    Out += D.LoopName + ":";
  if (D.SrcLine != 0)
    Out += std::to_string(D.SrcLine) + ":";
  if (!Out.empty())
    Out += " ";
  Out += std::string(severityName(D.Sev)) + ": [" + D.Id + "] " + D.Message;
  if (!D.Context.empty())
    Out += " {" + D.Context + "}";
  return Out;
}

std::string metaopt::jsonEscape(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string metaopt::renderDiagnosticJson(const Diagnostic &D) {
  std::string Out = "{\"id\": \"" + jsonEscape(D.Id) + "\"";
  Out += ", \"severity\": \"" + std::string(severityName(D.Sev)) + "\"";
  if (!D.LoopName.empty())
    Out += ", \"loop\": \"" + jsonEscape(D.LoopName) + "\"";
  if (D.BodyIndex >= 0)
    Out += ", \"instr\": " + std::to_string(D.BodyIndex);
  if (D.SrcLine != 0)
    Out += ", \"line\": " + std::to_string(D.SrcLine);
  Out += ", \"message\": \"" + jsonEscape(D.Message) + "\"";
  if (!D.Context.empty())
    Out += ", \"context\": \"" + jsonEscape(D.Context) + "\"";
  Out += "}";
  return Out;
}

void DiagnosticReport::append(const DiagnosticReport &Other) {
  Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
}

size_t DiagnosticReport::count(Severity Sev) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Sev == Sev;
  return N;
}

size_t DiagnosticReport::countId(std::string_view Code) const {
  size_t N = 0;
  for (const Diagnostic &D : Diags)
    N += D.hasId(Code);
  return N;
}

std::string DiagnosticReport::renderText() const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += renderDiagnostic(D) + "\n";
  return Out;
}

std::string DiagnosticReport::renderJson() const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += renderDiagnosticJson(D) + "\n";
  return Out;
}
