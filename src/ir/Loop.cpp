//===- ir/Loop.cpp --------------------------------------------------------===//

#include "ir/Loop.h"

#include <cassert>

using namespace metaopt;

const char *metaopt::sourceLanguageName(SourceLanguage Lang) {
  switch (Lang) {
  case SourceLanguage::C:
    return "C";
  case SourceLanguage::Fortran:
    return "Fortran";
  case SourceLanguage::Fortran90:
    return "Fortran90";
  }
  assert(false && "unknown source language");
  return "?";
}

bool metaopt::parseSourceLanguage(const std::string &Name,
                                  SourceLanguage &Out) {
  if (Name == "C") {
    Out = SourceLanguage::C;
    return true;
  }
  if (Name == "Fortran") {
    Out = SourceLanguage::Fortran;
    return true;
  }
  if (Name == "Fortran90") {
    Out = SourceLanguage::Fortran90;
    return true;
  }
  return false;
}

RegId Loop::addReg(RegClass RC, std::string BaseName) {
  RegId Reg = static_cast<RegId>(Classes.size());
  Classes.push_back(RC);
  if (BaseName.empty())
    BaseName = "r" + std::to_string(Reg);
  Names.push_back(std::move(BaseName));
  return Reg;
}

RegClass Loop::regClass(RegId Reg) const {
  assert(Reg < Classes.size() && "register id out of range");
  return Classes[Reg];
}

const std::string &Loop::regName(RegId Reg) const {
  assert(Reg < Names.size() && "register id out of range");
  return Names[Reg];
}

void Loop::setRegName(RegId Reg, std::string NewName) {
  assert(Reg < Names.size() && "register id out of range");
  Names[Reg] = std::move(NewName);
}

size_t Loop::addInstruction(Instruction Instr) {
  Body.push_back(std::move(Instr));
  return Body.size() - 1;
}

void Loop::addPhi(PhiNode Phi) { Phis.push_back(Phi); }

bool Loop::isPhiDest(RegId Reg) const {
  for (const PhiNode &Phi : Phis)
    if (Phi.Dest == Reg)
      return true;
  return false;
}

bool Loop::isLiveIn(RegId Reg) const {
  if (isPhiDest(Reg))
    return false;
  for (const Instruction &Instr : Body)
    if (Instr.Dest == Reg)
      return false;
  return true;
}

size_t Loop::bodySizeWithoutControl() const {
  size_t Count = 0;
  for (const Instruction &Instr : Body)
    if (!Instr.isLoopControl())
      ++Count;
  return Count;
}
