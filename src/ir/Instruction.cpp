//===- ir/Instruction.cpp -------------------------------------------------===//
// Instruction is a plain aggregate; this file intentionally only anchors
// the translation unit for the library.

#include "ir/Instruction.h"
