//===- ir/Diagnostics.h - Diagnostic model for IR analyses ------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic model shared by the IR verifier, the lint engine
/// (analysis/lint), and the metaopt-lint tool: a severity level, a stable
/// diagnostic ID (e.g. "L001-use-before-def"), an anchor (loop name, body
/// index, source line when the loop came from the textual format), and a
/// message. DiagnosticReport collects diagnostics and renders them as
/// one-per-line text or JSON; rendering is a pure function of the
/// collected diagnostics, so reports assembled in a deterministic order
/// serialize identically regardless of which threads produced them.
///
/// The full catalog of IDs lives in docs/DIAGNOSTICS.md.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_DIAGNOSTICS_H
#define METAOPT_IR_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace metaopt {

/// Diagnostic severity. Errors make a loop unusable for labeling or
/// transformation; warnings flag suspicious-but-legal shapes; notes are
/// informational findings.
enum class Severity { Note, Warning, Error };

/// Returns "note" / "warning" / "error".
const char *severityName(Severity Sev);

/// One finding. IDs are stable "<letter><3 digits>-<slug>" strings:
/// V### verifier, L### lint passes, X### post-transform invariants.
struct Diagnostic {
  std::string Id;          ///< Stable ID, e.g. "L001-use-before-def".
  Severity Sev = Severity::Error;
  std::string LoopName;    ///< Owning loop ("" when not loop-specific).
  int BodyIndex = -1;      ///< Body instruction index, -1 for loop-level.
  unsigned SrcLine = 0;    ///< 1-based source line, 0 when unknown.
  std::string Message;     ///< Human-readable description.
  std::string Context;     ///< Optional printed instruction.

  /// True when this diagnostic's ID starts with \p Code (either the full
  /// ID or just the "L001" prefix).
  bool hasId(std::string_view Code) const;
};

/// Renders one diagnostic as a single line:
///   <loop>:<line>: <severity>: [<id>] <message> {context}
std::string renderDiagnostic(const Diagnostic &D);

/// Renders one diagnostic as a single-line JSON object.
std::string renderDiagnosticJson(const Diagnostic &D);

/// Renders one diagnostic wrapped with the unit it was found in:
///   {"origin":"<origin>","diagnostic":{...}}
/// The one JSON shape every tool that sweeps multiple units
/// (metaopt-lint, metaopt-import, CI sweeps) emits per diagnostic, so
/// downstream consumers parse a single format.
std::string renderDiagnosticJson(const Diagnostic &D,
                                 std::string_view Origin);

/// An ordered collection of diagnostics. Order is insertion order; callers
/// that assemble per-loop reports in a stable loop order get deterministic
/// rendering for free.
class DiagnosticReport {
public:
  void add(Diagnostic D) { Diags.push_back(std::move(D)); }

  /// Appends all diagnostics of \p Other (in order).
  void append(const DiagnosticReport &Other);

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  bool empty() const { return Diags.empty(); }
  size_t size() const { return Diags.size(); }

  size_t count(Severity Sev) const;
  size_t errorCount() const { return count(Severity::Error); }
  size_t warningCount() const { return count(Severity::Warning); }
  size_t noteCount() const { return count(Severity::Note); }
  bool hasErrors() const { return errorCount() != 0; }

  /// Number of diagnostics whose ID matches \p Code (see Diagnostic::hasId).
  size_t countId(std::string_view Code) const;

  /// Text rendering, one diagnostic per line (trailing newline when
  /// non-empty).
  std::string renderText() const;

  /// JSON-lines rendering, one object per line.
  std::string renderJson() const;

private:
  std::vector<Diagnostic> Diags;
};

/// Escapes \p Str for inclusion inside a JSON string literal.
std::string jsonEscape(std::string_view Str);

/// One entry of the cross-family diagnostic catalog: docs/DIAGNOSTICS.md
/// (and docs/IMPORT.md for the I series) rendered as data, so tools can
/// explain any stable ID without shipping the docs. Severity is a display
/// string because a few IDs emit at more than one level (e.g. L004).
struct DiagnosticCatalogEntry {
  const char *Id;          ///< Full stable ID, e.g. "L001-use-before-def".
  const char *SevName;     ///< "error", "warning", "note", or a mix.
  const char *Explanation; ///< The catalog's one-paragraph description.
};

/// The full catalog across every ID family — V### verifier, L###/A###
/// lint, X### post-unroll invariants, I### importer — in family + ID
/// order. metaopt-lint --explain renders entries from here; a unit test
/// cross-checks it against every registered producer.
const std::vector<DiagnosticCatalogEntry> &diagnosticCatalog();

/// Entry for \p IdOrPrefix (full ID or "L001"-style hyphen-boundary
/// prefix), or nullptr when the ID is unknown.
const DiagnosticCatalogEntry *findDiagnosticEntry(std::string_view IdOrPrefix);

} // namespace metaopt

#endif // METAOPT_IR_DIAGNOSTICS_H
