//===- ir/Verifier.cpp ----------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Printer.h"

#include <set>

using namespace metaopt;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Loop &L, const VerifyOptions &Options)
      : L(L), Options(Options) {}

  std::vector<std::string> run() {
    checkRegisterIds();
    if (!Errors.empty())
      return Errors; // Out-of-range ids make later checks unsafe.
    checkSingleDefinitions();
    checkPhis();
    checkInstructions();
    checkLoopControl();
    return Errors;
  }

private:
  const Loop &L;
  const VerifyOptions &Options;
  std::vector<std::string> Errors;

  void error(const std::string &Message) { Errors.push_back(Message); }

  void errorAt(size_t BodyIndex, const std::string &Message) {
    error("instruction " + std::to_string(BodyIndex) + " (" +
          printInstruction(L, L.body()[BodyIndex]) + "): " + Message);
  }

  bool validReg(RegId Reg) const { return Reg < L.numRegs(); }

  void checkRegisterIds() {
    auto Check = [&](RegId Reg, const std::string &What) {
      if (Reg != NoReg && !validReg(Reg))
        error(What + " references out-of-range register " +
              std::to_string(Reg));
    };
    for (const PhiNode &Phi : L.phis()) {
      Check(Phi.Dest, "phi dest");
      Check(Phi.Init, "phi init");
      Check(Phi.Recur, "phi recur");
      if (Phi.Dest == NoReg || Phi.Init == NoReg || Phi.Recur == NoReg)
        error("phi has an unset register");
    }
    for (size_t I = 0; I < L.body().size(); ++I) {
      const Instruction &Instr = L.body()[I];
      Check(Instr.Dest, "dest of instruction " + std::to_string(I));
      Check(Instr.Pred, "predicate of instruction " + std::to_string(I));
      for (RegId Operand : Instr.Operands)
        Check(Operand, "operand of instruction " + std::to_string(I));
    }
  }

  void checkSingleDefinitions() {
    std::set<RegId> Defined;
    for (const PhiNode &Phi : L.phis())
      if (!Defined.insert(Phi.Dest).second)
        error("register " + L.regName(Phi.Dest) + " defined more than once");
    for (size_t I = 0; I < L.body().size(); ++I) {
      const Instruction &Instr = L.body()[I];
      if (Instr.hasDest() && !Defined.insert(Instr.Dest).second)
        errorAt(I, "register " + L.regName(Instr.Dest) +
                       " defined more than once");
    }
  }

  void checkPhis() {
    for (const PhiNode &Phi : L.phis()) {
      if (Phi.Dest == NoReg || Phi.Init == NoReg || Phi.Recur == NoReg)
        continue; // Reported already.
      RegClass RC = L.regClass(Phi.Dest);
      if (L.regClass(Phi.Init) != RC || L.regClass(Phi.Recur) != RC)
        error("phi " + L.regName(Phi.Dest) + " mixes register classes");
      if (!L.isLiveIn(Phi.Init))
        error("phi " + L.regName(Phi.Dest) +
              " initial value must be live-in");
      if (Phi.Recur == Phi.Dest)
        error("phi " + L.regName(Phi.Dest) + " recurs on itself directly");
      // The recurrence source must be computed by the body.
      bool DefinedInBody = false;
      for (const Instruction &Instr : L.body())
        if (Instr.Dest == Phi.Recur)
          DefinedInBody = true;
      if (!DefinedInBody && !L.isPhiDest(Phi.Recur))
        error("phi " + L.regName(Phi.Dest) +
              " recurrence source is not computed in the loop");
    }
  }

  /// True when \p Reg may be read by instruction \p BodyIndex: live-in,
  /// phi destination, or defined earlier in the body.
  bool availableAt(RegId Reg, size_t BodyIndex) const {
    if (L.isLiveIn(Reg) || L.isPhiDest(Reg))
      return true;
    for (size_t I = 0; I < BodyIndex; ++I)
      if (L.body()[I].Dest == Reg)
        return true;
    return false;
  }

  void checkOperandClass(size_t I, RegId Operand, RegClass Expected) {
    if (L.regClass(Operand) != Expected)
      errorAt(I, "operand " + L.regName(Operand) + " has wrong class");
  }

  void checkInstructions() {
    for (size_t I = 0; I < L.body().size(); ++I) {
      const Instruction &Instr = L.body()[I];
      const OpcodeInfo &Info = opcodeInfo(Instr.Op);

      if (Info.HasDest != Instr.hasDest())
        errorAt(I, Info.HasDest ? "missing destination"
                                : "unexpected destination");

      if (Instr.Pred != NoReg) {
        if (L.regClass(Instr.Pred) != RegClass::Pred)
          errorAt(I, "guard is not a predicate register");
        else if (!availableAt(Instr.Pred, I))
          errorAt(I, "guard used before definition");
        if (Instr.isLoopControl() || Instr.Op == Opcode::ExitIf)
          errorAt(I, "control instructions must not be predicated");
      }

      for (RegId Operand : Instr.Operands)
        if (!availableAt(Operand, I))
          errorAt(I, "operand " + L.regName(Operand) +
                         " used before definition");

      checkSignature(I, Instr, Info);
    }
  }

  void checkSignature(size_t I, const Instruction &Instr,
                      const OpcodeInfo &Info) {
    size_t NumOperands = Instr.Operands.size();
    switch (Instr.Op) {
    case Opcode::Load: {
      size_t Expected = Instr.Mem.Indirect ? 1 : 0;
      if (NumOperands != Expected) {
        errorAt(I, "load operand count mismatch");
        return;
      }
      if (Instr.Mem.Indirect)
        checkOperandClass(I, Instr.Operands[0], RegClass::Int);
      if (Instr.hasDest() && L.regClass(Instr.Dest) == RegClass::Pred)
        errorAt(I, "load destination must be int or float");
      if (Instr.Mem.SizeBytes <= 0)
        errorAt(I, "load size must be positive");
      return;
    }
    case Opcode::Store: {
      size_t Expected = Instr.Mem.Indirect ? 2 : 1;
      if (NumOperands != Expected) {
        errorAt(I, "store operand count mismatch");
        return;
      }
      if (L.regClass(Instr.Operands[0]) == RegClass::Pred)
        errorAt(I, "stored value must be int or float");
      if (Instr.Mem.Indirect)
        checkOperandClass(I, Instr.Operands[1], RegClass::Int);
      if (Instr.Mem.SizeBytes <= 0)
        errorAt(I, "store size must be positive");
      return;
    }
    case Opcode::Copy: {
      if (NumOperands != 1) {
        errorAt(I, "copy takes exactly one operand");
        return;
      }
      if (Instr.hasDest() &&
          L.regClass(Instr.Dest) != L.regClass(Instr.Operands[0]))
        errorAt(I, "copy register class mismatch");
      return;
    }
    case Opcode::Select: {
      if (NumOperands != 3) {
        errorAt(I, "select takes exactly three operands");
        return;
      }
      checkOperandClass(I, Instr.Operands[0], RegClass::Pred);
      if (L.regClass(Instr.Operands[1]) != L.regClass(Instr.Operands[2]))
        errorAt(I, "select arms have mismatched classes");
      else if (Instr.hasDest() &&
               L.regClass(Instr.Dest) != L.regClass(Instr.Operands[1]))
        errorAt(I, "select destination class mismatch");
      return;
    }
    case Opcode::PredSet: {
      if (NumOperands < 1 || NumOperands > 2) {
        errorAt(I, "predset takes one or two operands");
        return;
      }
      for (RegId Operand : Instr.Operands)
        checkOperandClass(I, Operand, RegClass::Pred);
      return;
    }
    case Opcode::AddrGen: {
      if (NumOperands < 1 || NumOperands > 2) {
        errorAt(I, "addrgen takes one or two operands");
        return;
      }
      for (RegId Operand : Instr.Operands)
        checkOperandClass(I, Operand, RegClass::Int);
      return;
    }
    case Opcode::Call: {
      if (NumOperands > 4)
        errorAt(I, "call takes at most four operands");
      return;
    }
    case Opcode::ExitIf: {
      if (NumOperands != 1) {
        errorAt(I, "exit_if takes exactly one operand");
        return;
      }
      checkOperandClass(I, Instr.Operands[0], RegClass::Pred);
      if (Instr.TakenProb < 0.0 || Instr.TakenProb > 1.0)
        errorAt(I, "exit probability out of [0,1]");
      return;
    }
    default: {
      if (Info.NumOperands >= 0 &&
          NumOperands != static_cast<size_t>(Info.NumOperands)) {
        errorAt(I, "operand count mismatch");
        return;
      }
      for (size_t Slot = 0; Slot < NumOperands; ++Slot)
        checkOperandClass(
            I, Instr.Operands[Slot],
            opcodeOperandClass(Instr.Op, static_cast<int>(Slot)));
      if (Instr.hasDest() && L.regClass(Instr.Dest) != Info.DestClass &&
          Instr.Op != Opcode::Select && Instr.Op != Opcode::Copy)
        errorAt(I, "destination register class mismatch");
      return;
    }
    }
  }

  void checkLoopControl() {
    size_t NumControl = 0;
    for (const Instruction &Instr : L.body())
      if (Instr.isLoopControl())
        ++NumControl;

    if (!Options.RequireLoopControl) {
      if (NumControl != 0 && NumControl != 3)
        error("loop control tail must be complete (IvAdd, IvCmp, BackBr)");
      if (NumControl == 0)
        return;
    } else if (NumControl != 3) {
      error("missing canonical loop control tail");
      return;
    }

    size_t N = L.body().size();
    if (N < 3 || L.body()[N - 3].Op != Opcode::IvAdd ||
        L.body()[N - 2].Op != Opcode::IvCmp ||
        L.body()[N - 1].Op != Opcode::BackBr) {
      error("loop control tail must be the final IvAdd, IvCmp, BackBr "
            "sequence");
      return;
    }
    if (L.body()[N - 2].Operands[0] != L.body()[N - 3].Dest)
      error("IvCmp must test the incremented induction variable");
    if (L.body()[N - 1].Operands[0] != L.body()[N - 2].Dest)
      error("BackBr must branch on the trip test predicate");
  }
};

} // namespace

std::vector<std::string> metaopt::verifyLoop(const Loop &L,
                                             const VerifyOptions &Options) {
  return VerifierImpl(L, Options).run();
}

bool metaopt::isWellFormed(const Loop &L, const VerifyOptions &Options) {
  return verifyLoop(L, Options).empty();
}
