//===- ir/Verifier.cpp ----------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Printer.h"

using namespace metaopt;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Loop &L, const VerifyOptions &Options)
      : L(L), Options(Options) {}

  DiagnosticReport run() {
    computeFirstDefs();
    checkRegisterIds();
    checkSingleDefinitions();
    checkPhis();
    checkInstructions();
    checkLoopControl();
    return std::move(Report);
  }

private:
  const Loop &L;
  const VerifyOptions &Options;
  DiagnosticReport Report;

  void error(const char *Id, const std::string &Message) {
    Diagnostic D;
    D.Id = Id;
    D.Sev = Severity::Error;
    D.LoopName = L.name();
    D.SrcLine = L.headerLine();
    D.Message = Message;
    Report.add(std::move(D));
  }

  void errorAt(const char *Id, size_t BodyIndex,
               const std::string &Message) {
    Diagnostic D;
    D.Id = Id;
    D.Sev = Severity::Error;
    D.LoopName = L.name();
    D.BodyIndex = static_cast<int>(BodyIndex);
    D.SrcLine = L.body()[BodyIndex].SrcLine;
    D.Message = Message;
    if (instrPrintable(L.body()[BodyIndex]))
      D.Context = "instruction " + std::to_string(BodyIndex) + ": " +
                  printInstruction(L, L.body()[BodyIndex]);
    else
      D.Context = "instruction " + std::to_string(BodyIndex);
    Report.add(std::move(D));
  }

  bool validReg(RegId Reg) const { return Reg < L.numRegs(); }

  /// True when every register the instruction mentions is in range, so
  /// the printer and class queries are safe.
  bool instrPrintable(const Instruction &Instr) const {
    if (Instr.Dest != NoReg && !validReg(Instr.Dest))
      return false;
    if (Instr.Pred != NoReg && !validReg(Instr.Pred))
      return false;
    for (RegId Operand : Instr.Operands)
      if (Operand == NoReg || !validReg(Operand))
        return false;
    return true;
  }

  bool phiRegsValid(const PhiNode &Phi) const {
    return validReg(Phi.Dest) && validReg(Phi.Init) && validReg(Phi.Recur);
  }

  void checkRegisterIds() {
    // The message is only materialized on the error path; passing the
    // role as a literal keeps the (overwhelmingly common) clean case
    // allocation-free.
    auto Check = [&](RegId Reg, const char *What, size_t BodyIndex) {
      if (Reg == NoReg || validReg(Reg))
        return;
      std::string Message = std::string(What) +
                            " references out-of-range register " +
                            std::to_string(Reg);
      if (BodyIndex != static_cast<size_t>(-1))
        errorAt(diag::RegOutOfRange, BodyIndex, Message);
      else
        error(diag::RegOutOfRange, Message);
    };
    for (const PhiNode &Phi : L.phis()) {
      Check(Phi.Dest, "phi dest", -1);
      Check(Phi.Init, "phi init", -1);
      Check(Phi.Recur, "phi recur", -1);
      if (Phi.Dest == NoReg || Phi.Init == NoReg || Phi.Recur == NoReg)
        error(diag::PhiUnsetReg, "phi has an unset register");
    }
    for (size_t I = 0; I < L.body().size(); ++I) {
      const Instruction &Instr = L.body()[I];
      Check(Instr.Dest, "dest", I);
      Check(Instr.Pred, "predicate", I);
      for (RegId Operand : Instr.Operands)
        Check(Operand, "operand", I);
    }
  }

  void checkSingleDefinitions() {
    std::vector<char> Defined(L.numRegs(), 0);
    auto Insert = [&](RegId Reg) {
      if (Defined[Reg])
        return false;
      Defined[Reg] = 1;
      return true;
    };
    for (const PhiNode &Phi : L.phis())
      if (validReg(Phi.Dest) && !Insert(Phi.Dest))
        error(diag::MultipleDef, "register " + L.regName(Phi.Dest) +
                                     " defined more than once");
    for (size_t I = 0; I < L.body().size(); ++I) {
      const Instruction &Instr = L.body()[I];
      if (Instr.hasDest() && validReg(Instr.Dest) && !Insert(Instr.Dest))
        errorAt(diag::MultipleDef, I,
                "register " + L.regName(Instr.Dest) +
                    " defined more than once");
    }
  }

  void checkPhis() {
    for (const PhiNode &Phi : L.phis()) {
      if (!phiRegsValid(Phi))
        continue; // V001/V002 reported already.
      RegClass RC = L.regClass(Phi.Dest);
      if (L.regClass(Phi.Init) != RC || L.regClass(Phi.Recur) != RC)
        error(diag::PhiClassMismatch,
              "phi " + L.regName(Phi.Dest) + " mixes register classes");
      if (!isLiveIn(Phi.Init))
        error(diag::PhiInitNotLiveIn,
              "phi " + L.regName(Phi.Dest) +
                  " initial value must be live-in");
      if (Phi.Recur == Phi.Dest)
        error(diag::PhiSelfRecurrence,
              "phi " + L.regName(Phi.Dest) + " recurs on itself directly");
      // The recurrence source must be computed by the body.
      bool DefinedInBody = FirstDef[Phi.Recur] != NoFirstDef;
      if (!DefinedInBody && !PhiDest[Phi.Recur])
        error(diag::PhiRecurNotComputed,
              "phi " + L.regName(Phi.Dest) +
                  " recurrence source is not computed in the loop");
    }
  }

  /// First body index defining each (in-range) register, or NoFirstDef,
  /// plus a phi-destination bitmap. Computed once: Loop::isLiveIn and
  /// Loop::isPhiDest rescan the body and phi list on every call, which
  /// made operand checking quadratic in the body size.
  static constexpr size_t NoFirstDef = static_cast<size_t>(-1);
  std::vector<size_t> FirstDef;
  std::vector<char> PhiDest;

  void computeFirstDefs() {
    FirstDef.assign(L.numRegs(), NoFirstDef);
    for (size_t I = 0; I < L.body().size(); ++I) {
      RegId Dest = L.body()[I].Dest;
      if (Dest != NoReg && validReg(Dest) && FirstDef[Dest] == NoFirstDef)
        FirstDef[Dest] = I;
    }
    PhiDest.assign(L.numRegs(), 0);
    for (const PhiNode &Phi : L.phis())
      if (validReg(Phi.Dest))
        PhiDest[Phi.Dest] = 1;
  }

  /// Mirrors Loop::isLiveIn over the precomputed tables: not a phi
  /// destination and never defined by the body.
  bool isLiveIn(RegId Reg) const {
    return !PhiDest[Reg] && FirstDef[Reg] == NoFirstDef;
  }

  /// True when \p Reg may be read by instruction \p BodyIndex: live-in,
  /// phi destination, or defined earlier in the body.
  bool availableAt(RegId Reg, size_t BodyIndex) const {
    if (PhiDest[Reg] || FirstDef[Reg] == NoFirstDef)
      return true;
    return FirstDef[Reg] < BodyIndex;
  }

  void checkOperandClass(size_t I, RegId Operand, RegClass Expected) {
    if (L.regClass(Operand) != Expected)
      errorAt(diag::OperandClass, I,
              "operand " + L.regName(Operand) + " has wrong class");
  }

  void checkInstructions() {
    for (size_t I = 0; I < L.body().size(); ++I) {
      const Instruction &Instr = L.body()[I];
      const OpcodeInfo &Info = opcodeInfo(Instr.Op);

      if (Info.HasDest != Instr.hasDest())
        errorAt(diag::DestArity, I,
                Info.HasDest ? "missing destination"
                             : "unexpected destination");

      if (Instr.Pred != NoReg && validReg(Instr.Pred)) {
        if (L.regClass(Instr.Pred) != RegClass::Pred)
          errorAt(diag::GuardNotPredicate, I,
                  "guard is not a predicate register");
        else if (!availableAt(Instr.Pred, I))
          errorAt(diag::GuardBeforeDef, I, "guard used before definition");
        if (Instr.isLoopControl() || Instr.Op == Opcode::ExitIf)
          errorAt(diag::PredicatedControl, I,
                  "control instructions must not be predicated");
      }

      for (RegId Operand : Instr.Operands)
        if (validReg(Operand) && !availableAt(Operand, I))
          errorAt(diag::UseBeforeDef, I,
                  "operand " + L.regName(Operand) +
                      " used before definition");

      // Class-sensitive signature checks need every register in range.
      if (instrPrintable(Instr))
        checkSignature(I, Instr, Info);
    }
  }

  void checkSignature(size_t I, const Instruction &Instr,
                      const OpcodeInfo &Info) {
    size_t NumOperands = Instr.Operands.size();
    switch (Instr.Op) {
    case Opcode::Load: {
      size_t Expected = Instr.Mem.Indirect ? 1 : 0;
      if (NumOperands != Expected) {
        errorAt(diag::OperandCount, I, "load operand count mismatch");
        return;
      }
      if (Instr.Mem.Indirect)
        checkOperandClass(I, Instr.Operands[0], RegClass::Int);
      if (Instr.hasDest() && L.regClass(Instr.Dest) == RegClass::Pred)
        errorAt(diag::DestClass, I, "load destination must be int or float");
      if (Instr.Mem.SizeBytes <= 0)
        errorAt(diag::MemSize, I, "load size must be positive");
      return;
    }
    case Opcode::Store: {
      size_t Expected = Instr.Mem.Indirect ? 2 : 1;
      if (NumOperands != Expected) {
        errorAt(diag::OperandCount, I, "store operand count mismatch");
        return;
      }
      if (L.regClass(Instr.Operands[0]) == RegClass::Pred)
        errorAt(diag::OperandClass, I, "stored value must be int or float");
      if (Instr.Mem.Indirect)
        checkOperandClass(I, Instr.Operands[1], RegClass::Int);
      if (Instr.Mem.SizeBytes <= 0)
        errorAt(diag::MemSize, I, "store size must be positive");
      return;
    }
    case Opcode::Copy: {
      if (NumOperands != 1) {
        errorAt(diag::OperandCount, I, "copy takes exactly one operand");
        return;
      }
      if (Instr.hasDest() &&
          L.regClass(Instr.Dest) != L.regClass(Instr.Operands[0]))
        errorAt(diag::DestClass, I, "copy register class mismatch");
      return;
    }
    case Opcode::Select: {
      if (NumOperands != 3) {
        errorAt(diag::OperandCount, I,
                "select takes exactly three operands");
        return;
      }
      checkOperandClass(I, Instr.Operands[0], RegClass::Pred);
      if (L.regClass(Instr.Operands[1]) != L.regClass(Instr.Operands[2]))
        errorAt(diag::OperandClass, I, "select arms have mismatched classes");
      else if (Instr.hasDest() &&
               L.regClass(Instr.Dest) != L.regClass(Instr.Operands[1]))
        errorAt(diag::DestClass, I, "select destination class mismatch");
      return;
    }
    case Opcode::PredSet: {
      if (NumOperands < 1 || NumOperands > 2) {
        errorAt(diag::OperandCount, I, "predset takes one or two operands");
        return;
      }
      for (RegId Operand : Instr.Operands)
        checkOperandClass(I, Operand, RegClass::Pred);
      return;
    }
    case Opcode::AddrGen: {
      if (NumOperands < 1 || NumOperands > 2) {
        errorAt(diag::OperandCount, I, "addrgen takes one or two operands");
        return;
      }
      for (RegId Operand : Instr.Operands)
        checkOperandClass(I, Operand, RegClass::Int);
      return;
    }
    case Opcode::Call: {
      if (NumOperands > 4)
        errorAt(diag::OperandCount, I, "call takes at most four operands");
      return;
    }
    case Opcode::ExitIf: {
      if (NumOperands != 1) {
        errorAt(diag::OperandCount, I, "exit_if takes exactly one operand");
        return;
      }
      checkOperandClass(I, Instr.Operands[0], RegClass::Pred);
      if (Instr.TakenProb < 0.0 || Instr.TakenProb > 1.0)
        errorAt(diag::ExitProb, I, "exit probability out of [0,1]");
      return;
    }
    default: {
      if (Info.NumOperands >= 0 &&
          NumOperands != static_cast<size_t>(Info.NumOperands)) {
        errorAt(diag::OperandCount, I, "operand count mismatch");
        return;
      }
      for (size_t Slot = 0; Slot < NumOperands; ++Slot)
        checkOperandClass(
            I, Instr.Operands[Slot],
            opcodeOperandClass(Instr.Op, static_cast<int>(Slot)));
      if (Instr.hasDest() && L.regClass(Instr.Dest) != Info.DestClass &&
          Instr.Op != Opcode::Select && Instr.Op != Opcode::Copy)
        errorAt(diag::DestClass, I, "destination register class mismatch");
      return;
    }
    }
  }

  void checkLoopControl() {
    size_t NumControl = 0;
    for (const Instruction &Instr : L.body())
      if (Instr.isLoopControl())
        ++NumControl;

    if (!Options.RequireLoopControl) {
      if (NumControl != 0 && NumControl != 3)
        error(diag::LoopControl,
              "loop control tail must be complete (IvAdd, IvCmp, BackBr)");
      if (NumControl == 0)
        return;
    } else if (NumControl != 3) {
      error(diag::LoopControl, "missing canonical loop control tail");
      return;
    }

    size_t N = L.body().size();
    if (N < 3 || L.body()[N - 3].Op != Opcode::IvAdd ||
        L.body()[N - 2].Op != Opcode::IvCmp ||
        L.body()[N - 1].Op != Opcode::BackBr) {
      error(diag::LoopControl,
            "loop control tail must be the final IvAdd, IvCmp, BackBr "
            "sequence");
      return;
    }
    if (L.body()[N - 2].Operands.empty() || L.body()[N - 3].Dest == NoReg ||
        L.body()[N - 2].Operands[0] != L.body()[N - 3].Dest)
      error(diag::LoopControl,
            "IvCmp must test the incremented induction variable");
    if (L.body()[N - 1].Operands.empty() || L.body()[N - 2].Dest == NoReg ||
        L.body()[N - 1].Operands[0] != L.body()[N - 2].Dest)
      error(diag::LoopControl,
            "BackBr must branch on the trip test predicate");
  }
};

} // namespace

DiagnosticReport
metaopt::verifyLoopDiagnostics(const Loop &L, const VerifyOptions &Options) {
  return VerifierImpl(L, Options).run();
}

std::vector<std::string> metaopt::verifyLoop(const Loop &L,
                                             const VerifyOptions &Options) {
  DiagnosticReport Report = verifyLoopDiagnostics(L, Options);
  std::vector<std::string> Out;
  for (const Diagnostic &D : Report.diagnostics())
    Out.push_back(renderDiagnostic(D));
  return Out;
}

bool metaopt::isWellFormed(const Loop &L, const VerifyOptions &Options) {
  return verifyLoopDiagnostics(L, Options).empty();
}
