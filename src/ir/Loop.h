//===- ir/Loop.h - Innermost loop representation ----------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Loop class: an innermost, unroll-candidate loop. It owns the body
/// instructions, the loop-carried phi nodes, per-register classes and
/// names, and the metadata the paper's feature vector draws on (nest
/// level, trip count, source language).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_IR_LOOP_H
#define METAOPT_IR_LOOP_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace metaopt {

/// Maximum unroll factor considered anywhere in the system. The paper
/// fixes eight: "In all cases we set the maximum unroll factor to eight."
constexpr unsigned MaxUnrollFactor = 8;

/// Source language the loop was "written" in; a paper feature.
enum class SourceLanguage { C, Fortran, Fortran90 };

/// Returns "C" / "Fortran" / "Fortran90".
const char *sourceLanguageName(SourceLanguage Lang);

/// Parses a language name; returns false if unknown.
bool parseSourceLanguage(const std::string &Name, SourceLanguage &Out);

/// An innermost loop: straight-line predicated body + loop-carried phis.
///
/// Invariants (checked by verifyLoop):
///  - every register is defined at most once (by a phi or a body
///    instruction);
///  - operands are defined by a phi, an earlier body instruction, or are
///    live-in (defined nowhere in the loop);
///  - register classes match opcode signatures.
class Loop {
public:
  Loop() = default;
  Loop(std::string Name, SourceLanguage Lang, int NestLevel,
       int64_t TripCount)
      : Name(std::move(Name)), Lang(Lang), NestLevel(NestLevel),
        TripCount(TripCount) {}

  /// Trip count value meaning "unknown at compile time".
  static constexpr int64_t UnknownTripCount = -1;

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  /// Source file the loop was parsed from ("" when built
  /// programmatically) and the 1-based line of its "loop" header (0 when
  /// unknown). Diagnostics use these to anchor loop-level findings.
  const std::string &sourceFile() const { return SourceFile; }
  void setSourceFile(std::string File) { SourceFile = std::move(File); }
  unsigned headerLine() const { return HeaderLine; }
  void setHeaderLine(unsigned Line) { HeaderLine = Line; }

  SourceLanguage language() const { return Lang; }
  void setLanguage(SourceLanguage NewLang) { Lang = NewLang; }

  int nestLevel() const { return NestLevel; }
  void setNestLevel(int Level) { NestLevel = Level; }

  /// Compile-time trip count, or UnknownTripCount.
  int64_t tripCount() const { return TripCount; }
  void setTripCount(int64_t Count) { TripCount = Count; }
  bool hasKnownTripCount() const { return TripCount >= 0; }

  /// The trip count the measurement harness executes. For loops with a
  /// known compile-time trip count this equals tripCount(); for unknown
  /// ones the corpus assigns a concrete runtime value here.
  int64_t runtimeTripCount() const {
    return hasKnownTripCount() ? TripCount : RuntimeTripCount;
  }
  void setRuntimeTripCount(int64_t Count) { RuntimeTripCount = Count; }

  //===--------------------------------------------------------------------===
  // Registers
  //===--------------------------------------------------------------------===

  /// Creates a fresh register of class \p RC; \p BaseName is used by the
  /// printer (a unique numeric suffix is appended automatically on
  /// collisions by the printer, not here).
  RegId addReg(RegClass RC, std::string BaseName = "");

  unsigned numRegs() const { return static_cast<unsigned>(Classes.size()); }
  RegClass regClass(RegId Reg) const;
  const std::string &regName(RegId Reg) const;
  void setRegName(RegId Reg, std::string NewName);

  //===--------------------------------------------------------------------===
  // Body and phis
  //===--------------------------------------------------------------------===

  std::vector<Instruction> &body() { return Body; }
  const std::vector<Instruction> &body() const { return Body; }

  std::vector<PhiNode> &phis() { return Phis; }
  const std::vector<PhiNode> &phis() const { return Phis; }

  /// Appends \p Instr and returns its body index.
  size_t addInstruction(Instruction Instr);

  /// Appends a phi node.
  void addPhi(PhiNode Phi);

  /// Returns true if \p Reg is defined by some phi node.
  bool isPhiDest(RegId Reg) const;

  /// Returns true if \p Reg is not defined by any phi or body instruction,
  /// i.e. it is live into the loop (loop-invariant).
  bool isLiveIn(RegId Reg) const;

  /// Number of non-loop-control body instructions.
  size_t bodySizeWithoutControl() const;

private:
  std::string Name = "loop";
  std::string SourceFile;
  unsigned HeaderLine = 0;
  SourceLanguage Lang = SourceLanguage::C;
  int NestLevel = 1;
  int64_t TripCount = UnknownTripCount;
  int64_t RuntimeTripCount = 256;

  std::vector<Instruction> Body;
  std::vector<PhiNode> Phis;
  std::vector<RegClass> Classes;
  std::vector<std::string> Names;
};

} // namespace metaopt

#endif // METAOPT_IR_LOOP_H
