//===- ir/Printer.cpp -----------------------------------------------------===//

#include "ir/Printer.h"

#include "support/StringUtils.h"

#include <cassert>
#include <map>
#include <set>

using namespace metaopt;

namespace {

/// Assigns every register a unique printable name of the form
/// %<classprefix>_<name>. Register base names may collide; collisions get a
/// ".<id>" suffix.
class NameTable {
public:
  explicit NameTable(const Loop &L) {
    std::set<std::string> Used;
    for (RegId Reg = 0; Reg < L.numRegs(); ++Reg) {
      std::string Candidate = std::string("%") +
                              regClassPrefix(L.regClass(Reg)) + "_" +
                              L.regName(Reg);
      if (!Used.insert(Candidate).second) {
        Candidate += "." + std::to_string(Reg);
        bool Inserted = Used.insert(Candidate).second;
        assert(Inserted && "suffixed register name still collides");
        (void)Inserted;
      }
      Names[Reg] = Candidate;
    }
  }

  const std::string &name(RegId Reg) const {
    auto It = Names.find(Reg);
    assert(It != Names.end() && "register has no name");
    return It->second;
  }

private:
  std::map<RegId, std::string> Names;
};

std::string printMemRef(const MemRef &Ref) {
  std::string Out = "@" + std::to_string(Ref.BaseSym) + "[";
  if (Ref.Indirect)
    Out += "indirect, ";
  Out += "stride=" + std::to_string(Ref.Stride);
  Out += ", offset=" + std::to_string(Ref.Offset);
  Out += ", size=" + std::to_string(Ref.SizeBytes);
  Out += "]";
  return Out;
}

std::string printOneInstruction(const Instruction &Instr,
                                const NameTable &Names) {
  std::string Out;
  if (Instr.Pred != NoReg)
    Out += "(" + Names.name(Instr.Pred) + ") ";
  if (Instr.hasDest())
    Out += Names.name(Instr.Dest) + " = ";
  Out += opcodeName(Instr.Op);

  auto AppendOperands = [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      Out += I == Begin ? " " : ", ";
      Out += Names.name(Instr.Operands[I]);
    }
  };

  switch (Instr.Op) {
  case Opcode::Load:
    Out += " " + printMemRef(Instr.Mem);
    if (Instr.Mem.Indirect)
      Out += " ind(" + Names.name(Instr.Operands[0]) + ")";
    if (Instr.Paired)
      Out += " paired";
    break;
  case Opcode::Store:
    Out += " " + Names.name(Instr.Operands[0]) + ", " +
           printMemRef(Instr.Mem);
    if (Instr.Mem.Indirect)
      Out += " ind(" + Names.name(Instr.Operands[1]) + ")";
    break;
  case Opcode::IConst:
  case Opcode::FConst:
    Out += " " + std::to_string(Instr.Imm);
    break;
  case Opcode::ExitIf:
    AppendOperands(0, Instr.Operands.size());
    Out += " prob=" + formatDouble(Instr.TakenProb, 6);
    break;
  default:
    AppendOperands(0, Instr.Operands.size());
    break;
  }
  return Out;
}

} // namespace

std::string metaopt::printInstruction(const Loop &L,
                                      const Instruction &Instr) {
  NameTable Names(L);
  return printOneInstruction(Instr, Names);
}

std::string metaopt::printLoop(const Loop &L) {
  NameTable Names(L);
  std::string Out = "loop \"" + L.name() + "\"";
  Out += " lang=" + std::string(sourceLanguageName(L.language()));
  Out += " nest=" + std::to_string(L.nestLevel());
  Out += " trip=" + std::to_string(L.tripCount());
  Out += " rtrip=" + std::to_string(L.runtimeTripCount());
  Out += " {\n";
  for (const PhiNode &Phi : L.phis()) {
    Out += "  phi " + Names.name(Phi.Dest) + " = [" + Names.name(Phi.Init) +
           ", " + Names.name(Phi.Recur) + "]\n";
  }
  for (const Instruction &Instr : L.body())
    Out += "  " + printOneInstruction(Instr, Names) + "\n";
  Out += "}\n";
  return Out;
}
