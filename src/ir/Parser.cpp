//===- ir/Parser.cpp ------------------------------------------------------===//

#include "ir/Parser.h"

#include "support/StringUtils.h"

#include <map>

using namespace metaopt;

namespace {

/// Line-oriented recursive-descent parser for the loop format.
class LoopParser {
public:
  LoopParser(std::string_view Text, std::string FileName)
      : Lines(split(Text, '\n')), FileName(std::move(FileName)) {}

  ParseResult run() {
    ParseResult Result;
    while (true) {
      std::string_view Line = nextMeaningfulLine();
      if (AtEnd)
        break;
      Loop L;
      if (!parseHeader(Line, L) || !parseBody(L)) {
        Result.Error = ErrorMessage;
        Result.ErrorLine = CurrentLine;
        return Result;
      }
      Result.Loops.push_back(std::move(L));
    }
    return Result;
  }

private:
  std::vector<std::string> Lines;
  std::string FileName;
  size_t NextLine = 0;
  size_t CurrentLine = 0;
  bool AtEnd = false;
  std::string ErrorMessage;

  std::map<std::string, RegId> RegByName;

  bool fail(const std::string &Message) {
    ErrorMessage = Message;
    return false;
  }

  /// Returns the next non-empty, non-comment line (comment stripped),
  /// or sets AtEnd.
  std::string_view nextMeaningfulLine() {
    while (NextLine < Lines.size()) {
      CurrentLine = NextLine + 1;
      std::string_view Line = Lines[NextLine++];
      size_t Hash = Line.find('#');
      if (Hash != std::string_view::npos)
        Line = Line.substr(0, Hash);
      Line = trim(Line);
      if (!Line.empty())
        return Line;
    }
    AtEnd = true;
    return {};
  }

  /// Resolves "%f_name" to a register, creating it on first sight.
  bool parseReg(std::string_view Token, Loop &L, RegId &Out) {
    Token = trim(Token);
    if (Token.size() < 4 || Token[0] != '%' || Token[2] != '_')
      return fail("malformed register '" + std::string(Token) +
                  "' (expected %<c>_<name>)");
    RegClass RC;
    switch (Token[1]) {
    case 'i':
      RC = RegClass::Int;
      break;
    case 'f':
      RC = RegClass::Float;
      break;
    case 'p':
      RC = RegClass::Pred;
      break;
    default:
      return fail("unknown register class prefix in '" + std::string(Token) +
                  "'");
    }
    std::string Key(Token);
    auto It = RegByName.find(Key);
    if (It != RegByName.end()) {
      if (L.regClass(It->second) != RC)
        return fail("register '" + Key + "' used with two classes");
      Out = It->second;
      return true;
    }
    Out = L.addReg(RC, std::string(Token.substr(3)));
    RegByName.emplace(std::move(Key), Out);
    return true;
  }

  bool parseKeyValue(std::string_view Token, std::string_view ExpectedKey,
                     std::string &Value) {
    size_t Eq = Token.find('=');
    if (Eq == std::string_view::npos ||
        trim(Token.substr(0, Eq)) != ExpectedKey)
      return fail("expected '" + std::string(ExpectedKey) + "=<value>', got '" +
                  std::string(Token) + "'");
    Value = std::string(trim(Token.substr(Eq + 1)));
    return true;
  }

  bool parseHeader(std::string_view Line, Loop &L) {
    RegByName.clear();
    L.setSourceFile(FileName);
    L.setHeaderLine(static_cast<unsigned>(CurrentLine));
    if (Line.substr(0, 4) != "loop")
      return fail("expected 'loop' header");
    Line = trim(Line.substr(4));
    if (Line.empty() || Line[0] != '"')
      return fail("expected quoted loop name");
    size_t CloseQuote = Line.find('"', 1);
    if (CloseQuote == std::string_view::npos)
      return fail("unterminated loop name");
    L.setName(std::string(Line.substr(1, CloseQuote - 1)));
    Line = trim(Line.substr(CloseQuote + 1));
    if (Line.empty() || Line.back() != '{')
      return fail("expected '{' at end of loop header");
    Line = trim(Line.substr(0, Line.size() - 1));

    for (const std::string &Token : splitWhitespace(Line)) {
      size_t Eq = Token.find('=');
      if (Eq == std::string::npos)
        return fail("malformed header attribute '" + Token + "'");
      std::string Key = Token.substr(0, Eq);
      std::string Value = Token.substr(Eq + 1);
      if (Key == "lang") {
        SourceLanguage Lang;
        if (!parseSourceLanguage(Value, Lang))
          return fail("unknown language '" + Value + "'");
        L.setLanguage(Lang);
      } else if (Key == "nest") {
        auto Parsed = parseInt(Value);
        if (!Parsed)
          return fail("malformed nest level '" + Value + "'");
        L.setNestLevel(static_cast<int>(*Parsed));
      } else if (Key == "trip") {
        auto Parsed = parseInt(Value);
        if (!Parsed)
          return fail("malformed trip count '" + Value + "'");
        L.setTripCount(*Parsed);
      } else if (Key == "rtrip") {
        auto Parsed = parseInt(Value);
        if (!Parsed)
          return fail("malformed runtime trip count '" + Value + "'");
        L.setRuntimeTripCount(*Parsed);
      } else {
        return fail("unknown header attribute '" + Key + "'");
      }
    }
    return true;
  }

  bool parseMemRef(std::string_view &Line, MemRef &Ref) {
    Line = trim(Line);
    if (Line.empty() || Line[0] != '@')
      return fail("expected memory reference '@sym[...]'");
    size_t Bracket = Line.find('[');
    if (Bracket == std::string_view::npos)
      return fail("expected '[' in memory reference");
    auto Sym = parseInt(Line.substr(1, Bracket - 1));
    if (!Sym)
      return fail("malformed memory base symbol");
    Ref.BaseSym = static_cast<int32_t>(*Sym);
    size_t CloseBracket = Line.find(']', Bracket);
    if (CloseBracket == std::string_view::npos)
      return fail("expected ']' in memory reference");
    std::string_view Attrs = Line.substr(Bracket + 1,
                                         CloseBracket - Bracket - 1);
    Line = Line.substr(CloseBracket + 1);

    for (const std::string &Attr : split(Attrs, ',')) {
      std::string_view Token = trim(Attr);
      if (Token == "indirect") {
        Ref.Indirect = true;
        continue;
      }
      size_t Eq = Token.find('=');
      if (Eq == std::string_view::npos)
        return fail("malformed memory attribute '" + std::string(Token) +
                    "'");
      std::string_view Key = trim(Token.substr(0, Eq));
      auto Value = parseInt(Token.substr(Eq + 1));
      if (!Value)
        return fail("malformed memory attribute value in '" +
                    std::string(Token) + "'");
      if (Key == "stride")
        Ref.Stride = *Value;
      else if (Key == "offset")
        Ref.Offset = *Value;
      else if (Key == "size")
        Ref.SizeBytes = static_cast<int32_t>(*Value);
      else
        return fail("unknown memory attribute '" + std::string(Key) + "'");
    }
    return true;
  }

  /// Parses a trailing " ind(%i_x)" clause if present.
  bool parseIndexClause(std::string_view &Line, Loop &L, bool Expected,
                        Instruction &Instr) {
    Line = trim(Line);
    if (Line.empty())
      return !Expected ||
             fail("indirect memory reference requires an ind(...) clause");
    if (Line.substr(0, 4) != "ind(" || Line.back() != ')')
      return fail("trailing garbage '" + std::string(Line) + "'");
    if (!Expected)
      return fail("ind(...) clause on a non-indirect memory reference");
    RegId Index;
    if (!parseReg(Line.substr(4, Line.size() - 5), L, Index))
      return false;
    Instr.Operands.push_back(Index);
    return true;
  }

  bool parsePhi(std::string_view Line, Loop &L) {
    // phi %f_x = [%f_init, %f_next]
    Line = trim(Line.substr(3));
    size_t Eq = Line.find('=');
    if (Eq == std::string_view::npos)
      return fail("expected '=' in phi");
    PhiNode Phi;
    if (!parseReg(Line.substr(0, Eq), L, Phi.Dest))
      return false;
    std::string_view Rest = trim(Line.substr(Eq + 1));
    if (Rest.size() < 2 || Rest.front() != '[' || Rest.back() != ']')
      return fail("expected '[init, recur]' in phi");
    std::vector<std::string> Parts = split(Rest.substr(1, Rest.size() - 2),
                                           ',');
    if (Parts.size() != 2)
      return fail("phi requires exactly two sources");
    if (!parseReg(Parts[0], L, Phi.Init) || !parseReg(Parts[1], L, Phi.Recur))
      return false;
    if (L.regClass(Phi.Dest) != L.regClass(Phi.Init) ||
        L.regClass(Phi.Dest) != L.regClass(Phi.Recur))
      return fail("phi register class mismatch");
    Phi.SrcLine = static_cast<unsigned>(CurrentLine);
    L.addPhi(Phi);
    return true;
  }

  bool parseInstruction(std::string_view Line, Loop &L) {
    Instruction Instr;
    Instr.SrcLine = static_cast<unsigned>(CurrentLine);

    // Optional "(%p_x) " predicate guard.
    if (!Line.empty() && Line[0] == '(') {
      size_t Close = Line.find(')');
      if (Close == std::string_view::npos)
        return fail("unterminated predicate guard");
      if (!parseReg(Line.substr(1, Close - 1), L, Instr.Pred))
        return false;
      if (L.regClass(Instr.Pred) != RegClass::Pred)
        return fail("guard register is not a predicate");
      Line = trim(Line.substr(Close + 1));
    }

    // Optional "%x = " destination.
    std::string_view DestToken;
    if (!Line.empty() && Line[0] == '%') {
      size_t Eq = Line.find('=');
      if (Eq == std::string_view::npos)
        return fail("register at start of line but no '='");
      DestToken = trim(Line.substr(0, Eq));
      Line = trim(Line.substr(Eq + 1));
    }

    // Mnemonic.
    size_t MnemonicEnd = 0;
    while (MnemonicEnd < Line.size() && Line[MnemonicEnd] != ' ')
      ++MnemonicEnd;
    std::string Mnemonic(Line.substr(0, MnemonicEnd));
    if (!parseOpcode(Mnemonic, Instr.Op))
      return fail("unknown opcode '" + Mnemonic + "'");
    Line = trim(Line.substr(MnemonicEnd));

    const OpcodeInfo &Info = opcodeInfo(Instr.Op);
    if (Info.HasDest != !DestToken.empty())
      return fail(std::string("opcode '") + Mnemonic +
                  (Info.HasDest ? "' requires" : "' forbids") +
                  " a destination");
    if (Info.HasDest && !parseReg(DestToken, L, Instr.Dest))
      return false;

    switch (Instr.Op) {
    case Opcode::Load: {
      if (!parseMemRef(Line, Instr.Mem))
        return false;
      Line = trim(Line);
      if (Line.size() >= 6 && Line.substr(Line.size() - 6) == "paired") {
        Instr.Paired = true;
        Line = trim(Line.substr(0, Line.size() - 6));
      }
      if (!parseIndexClause(Line, L, Instr.Mem.Indirect, Instr))
        return false;
      break;
    }
    case Opcode::Store: {
      size_t Comma = Line.find(',');
      if (Comma == std::string_view::npos)
        return fail("store requires '<value>, @sym[...]'");
      RegId Value;
      if (!parseReg(Line.substr(0, Comma), L, Value))
        return false;
      Instr.Operands.push_back(Value);
      Line = Line.substr(Comma + 1);
      if (!parseMemRef(Line, Instr.Mem))
        return false;
      if (!parseIndexClause(Line, L, Instr.Mem.Indirect, Instr))
        return false;
      break;
    }
    case Opcode::IConst:
    case Opcode::FConst: {
      auto Value = parseInt(Line);
      if (!Value)
        return fail("malformed constant '" + std::string(Line) + "'");
      Instr.Imm = *Value;
      break;
    }
    case Opcode::ExitIf: {
      std::vector<std::string> Tokens = splitWhitespace(Line);
      if (Tokens.size() != 2)
        return fail("exit_if requires '<pred> prob=<p>'");
      RegId Pred;
      if (!parseReg(Tokens[0], L, Pred))
        return false;
      Instr.Operands.push_back(Pred);
      std::string ProbValue;
      if (!parseKeyValue(Tokens[1], "prob", ProbValue))
        return false;
      auto Prob = parseDouble(ProbValue);
      if (!Prob || *Prob < 0.0 || *Prob > 1.0)
        return fail("exit probability must be in [0,1]");
      Instr.TakenProb = *Prob;
      break;
    }
    default: {
      if (!Line.empty()) {
        for (const std::string &Token : split(Line, ',')) {
          RegId Operand;
          if (!parseReg(Token, L, Operand))
            return false;
          Instr.Operands.push_back(Operand);
        }
      }
      break;
    }
    }

    L.addInstruction(std::move(Instr));
    return true;
  }

  bool parseBody(Loop &L) {
    while (true) {
      std::string_view Line = nextMeaningfulLine();
      if (AtEnd)
        return fail("unexpected end of input inside loop body");
      if (Line == "}")
        return true;
      bool Ok = Line.substr(0, 4) == "phi " ? parsePhi(Line, L)
                                            : parseInstruction(Line, L);
      if (!Ok)
        return false;
    }
  }
};

} // namespace

ParseResult metaopt::parseLoops(std::string_view Text,
                                std::string FileName) {
  return LoopParser(Text, std::move(FileName)).run();
}
