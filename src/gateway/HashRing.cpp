//===- gateway/HashRing.cpp -----------------------------------------------===//

#include "gateway/HashRing.h"

#include "ir/Parser.h"
#include "ir/Printer.h"

#include <algorithm>

using namespace metaopt;

void HashRing::addNode(const std::string &Name, unsigned VirtualNodes) {
  size_t Index = Nodes.size();
  Nodes.push_back(Name);
  if (VirtualNodes == 0)
    VirtualNodes = 1;
  for (unsigned Replica = 0; Replica < VirtualNodes; ++Replica) {
    FingerprintHasher H;
    H.str("metaopt-hash-ring-v1");
    H.str(Name);
    H.u64(Replica);
    Fingerprint Fp = H.digest();
    // Fold both lanes so the point position uses the full fingerprint.
    Points.push_back({Fp.Lo ^ (Fp.Hi * 0x9e3779b97f4a7c15ULL), Index});
  }
  std::sort(Points.begin(), Points.end());
}

std::vector<size_t> HashRing::route(const Fingerprint &Key) const {
  std::vector<size_t> Order;
  if (Nodes.empty())
    return Order;
  Order.reserve(Nodes.size());
  std::vector<bool> Seen(Nodes.size(), false);

  uint64_t Position = Key.Lo ^ (Key.Hi * 0x9e3779b97f4a7c15ULL);
  size_t Start = 0;
  // First point at or after the key's position (wrapping at the top).
  auto It = std::lower_bound(
      Points.begin(), Points.end(), Point{Position, 0},
      [](const Point &A, const Point &B) { return A.Position < B.Position; });
  if (It != Points.end())
    Start = static_cast<size_t>(It - Points.begin());

  for (size_t I = 0; I < Points.size() && Order.size() < Nodes.size(); ++I) {
    const Point &P = Points[(Start + I) % Points.size()];
    if (Seen[P.Node])
      continue;
    Seen[P.Node] = true;
    Order.push_back(P.Node);
  }
  return Order;
}

Fingerprint metaopt::loopRoutingKey(const std::string &LoopText) {
  FingerprintHasher H;
  H.str("metaopt-routing-key-v1");
  ParseResult Parsed = parseLoops(LoopText);
  if (Parsed.succeeded() && !Parsed.Loops.empty()) {
    for (const Loop &L : Parsed.Loops)
      H.str(printLoop(L));
  } else {
    H.str(LoopText);
  }
  return H.digest();
}
