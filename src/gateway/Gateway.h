//===- gateway/Gateway.h - Sharded prediction gateway -----------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scale-out tier of metaopt serving (docs/SERVING.md): a gateway
/// daemon that fronts N prediction workers, speaking the same
/// line-delimited JSON protocol to clients that the workers speak — a
/// client cannot tell a gateway from a worker, and predict responses
/// proxied through the gateway are byte-identical to a direct worker's
/// (the request line is forwarded verbatim and the worker's response line
/// returned verbatim).
///
/// Routing: each predict request is pinned to a shard by consistent
/// hashing on the canonical loop fingerprint (gateway/HashRing.h), so
/// repeated requests for the same loop hit the same worker and its warm
/// state. When the home shard's connection fails, the request is retried
/// on the next distinct backend in ring order (predictions are pure, so
/// retry is always safe); a backend that fails is marked unhealthy until
/// the background health checker — which also records each worker's
/// bundle checksum — sees it answer again.
///
/// Backpressure: at most MaxInFlight predict requests are proxied at
/// once; beyond that the gateway answers "overloaded" immediately rather
/// than queueing unboundedly, mirroring the worker's admission contract.
/// health / stats / shutdown address the gateway itself (stats aggregates
/// per-backend routing counters and health states).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_GATEWAY_GATEWAY_H
#define METAOPT_GATEWAY_GATEWAY_H

#include "gateway/HashRing.h"
#include "serve/Client.h"
#include "serve/Transport.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace metaopt {

/// Gateway configuration.
struct GatewayOptions {
  /// Client-facing listeners (same semantics as ServerOptions).
  std::string SocketPath;
  std::string TcpHost = "127.0.0.1";
  int TcpPort = -1;
  int Backlog = 64;

  /// Worker addresses (unix paths or host:port), in shard-index order.
  std::vector<std::string> Backends;
  /// Ring points per backend; more spreads load more evenly.
  unsigned VirtualNodes = 64;

  /// Health-probe cadence.
  std::chrono::milliseconds HealthInterval{1000};
  /// Per-round-trip bound on backend I/O, so one stuck worker cannot
  /// wedge a proxied request forever.
  std::chrono::milliseconds BackendIoTimeout{5000};

  /// Admission control: most predict requests proxied concurrently.
  size_t MaxInFlight = 256;

  /// Framing hardening for the client-facing transport.
  size_t MaxRequestBytes = 1 << 20;
  std::chrono::milliseconds ReadTimeout{0};
  std::chrono::milliseconds WriteTimeout{5000};
  std::chrono::milliseconds DrainTimeout{5000};
};

/// Point-in-time view of one backend, inside GatewayStatsSnapshot.
struct GatewayBackendSnapshot {
  std::string Address;
  bool Healthy = true;
  uint64_t Routed = 0;   ///< Requests this backend answered.
  uint64_t Failures = 0; ///< Connection/round-trip failures against it.
  uint64_t Probes = 0;   ///< Health probes sent.
  std::string BundleChecksum; ///< From its last healthy probe.
  std::string Classifier;     ///< Likewise.
};

/// Point-in-time view of the gateway counters.
struct GatewayStatsSnapshot {
  uint64_t Predicts = 0;    ///< Predict requests admitted for proxying.
  uint64_t ForwardedOk = 0; ///< ... answered by some backend.
  uint64_t Failovers = 0;   ///< ... that needed more than one backend.
  uint64_t Unavailable = 0; ///< ... no backend answered.
  uint64_t Overloaded = 0;  ///< Refused at admission (MaxInFlight).
  int64_t InFlight = 0;     ///< Currently proxied requests.
  std::vector<GatewayBackendSnapshot> Backends;
};

/// One gateway daemon instance.
class Gateway {
public:
  /// \p Options.Backends must be non-empty.
  explicit Gateway(GatewayOptions Options);
  ~Gateway();

  Gateway(const Gateway &) = delete;
  Gateway &operator=(const Gateway &) = delete;

  /// Binds the listeners and proxies until stop is requested, then
  /// drains. Returns false (with \p Error) only on setup failure.
  bool run(std::string *Error = nullptr);

  /// Asks a running run() to begin the drain. Safe from any thread.
  void requestStop();

  bool listening() const { return Transport->listening(); }
  int boundTcpPort() const { return Transport->boundTcpPort(); }

  GatewayStatsSnapshot stats() const;
  const TransportCounters &transportCounters() const {
    return Transport->counters();
  }

private:
  struct Backend {
    std::string Address;
    std::atomic<bool> Healthy{true};
    std::atomic<uint64_t> Routed{0};
    std::atomic<uint64_t> Failures{0};
    std::atomic<uint64_t> Probes{0};
    mutable std::mutex InfoMutex;
    std::string BundleChecksum; ///< Guarded by InfoMutex.
    std::string Classifier;     ///< Guarded by InfoMutex.
  };

  bool stopRequested() const;
  std::string handleLine(const std::string &Line, LineConnection &Conn);
  std::string handlePredict(const WireRequest &Request,
                            const std::string &Line, LineConnection &Conn);
  std::string renderGatewayHealth(const std::string &Id) const;
  std::string renderGatewayStats(const std::string &Id) const;
  void probeBackends();
  void healthLoop();

  GatewayOptions Options;
  HashRing Ring;
  std::vector<std::unique_ptr<Backend>> Backends;
  std::unique_ptr<LineServer> Transport;
  std::atomic<bool> Stop{false};

  std::atomic<uint64_t> Predicts{0};
  std::atomic<uint64_t> ForwardedOk{0};
  std::atomic<uint64_t> Failovers{0};
  std::atomic<uint64_t> UnavailableCount{0};
  std::atomic<uint64_t> OverloadedCount{0};
  std::atomic<int64_t> InFlight{0};
};

} // namespace metaopt

#endif // METAOPT_GATEWAY_GATEWAY_H
