//===- gateway/Gateway.cpp ------------------------------------------------===//

#include "gateway/Gateway.h"

#include "serve/Protocol.h"
#include "support/CommandLine.h"

#include <map>
#include <thread>

using namespace metaopt;

namespace {

/// Per-client-connection cache of backend connections, stored in
/// LineConnection::User. Each client connection is served by exactly one
/// transport thread, so the map needs no locking; tearing down the client
/// connection drops its backend sockets with it.
using BackendClientMap = std::map<size_t, std::unique_ptr<ServeClient>>;

BackendClientMap &clientMapFor(LineConnection &Conn) {
  if (!Conn.User)
    Conn.User = std::make_shared<BackendClientMap>();
  return *std::static_pointer_cast<BackendClientMap>(Conn.User);
}

} // namespace

Gateway::Gateway(GatewayOptions Opts) : Options(std::move(Opts)) {
  for (const std::string &Address : Options.Backends) {
    Ring.addNode(Address, Options.VirtualNodes);
    auto B = std::make_unique<Backend>();
    B->Address = Address;
    Backends.push_back(std::move(B));
  }

  TransportOptions T;
  T.SocketPath = Options.SocketPath;
  T.TcpHost = Options.TcpHost;
  T.TcpPort = Options.TcpPort;
  T.Backlog = Options.Backlog;
  T.MaxRequestBytes = Options.MaxRequestBytes;
  T.ReadTimeout = Options.ReadTimeout;
  T.WriteTimeout = Options.WriteTimeout;
  T.DrainTimeout = Options.DrainTimeout;
  T.RejectResponse = renderErrorResponse(
      "", "bad-request",
      "request line exceeds " + std::to_string(Options.MaxRequestBytes) +
          " bytes or is not line-delimited JSON");
  T.ExternalStop = [this] { return Stop.load(std::memory_order_acquire); };
  Transport = std::make_unique<LineServer>(
      std::move(T), [this](const std::string &Line, LineConnection &Conn) {
        return handleLine(Line, Conn);
      });
}

Gateway::~Gateway() = default;

bool Gateway::stopRequested() const {
  return Stop.load(std::memory_order_acquire) || serverStopFlag();
}

void Gateway::requestStop() {
  Stop.store(true, std::memory_order_release);
  Transport->requestStop();
}

bool Gateway::run(std::string *Error) {
  if (Backends.empty()) {
    if (Error)
      *Error = "gateway requires at least one backend";
    return false;
  }
  // Probe once before accepting traffic so the first requests already
  // know which backends are answering.
  probeBackends();
  std::thread Checker([this] { healthLoop(); });
  bool Ok = Transport->run(Error);
  Stop.store(true, std::memory_order_release);
  Checker.join();
  return Ok;
}

std::string Gateway::handleLine(const std::string &Line,
                                LineConnection &Conn) {
  std::string ParseError;
  std::optional<WireRequest> Request = parseRequestLine(Line, &ParseError);
  if (!Request)
    return renderErrorResponse("", "malformed", ParseError);

  switch (Request->TheOp) {
  case WireRequest::Op::Health:
    return renderGatewayHealth(Request->Id);
  case WireRequest::Op::Stats:
    return renderGatewayStats(Request->Id);
  case WireRequest::Op::Shutdown:
    requestStop();
    return renderShutdownResponse(Request->Id);
  case WireRequest::Op::Predict:
    return handlePredict(*Request, Line, Conn);
  }
  return renderErrorResponse(Request->Id, "malformed", "unknown op");
}

std::string Gateway::handlePredict(const WireRequest &Request,
                                   const std::string &Line,
                                   LineConnection &Conn) {
  // Admission control: refuse beyond MaxInFlight instead of queueing.
  int64_t Now = InFlight.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (Options.MaxInFlight > 0 &&
      Now > static_cast<int64_t>(Options.MaxInFlight)) {
    InFlight.fetch_sub(1, std::memory_order_acq_rel);
    OverloadedCount.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Request.Id, "overloaded",
                               "gateway at capacity");
  }
  struct InFlightGuard {
    std::atomic<int64_t> &Count;
    ~InFlightGuard() { Count.fetch_sub(1, std::memory_order_acq_rel); }
  } Guard{InFlight};

  Predicts.fetch_add(1, std::memory_order_relaxed);

  std::vector<size_t> Order = Ring.route(loopRoutingKey(Request.LoopText));
  // Healthy backends first, preserving ring order within each class, so a
  // known-down home shard does not eat a connect failure per request.
  std::vector<size_t> Plan;
  Plan.reserve(Order.size());
  for (size_t Index : Order)
    if (Backends[Index]->Healthy.load(std::memory_order_acquire))
      Plan.push_back(Index);
  for (size_t Index : Order)
    if (!Backends[Index]->Healthy.load(std::memory_order_acquire))
      Plan.push_back(Index);

  BackendClientMap &Clients = clientMapFor(Conn);
  size_t Attempts = 0;
  for (size_t Index : Plan) {
    Backend &B = *Backends[Index];
    ++Attempts;

    std::unique_ptr<ServeClient> &Slot = Clients[Index];
    if (!Slot || !Slot->connected()) {
      auto Fresh = std::make_unique<ServeClient>();
      Fresh->setIoTimeout(Options.BackendIoTimeout);
      if (!Fresh->connect(B.Address)) {
        B.Failures.fetch_add(1, std::memory_order_relaxed);
        B.Healthy.store(false, std::memory_order_release);
        continue;
      }
      Slot = std::move(Fresh);
    }

    // Forward the client's request line verbatim and return the worker's
    // response line verbatim: proxied responses stay byte-identical to a
    // direct connection.
    std::optional<std::string> Response = Slot->roundTrip(Line);
    if (!Response) {
      Slot.reset();
      B.Failures.fetch_add(1, std::memory_order_relaxed);
      B.Healthy.store(false, std::memory_order_release);
      continue;
    }

    B.Routed.fetch_add(1, std::memory_order_relaxed);
    ForwardedOk.fetch_add(1, std::memory_order_relaxed);
    if (Attempts > 1)
      Failovers.fetch_add(1, std::memory_order_relaxed);
    return *Response;
  }

  UnavailableCount.fetch_add(1, std::memory_order_relaxed);
  return renderErrorResponse(Request.Id, "unavailable",
                             "no backend answered");
}

std::string Gateway::renderGatewayHealth(const std::string &Id) const {
  size_t Healthy = 0;
  for (const auto &B : Backends)
    if (B->Healthy.load(std::memory_order_acquire))
      ++Healthy;

  const char *Status = Healthy == Backends.size() ? "ok"
                       : Healthy > 0              ? "degraded"
                                                  : "unavailable";
  JsonWriter W;
  W.beginObject();
  W.key("op").str("health");
  if (!Id.empty())
    W.key("id").str(Id);
  W.key("status").str(Status);
  W.key("role").str("gateway");
  W.key("server_version").str(metaoptVersion());
  W.key("backends_total").number(static_cast<uint64_t>(Backends.size()));
  W.key("backends_healthy").number(static_cast<uint64_t>(Healthy));
  W.key("backends").beginArray();
  for (const auto &B : Backends) {
    W.beginObject();
    W.key("address").str(B->Address);
    W.key("healthy").boolean(B->Healthy.load(std::memory_order_acquire));
    std::lock_guard<std::mutex> Lock(B->InfoMutex);
    if (!B->BundleChecksum.empty())
      W.key("bundle_checksum").str(B->BundleChecksum);
    if (!B->Classifier.empty())
      W.key("classifier").str(B->Classifier);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

std::string Gateway::renderGatewayStats(const std::string &Id) const {
  GatewayStatsSnapshot S = stats();
  const TransportCounters &T = Transport->counters();

  JsonWriter W;
  W.beginObject();
  W.key("op").str("stats");
  if (!Id.empty())
    W.key("id").str(Id);
  W.key("status").str("ok");
  W.key("role").str("gateway");
  W.key("predicts").number(S.Predicts);
  W.key("forwarded_ok").number(S.ForwardedOk);
  W.key("failovers").number(S.Failovers);
  W.key("unavailable").number(S.Unavailable);
  W.key("overloaded").number(S.Overloaded);
  W.key("in_flight").number(static_cast<int64_t>(S.InFlight));
  W.key("connections_accepted")
      .number(T.Accepted.load(std::memory_order_relaxed));
  W.key("connections_open").number(T.Open.load(std::memory_order_relaxed));
  W.key("oversized_rejected")
      .number(T.OversizedRejected.load(std::memory_order_relaxed));
  W.key("bad_frames").number(T.BadFrames.load(std::memory_order_relaxed));
  W.key("read_timeouts")
      .number(T.ReadTimeouts.load(std::memory_order_relaxed));
  W.key("write_timeouts")
      .number(T.WriteTimeouts.load(std::memory_order_relaxed));
  W.key("backends").beginArray();
  for (const GatewayBackendSnapshot &B : S.Backends) {
    W.beginObject();
    W.key("address").str(B.Address);
    W.key("healthy").boolean(B.Healthy);
    W.key("routed").number(B.Routed);
    W.key("failures").number(B.Failures);
    W.key("probes").number(B.Probes);
    if (!B.BundleChecksum.empty())
      W.key("bundle_checksum").str(B.BundleChecksum);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

GatewayStatsSnapshot Gateway::stats() const {
  GatewayStatsSnapshot S;
  S.Predicts = Predicts.load(std::memory_order_relaxed);
  S.ForwardedOk = ForwardedOk.load(std::memory_order_relaxed);
  S.Failovers = Failovers.load(std::memory_order_relaxed);
  S.Unavailable = UnavailableCount.load(std::memory_order_relaxed);
  S.Overloaded = OverloadedCount.load(std::memory_order_relaxed);
  S.InFlight = InFlight.load(std::memory_order_acquire);
  for (const auto &B : Backends) {
    GatewayBackendSnapshot Out;
    Out.Address = B->Address;
    Out.Healthy = B->Healthy.load(std::memory_order_acquire);
    Out.Routed = B->Routed.load(std::memory_order_relaxed);
    Out.Failures = B->Failures.load(std::memory_order_relaxed);
    Out.Probes = B->Probes.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> Lock(B->InfoMutex);
    Out.BundleChecksum = B->BundleChecksum;
    Out.Classifier = B->Classifier;
    S.Backends.push_back(std::move(Out));
  }
  return S;
}

void Gateway::probeBackends() {
  WireRequest Probe;
  Probe.TheOp = WireRequest::Op::Health;
  Probe.Id = "gateway-probe";

  for (auto &B : Backends) {
    B->Probes.fetch_add(1, std::memory_order_relaxed);
    ServeClient Client;
    Client.setIoTimeout(Options.BackendIoTimeout);
    bool Up = false;
    if (Client.connect(B->Address)) {
      if (std::optional<std::string> Line = Client.request(Probe)) {
        if (std::optional<JsonValue> Doc = parseJson(*Line)) {
          if (Doc->getString("status") == "ok") {
            Up = true;
            std::lock_guard<std::mutex> Lock(B->InfoMutex);
            B->BundleChecksum = Doc->getString("bundle_checksum");
            B->Classifier = Doc->getString("classifier");
          }
        }
      }
    }
    B->Healthy.store(Up, std::memory_order_release);
  }
}

void Gateway::healthLoop() {
  auto NextProbe = std::chrono::steady_clock::now() + Options.HealthInterval;
  while (!stopRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (std::chrono::steady_clock::now() < NextProbe)
      continue;
    NextProbe = std::chrono::steady_clock::now() + Options.HealthInterval;
    probeBackends();
  }
}
