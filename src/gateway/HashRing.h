//===- gateway/HashRing.h - Consistent-hash shard ring ----------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A consistent-hash ring over backend names, used by the gateway to pin
/// each loop (by canonical fingerprint) to a worker so per-shard state —
/// the worker's simulation cache, its classifier's memory locality — stays
/// hot across repeated requests for the same loop. Each backend owns many
/// virtual points on the ring (FingerprintHasher of name × replica), so
/// load spreads evenly and removing one backend only remaps the keys it
/// owned.
///
/// route() returns the full preference order (every distinct backend
/// once, in ring order from the key's position): entry 0 is the home
/// shard, the rest are the failover sequence the gateway walks when a
/// backend is down — the same deterministic order on every gateway
/// instance with the same backend list.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_GATEWAY_HASHRING_H
#define METAOPT_GATEWAY_HASHRING_H

#include "support/Fingerprint.h"

#include <cstdint>
#include <string>
#include <vector>

namespace metaopt {

/// Consistent-hash ring mapping 128-bit keys to backend indices.
class HashRing {
public:
  /// Adds \p Name with \p VirtualNodes ring points. Backend order is the
  /// index space route() reports.
  void addNode(const std::string &Name, unsigned VirtualNodes = 64);

  size_t nodeCount() const { return Nodes.size(); }
  const std::string &nodeName(size_t Index) const { return Nodes[Index]; }

  /// The preference order for \p Key: every backend index exactly once,
  /// starting with the owner of the first ring point at or after the
  /// key's position. Empty when the ring has no nodes.
  std::vector<size_t> route(const Fingerprint &Key) const;

private:
  struct Point {
    uint64_t Position;
    size_t Node;
    bool operator<(const Point &Other) const {
      return Position != Other.Position ? Position < Other.Position
                                        : Node < Other.Node;
    }
  };

  std::vector<std::string> Nodes;
  std::vector<Point> Points; ///< Sorted by position.
};

/// The routing key for a predict request: the fingerprint of the loop
/// program's canonical text (printLoop of every parsed loop), so two
/// textual spellings of the same program land on the same shard. Text
/// that does not parse is fingerprinted raw — it still routes
/// deterministically, and the backend renders the authoritative
/// malformed response.
Fingerprint loopRoutingKey(const std::string &LoopText);

} // namespace metaopt

#endif // METAOPT_GATEWAY_HASHRING_H
