//===- analysis/Latency.cpp -----------------------------------------------===//

#include "analysis/Latency.h"

using namespace metaopt;

int metaopt::defaultLatency(Opcode Op) {
  switch (Op) {
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::ICmp:
  case Opcode::IConst:
  case Opcode::Copy:
  case Opcode::Select:
  case Opcode::AddrGen:
  case Opcode::PredSet:
  case Opcode::IvAdd:
  case Opcode::IvCmp:
    return 1;
  case Opcode::IMul:
    return 4;
  case Opcode::IDiv:
  case Opcode::IRem:
    return 16;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FMA:
  case Opcode::FCvt:
  case Opcode::FCmp:
  case Opcode::FConst:
    return 4;
  case Opcode::FDiv:
    return 12;
  case Opcode::FSqrt:
    return 14;
  case Opcode::Load:
    return 3;
  case Opcode::Store:
    return 1;
  case Opcode::ExitIf:
  case Opcode::BackBr:
    return 1;
  case Opcode::Call:
    return 40;
  }
  return 1;
}
