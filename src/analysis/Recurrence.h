//===- analysis/Recurrence.h - Recurrence-constrained MII -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recurrence-constrained minimum initiation interval (RecMII): the lower
/// bound software pipelining can reach given the loop-carried dependence
/// cycles. Used both as a paper-style feature and by the modulo scheduler.
///
/// Cycles are enumerated through their loop-carried edges: for a carried
/// edge u -> v with distance d, the candidate II is
///   (longest intra-iteration delay path v ->* u  +  delay(u -> v)) / d.
/// Multi-carried-edge cycles are not enumerated; for the loop shapes this
/// IR produces (phis with distance 1 plus affine memory recurrences) the
/// single-carried-edge bound is exact or within one cycle.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_RECURRENCE_H
#define METAOPT_ANALYSIS_RECURRENCE_H

#include "analysis/DependenceGraph.h"
#include "ir/Loop.h"

#include <functional>

namespace metaopt {

/// Returns the recurrence-constrained MII of \p L in cycles (>= 1), using
/// the abstract latencies from analysis/Latency.h.
double recurrenceMII(const Loop &L, const DependenceGraph &DG);

/// As above, but computes delays from \p LatencyFn (e.g. a machine model's
/// latency table) instead of the abstract defaults.
double recurrenceMII(const Loop &L, const DependenceGraph &DG,
                     const std::function<int(Opcode)> &LatencyFn);

} // namespace metaopt

#endif // METAOPT_ANALYSIS_RECURRENCE_H
