//===- analysis/Liveness.cpp ----------------------------------------------===//

#include "analysis/Liveness.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <set>

using namespace metaopt;

LivenessInfo metaopt::analyzeLiveness(const Loop &L,
                                      const std::vector<uint32_t> &Order) {
  const std::vector<Instruction> &Body = L.body();
  size_t N = Body.size();

  std::vector<uint32_t> Sequence = Order;
  if (Sequence.empty()) {
    Sequence.resize(N);
    std::iota(Sequence.begin(), Sequence.end(), 0);
  }
  assert(Sequence.size() == N && "order must cover the whole body");

  // Position of each body instruction in the evaluation order.
  std::vector<uint32_t> Position(N, 0);
  for (uint32_t Pos = 0; Pos < Sequence.size(); ++Pos)
    Position[Sequence[Pos]] = Pos;

  // Which registers recur into the next iteration (live to the end).
  std::map<RegId, bool> LiveAcrossBack;
  for (const PhiNode &Phi : L.phis())
    LiveAcrossBack[Phi.Recur] = true;

  LivenessInfo Info;

  // Live interval per register: [DefPos, LastUsePos]. Phi destinations are
  // live from position 0; recurrence sources extend to the end; live-ins
  // are live everywhere and counted separately.
  struct Interval {
    uint32_t Begin = 0;
    uint32_t End = 0;
    RegClass RC = RegClass::Int;
  };
  std::vector<Interval> Intervals;

  // Loop-control registers (the induction variable and trip-test
  // predicate) live in dedicated machine state (counted-branch registers)
  // and do not contribute to allocatable pressure.
  std::map<RegId, uint32_t> DefPos;
  for (uint32_t I = 0; I < N; ++I)
    if (Body[I].hasDest() && !Body[I].isLoopControl())
      DefPos[Body[I].Dest] = Position[I];

  std::map<RegId, uint32_t> LastUse;
  auto NoteUse = [&](RegId Reg, uint32_t Pos) {
    auto It = LastUse.find(Reg);
    if (It == LastUse.end())
      LastUse[Reg] = Pos;
    else
      It->second = std::max(It->second, Pos);
  };
  for (uint32_t I = 0; I < N; ++I) {
    if (Body[I].isLoopControl())
      continue;
    for (RegId Operand : Body[I].Operands)
      NoteUse(Operand, Position[I]);
    if (Body[I].Pred != NoReg)
      NoteUse(Body[I].Pred, Position[I]);
  }

  uint32_t EndPos = static_cast<uint32_t>(N);

  // Registers defined by the loop-control tail are excluded entirely.
  std::set<RegId> ControlRegs;
  for (const Instruction &Instr : Body)
    if (Instr.isLoopControl()) {
      if (Instr.hasDest())
        ControlRegs.insert(Instr.Dest);
      for (RegId Operand : Instr.Operands)
        ControlRegs.insert(Operand);
    }

  for (RegId Reg = 0; Reg < L.numRegs(); ++Reg) {
    if (ControlRegs.count(Reg))
      continue;
    if (L.isLiveIn(Reg)) {
      // Invariant inputs occupy a register for the whole loop; only count
      // ones that are actually read (phi initial values are consumed
      // before the steady state and are not loop-long pressure).
      if (LastUse.count(Reg))
        ++Info.NumLiveIn;
      continue;
    }
    Interval Iv;
    Iv.RC = L.regClass(Reg);
    if (L.isPhiDest(Reg)) {
      Iv.Begin = 0;
      auto Use = LastUse.find(Reg);
      Iv.End = Use == LastUse.end() ? 0 : Use->second;
    } else {
      auto Def = DefPos.find(Reg);
      if (Def == DefPos.end())
        continue; // Unused register id.
      Iv.Begin = Def->second;
      auto Use = LastUse.find(Reg);
      Iv.End = Use == LastUse.end() ? Iv.Begin : std::max(Iv.Begin,
                                                          Use->second);
    }
    if (LiveAcrossBack.count(Reg)) {
      Iv.End = EndPos;
      ++Info.NumAcrossBack;
    }
    Intervals.push_back(Iv);
  }

  // Sweep the positions counting overlaps per class.
  double LiveSum = 0.0;
  for (uint32_t Pos = 0; Pos < EndPos; ++Pos) {
    unsigned LiveInt = 0, LiveFloat = 0, LivePred = 0;
    for (const Interval &Iv : Intervals) {
      if (Pos < Iv.Begin || Pos > Iv.End)
        continue;
      switch (Iv.RC) {
      case RegClass::Int:
        ++LiveInt;
        break;
      case RegClass::Float:
        ++LiveFloat;
        break;
      case RegClass::Pred:
        ++LivePred;
        break;
      }
    }
    Info.MaxLiveInt = std::max(Info.MaxLiveInt, LiveInt);
    Info.MaxLiveFloat = std::max(Info.MaxLiveFloat, LiveFloat);
    Info.MaxLivePred = std::max(Info.MaxLivePred, LivePred);
    Info.MaxLiveTotal =
        std::max(Info.MaxLiveTotal, LiveInt + LiveFloat + LivePred);
    LiveSum += LiveInt + LiveFloat + LivePred;
  }
  if (EndPos > 0)
    Info.AvgLiveTotal = LiveSum / EndPos;
  return Info;
}
