//===- analysis/CriticalPath.h - Path and computation analysis --*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Latency-weighted longest-path analyses over the intra-iteration
/// dependence graph: the loop's critical path, and the paper's
/// "computations" (independent connected components of the dependence
/// graph) with their dependence heights (overall, memory-only,
/// control-only). All are features from Table 1 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_CRITICALPATH_H
#define METAOPT_ANALYSIS_CRITICALPATH_H

#include "analysis/DependenceGraph.h"
#include "ir/Loop.h"

namespace metaopt {

/// Summary of the loop's independent computations (paper terminology for
/// the connected components of the dependence graph, ignoring the loop
/// control tail and speculatable ordering edges).
struct ComputationInfo {
  unsigned NumComputations = 0; ///< "number of parallel computations".
  int MaxHeight = 0;            ///< "max dependence height".
  int MaxMemoryHeight = 0;      ///< "max height of memory dependencies".
  int MaxControlHeight = 0;     ///< "max height of control dependencies".
  double AvgHeight = 0.0;       ///< "average dependence height".
  int MaxFanIn = 0;             ///< "instruction fan-in in DAG" (Table 3).
};

/// Returns the estimated latency of the loop's critical path: the longest
/// latency-weighted intra-iteration dependence chain, in cycles.
int criticalPathLatency(const Loop &L, const DependenceGraph &DG);

/// Analyzes the loop's computations; see ComputationInfo.
ComputationInfo analyzeComputations(const Loop &L,
                                    const DependenceGraph &DG);

/// Returns the delay a scheduler must respect along \p Edge given the
/// producing instruction \p Src: full latency for data dependences, one
/// cycle for memory ordering, zero for control ordering.
int dependenceDelay(const DepEdge &Edge, const Instruction &Src);

} // namespace metaopt

#endif // METAOPT_ANALYSIS_CRITICALPATH_H
