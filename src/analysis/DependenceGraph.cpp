//===- analysis/DependenceGraph.cpp ---------------------------------------===//

#include "analysis/DependenceGraph.h"

#include <cassert>
#include <cstdlib>
#include <limits>

using namespace metaopt;

DependenceGraph::DependenceGraph(const Loop &L) {
  NumNodes = L.body().size();
  Edges.reserve(NumNodes * 6);
  buildRegisterDeps(L);
  buildMemoryDeps(L);
  buildControlDeps(L);

  // Adjacency is built in one pass after every edge exists, so each
  // per-node list allocates exactly once at its final size instead of
  // growing push_back by push_back during the build phases. Edge indices
  // land in ascending order per node, exactly as incremental appends
  // would have produced.
  OutEdges.resize(NumNodes);
  InEdges.resize(NumNodes);
  std::vector<uint32_t> OutCount(NumNodes, 0), InCount(NumNodes, 0);
  for (const DepEdge &E : Edges) {
    ++OutCount[E.Src];
    ++InCount[E.Dst];
  }
  for (size_t I = 0; I < NumNodes; ++I) {
    OutEdges[I].reserve(OutCount[I]);
    InEdges[I].reserve(InCount[I]);
  }
  for (uint32_t Index = 0; Index < Edges.size(); ++Index) {
    OutEdges[Edges[Index].Src].push_back(Index);
    InEdges[Edges[Index].Dst].push_back(Index);
  }
}

void DependenceGraph::addEdge(uint32_t Src, uint32_t Dst, DepKind Kind,
                              uint32_t Distance, bool Speculatable) {
  assert(Src < NumNodes && Dst < NumNodes && "edge endpoint out of range");
  Edges.push_back({Src, Dst, Kind, Distance, Speculatable});
}

void DependenceGraph::buildRegisterDeps(const Loop &L) {
  // Map each register to its defining body instruction, if any. Flat
  // arrays indexed by RegId: this runs once per simulated body, and the
  // tables are lookup-only (no iteration), so the dense representation
  // changes nothing but the constant factor.
  constexpr uint32_t NoIndex = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> DefIndex(L.numRegs(), NoIndex);
  for (uint32_t I = 0; I < NumNodes; ++I)
    if (L.body()[I].hasDest())
      DefIndex[L.body()[I].Dest] = I;

  // Phi destinations read the previous iteration's recurrence value.
  // PhiCarriedSource[dest] = body index defining the recurrence.
  std::vector<uint32_t> PhiCarriedSource(L.numRegs(), NoIndex);
  for (const PhiNode &Phi : L.phis()) {
    if (Phi.Recur != NoReg && DefIndex[Phi.Recur] != NoIndex &&
        Phi.Dest != NoReg)
      PhiCarriedSource[Phi.Dest] = DefIndex[Phi.Recur];
  }

  auto AddUse = [&](RegId Reg, uint32_t User) {
    if (DefIndex[Reg] != NoIndex) {
      addEdge(DefIndex[Reg], User, DepKind::Data, /*Distance=*/0);
      return;
    }
    if (PhiCarriedSource[Reg] != NoIndex)
      addEdge(PhiCarriedSource[Reg], User, DepKind::Data, /*Distance=*/1);
    // Otherwise the register is live-in: no intra-loop dependence.
  };

  for (uint32_t I = 0; I < NumNodes; ++I) {
    const Instruction &Instr = L.body()[I];
    for (RegId Operand : Instr.Operands)
      AddUse(Operand, I);
    if (Instr.Pred != NoReg)
      AddUse(Instr.Pred, I);
  }
}

/// Computes the dependence between two accesses of the same base symbol
/// with linear addresses. Returns true and sets \p CarriedBy (0 for
/// intra-iteration) when the accesses can touch the same location;
/// \p FromFirst is true when the dependence runs first->second.
static bool memoryDistance(const MemRef &First, const MemRef &Second,
                           unsigned &CarriedBy, bool &FromFirst) {
  if (First.Stride != Second.Stride)
    return false; // Handled conservatively by the caller.
  int64_t Stride = First.Stride;
  int64_t Delta = Second.Offset - First.Offset;
  int64_t MaxSize = std::max(First.SizeBytes, Second.SizeBytes);
  if (Stride == 0) {
    // Same (induction-invariant) location every iteration when the byte
    // ranges overlap.
    if (std::llabs(Delta) >= MaxSize)
      return false;
    CarriedBy = 1;
    FromFirst = true; // Caller also adds the intra-iteration edge.
    return true;
  }
  // First touches Stride*i + OffFirst; Second touches Stride*j + OffSecond.
  // They collide when j - i = -Delta / Stride.
  if (Delta % Stride != 0) {
    // Never the exact same word (e.g. interleaved even/odd accesses) if
    // the leftover offset is at least the access size.
    int64_t Leftover = std::llabs(Delta % Stride);
    if (Leftover >= MaxSize && std::llabs(Stride) - Leftover >= MaxSize)
      return false;
    // Partial overlap is possible; be conservative.
    CarriedBy = 1;
    FromFirst = true;
    return true;
  }
  int64_t Lag = -Delta / Stride;
  if (Lag == 0) {
    CarriedBy = 0;
    FromFirst = true;
    return true;
  }
  if (Lag > 0) {
    // Second at iteration i+Lag touches First's iteration-i location.
    CarriedBy = static_cast<unsigned>(Lag);
    FromFirst = true;
    return true;
  }
  CarriedBy = static_cast<unsigned>(-Lag);
  FromFirst = false;
  return true;
}

void DependenceGraph::buildMemoryDeps(const Loop &L) {
  std::vector<uint32_t> MemOps;
  for (uint32_t I = 0; I < NumNodes; ++I)
    if (L.body()[I].isMemory())
      MemOps.push_back(I);

  MinCarriedMemoryDistance = 0;
  auto NoteCarried = [&](unsigned Distance) {
    if (Distance == 0)
      return;
    if (MinCarriedMemoryDistance == 0 ||
        Distance < MinCarriedMemoryDistance)
      MinCarriedMemoryDistance = Distance;
  };

  for (size_t A = 0; A < MemOps.size(); ++A) {
    for (size_t B = A + 1; B < MemOps.size(); ++B) {
      uint32_t First = MemOps[A];
      uint32_t Second = MemOps[B];
      const Instruction &FirstInstr = L.body()[First];
      const Instruction &SecondInstr = L.body()[Second];
      // Two loads never conflict.
      if (FirstInstr.isLoad() && SecondInstr.isLoad())
        continue;
      if (FirstInstr.Mem.BaseSym != SecondInstr.Mem.BaseSym)
        continue; // Distinct arrays never alias in this IR.

      if (FirstInstr.Mem.Indirect || SecondInstr.Mem.Indirect ||
          FirstInstr.Mem.Stride != SecondInstr.Mem.Stride) {
        // Conservative: may conflict in the same iteration and across
        // consecutive iterations.
        addEdge(First, Second, DepKind::Memory, /*Distance=*/0);
        addEdge(Second, First, DepKind::Memory, /*Distance=*/1);
        NumMemoryDeps += 2;
        NoteCarried(1);
        continue;
      }

      unsigned CarriedBy = 0;
      bool FromFirst = true;
      if (!memoryDistance(FirstInstr.Mem, SecondInstr.Mem, CarriedBy,
                          FromFirst))
        continue;
      if (CarriedBy == 0) {
        addEdge(First, Second, DepKind::Memory, 0);
        ++NumMemoryDeps;
        continue;
      }
      if (FromFirst)
        addEdge(First, Second, DepKind::Memory, CarriedBy);
      else
        addEdge(Second, First, DepKind::Memory, CarriedBy);
      ++NumMemoryDeps;
      NoteCarried(CarriedBy);
      // An invariant location additionally orders within the iteration.
      if (FirstInstr.Mem.Stride == 0) {
        addEdge(First, Second, DepKind::Memory, 0);
        ++NumMemoryDeps;
      }
    }
  }
}

void DependenceGraph::buildControlDeps(const Loop &L) {
  // Side effects may not move across early exits; pure computations may be
  // speculated above them (the edge is marked Speculatable so schedulers
  // can model an aggressively speculating compiler).
  auto HasSideEffects = [&](const Instruction &Instr) {
    return Instr.isStore() || Instr.isCall() ||
           Instr.Op == Opcode::ExitIf || Instr.isLoopControl();
  };

  std::vector<uint32_t> Exits;
  std::vector<uint32_t> Calls;
  uint32_t BackBranch = static_cast<uint32_t>(NumNodes);
  for (uint32_t I = 0; I < NumNodes; ++I) {
    const Instruction &Instr = L.body()[I];
    if (Instr.Op == Opcode::ExitIf)
      Exits.push_back(I);
    if (Instr.isCall())
      Calls.push_back(I);
    if (Instr.Op == Opcode::BackBr)
      BackBranch = I;
  }

  for (uint32_t Exit : Exits) {
    for (uint32_t I = 0; I < NumNodes; ++I) {
      if (I == Exit)
        continue;
      const Instruction &Instr = L.body()[I];
      if (I < Exit) {
        // Side effects before the exit must stay before it.
        if (Instr.isStore() || Instr.isCall())
          addEdge(I, Exit, DepKind::Control, 0);
      } else {
        addEdge(Exit, I, DepKind::Control, 0,
                /*Speculatable=*/!HasSideEffects(Instr));
      }
    }
  }

  for (uint32_t CallIdx : Calls) {
    for (uint32_t I = 0; I < NumNodes; ++I) {
      if (I == CallIdx)
        continue;
      const Instruction &Instr = L.body()[I];
      if (!Instr.isMemory() && !Instr.isCall())
        continue;
      if (I < CallIdx)
        addEdge(I, CallIdx, DepKind::Control, 0);
      else
        addEdge(CallIdx, I, DepKind::Control, 0);
    }
    // Calls serialize with themselves and with stores across iterations.
    addEdge(CallIdx, CallIdx, DepKind::Control, 1);
    for (uint32_t I = 0; I < NumNodes; ++I)
      if (L.body()[I].isStore())
        addEdge(CallIdx, I, DepKind::Control, 1);
  }

  // Everything executes no later than the backedge branch.
  if (BackBranch < NumNodes) {
    for (uint32_t I = 0; I < NumNodes; ++I)
      if (I != BackBranch && !L.body()[I].isLoopControl())
        addEdge(I, BackBranch, DepKind::Control, 0, /*Speculatable=*/true);
  }
}
