//===- analysis/lint/Lint.cpp - Lint engine -------------------------------===//

#include "analysis/lint/Lint.h"

using namespace metaopt;

static bool passEnabled(const LintPass &Pass,
                        const std::vector<std::string> &Filter) {
  if (Filter.empty())
    return true;
  Diagnostic Probe;
  Probe.Id = Pass.Id;
  for (const std::string &Code : Filter)
    if (Probe.hasId(Code))
      return true;
  return false;
}

DiagnosticReport metaopt::lintLoop(const Loop &L,
                                   const LintOptions &Options) {
  DiagnosticReport Report;

  bool StructurallySound = true;
  DiagnosticReport Verified = verifyLoopDiagnostics(L, Options.Verify);
  for (const Diagnostic &D : Verified.diagnostics())
    if (D.hasId("V001") || D.hasId("V002") || D.hasId("V003"))
      StructurallySound = false;
  if (Options.RunVerifier)
    Report.append(Verified);

  if (!StructurallySound)
    return Report; // Dataflow over broken register ids is meaningless.

  BodyDataflow DF(L);
  SymbolicAnalysis SA(L);
  LintContext Ctx{DF, SA, Options.Symbols};
  for (const LintPass &Pass : lintPasses())
    if (passEnabled(Pass, Options.Passes))
      Pass.Run(Ctx, Report);
  return Report;
}
