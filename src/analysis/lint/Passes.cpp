//===- analysis/lint/Passes.cpp - The lint pass registry ------------------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
// Each pass is a free function over the shared BodyDataflow facts; the
// registry at the bottom fixes the ID order. A pass's registry severity is
// the severity of its primary finding; a pass may additionally emit notes
// (e.g. L004 reports never-taken exits as notes but always-taken exits as
// warnings).
//
//===----------------------------------------------------------------------===//

#include "analysis/lint/Lint.h"

#include "ir/Printer.h"

#include <cstdlib>
#include <map>
#include <set>

using namespace metaopt;

namespace {

/// Emits one diagnostic anchored at body instruction \p BodyIndex (-1 for
/// loop level), with printed-instruction context and the source line
/// threaded from the parser when present.
void emitAt(const Loop &L, const char *Id, Severity Sev, int BodyIndex,
            std::string Message, DiagnosticReport &Out) {
  Diagnostic D;
  D.Id = Id;
  D.Sev = Sev;
  D.LoopName = L.name();
  D.BodyIndex = BodyIndex;
  if (BodyIndex >= 0) {
    const Instruction &Instr = L.body()[static_cast<size_t>(BodyIndex)];
    D.SrcLine = Instr.SrcLine;
    D.Context = "instruction " + std::to_string(BodyIndex) + ": " +
                printInstruction(L, Instr);
  } else {
    D.SrcLine = L.headerLine();
  }
  D.Message = std::move(Message);
  Out.add(std::move(D));
}

//===----------------------------------------------------------------------===//
// L001: reaching-definitions use-before-def
//===----------------------------------------------------------------------===//

void runUseBeforeDef(const LintContext &Ctx, DiagnosticReport &Out) {
  const BodyDataflow &DF = Ctx.DF;
  const Loop &L = DF.loop();
  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    for (RegId Operand : Instr.Operands)
      if (DF.availabilityAt(Operand, I) == Avail::None)
        emitAt(L, diag::LintUseBeforeDef, Severity::Error,
               static_cast<int>(I),
               "no definition of " + L.regName(Operand) +
                   " reaches this use",
               Out);
    if (Instr.Pred != NoReg &&
        DF.availabilityAt(Instr.Pred, I) == Avail::None)
      emitAt(L, diag::LintUseBeforeDef, Severity::Error,
             static_cast<int>(I),
             "no definition of guard " + L.regName(Instr.Pred) +
                 " reaches this use",
             Out);
  }
}

//===----------------------------------------------------------------------===//
// L002: maybe-undefined reads of predicated definitions
//===----------------------------------------------------------------------===//

/// True when reading \p Reg inside \p Instr cannot observe the undefined
/// not-written case: the reader runs under the same guard as the
/// definition, or the reader is a select whose condition is that guard
/// and \p Reg sits in the arm the guard enables.
bool predicatedReadIsSafe(const Instruction &Instr, size_t OperandSlot,
                          RegId Guard) {
  if (Instr.Pred == Guard)
    return true;
  return Instr.Op == Opcode::Select && OperandSlot == 1 &&
         Instr.Operands.size() == 3 && Instr.Operands[0] == Guard;
}

void runMaybeUndefPredication(const LintContext &Ctx, DiagnosticReport &Out) {
  const BodyDataflow &DF = Ctx.DF;
  const Loop &L = DF.loop();
  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    for (size_t Slot = 0; Slot < Instr.Operands.size(); ++Slot) {
      RegId Operand = Instr.Operands[Slot];
      if (DF.availabilityAt(Operand, I) != Avail::Guarded)
        continue;
      RegId Guard = DF.defGuard(Operand);
      if (predicatedReadIsSafe(Instr, Slot, Guard))
        continue;
      emitAt(L, diag::LintMaybeUndefPredication, Severity::Warning,
             static_cast<int>(I),
             L.regName(Operand) + " may be undefined here: its " +
                 "definition is guarded by " + L.regName(Guard) +
                 " but this read is not",
             Out);
    }
    if (Instr.Pred != NoReg &&
        DF.availabilityAt(Instr.Pred, I) == Avail::Guarded)
      emitAt(L, diag::LintMaybeUndefPredication, Severity::Warning,
             static_cast<int>(I),
             "guard " + L.regName(Instr.Pred) +
                 " may be undefined here: its definition is itself " +
                 "predicated",
             Out);
  }
  for (const PhiNode &Phi : L.phis()) {
    if (Phi.Recur == NoReg || DF.defIndex(Phi.Recur) == BodyDataflow::NoDef)
      continue;
    RegId Guard = DF.defGuard(Phi.Recur);
    if (Guard == NoReg)
      continue;
    emitAt(L, diag::LintMaybeUndefPredication, Severity::Warning, -1,
           "phi " + L.regName(Phi.Dest) + " recurrence " +
               L.regName(Phi.Recur) + " is guarded by " + L.regName(Guard) +
               "; iterations where the guard is false carry an undefined "
               "value",
           Out);
  }
}

//===----------------------------------------------------------------------===//
// L003: dead definitions
//===----------------------------------------------------------------------===//

void runDeadDef(const LintContext &Ctx, DiagnosticReport &Out) {
  const BodyDataflow &DF = Ctx.DF;
  const Loop &L = DF.loop();
  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    if (!Instr.hasDest() || Instr.isLoopControl())
      continue;
    if (!DF.isLive(Instr.Dest))
      emitAt(L, diag::LintDeadDef, Severity::Note, static_cast<int>(I),
             L.regName(Instr.Dest) +
                 " is computed but never reaches a store, call, exit, or "
                 "loop-carried value (dead code)",
             Out);
  }
}

//===----------------------------------------------------------------------===//
// L004: constant exit probabilities
//===----------------------------------------------------------------------===//

void runConstantExit(const LintContext &Ctx, DiagnosticReport &Out) {
  const BodyDataflow &DF = Ctx.DF;
  const Loop &L = DF.loop();
  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    if (Instr.Op != Opcode::ExitIf)
      continue;
    if (Instr.TakenProb == 0.0)
      emitAt(L, diag::LintConstantExit, Severity::Note,
             static_cast<int>(I),
             "exit is never taken (prob=0); it still blocks speculation",
             Out);
    else if (Instr.TakenProb >= 1.0)
      emitAt(L, diag::LintConstantExit, Severity::Warning,
             static_cast<int>(I),
             "exit is taken every iteration (prob=1); the loop body runs "
             "at most once",
             Out);
  }
}

//===----------------------------------------------------------------------===//
// L005: constant predicates
//===----------------------------------------------------------------------===//

void runConstantPredicate(const LintContext &Ctx, DiagnosticReport &Out) {
  const BodyDataflow &DF = Ctx.DF;
  const Loop &L = DF.loop();
  auto IsConstPred = [&](RegId Reg) {
    return Reg != NoReg && L.regClass(Reg) == RegClass::Pred &&
           DF.isConstant(Reg);
  };
  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    if (IsConstPred(Instr.Pred))
      emitAt(L, diag::LintConstantPredicate, Severity::Warning,
             static_cast<int>(I),
             "guard " + L.regName(Instr.Pred) +
                 " is compile-time constant; this instruction either "
                 "always or never executes",
             Out);
    if (Instr.Op == Opcode::ExitIf && !Instr.Operands.empty() &&
        IsConstPred(Instr.Operands[0]))
      emitAt(L, diag::LintConstantPredicate, Severity::Warning,
             static_cast<int>(I),
             "exit condition " + L.regName(Instr.Operands[0]) +
                 " is compile-time constant",
             Out);
    if (Instr.Op == Opcode::Select && Instr.Operands.size() == 3 &&
        IsConstPred(Instr.Operands[0]))
      emitAt(L, diag::LintConstantPredicate, Severity::Warning,
             static_cast<int>(I),
             "select condition " + L.regName(Instr.Operands[0]) +
                 " is compile-time constant; one arm is dead",
             Out);
  }
}

//===----------------------------------------------------------------------===//
// L006: memory WAW / self-dependence hazards
//===----------------------------------------------------------------------===//

void runMemoryWaw(const LintContext &Ctx, DiagnosticReport &Out) {
  const BodyDataflow &DF = Ctx.DF;
  const Loop &L = DF.loop();
  std::vector<size_t> Stores;
  for (size_t I = 0; I < L.body().size(); ++I)
    if (L.body()[I].isStore() && !L.body()[I].Mem.Indirect)
      Stores.push_back(I);

  for (size_t A = 0; A < Stores.size(); ++A) {
    const MemRef &First = L.body()[Stores[A]].Mem;
    for (size_t B = A + 1; B < Stores.size(); ++B) {
      const MemRef &Second = L.body()[Stores[B]].Mem;
      if (First.BaseSym != Second.BaseSym || First.Stride != Second.Stride)
        continue;
      if (First.Offset == Second.Offset &&
          First.SizeBytes == Second.SizeBytes)
        emitAt(L, diag::LintMemoryWaw, Severity::Warning,
               static_cast<int>(Stores[A]),
               "store is overwritten by instruction " +
                   std::to_string(Stores[B]) +
                   " writing the identical location in the same iteration "
                   "(WAW)",
               Out);
    }
    if (First.Stride == 0)
      emitAt(L, diag::LintMemoryWaw, Severity::Warning,
             static_cast<int>(Stores[A]),
             "store writes a loop-invariant address every iteration; the "
             "carried self-dependence serializes unrolled copies",
             Out);
    else if (std::llabs(First.Stride) <
             static_cast<int64_t>(First.SizeBytes))
      emitAt(L, diag::LintMemoryWaw, Severity::Warning,
             static_cast<int>(Stores[A]),
             "store overlaps its own previous iteration (|stride| < "
             "access size)",
             Out);
  }
}

//===----------------------------------------------------------------------===//
// L007: memory stride / alias-shape consistency
//===----------------------------------------------------------------------===//

void runStrideShape(const LintContext &Ctx, DiagnosticReport &Out) {
  const BodyDataflow &DF = Ctx.DF;
  const Loop &L = DF.loop();
  std::map<int32_t, std::vector<size_t>> DirectBySym;
  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    if (!Instr.isMemory())
      continue;
    if (Instr.Mem.Indirect) {
      if (Instr.Mem.Stride != 0)
        emitAt(L, diag::LintStrideShape, Severity::Note,
               static_cast<int>(I),
               "indirect reference carries stride " +
                   std::to_string(Instr.Mem.Stride) +
                   ", which address computation ignores",
               Out);
      continue;
    }
    DirectBySym[Instr.Mem.BaseSym].push_back(I);
  }

  for (const auto &[Sym, Refs] : DirectBySym) {
    // Stride agreement across all direct references of one array.
    int64_t FirstStride = L.body()[Refs[0]].Mem.Stride;
    for (size_t RefIdx = 1; RefIdx < Refs.size(); ++RefIdx) {
      int64_t Stride = L.body()[Refs[RefIdx]].Mem.Stride;
      if (Stride != FirstStride) {
        emitAt(L, diag::LintStrideShape, Severity::Warning,
               static_cast<int>(Refs[RefIdx]),
               "references to @" + std::to_string(Sym) +
                   " disagree on stride (" + std::to_string(FirstStride) +
                   " vs " + std::to_string(Stride) +
                   "); dependence distances fall back to conservative "
                   "edges",
               Out);
        break; // One shape report per array is enough.
      }
    }
    // Partial overlaps between same-iteration byte ranges.
    for (size_t A = 0; A < Refs.size(); ++A) {
      const MemRef &First = L.body()[Refs[A]].Mem;
      for (size_t B = A + 1; B < Refs.size(); ++B) {
        const MemRef &Second = L.body()[Refs[B]].Mem;
        if (First.Stride != Second.Stride)
          continue;
        bool Identical = First.Offset == Second.Offset &&
                         First.SizeBytes == Second.SizeBytes;
        bool Overlap = First.Offset < Second.Offset + Second.SizeBytes &&
                       Second.Offset < First.Offset + First.SizeBytes;
        if (Overlap && !Identical &&
            First.SizeBytes != Second.SizeBytes)
          emitAt(L, diag::LintStrideShape, Severity::Warning,
                 static_cast<int>(Refs[B]),
                 "partially overlaps the access of instruction " +
                     std::to_string(Refs[A]) + " at @" +
                     std::to_string(Sym) + " with a different width",
                 Out);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// A001: symbolic access range vs. declared array extent
//===----------------------------------------------------------------------===//

void runContextOutOfBounds(const LintContext &Ctx, DiagnosticReport &Out) {
  if (!Ctx.Symbols)
    return; // No declarations to check against.
  const Loop &L = Ctx.loop();
  const SymbolicAnalysis &SA = Ctx.SA;
  int64_t IterLo = 0, IterHi = 0;
  bool Bounded = SA.ivRange(IterLo, IterHi);
  for (const AccessSummary &Access : SA.accesses()) {
    const SymbolDecl *Decl = Ctx.Symbols->find(Access.Sym);
    if (!Decl || Decl->ExtentBytes < 0)
      continue;
    if (Access.Guard == PredFact::AlwaysFalse)
      continue; // Never executes, never touches memory.
    // Only addresses that are a known constant offset from the array
    // start can be compared against the extent; a symbolic base term
    // (an opaque live-in index) defeats the bound either way.
    if (!Access.AddressKnown || Access.Base != NoReg)
      continue;
    int64_t FirstByte = Access.Offset, LastByte = Access.Offset;
    if (Access.Stride != 0) {
      if (!Bounded || IterHi < IterLo)
        continue; // Unbounded iteration range: nothing provable.
      int64_t AtLo, AtHi;
      if (__builtin_mul_overflow(Access.Stride, IterLo, &AtLo) ||
          __builtin_add_overflow(AtLo, Access.Offset, &AtLo) ||
          __builtin_mul_overflow(Access.Stride, IterHi, &AtHi) ||
          __builtin_add_overflow(AtHi, Access.Offset, &AtHi))
        continue;
      FirstByte = std::min(AtLo, AtHi);
      LastByte = std::max(AtLo, AtHi);
    }
    int64_t End;
    if (__builtin_add_overflow(LastByte,
                               static_cast<int64_t>(Access.SizeBytes),
                               &End))
      continue;
    if (FirstByte >= 0 && End <= Decl->ExtentBytes)
      continue;
    std::string Where =
        FirstByte < 0
            ? "byte " + std::to_string(FirstByte) + " before the start"
            : "byte " + std::to_string(End) + " past a declared extent of " +
                  std::to_string(Decl->ExtentBytes);
    emitAt(L, diag::LintContextOutOfBounds, Severity::Warning,
           static_cast<int>(Access.BodyIndex),
           std::string(Access.IsStore ? "store to" : "load of") + " @" +
               std::to_string(Access.Sym) +
               " provably reaches " + Where +
               " (context declares the object as " +
               std::to_string(Decl->ExtentBytes) + " bytes)",
           Out);
  }
}

//===----------------------------------------------------------------------===//
// A002: provably-dead predicated stores
//===----------------------------------------------------------------------===//

void runDeadPredicatedStore(const LintContext &Ctx, DiagnosticReport &Out) {
  const Loop &L = Ctx.loop();
  for (const AccessSummary &Access : Ctx.SA.accesses()) {
    if (!Access.IsStore || Access.Guard != PredFact::AlwaysFalse)
      continue;
    const Instruction &Instr = L.body()[Access.BodyIndex];
    if (Instr.Pred == NoReg)
      continue; // Unpredicated stores cannot be guard-dead.
    emitAt(L, diag::LintDeadPredicatedStore, Severity::Warning,
           static_cast<int>(Access.BodyIndex),
           "store is provably dead: guard " + L.regName(Instr.Pred) +
               " is false on every iteration",
           Out);
  }
}

//===----------------------------------------------------------------------===//
// A003: overflow-prone induction arithmetic
//===----------------------------------------------------------------------===//

void runOverflowProneIv(const LintContext &Ctx, DiagnosticReport &Out) {
  const Loop &L = Ctx.loop();
  const SymbolicAnalysis &SA = Ctx.SA;
  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    if (!Instr.hasDest() || L.regClass(Instr.Dest) != RegClass::Int)
      continue;
    if (!SA.overflowProne(Instr.Dest))
      continue;
    // Report where the wrap originates, not every tainted user.
    bool Inherited = false;
    for (RegId Operand : Instr.Operands)
      Inherited = Inherited || SA.overflowProne(Operand);
    if (Inherited)
      continue;
    emitAt(L, diag::LintOverflowProneIv, Severity::Warning,
           static_cast<int>(I),
           L.regName(Instr.Dest) +
               " provably wraps 64-bit arithmetic somewhere in the "
               "iteration range; range and dependence proofs are refused "
               "for it and everything derived from it",
           Out);
  }
}

//===----------------------------------------------------------------------===//
// A004: declared stride vs. actual access strides
//===----------------------------------------------------------------------===//

void runContradictoryStride(const LintContext &Ctx, DiagnosticReport &Out) {
  if (!Ctx.Symbols)
    return;
  const Loop &L = Ctx.loop();
  std::set<int32_t> Reported;
  for (const AccessSummary &Access : Ctx.SA.accesses()) {
    if (Access.WasIndirect)
      continue; // Gathers legitimately walk differently.
    const SymbolDecl *Decl = Ctx.Symbols->find(Access.Sym);
    if (!Decl || !Decl->HasStride || Access.Stride == Decl->DeclaredStride)
      continue;
    if (!Reported.insert(Access.Sym).second)
      continue; // One contradiction report per symbol is enough.
    emitAt(L, diag::LintContradictoryStride, Severity::Warning,
           static_cast<int>(Access.BodyIndex),
           "context declares @" + std::to_string(Access.Sym) +
               " walked at stride " + std::to_string(Decl->DeclaredStride) +
               " but this access advances " + std::to_string(Access.Stride) +
               " bytes per iteration",
           Out);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// L008: dependence graph vs. scheduler legality assumptions
//===----------------------------------------------------------------------===//

void metaopt::checkDependenceLegality(const Loop &L,
                                      const DependenceGraph &DG,
                                      DiagnosticReport &Out) {
  size_t N = L.body().size();

  // Edge lookup sets: (Src, Dst, Kind) and (Src, Dst, Kind, Distance).
  std::set<std::tuple<uint32_t, uint32_t, DepKind>> Connected;
  std::set<std::tuple<uint32_t, uint32_t, DepKind, uint32_t>> Exact;
  bool EndpointsValid = true;
  for (const DepEdge &E : DG.edges()) {
    if (E.Src >= N || E.Dst >= N) {
      emitAt(L, diag::LintDepGraphLegality, Severity::Error, -1,
             "dependence edge endpoint out of range (" +
                 std::to_string(E.Src) + " -> " + std::to_string(E.Dst) +
                 ")",
             Out);
      EndpointsValid = false;
      continue;
    }
    Connected.insert({E.Src, E.Dst, E.Kind});
    Exact.insert({E.Src, E.Dst, E.Kind, E.Distance});
    // Schedulers place intra-iteration successors after their
    // predecessors; a distance-0 edge running backwards (or onto itself)
    // is unsatisfiable.
    if (E.Distance == 0 && E.Src >= E.Dst)
      emitAt(L, diag::LintDepGraphLegality, Severity::Error,
             static_cast<int>(E.Dst),
             "intra-iteration dependence edge runs backwards (" +
                 std::to_string(E.Src) + " -> " + std::to_string(E.Dst) +
                 "), which no schedule can satisfy",
             Out);
  }
  if (!EndpointsValid || DG.numNodes() != N) {
    if (DG.numNodes() != N)
      emitAt(L, diag::LintDepGraphLegality, Severity::Error, -1,
             "dependence graph has " + std::to_string(DG.numNodes()) +
                 " nodes for a body of " + std::to_string(N) +
                 " instructions",
             Out);
    return;
  }

  auto HasEdge = [&](uint32_t Src, uint32_t Dst, DepKind Kind) {
    return Connected.count({Src, Dst, Kind}) != 0;
  };
  auto HasExact = [&](uint32_t Src, uint32_t Dst, DepKind Kind,
                      uint32_t Distance) {
    return Exact.count({Src, Dst, Kind, Distance}) != 0;
  };

  // Register flow coverage: every use must be ordered after its
  // producer, same-iteration or through the loop-carried phi edge.
  std::map<RegId, uint32_t> DefAt;
  for (uint32_t I = 0; I < N; ++I)
    if (L.body()[I].hasDest())
      DefAt[L.body()[I].Dest] = I;
  std::map<RegId, RegId> RecurOf;
  for (const PhiNode &Phi : L.phis())
    RecurOf[Phi.Dest] = Phi.Recur;

  for (uint32_t I = 0; I < N; ++I) {
    const Instruction &Instr = L.body()[I];
    auto CheckUse = [&](RegId Reg) {
      auto Def = DefAt.find(Reg);
      if (Def != DefAt.end()) {
        if (Def->second < I && !HasExact(Def->second, I, DepKind::Data, 0))
          emitAt(L, diag::LintDepGraphLegality, Severity::Error,
                 static_cast<int>(I),
                 "missing same-iteration flow edge from instruction " +
                     std::to_string(Def->second) + " defining " +
                     L.regName(Reg),
                 Out);
        return;
      }
      auto Carried = RecurOf.find(Reg);
      if (Carried == RecurOf.end())
        return; // Live-in: no intra-loop producer.
      auto CarriedDef = DefAt.find(Carried->second);
      if (CarriedDef != DefAt.end() &&
          !HasExact(CarriedDef->second, I, DepKind::Data, 1))
        emitAt(L, diag::LintDepGraphLegality, Severity::Error,
               static_cast<int>(I),
               "missing loop-carried flow edge from instruction " +
                   std::to_string(CarriedDef->second) +
                   " computing the recurrence of " + L.regName(Reg),
               Out);
    };
    for (RegId Operand : Instr.Operands)
      CheckUse(Operand);
    if (Instr.Pred != NoReg)
      CheckUse(Instr.Pred);
  }

  // Memory pair coverage: every may-aliasing pair with at least one
  // store must be connected in at least one direction.
  std::vector<uint32_t> MemOps;
  for (uint32_t I = 0; I < N; ++I)
    if (L.body()[I].isMemory())
      MemOps.push_back(I);
  auto MayAlias = [](const MemRef &A, const MemRef &B) {
    if (A.BaseSym != B.BaseSym)
      return false;
    if (A.Indirect || B.Indirect || A.Stride != B.Stride)
      return true;
    int64_t Delta = B.Offset - A.Offset;
    int64_t MaxSize = std::max(A.SizeBytes, B.SizeBytes);
    if (A.Stride == 0)
      return std::llabs(Delta) < MaxSize;
    int64_t Leftover = std::llabs(Delta % A.Stride);
    if (Leftover == 0)
      return true; // Some iteration lag lands exactly on the location.
    return Leftover < MaxSize || std::llabs(A.Stride) - Leftover < MaxSize;
  };
  for (size_t A = 0; A < MemOps.size(); ++A) {
    for (size_t B = A + 1; B < MemOps.size(); ++B) {
      const Instruction &First = L.body()[MemOps[A]];
      const Instruction &Second = L.body()[MemOps[B]];
      if (First.isLoad() && Second.isLoad())
        continue;
      if (!MayAlias(First.Mem, Second.Mem))
        continue;
      if (!HasEdge(MemOps[A], MemOps[B], DepKind::Memory) &&
          !HasEdge(MemOps[B], MemOps[A], DepKind::Memory))
        emitAt(L, diag::LintDepGraphLegality, Severity::Error,
               static_cast<int>(MemOps[B]),
               "possibly aliasing accesses to @" +
                   std::to_string(First.Mem.BaseSym) +
                   " (instructions " + std::to_string(MemOps[A]) + " and " +
                   std::to_string(MemOps[B]) +
                   ") have no memory dependence edge",
               Out);
    }
  }

  // Control coverage around early exits and calls.
  for (uint32_t I = 0; I < N; ++I) {
    const Instruction &Instr = L.body()[I];
    if (Instr.Op == Opcode::ExitIf) {
      for (uint32_t J = 0; J < N; ++J) {
        if (J == I)
          continue;
        const Instruction &Other = L.body()[J];
        bool Needed = J > I ? true : Other.isStore() || Other.isCall();
        if (!Needed)
          continue;
        uint32_t Src = J > I ? I : J;
        uint32_t Dst = J > I ? J : I;
        if (!HasEdge(Src, Dst, DepKind::Control))
          emitAt(L, diag::LintDepGraphLegality, Severity::Error,
                 static_cast<int>(Dst),
                 "missing control edge ordering instruction " +
                     std::to_string(J) + " with the early exit at " +
                     std::to_string(I),
                 Out);
      }
    }
    if (Instr.isCall()) {
      for (uint32_t J = 0; J < N; ++J) {
        if (J == I || !L.body()[J].isMemory())
          continue;
        uint32_t Src = std::min(I, J);
        uint32_t Dst = std::max(I, J);
        if (!HasEdge(Src, Dst, DepKind::Control))
          emitAt(L, diag::LintDepGraphLegality, Severity::Error,
                 static_cast<int>(Dst),
                 "missing control edge ordering memory instruction " +
                     std::to_string(J) + " with the call at " +
                     std::to_string(I),
                 Out);
      }
    }
  }
}

namespace {

void runDepGraphLegality(const LintContext &Ctx, DiagnosticReport &Out) {
  const BodyDataflow &DF = Ctx.DF;
  const Loop &L = DF.loop();
  // Dependence legality is only meaningful for dataflow-clean bodies: a
  // use-before-def loop (L001) produces a graph with backward flow edges
  // by construction, and re-flagging each of them here would just
  // duplicate the L001 report.
  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    for (RegId Operand : Instr.Operands)
      if (DF.availabilityAt(Operand, I) == Avail::None)
        return;
    if (Instr.Pred != NoReg &&
        DF.availabilityAt(Instr.Pred, I) == Avail::None)
      return;
  }
  DependenceGraph DG(L);
  checkDependenceLegality(L, DG, Out);
}

} // namespace

const std::vector<LintPass> &metaopt::lintPasses() {
  static const std::vector<LintPass> Registry = {
      {diag::LintContextOutOfBounds, Severity::Warning,
       "symbolic access ranges must stay inside the array extents the "
       "import context declares",
       runContextOutOfBounds},
      {diag::LintDeadPredicatedStore, Severity::Warning,
       "stores whose guard the symbolic analysis proves false on every "
       "iteration",
       runDeadPredicatedStore},
      {diag::LintOverflowProneIv, Severity::Warning,
       "induction arithmetic that provably wraps 64-bit integers inside "
       "the iteration range",
       runOverflowProneIv},
      {diag::LintContradictoryStride, Severity::Warning,
       "access strides must match the stride the import context declares "
       "for the array",
       runContradictoryStride},
      {diag::LintUseBeforeDef, Severity::Error,
       "reaching definitions: every operand read must be reached by a "
       "definition",
       runUseBeforeDef},
      {diag::LintMaybeUndefPredication, Severity::Warning,
       "reads of predicated definitions outside the defining guard may "
       "observe undefined values",
       runMaybeUndefPredication},
      {diag::LintDeadDef, Severity::Note,
       "definitions that never reach a store, call, exit, or loop-carried "
       "value",
       runDeadDef},
      {diag::LintConstantExit, Severity::Warning,
       "early exits with probability 0 (never taken) or 1 (always taken)",
       runConstantExit},
      {diag::LintConstantPredicate, Severity::Warning,
       "guards, exit conditions, and select conditions that are "
       "compile-time constants",
       runConstantPredicate},
      {diag::LintMemoryWaw, Severity::Warning,
       "same-iteration WAW stores and stores overlapping themselves "
       "across iterations",
       runMemoryWaw},
      {diag::LintStrideShape, Severity::Warning,
       "stride and access-shape consistency across references to one "
       "array",
       runStrideShape},
      {diag::LintDepGraphLegality, Severity::Error,
       "cross-validates DependenceGraph edges against scheduler legality "
       "assumptions",
       runDepGraphLegality},
  };
  return Registry;
}
