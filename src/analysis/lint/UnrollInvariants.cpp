//===- analysis/lint/UnrollInvariants.cpp ---------------------------------===//

#include "analysis/lint/UnrollInvariants.h"

#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "transform/Unroller.h"

#include <map>

using namespace metaopt;

namespace {

void emitError(const Loop &Unrolled, const char *Id, int BodyIndex,
               std::string Message, DiagnosticReport &Out) {
  Diagnostic D;
  D.Id = Id;
  D.Sev = Severity::Error;
  D.LoopName = Unrolled.name();
  D.BodyIndex = BodyIndex;
  if (BodyIndex >= 0 &&
      static_cast<size_t>(BodyIndex) < Unrolled.body().size()) {
    const Instruction &Instr = Unrolled.body()[static_cast<size_t>(BodyIndex)];
    D.SrcLine = Instr.SrcLine;
    D.Context = "instruction " + std::to_string(BodyIndex) + ": " +
                printInstruction(Unrolled, Instr);
  } else {
    D.SrcLine = Unrolled.headerLine();
  }
  D.Message = std::move(Message);
  Out.add(std::move(D));
}

/// Body indices of the original's non-control instructions, in order.
std::vector<size_t> replicatedIndices(const Loop &L) {
  std::vector<size_t> Indices;
  for (size_t I = 0; I < L.body().size(); ++I)
    if (!L.body()[I].isLoopControl())
      Indices.push_back(I);
  return Indices;
}

/// X001: Factor replicas followed by exactly one canonical control tail,
/// and the result passes structural verification. Returns false when the
/// shape is too broken for the per-replica checks to index safely.
bool checkShape(const Loop &Original, const Loop &Unrolled, unsigned Factor,
                const std::vector<size_t> &Replicated,
                DiagnosticReport &Out) {
  DiagnosticReport Verified = verifyLoopDiagnostics(Unrolled);
  if (Verified.hasErrors()) {
    emitError(Unrolled, diag::UnrollShape, -1,
              "unrolled loop fails structural verification (" +
                  std::to_string(Verified.errorCount()) + " errors)",
              Out);
    Out.append(Verified);
  }

  size_t Expected = Factor * Replicated.size() + 3;
  if (Unrolled.body().size() != Expected) {
    emitError(Unrolled, diag::UnrollShape, -1,
              "body has " + std::to_string(Unrolled.body().size()) +
                  " instructions; unroll of " +
                  std::to_string(Replicated.size()) + " by " +
                  std::to_string(Factor) + " requires " +
                  std::to_string(Expected) +
                  " (replicas plus canonical tail)",
              Out);
    return false;
  }

  size_t N = Unrolled.body().size();
  bool TailOk = Unrolled.body()[N - 3].Op == Opcode::IvAdd &&
                Unrolled.body()[N - 2].Op == Opcode::IvCmp &&
                Unrolled.body()[N - 1].Op == Opcode::BackBr;
  if (!TailOk)
    emitError(Unrolled, diag::UnrollShape, static_cast<int>(N - 3),
              "unrolled loop does not end in the canonical "
              "IvAdd/IvCmp/BackBr control tail",
              Out);
  for (size_t I = 0; I + 3 < N; ++I)
    if (Unrolled.body()[I].isLoopControl())
      emitError(Unrolled, diag::UnrollShape, static_cast<int>(I),
                "loop-control instruction inside the replicated body; the "
                "single fresh tail must be the only loop control",
                Out);
  (void)Original;
  return true;
}

/// X002 + X003: each replica must be the original body under a consistent
/// per-replica register renaming, with memory addresses rewritten for the
/// replica's position.
void checkReplicas(const Loop &Original, const Loop &Unrolled,
                   unsigned Factor, const std::vector<size_t> &Replicated,
                   DiagnosticReport &Out) {
  size_t Width = Replicated.size();
  // Original register -> this replica's register, reset per replica. A
  // flat table keyed by original RegId replaces a node-allocating map:
  // the audit runs after every unroll the labeling sweep performs, so its
  // clean path must not allocate per instruction. Out-of-range original
  // ids (a malformed input the checker still has to tolerate) fall back
  // to a map.
  std::vector<RegId> Renamed(Original.numRegs(), NoReg);
  std::vector<char> Seen(Original.numRegs(), 0);
  std::map<RegId, RegId> RenamedOutOfRange;
  for (unsigned Copy = 0; Copy < Factor; ++Copy) {
    // Defs are seeded as they appear; inputs (phi destinations, live-ins,
    // values flowing in from the previous replica) are recorded at first
    // use and must stay consistent afterwards.
    std::fill(Seen.begin(), Seen.end(), 0);
    RenamedOutOfRange.clear();
    for (size_t Slot = 0; Slot < Width; ++Slot) {
      const Instruction &Orig = Original.body()[Replicated[Slot]];
      size_t CloneIndex = static_cast<size_t>(Copy) * Width + Slot;
      const Instruction &Clone = Unrolled.body()[CloneIndex];
      // Diagnostic prefix, materialized only when a check fails.
      auto Where = [&] {
        return "replica " + std::to_string(Copy) + ", instruction " +
               std::to_string(Replicated[Slot]) + ": ";
      };

      if (Clone.Op != Orig.Op || Clone.Imm != Orig.Imm ||
          Clone.TakenProb != Orig.TakenProb ||
          Clone.Paired != Orig.Paired) {
        emitError(Unrolled, diag::UnrollIsomorphism,
                  static_cast<int>(CloneIndex),
                  Where() + "clone is not the same operation (opcode, "
                          "immediate, exit probability, and pairing must "
                          "be preserved)",
                  Out);
        continue;
      }
      if (Clone.Operands.size() != Orig.Operands.size() ||
          Clone.hasDest() != Orig.hasDest() ||
          (Clone.Pred == NoReg) != (Orig.Pred == NoReg)) {
        emitError(Unrolled, diag::UnrollIsomorphism,
                  static_cast<int>(CloneIndex),
                  Where() + "clone changes operand, destination, or "
                          "predication arity",
                  Out);
        continue;
      }

      auto CheckWiring = [&](RegId OrigReg, RegId CloneReg,
                             const char *Role) {
        RegId Prior;
        if (OrigReg < Renamed.size()) {
          if (!Seen[OrigReg]) {
            Seen[OrigReg] = 1;
            Renamed[OrigReg] = CloneReg;
            return;
          }
          Prior = Renamed[OrigReg];
        } else {
          auto [It, Inserted] = RenamedOutOfRange.emplace(OrigReg, CloneReg);
          if (Inserted)
            return;
          Prior = It->second;
        }
        if (Prior != CloneReg)
          emitError(Unrolled, diag::UnrollIsomorphism,
                    static_cast<int>(CloneIndex),
                    Where() + std::string(Role) + " " +
                        Original.regName(OrigReg) +
                        " is wired inconsistently within the replica (" +
                        Unrolled.regName(Prior) + " vs " +
                        Unrolled.regName(CloneReg) + ")",
                    Out);
      };
      for (size_t K = 0; K < Orig.Operands.size(); ++K)
        CheckWiring(Orig.Operands[K], Clone.Operands[K], "operand");
      if (Orig.Pred != NoReg)
        CheckWiring(Orig.Pred, Clone.Pred, "guard");
      if (Orig.hasDest()) {
        CheckWiring(Orig.Dest, Clone.Dest, "destination");
        if (Unrolled.regClass(Clone.Dest) != Original.regClass(Orig.Dest))
          emitError(Unrolled, diag::UnrollIsomorphism,
                    static_cast<int>(CloneIndex),
                    Where() + "destination register class changed",
                    Out);
      }

      if (Orig.isMemory()) {
        const MemRef &Want = Orig.Mem;
        const MemRef &Got = Clone.Mem;
        int64_t WantStride = Want.Stride * static_cast<int64_t>(Factor);
        int64_t WantOffset =
            Want.Offset + Want.Stride * static_cast<int64_t>(Copy);
        if (Got.BaseSym != Want.BaseSym ||
            Got.Indirect != Want.Indirect ||
            Got.SizeBytes != Want.SizeBytes)
          emitError(Unrolled, diag::UnrollStrideScaling,
                    static_cast<int>(CloneIndex),
                    Where() + "memory base, width, or indirection changed",
                    Out);
        if (Got.Stride != WantStride)
          emitError(Unrolled, diag::UnrollStrideScaling,
                    static_cast<int>(CloneIndex),
                    Where() + "stride must scale by the factor (want " +
                        std::to_string(WantStride) + ", got " +
                        std::to_string(Got.Stride) + ")",
                    Out);
        if (Got.Offset != WantOffset)
          emitError(Unrolled, diag::UnrollStrideScaling,
                    static_cast<int>(CloneIndex),
                    Where() + "replica k must read offset + stride * k "
                            "(want " +
                        std::to_string(WantOffset) + ", got " +
                        std::to_string(Got.Offset) + ")",
                    Out);
      }
    }
  }
}

/// X004: every original loop-carried value survives — one phi for a plain
/// recurrence, Factor split accumulators for a splittable reduction — and
/// every surviving phi has a wired recurrence.
void checkLiveOuts(const Loop &Original, const Loop &Unrolled,
                   unsigned Factor, DiagnosticReport &Out) {
  size_t Expected = 0;
  for (const PhiNode &Phi : Original.phis())
    Expected +=
        (Factor > 1 && isSplittableReduction(Original, Phi)) ? Factor : 1;
  if (Unrolled.phis().size() != Expected)
    emitError(Unrolled, diag::UnrollLiveOut, -1,
              "unrolled loop carries " +
                  std::to_string(Unrolled.phis().size()) +
                  " phi values; the original's live-out set requires " +
                  std::to_string(Expected),
              Out);
  for (const PhiNode &Phi : Unrolled.phis())
    if (Phi.Dest == NoReg || Phi.Init == NoReg || Phi.Recur == NoReg)
      emitError(Unrolled, diag::UnrollLiveOut, -1,
                "unrolled phi " +
                    (Phi.Dest == NoReg ? std::string("<unset>")
                                       : Unrolled.regName(Phi.Dest)) +
                    " has an unwired init or recurrence",
                Out);
}

/// X005: main iterations * Factor + epilogue iterations must equal the
/// original trip count, statically and at the configured runtime trip.
void checkTripAccounting(const Loop &Original, const Loop &Unrolled,
                         unsigned Factor, DiagnosticReport &Out) {
  int64_t WantStatic = Original.hasKnownTripCount()
                           ? Original.tripCount() /
                                 static_cast<int64_t>(Factor)
                           : Loop::UnknownTripCount;
  if (Unrolled.tripCount() != WantStatic)
    emitError(Unrolled, diag::UnrollTripAccounting, -1,
              "static trip count is " +
                  std::to_string(Unrolled.tripCount()) + "; want " +
                  std::to_string(WantStatic),
              Out);

  UnrolledTripInfo Info = unrolledTripInfo(Original.runtimeTripCount(),
                                           Factor);
  if (Original.runtimeTripCount() >= 0 &&
      Info.MainIterations * static_cast<int64_t>(Factor) +
              Info.EpilogueIterations !=
          Original.runtimeTripCount())
    emitError(Unrolled, diag::UnrollTripAccounting, -1,
              "main * factor + epilogue does not reproduce the original "
              "trip count",
              Out);
  if (Unrolled.runtimeTripCount() != Info.MainIterations)
    emitError(Unrolled, diag::UnrollTripAccounting, -1,
              "runtime trip count is " +
                  std::to_string(Unrolled.runtimeTripCount()) +
                  " main iterations; want " +
                  std::to_string(Info.MainIterations),
              Out);
}

void auditHook(const Loop &Original, const Loop &Unrolled, unsigned Factor) {
  DiagnosticReport Report =
      checkUnrollInvariants(Original, Unrolled, Factor);
  if (Report.hasErrors())
    throw UnrollAuditError("unroll audit failed for " + Original.name() +
                           " by " + std::to_string(Factor) + ":\n" +
                           Report.renderText());
}

} // namespace

DiagnosticReport metaopt::checkUnrollInvariants(const Loop &Original,
                                                const Loop &Unrolled,
                                                unsigned Factor) {
  DiagnosticReport Out;
  if (Factor < 1) {
    emitError(Unrolled, diag::UnrollShape, -1,
              "unroll factor must be at least one", Out);
    return Out;
  }
  std::vector<size_t> Replicated = replicatedIndices(Original);
  if (checkShape(Original, Unrolled, Factor, Replicated, Out))
    checkReplicas(Original, Unrolled, Factor, Replicated, Out);
  checkLiveOuts(Original, Unrolled, Factor, Out);
  checkTripAccounting(Original, Unrolled, Factor, Out);
  return Out;
}

UnrollAuditGuard::UnrollAuditGuard()
    : Previous(setUnrollAuditHook(auditHook)) {}

UnrollAuditGuard::~UnrollAuditGuard() { setUnrollAuditHook(Previous); }
