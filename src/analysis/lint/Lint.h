//===- analysis/lint/Lint.h - IR diagnostics engine -------------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lint engine: a registry of dataflow-driven diagnostic passes over
/// the loop IR, layered above the structural verifier (ir/Verifier.h) on
/// the shared diagnostic model (ir/Diagnostics.h). The verifier proves a
/// loop is structurally sound; the lint passes prove the things labeling
/// quality depends on — every operand's definition actually reaches its
/// use under predication, predicates are not compile-time constants, no
/// store silently overwrites another, memory shapes are consistent enough
/// for the dependence analysis to be precise, and the dependence graph
/// the schedulers trust satisfies their legality assumptions.
///
/// Pass IDs are stable L###-prefixed strings; the catalog with examples
/// lives in docs/DIAGNOSTICS.md. metaopt-lint (tools/) sweeps the corpus
/// with this engine.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_LINT_LINT_H
#define METAOPT_ANALYSIS_LINT_LINT_H

#include "analysis/DependenceGraph.h"
#include "analysis/lint/Dataflow.h"
#include "analysis/symbolic/StrideInterval.h"
#include "ir/Diagnostics.h"
#include "ir/SymbolContext.h"
#include "ir/Verifier.h"

#include <string>
#include <vector>

namespace metaopt {

/// Stable lint diagnostic IDs (catalog: docs/DIAGNOSTICS.md). The A
/// series is backed by the symbolic stride-interval analysis
/// (analysis/symbolic); the L series by the lighter dataflow facts.
namespace diag {
inline constexpr const char *LintContextOutOfBounds =
    "A001-context-out-of-bounds";
inline constexpr const char *LintDeadPredicatedStore =
    "A002-dead-predicated-store";
inline constexpr const char *LintOverflowProneIv =
    "A003-overflow-prone-iv-arithmetic";
inline constexpr const char *LintContradictoryStride =
    "A004-contradictory-stride-declaration";
inline constexpr const char *LintUseBeforeDef = "L001-use-before-def";
inline constexpr const char *LintMaybeUndefPredication =
    "L002-maybe-undef-under-predication";
inline constexpr const char *LintDeadDef = "L003-dead-def";
inline constexpr const char *LintConstantExit = "L004-constant-exit";
inline constexpr const char *LintConstantPredicate =
    "L005-constant-predicate";
inline constexpr const char *LintMemoryWaw = "L006-memory-waw";
inline constexpr const char *LintStrideShape = "L007-stride-shape";
inline constexpr const char *LintDepGraphLegality =
    "L008-depgraph-legality";
} // namespace diag

/// Everything a lint pass may consult: the dataflow facts, the symbolic
/// stride-interval analysis, and (when the loop was imported with "array"
/// directives) the declared symbol context. Built once per lintLoop call
/// and shared by every pass.
struct LintContext {
  const BodyDataflow &DF;
  const SymbolicAnalysis &SA;
  /// Declared array extents/strides; nullptr when the loop has no
  /// surrounding context (corpus loops, plain .loop files).
  const LoopSymbolContext *Symbols = nullptr;

  const Loop &loop() const { return DF.loop(); }
};

/// One registered lint pass.
struct LintPass {
  const char *Id;      ///< Stable ID, e.g. "L001-use-before-def".
  Severity Sev;        ///< Severity the pass emits at.
  const char *Summary; ///< One-line description for --list-passes/docs.
  void (*Run)(const LintContext &Ctx, DiagnosticReport &Out);
};

/// The full pass registry, in ID order.
const std::vector<LintPass> &lintPasses();

/// Options for lintLoop.
struct LintOptions {
  /// Verifier strictness for the structural stage.
  VerifyOptions Verify;
  /// Run the verifier stage first. Structural errors that make dataflow
  /// unsafe (out-of-range registers, unset phis, multiple definitions)
  /// always skip the lint passes; other verifier errors do not.
  bool RunVerifier = true;
  /// When non-empty, only passes whose ID matches one of these (full ID
  /// or "L001"-style prefix) run.
  std::vector<std::string> Passes;
  /// Declared symbol context for the loop (imported "array" directives);
  /// the A-series context passes are vacuous without it. Not owned.
  const LoopSymbolContext *Symbols = nullptr;
};

/// Lints one loop: verifier stage (optional) followed by every enabled
/// lint pass. Diagnostics appear in stage/pass registration order, so the
/// report is deterministic for a given loop.
DiagnosticReport lintLoop(const Loop &L, const LintOptions &Options = {});

/// Cross-validates \p DG (built for \p L) against the scheduler legality
/// assumptions: intra-iteration edges run forward, register flow is fully
/// covered, may-aliasing memory pairs are connected, and early exits and
/// calls are ordered. Exposed separately so tests can validate a graph
/// against a tampered loop; the registered L008 pass calls this with a
/// freshly built graph.
void checkDependenceLegality(const Loop &L, const DependenceGraph &DG,
                             DiagnosticReport &Out);

} // namespace metaopt

#endif // METAOPT_ANALYSIS_LINT_LINT_H
