//===- analysis/lint/UnrollInvariants.h - Post-unroll checks ----*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-transform invariant checker for transform::unrollLoop. Every
/// label the pipeline collects is a simulation of an unrolled loop, so a
/// silently wrong unroll corrupts training data without failing any test;
/// these checks make "unroll-by-k means exactly this" executable:
///
///   X001  shape: body is Factor straight-line replicas plus one fresh
///         canonical control tail, and the result verifies cleanly
///   X002  def-use isomorphism: each replica is the original body under a
///         per-replica register renaming (same opcodes, immediates,
///         predication structure, operand wiring)
///   X003  stride scaling: every memory clone in replica k has
///         stride = orig.stride * Factor, offset = orig.offset +
///         orig.stride * k, same width/base/indirection
///   X004  live-out coverage: every original phi survives as one phi (or
///         Factor split accumulators for splittable reductions), each with
///         a wired recurrence
///   X005  trip accounting: main * Factor + epilogue == original trip for
///         both static and runtime trip counts
///
/// The checker is pure (original, unrolled, factor) -> report. The RAII
/// UnrollAuditGuard installs it behind transform::setUnrollAuditHook so it
/// runs after *every* unrollLoop in the guarded scope, throwing
/// UnrollAuditError on violations; the labeling pipeline and the speedup
/// evaluator install it around their sweeps. The hook may fire on worker
/// threads — the concurrency runtime propagates the lowest-index exception
/// deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_LINT_UNROLLINVARIANTS_H
#define METAOPT_ANALYSIS_LINT_UNROLLINVARIANTS_H

#include "ir/Diagnostics.h"
#include "ir/Loop.h"

#include <stdexcept>
#include <string>

namespace metaopt {

/// Stable post-transform diagnostic IDs (catalog: docs/DIAGNOSTICS.md).
namespace diag {
inline constexpr const char *UnrollShape = "X001-unrolled-shape";
inline constexpr const char *UnrollIsomorphism = "X002-replica-isomorphism";
inline constexpr const char *UnrollStrideScaling = "X003-stride-scaling";
inline constexpr const char *UnrollLiveOut = "X004-live-out-coverage";
inline constexpr const char *UnrollTripAccounting = "X005-trip-accounting";
} // namespace diag

/// Checks that \p Unrolled is a correct unroll of \p Original by
/// \p Factor. All diagnostics are errors; an empty report means the
/// transform preserved every invariant.
DiagnosticReport checkUnrollInvariants(const Loop &Original,
                                       const Loop &Unrolled,
                                       unsigned Factor);

/// Thrown by the installed audit hook when an unroll violates an
/// invariant. what() carries the rendered report.
class UnrollAuditError : public std::runtime_error {
public:
  explicit UnrollAuditError(const std::string &Rendered)
      : std::runtime_error(Rendered) {}
};

/// RAII: installs checkUnrollInvariants behind transform's audit hook for
/// the guard's lifetime (restoring the previous hook on destruction). Any
/// unrollLoop call in scope that violates an invariant throws
/// UnrollAuditError.
class UnrollAuditGuard {
public:
  UnrollAuditGuard();
  ~UnrollAuditGuard();
  UnrollAuditGuard(const UnrollAuditGuard &) = delete;
  UnrollAuditGuard &operator=(const UnrollAuditGuard &) = delete;

private:
  void (*Previous)(const Loop &, const Loop &, unsigned);
};

} // namespace metaopt

#endif // METAOPT_ANALYSIS_LINT_UNROLLINVARIANTS_H
