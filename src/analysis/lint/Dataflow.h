//===- analysis/lint/Dataflow.h - Lint dataflow engine ----------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow substrate the lint passes share: reaching definitions over
/// the straight-line predicated body (who defines each register, under
/// which guard), availability classification at each body point, the
/// transitive constant-predicate lattice, and the set of values observable
/// outside one iteration (live-outs: stores, calls, exits, loop control,
/// and phi recurrences).
///
/// Everything is computed once per loop in the BodyDataflow constructor;
/// passes query in O(1)/O(log n). The loop is expected to have in-range
/// register ids (the lint engine gates on the verifier's structural
/// diagnostics first); beyond that, malformed loops (use-before-def,
/// missing tails) are analyzable.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_LINT_DATAFLOW_H
#define METAOPT_ANALYSIS_LINT_DATAFLOW_H

#include "ir/Loop.h"

#include <cstddef>
#include <vector>

namespace metaopt {

/// Availability of a register at a body point (just before an
/// instruction executes).
enum class Avail {
  None,     ///< No definition reaches the point.
  Guarded,  ///< Reached only by a predicated definition; undefined when
            ///< the guard was false.
  Definite, ///< Live-in, phi destination, or unpredicated earlier def.
};

/// Per-loop dataflow facts for the lint passes.
class BodyDataflow {
public:
  static constexpr size_t NoDef = static_cast<size_t>(-1);

  explicit BodyDataflow(const Loop &L);

  const Loop &loop() const { return L; }

  /// Body index of the instruction defining \p Reg, or NoDef (live-in or
  /// phi destination).
  size_t defIndex(RegId Reg) const { return DefIndex[Reg]; }

  /// The predicate guarding \p Reg's body definition, NoReg when the
  /// definition is unpredicated or \p Reg has no body definition.
  RegId defGuard(RegId Reg) const { return DefGuard[Reg]; }

  /// Availability of \p Reg just before body instruction \p BodyIndex.
  Avail availabilityAt(RegId Reg, size_t BodyIndex) const;

  /// True when \p Reg (any class) holds a compile-time-constant value:
  /// IConst/FConst results, self-comparisons (icmp/fcmp of a register
  /// with itself), predset/copy/select closures over constants. For
  /// predicates this is the "never-true or always-true" detection — the
  /// guard cannot vary at runtime, so predicating on it is meaningless.
  bool isConstant(RegId Reg) const { return Constant[Reg]; }

  /// True when \p Reg's value is observable outside a single iteration:
  /// it (transitively) feeds a store, call, exit, the loop control tail,
  /// or a phi recurrence. Definitions of non-live registers are dead code.
  bool isLive(RegId Reg) const { return Live[Reg]; }

  /// The phi defining \p Reg, or nullptr.
  const PhiNode *phiFor(RegId Reg) const;

private:
  const Loop &L;
  std::vector<size_t> DefIndex;  ///< Reg -> body index or NoDef.
  std::vector<RegId> DefGuard;   ///< Reg -> guard of body def or NoReg.
  std::vector<bool> Constant;    ///< Reg -> constant-value lattice.
  std::vector<bool> Live;        ///< Reg -> observable outside iteration.
  std::vector<const PhiNode *> PhiOf; ///< Reg -> phi or nullptr.

  void computeConstants();
  void computeLiveness();
};

} // namespace metaopt

#endif // METAOPT_ANALYSIS_LINT_DATAFLOW_H
