//===- analysis/lint/Dataflow.cpp -----------------------------------------===//

#include "analysis/lint/Dataflow.h"

using namespace metaopt;

BodyDataflow::BodyDataflow(const Loop &L) : L(L) {
  size_t NumRegs = L.numRegs();
  DefIndex.assign(NumRegs, NoDef);
  DefGuard.assign(NumRegs, NoReg);
  PhiOf.assign(NumRegs, nullptr);

  for (size_t I = 0; I < L.body().size(); ++I) {
    const Instruction &Instr = L.body()[I];
    if (Instr.hasDest() && DefIndex[Instr.Dest] == NoDef) {
      DefIndex[Instr.Dest] = I;
      DefGuard[Instr.Dest] = Instr.Pred;
    }
  }
  for (const PhiNode &Phi : L.phis())
    if (Phi.Dest != NoReg && Phi.Dest < NumRegs && !PhiOf[Phi.Dest])
      PhiOf[Phi.Dest] = &Phi;

  computeConstants();
  computeLiveness();
}

Avail BodyDataflow::availabilityAt(RegId Reg, size_t BodyIndex) const {
  if (PhiOf[Reg])
    return Avail::Definite;
  size_t Def = DefIndex[Reg];
  if (Def == NoDef)
    return Avail::Definite; // Live-in: defined before the loop.
  if (Def >= BodyIndex)
    return Avail::None;
  return DefGuard[Reg] == NoReg ? Avail::Definite : Avail::Guarded;
}

void BodyDataflow::computeConstants() {
  Constant.assign(L.numRegs(), false);

  // Seed: literal constants and self-comparisons, then propagate through
  // the value-movement opcodes (copy, predset, select over equal/constant
  // inputs) to a fixed point. The body is straight-line SSA, so two
  // forward sweeps suffice; iterate until stable for robustness on
  // malformed (use-before-def) inputs.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Instruction &Instr : L.body()) {
      if (!Instr.hasDest() || Constant[Instr.Dest])
        continue;
      bool IsConst = false;
      switch (Instr.Op) {
      case Opcode::IConst:
      case Opcode::FConst:
        IsConst = true;
        break;
      case Opcode::ICmp:
      case Opcode::FCmp:
        // Comparing a value with itself yields the same predicate every
        // evaluation, whatever the comparison kind is.
        IsConst = Instr.Operands.size() == 2 &&
                  (Instr.Operands[0] == Instr.Operands[1] ||
                   (Constant[Instr.Operands[0]] &&
                    Constant[Instr.Operands[1]]));
        break;
      case Opcode::PredSet: {
        if (Instr.Operands.size() == 2 &&
            Instr.Operands[0] == Instr.Operands[1]) {
          IsConst = true; // Combining a predicate with itself.
          break;
        }
        bool AllConst = !Instr.Operands.empty();
        for (RegId Operand : Instr.Operands)
          AllConst = AllConst && Constant[Operand];
        IsConst = AllConst;
        break;
      }
      case Opcode::Copy:
        IsConst = Instr.Operands.size() == 1 && Constant[Instr.Operands[0]];
        break;
      case Opcode::Select:
        IsConst = Instr.Operands.size() == 3 &&
                  ((Instr.Operands[1] == Instr.Operands[2]) ||
                   (Constant[Instr.Operands[1]] &&
                    Constant[Instr.Operands[2]]));
        break;
      default:
        break;
      }
      if (IsConst) {
        Constant[Instr.Dest] = true;
        Changed = true;
      }
    }
  }
}

void BodyDataflow::computeLiveness() {
  Live.assign(L.numRegs(), false);

  // A register is live when it reaches an effect: stores, calls, exits,
  // and the loop-control tail are effects, and phi recurrences are
  // live-outs of the iteration (the accumulated value is the loop's
  // result even when it is never stored inside the body). Propagate
  // use-def backwards to a fixed point; the loop-carried phi edge (recur
  // -> dest uses) is why a single backward sweep is not enough.
  auto MarkLive = [&](RegId Reg, bool &Changed) {
    if (Reg == NoReg || Live[Reg])
      return;
    Live[Reg] = true;
    Changed = true;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Instruction &Instr : L.body()) {
      bool Effect = Instr.isStore() || Instr.isCall() ||
                    Instr.Op == Opcode::ExitIf || Instr.isLoopControl();
      if (!Effect && (!Instr.hasDest() || !Live[Instr.Dest]))
        continue;
      for (RegId Operand : Instr.Operands)
        MarkLive(Operand, Changed);
      MarkLive(Instr.Pred, Changed);
    }
    for (const PhiNode &Phi : L.phis()) {
      // The recurrence is the iteration's live-out; the phi dest becomes
      // live with it so the chain through the body stays live.
      MarkLive(Phi.Recur, Changed);
      MarkLive(Phi.Dest, Changed);
      if (Phi.Dest != NoReg && Live[Phi.Dest])
        MarkLive(Phi.Init, Changed);
    }
  }
}

const PhiNode *BodyDataflow::phiFor(RegId Reg) const {
  return Reg != NoReg && Reg < PhiOf.size() ? PhiOf[Reg] : nullptr;
}
