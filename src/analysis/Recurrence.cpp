//===- analysis/Recurrence.cpp --------------------------------------------===//

#include "analysis/Recurrence.h"

#include "analysis/Latency.h"

#include <algorithm>
#include <map>

using namespace metaopt;

double metaopt::recurrenceMII(const Loop &L, const DependenceGraph &DG) {
  return recurrenceMII(L, DG, [](Opcode Op) { return defaultLatency(Op); });
}

double metaopt::recurrenceMII(const Loop &L, const DependenceGraph &DG,
                              const std::function<int(Opcode)> &LatencyFn) {
  size_t N = DG.numNodes();
  constexpr int Unreachable = -1;

  auto EdgeDelay = [&](const DepEdge &Edge) {
    switch (Edge.Kind) {
    case DepKind::Data:
      return LatencyFn(L.body()[Edge.Src].Op);
    case DepKind::Memory:
      return 1;
    case DepKind::Control:
      return 0;
    }
    return 0;
  };

  // Longest intra-iteration delay path from a given source to every node;
  // memoized per source since several carried edges may share one.
  std::map<uint32_t, std::vector<int>> PathCache;
  auto LongestFrom = [&](uint32_t Source) -> const std::vector<int> & {
    auto It = PathCache.find(Source);
    if (It != PathCache.end())
      return It->second;
    std::vector<int> Dist(N, Unreachable);
    Dist[Source] = 0;
    // Body order is a topological order of the distance-0 subgraph.
    for (uint32_t Node = Source; Node < N; ++Node) {
      if (Dist[Node] == Unreachable)
        continue;
      for (uint32_t EdgeIdx : DG.successors(Node)) {
        const DepEdge &Edge = DG.edge(EdgeIdx);
        if (Edge.Distance != 0)
          continue;
        Dist[Edge.Dst] = std::max(Dist[Edge.Dst],
                                  Dist[Node] + EdgeDelay(Edge));
      }
    }
    return PathCache.emplace(Source, std::move(Dist)).first->second;
  };

  double MII = 1.0;
  for (const DepEdge &Edge : DG.edges()) {
    if (Edge.Distance == 0)
      continue;
    int BackDelay = EdgeDelay(Edge);
    // Carried control edges (call-to-call serialization) wait out the full
    // latency of the source, unlike intra-iteration ordering.
    if (Edge.Kind == DepKind::Control)
      BackDelay = LatencyFn(L.body()[Edge.Src].Op);
    if (Edge.Src == Edge.Dst) {
      // Self-recurrence (e.g. a call serializing with itself).
      MII = std::max(MII, static_cast<double>(BackDelay) / Edge.Distance);
      continue;
    }
    const std::vector<int> &Dist = LongestFrom(Edge.Dst);
    if (Dist[Edge.Src] == Unreachable)
      continue; // Not part of a single-carried-edge cycle.
    double CycleLatency = Dist[Edge.Src] + BackDelay;
    MII = std::max(MII, CycleLatency / Edge.Distance);
  }
  return MII;
}
