//===- analysis/CriticalPath.cpp ------------------------------------------===//

#include "analysis/CriticalPath.h"

#include "analysis/Latency.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace metaopt;

int metaopt::dependenceDelay(const DepEdge &Edge, const Instruction &Src) {
  switch (Edge.Kind) {
  case DepKind::Data:
    return defaultLatency(Src.Op);
  case DepKind::Memory:
    return 1;
  case DepKind::Control:
    return 0;
  }
  return 0;
}

int metaopt::criticalPathLatency(const Loop &L, const DependenceGraph &DG) {
  size_t N = DG.numNodes();
  // Body order is a topological order of the distance-0 subgraph.
  std::vector<int> Start(N, 0);
  int Critical = 0;
  for (uint32_t Node = 0; Node < N; ++Node) {
    const Instruction &Instr = L.body()[Node];
    for (uint32_t EdgeIdx : DG.predecessors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (Edge.Distance != 0)
        continue;
      int Ready = Start[Edge.Src] + dependenceDelay(Edge, L.body()[Edge.Src]);
      Start[Node] = std::max(Start[Node], Ready);
    }
    if (!Instr.isLoopControl())
      Critical = std::max(Critical, Start[Node] + defaultLatency(Instr.Op));
  }
  return Critical;
}

namespace {

/// Union-find over body instruction indices.
class UnionFind {
public:
  explicit UnionFind(size_t N) : Parent(N) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }
  uint32_t find(uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  }
  void merge(uint32_t A, uint32_t B) { Parent[find(A)] = find(B); }

private:
  std::vector<uint32_t> Parent;
};

} // namespace

ComputationInfo metaopt::analyzeComputations(const Loop &L,
                                             const DependenceGraph &DG) {
  size_t N = DG.numNodes();
  ComputationInfo Info;

  auto IsComputation = [&](uint32_t Node) {
    return !L.body()[Node].isLoopControl();
  };

  // Components over all non-speculatable edges between computation nodes
  // (any distance: a loop-carried recurrence still ties ops together).
  UnionFind Components(N);
  for (const DepEdge &Edge : DG.edges()) {
    if (Edge.Speculatable)
      continue;
    if (!IsComputation(Edge.Src) || !IsComputation(Edge.Dst))
      continue;
    Components.merge(Edge.Src, Edge.Dst);
  }

  // Longest intra-iteration paths: overall (honoring non-speculatable
  // edges), memory-only, and control-only; plus max fan-in.
  std::vector<int> Start(N, 0), MemFinish(N, 0), CtlStart(N, 0);
  std::vector<int> ComponentHeight(N, 0);
  for (uint32_t Node = 0; Node < N; ++Node) {
    const Instruction &Instr = L.body()[Node];
    int FanIn = 0;
    for (uint32_t EdgeIdx : DG.predecessors(Node)) {
      const DepEdge &Edge = DG.edge(EdgeIdx);
      if (Edge.Distance != 0)
        continue;
      const Instruction &Src = L.body()[Edge.Src];
      if (!Edge.Speculatable && IsComputation(Edge.Src) &&
          IsComputation(Node))
        Start[Node] = std::max(Start[Node],
                               Start[Edge.Src] +
                                   dependenceDelay(Edge, Src));
      if (Edge.Kind == DepKind::Memory)
        MemFinish[Node] = std::max(MemFinish[Node], MemFinish[Edge.Src]);
      if (Edge.Kind == DepKind::Control && IsComputation(Edge.Src) &&
          IsComputation(Node))
        CtlStart[Node] = std::max(CtlStart[Node], CtlStart[Edge.Src] + 1);
      if (Edge.Kind == DepKind::Data)
        ++FanIn;
    }
    if (!IsComputation(Node))
      continue;
    Info.MaxFanIn = std::max(Info.MaxFanIn, FanIn);
    int Finish = Start[Node] + defaultLatency(Instr.Op);
    Info.MaxHeight = std::max(Info.MaxHeight, Finish);
    if (Instr.isMemory()) {
      MemFinish[Node] += defaultLatency(Instr.Op);
      Info.MaxMemoryHeight = std::max(Info.MaxMemoryHeight, MemFinish[Node]);
    }
    Info.MaxControlHeight = std::max(Info.MaxControlHeight, CtlStart[Node]);
    uint32_t Root = Components.find(Node);
    ComponentHeight[Root] = std::max(ComponentHeight[Root], Finish);
  }

  // Count components and average their heights.
  double HeightSum = 0.0;
  for (uint32_t Node = 0; Node < N; ++Node) {
    if (!IsComputation(Node) || Components.find(Node) != Node)
      continue;
    ++Info.NumComputations;
    HeightSum += ComponentHeight[Node];
  }
  if (Info.NumComputations > 0)
    Info.AvgHeight = HeightSum / Info.NumComputations;
  return Info;
}
