//===- analysis/Latency.h - Abstract operation latencies --------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract (machine-independent) operation latencies used by the analyses
/// that feed the feature vector (critical path, dependence heights,
/// recurrence MII). The concrete machine models in src/machine carry their
/// own latency tables; keeping an abstract table here mirrors how a
/// compiler's mid-level analyses estimate cost before code generation.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_LATENCY_H
#define METAOPT_ANALYSIS_LATENCY_H

#include "ir/Opcode.h"

namespace metaopt {

/// Returns an abstract latency (cycles) for \p Op, loosely modeled on an
/// Itanium-2-class in-order machine.
int defaultLatency(Opcode Op);

} // namespace metaopt

#endif // METAOPT_ANALYSIS_LATENCY_H
