//===- analysis/Liveness.h - Register pressure estimation -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live-range computation over the (unscheduled) body order. Produces the
/// "live range size" feature (Table 3/4) and feeds the machine model's
/// spill estimation: loop-invariant live-ins occupy registers for the whole
/// loop, phi values are live across the backedge, and temporaries live from
/// definition to last use.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_LIVENESS_H
#define METAOPT_ANALYSIS_LIVENESS_H

#include "ir/Loop.h"

namespace metaopt {

/// Register pressure summary of a loop body.
struct LivenessInfo {
  unsigned MaxLiveInt = 0;   ///< Peak simultaneously-live int values.
  unsigned MaxLiveFloat = 0; ///< Peak simultaneously-live float values.
  unsigned MaxLivePred = 0;  ///< Peak simultaneously-live predicates.
  unsigned MaxLiveTotal = 0; ///< Peak over all classes at one point.
  double AvgLiveTotal = 0.0; ///< Mean liveness across body points.
  unsigned NumLiveIn = 0;    ///< Loop-invariant inputs (always live).
  unsigned NumAcrossBack = 0; ///< Values live across the backedge (phis).
};

/// Computes liveness of \p L over its body order. An instruction sequence
/// permutation (a schedule) can be analyzed by passing the permuted order
/// in \p Order; an empty order means body order.
LivenessInfo analyzeLiveness(const Loop &L,
                             const std::vector<uint32_t> &Order = {});

} // namespace metaopt

#endif // METAOPT_ANALYSIS_LIVENESS_H
