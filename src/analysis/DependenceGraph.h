//===- analysis/DependenceGraph.h - Loop dependence graph -------*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the dependence graph of a loop body: register flow dependences
/// (including loop-carried ones through phis), memory dependences with
/// symbolic distance computation from the linear address forms, and
/// control dependences around early exits and calls. The graph drives the
/// schedulers, the recurrence-MII computation, and several paper features
/// (dependence heights, number of "computations", memory-to-memory
/// dependence counts and minimum distance).
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_DEPENDENCEGRAPH_H
#define METAOPT_ANALYSIS_DEPENDENCEGRAPH_H

#include "ir/Loop.h"

#include <cstdint>
#include <vector>

namespace metaopt {

/// Kind of a dependence edge.
enum class DepKind {
  Data,    ///< Register flow dependence.
  Memory,  ///< Memory ordering/flow dependence.
  Control, ///< Ordering around exits, calls, and the backedge.
};

/// A dependence from body instruction Src (iteration i) to body
/// instruction Dst (iteration i + Distance).
struct DepEdge {
  uint32_t Src = 0;
  uint32_t Dst = 0;
  DepKind Kind = DepKind::Data;
  /// Iteration distance: 0 for intra-iteration, >= 1 for loop-carried.
  uint32_t Distance = 0;
  /// True for Control edges a scheduler may ignore by speculating the
  /// destination (pure computations hoisted above a possible early exit).
  bool Speculatable = false;
};

/// The dependence graph over the body instructions of one loop.
class DependenceGraph {
public:
  /// Analyzes \p L. The loop must be well-formed.
  explicit DependenceGraph(const Loop &L);

  size_t numNodes() const { return NumNodes; }
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Outgoing edge indices of node \p Node.
  const std::vector<uint32_t> &successors(uint32_t Node) const {
    return OutEdges[Node];
  }
  /// Incoming edge indices of node \p Node.
  const std::vector<uint32_t> &predecessors(uint32_t Node) const {
    return InEdges[Node];
  }

  const DepEdge &edge(uint32_t Index) const { return Edges[Index]; }

  /// Number of memory-to-memory dependences (any distance). Paper feature.
  unsigned numMemoryDeps() const { return NumMemoryDeps; }

  /// Minimum loop-carried memory-to-memory dependence distance, or 0 when
  /// there is none. Paper feature ("min. memory-to-memory loop-carried
  /// dependence").
  unsigned minCarriedMemoryDistance() const {
    return MinCarriedMemoryDistance;
  }

private:
  void addEdge(uint32_t Src, uint32_t Dst, DepKind Kind, uint32_t Distance,
               bool Speculatable = false);
  void buildRegisterDeps(const Loop &L);
  void buildMemoryDeps(const Loop &L);
  void buildControlDeps(const Loop &L);

  size_t NumNodes = 0;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<uint32_t>> OutEdges;
  std::vector<std::vector<uint32_t>> InEdges;
  unsigned NumMemoryDeps = 0;
  unsigned MinCarriedMemoryDistance = 0;
};

} // namespace metaopt

#endif // METAOPT_ANALYSIS_DEPENDENCEGRAPH_H
