//===- analysis/symbolic/Disjointness.cpp - Static dependence prover ------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "analysis/symbolic/Disjointness.h"

#include <algorithm>

using namespace metaopt;

namespace {

bool checkedAdd(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}

bool checkedSub(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_sub_overflow(A, B, &Out);
}

bool checkedMul(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

bool checkedEval(int64_t Offset, int64_t Step, int64_t Iter, int64_t &Out) {
  int64_t Scaled;
  return checkedMul(Step, Iter, Scaled) && checkedAdd(Offset, Scaled, Out);
}

} // namespace

bool metaopt::provesDisjoint(const SymbolicAnalysis &SA,
                             const AccessSummary &A, const AccessSummary &B,
                             unsigned Lag) {
  // A proven-dead access executes on no iteration.
  if (A.Guard == PredFact::AlwaysFalse || B.Guard == PredFact::AlwaysFalse)
    return true;
  // Distinct base symbols never alias by IR construction.
  if (A.Sym != B.Sym)
    return true;
  // From here on the proof needs both effective addresses in affine form
  // with the same symbolic base term so it cancels in the difference.
  // (Different opaque bases could point anywhere relative to each other.)
  if (!A.AddressKnown || !B.AddressKnown)
    return false;
  if (A.Base != B.Base)
    return false;

  // delta(i) = addrB(i + Lag) - addrA(i)
  //          = (B.Offset - A.Offset + B.Stride * Lag)
  //            + (B.Stride - A.Stride) * i.
  // The byte ranges are [0, A.Size) and [delta, delta + B.Size); they are
  // disjoint iff delta >= A.Size or delta <= -B.Size.
  int64_t DOff, DStep, LagTerm;
  if (!checkedSub(B.Offset, A.Offset, DOff) ||
      !checkedMul(B.Stride, static_cast<int64_t>(Lag), LagTerm) ||
      !checkedAdd(DOff, LagTerm, DOff) ||
      !checkedSub(B.Stride, A.Stride, DStep))
    return false;

  if (DStep == 0)
    return DOff >= A.SizeBytes || DOff <= -static_cast<int64_t>(B.SizeBytes);

  // Iteration-dependent delta: bound it over the i where both iterations
  // execute (i in [0, Trip-1-Lag]), which needs a compile-time trip.
  int64_t Lo, Hi;
  if (!SA.ivRange(Lo, Hi))
    return false;
  Hi -= static_cast<int64_t>(Lag);
  if (Hi < Lo)
    return true; // B's iteration never executes: vacuously disjoint.
  int64_t D0, D1;
  if (!checkedEval(DOff, DStep, Lo, D0) || !checkedEval(DOff, DStep, Hi, D1))
    return false;
  int64_t DMin = std::min(D0, D1), DMax = std::max(D0, D1);
  return DMin >= A.SizeBytes || DMax <= -static_cast<int64_t>(B.SizeBytes);
}

IndependenceSummary
metaopt::summarizeIndependence(const SymbolicAnalysis &SA) {
  IndependenceSummary Out;
  const std::vector<AccessSummary> &Accesses = SA.accesses();

  bool LagClean[MaxUnrollFactor + 1] = {};
  for (unsigned Lag = 1; Lag <= MaxUnrollFactor; ++Lag)
    LagClean[Lag] = true;

  for (const AccessSummary &A : Accesses)
    for (const AccessSummary &B : Accesses) {
      if (!A.IsStore && !B.IsStore)
        continue;
      if (A.Sym != B.Sym)
        continue;
      for (unsigned Lag = 1; Lag <= MaxUnrollFactor; ++Lag) {
        ++Out.RelevantChecks;
        if (provesDisjoint(SA, A, B, Lag))
          ++Out.ProvenChecks;
        else
          LagClean[Lag] = false;
      }
    }

  Out.DisjointFraction =
      Out.RelevantChecks == 0
          ? 1.0
          : static_cast<double>(Out.ProvenChecks) / Out.RelevantChecks;
  Out.MinDependenceLag = MaxUnrollFactor + 1;
  for (unsigned Lag = 1; Lag <= MaxUnrollFactor; ++Lag)
    if (!LagClean[Lag]) {
      Out.MinDependenceLag = Lag;
      break;
    }
  // Factor k needs lags 1..k-1 clean.
  Out.ProvenFactor = 1;
  while (Out.ProvenFactor < MaxUnrollFactor &&
         LagClean[Out.ProvenFactor])
    ++Out.ProvenFactor;
  return Out;
}
