//===- analysis/symbolic/StrideInterval.h - Symbolic value domain *- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stride-interval abstract domain and the per-loop symbolic analysis
/// built on it. Every integer SSA value is abstracted as an affine form
///
///   value(i) = Base + Offset + Step * i
///
/// where i is the 0-based global iteration index, Base is an opaque
/// live-in register (NoReg when the value is iteration-affine over
/// constants alone), and Offset/Step are compile-time constants folded
/// with the interpreter's wrapping semantics, so the congruence is exact
/// mod 2^64 even when the concrete computation wraps. Values the domain
/// cannot represent (products of two variables, loads, predicated-off
/// merges) widen to Top. Loop-carried phis are resolved by a widening
/// fixpoint across the back-edge: the classic linear-induction
/// hypothesis (recur == phi + c) is verified by re-evaluation and
/// widened to Top when it does not hold. Range and comparison *proofs*
/// additionally demand that the real-arithmetic evaluation stays inside
/// int64 over the whole iteration range (checked at the endpoints), so
/// wrap-around can never fabricate an order fact.
///
/// On top of the value domain the analysis derives:
///  - symbolic access summaries: one per memory op, carrying the
///    *effective* affine address (indirect references whose index
///    register is affine are resolved into a direct-form summary),
///    the access width, and the guarding predicate's proven status;
///  - predicate facts: compare instructions over affine values with
///    comparable bases are proven always-true / always-false using the
///    induction-variable range (compile-time trip count when known);
///  - interval bounds: base-free affine values get [min, max] ranges
///    over the iteration space;
///  - a list of *checkable claims* (StaticClaim) consumed by the
///    static-claims fuzz oracle, which refutes any unsound claim against
///    the reference interpreter.
///
/// docs/ANALYSIS.md documents the domain, the widening strategy, and the
/// soundness contract in detail.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_SYMBOLIC_STRIDEINTERVAL_H
#define METAOPT_ANALYSIS_SYMBOLIC_STRIDEINTERVAL_H

#include "ir/Loop.h"

#include <cstdint>
#include <string>
#include <vector>

namespace metaopt {

/// Abstract value of one integer register: Base + Offset + Step * i.
struct AffineValue {
  enum class Kind {
    Top,    ///< Unknown / unrepresentable.
    Affine, ///< Base (optional) + Offset + Step * iteration.
  };
  Kind K = Kind::Top;
  RegId Base = NoReg; ///< Opaque live-in term, NoReg when absent.
  int64_t Offset = 0;
  int64_t Step = 0;

  bool isTop() const { return K == Kind::Top; }
  bool isAffine() const { return K == Kind::Affine; }
  /// Affine with neither a symbolic base nor an iteration term.
  bool isConstant() const {
    return isAffine() && Base == NoReg && Step == 0;
  }
  /// Affine without a symbolic base (range computable when the trip
  /// count is known).
  bool isBaseFree() const { return isAffine() && Base == NoReg; }

  static AffineValue top() { return {}; }
  static AffineValue constant(int64_t Value) {
    return {Kind::Affine, NoReg, Value, 0};
  }
  static AffineValue symbol(RegId Base) {
    return {Kind::Affine, Base, 0, 0};
  }

  bool operator==(const AffineValue &Other) const = default;
};

/// Three-valued verdict on a predicate register (or a guard).
enum class PredFact {
  Unknown,     ///< May vary at runtime.
  AlwaysTrue,  ///< Proven true on every iteration.
  AlwaysFalse, ///< Proven false on every iteration.
};

/// Returns "unknown" / "always-true" / "always-false".
const char *predFactName(PredFact Fact);

/// Symbolic summary of one memory operation: the effective affine byte
/// address Base + Offset + Stride * i, after resolving indirect
/// references with affine index registers.
struct AccessSummary {
  uint32_t BodyIndex = 0;
  int32_t Sym = 0;        ///< MemRef base symbol.
  bool IsStore = false;
  int32_t SizeBytes = 0;
  /// True when the effective address is affine (always true for direct
  /// references; true for an indirect reference whose index register is
  /// affine). When false, Base/Offset/Stride are meaningless and the
  /// access defeats every disjointness proof it participates in.
  bool AddressKnown = false;
  RegId Base = NoReg;     ///< Symbolic component of the address, if any.
  int64_t Offset = 0;     ///< Constant byte offset.
  int64_t Stride = 0;     ///< Effective bytes advanced per iteration.
  bool WasIndirect = false; ///< Summary was resolved from an indirect ref.
  /// Status of the guarding predicate; AlwaysTrue for unpredicated ops.
  PredFact Guard = PredFact::Unknown;
};

/// One machine-checkable statement the analysis proved. The static-claims
/// fuzz oracle (fuzz/Oracles.h) validates every claim against the
/// reference interpreter; a refuted claim is a shrinkable soundness bug.
struct StaticClaim {
  enum class Kind {
    /// Memory ops A (iteration i) and B (iteration i + Lag) never touch
    /// a common byte, for any i executed by the loop.
    Disjoint,
    /// The guard of body instruction A evaluates true on every iteration.
    GuardAlwaysTrue,
    /// The guard of body instruction A evaluates false on every iteration.
    GuardAlwaysFalse,
    /// Register Reg's value lies in [Lo, Hi] on every iteration.
    RangeBound,
  };
  Kind K = Kind::Disjoint;
  uint32_t A = 0;    ///< Body index (Disjoint: first op; guards: the op).
  uint32_t B = 0;    ///< Disjoint: second body index.
  unsigned Lag = 0;  ///< Disjoint: iteration distance (0 = same iteration).
  RegId Reg = NoReg; ///< RangeBound: the register.
  int64_t Lo = 0;    ///< RangeBound: inclusive lower bound.
  int64_t Hi = 0;    ///< RangeBound: inclusive upper bound.
};

/// Renders a claim as a stable one-line string (tests, oracle reports).
std::string describeClaim(const StaticClaim &Claim, const Loop &L);

/// Per-loop symbolic analysis: affine values, predicate facts, access
/// summaries, ranges, and claims. Constructing it runs the fixpoint; all
/// queries are O(1) or return precomputed tables. The loop must be
/// verifier-clean.
class SymbolicAnalysis {
public:
  explicit SymbolicAnalysis(const Loop &L);

  const Loop &loop() const { return L; }

  /// Abstract value of \p Reg (Top for float registers).
  const AffineValue &value(RegId Reg) const { return Values[Reg]; }

  /// Verdict on predicate register \p Reg.
  PredFact predFact(RegId Reg) const { return PredFacts[Reg]; }

  /// Verdict on the guard of \p Instr (AlwaysTrue when unpredicated).
  PredFact guardFact(const Instruction &Instr) const;

  /// All memory operations, in body order.
  const std::vector<AccessSummary> &accesses() const { return Accesses; }

  /// Summary of the memory op at \p BodyIndex, or nullptr.
  const AccessSummary *accessAt(uint32_t BodyIndex) const;

  /// Iteration-index range [Lo, Hi] the analysis reasons over. Returns
  /// false when the trip count is not a compile-time constant (the range
  /// is then [0, +inf) and bounded queries fail).
  bool ivRange(int64_t &Lo, int64_t &Hi) const;

  /// Bounds of \p Reg's value over the iteration space. Only base-free
  /// affine values with a bounded iteration range (or Step == 0) have
  /// computable bounds; returns false otherwise.
  bool valueRange(RegId Reg, int64_t &Lo, int64_t &Hi) const;

  /// True when \p Reg's derivation provably wraps 64-bit arithmetic:
  /// either folding its constant parts overflowed, or its affine form
  /// evaluated at the iteration-range endpoints leaves the int64 range.
  /// The affine congruence itself stays exact mod 2^64 (every concrete
  /// integer op wraps), but range/compare proofs are refused for such
  /// values, and lint A003 reports them. Taints propagate to users.
  bool overflowProne(RegId Reg) const { return Overflowed[Reg]; }

  /// Every claim the analysis is prepared to defend, in deterministic
  /// order: guard verdicts, range bounds, and same-iteration / lagged
  /// disjointness up to MaxUnrollFactor - 1 for every provable pair.
  std::vector<StaticClaim> claims() const;

  /// Stable textual rendering of \p Reg's abstract value, e.g.
  /// "%i_x + 16 + 8*i", "42", or "top"; golden tests pin these.
  std::string describeValue(RegId Reg) const;

private:
  void runFixpoint();
  void evaluateBody();
  AffineValue transfer(const Instruction &Instr);
  void computePredFacts();
  void computeAccesses();
  PredFact compareFact(RegId A, RegId B) const;
  bool boundsOf(const AffineValue &V, int64_t &Lo, int64_t &Hi) const;

  const Loop &L;
  std::vector<AffineValue> Values; ///< Reg -> abstract value.
  std::vector<PredFact> PredFacts; ///< Reg -> predicate verdict.
  std::vector<bool> Overflowed;    ///< Reg -> overflow-prone derivation.
  std::vector<AccessSummary> Accesses;
  bool TripKnown = false; ///< Compile-time trip count available.
  int64_t TripLo = 0;     ///< Iteration range lower bound (always 0).
  int64_t TripHi = 0;     ///< Inclusive upper iteration bound when known.
};

} // namespace metaopt

#endif // METAOPT_ANALYSIS_SYMBOLIC_STRIDEINTERVAL_H
