//===- analysis/symbolic/Canonical.cpp - Canonical sim-equivalence --------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "analysis/symbolic/Canonical.h"

#include "ir/Printer.h"

#include <map>

using namespace metaopt;

Loop metaopt::canonicalSimForm(const Loop &L) {
  Loop Out = L;
  Out.setName("L");
  Out.setSourceFile("");
  Out.setHeaderLine(0);
  Out.setLanguage(SourceLanguage::C);
  Out.setNestLevel(1);

  // Registers: canonical names in first-appearance order (phis before
  // body, dest before operands before guard), so loops that built the
  // same structure through different register-creation orders still
  // collide. Unreferenced registers get trailing names for stability.
  std::map<RegId, unsigned> Order;
  auto Visit = [&](RegId Reg) {
    if (Reg != NoReg)
      Order.emplace(Reg, static_cast<unsigned>(Order.size()));
  };
  for (const PhiNode &Phi : Out.phis()) {
    Visit(Phi.Dest);
    Visit(Phi.Init);
    Visit(Phi.Recur);
  }
  for (const Instruction &Instr : Out.body()) {
    Visit(Instr.Dest);
    for (RegId Operand : Instr.Operands)
      Visit(Operand);
    Visit(Instr.Pred);
  }
  for (RegId Reg = 0; Reg < Out.numRegs(); ++Reg)
    Visit(Reg);
  for (const auto &[Reg, Index] : Order)
    Out.setRegName(Reg, "c" + std::to_string(Index));

  // Base symbols: dense renumbering in first-use body order.
  std::map<int32_t, int32_t> SymOrder;
  for (Instruction &Instr : Out.body()) {
    if (!Instr.isMemory())
      continue;
    auto [It, Inserted] = SymOrder.emplace(
        Instr.Mem.BaseSym, static_cast<int32_t>(SymOrder.size()));
    Instr.Mem.BaseSym = It->second;
    (void)Inserted;
  }

  // Source lines are diagnostic metadata; drop them so differently
  // formatted sources of one structure canonicalize identically.
  for (Instruction &Instr : Out.body())
    Instr.SrcLine = 0;
  for (PhiNode &Phi : Out.phis())
    Phi.SrcLine = 0;
  return Out;
}

std::string metaopt::canonicalSimText(const Loop &L) {
  return printLoop(canonicalSimForm(L));
}
