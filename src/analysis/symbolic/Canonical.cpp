//===- analysis/symbolic/Canonical.cpp - Canonical sim-equivalence --------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "analysis/symbolic/Canonical.h"

#include "ir/Printer.h"

#include <cstring>
#include <map>

using namespace metaopt;

Loop metaopt::canonicalSimForm(const Loop &L) {
  Loop Out = L;
  Out.setName("L");
  Out.setSourceFile("");
  Out.setHeaderLine(0);
  Out.setLanguage(SourceLanguage::C);
  Out.setNestLevel(1);

  // Registers: canonical names in first-appearance order (phis before
  // body, dest before operands before guard), so loops that built the
  // same structure through different register-creation orders still
  // collide. Unreferenced registers get trailing names for stability.
  std::map<RegId, unsigned> Order;
  auto Visit = [&](RegId Reg) {
    if (Reg != NoReg)
      Order.emplace(Reg, static_cast<unsigned>(Order.size()));
  };
  for (const PhiNode &Phi : Out.phis()) {
    Visit(Phi.Dest);
    Visit(Phi.Init);
    Visit(Phi.Recur);
  }
  for (const Instruction &Instr : Out.body()) {
    Visit(Instr.Dest);
    for (RegId Operand : Instr.Operands)
      Visit(Operand);
    Visit(Instr.Pred);
  }
  for (RegId Reg = 0; Reg < Out.numRegs(); ++Reg)
    Visit(Reg);
  for (const auto &[Reg, Index] : Order)
    Out.setRegName(Reg, "c" + std::to_string(Index));

  // Base symbols: dense renumbering in first-use body order.
  std::map<int32_t, int32_t> SymOrder;
  for (Instruction &Instr : Out.body()) {
    if (!Instr.isMemory())
      continue;
    auto [It, Inserted] = SymOrder.emplace(
        Instr.Mem.BaseSym, static_cast<int32_t>(SymOrder.size()));
    Instr.Mem.BaseSym = It->second;
    (void)Inserted;
  }

  // Source lines are diagnostic metadata; drop them so differently
  // formatted sources of one structure canonicalize identically.
  for (Instruction &Instr : Out.body())
    Instr.SrcLine = 0;
  for (PhiNode &Phi : Out.phis())
    Phi.SrcLine = 0;
  return Out;
}

std::string metaopt::canonicalSimText(const Loop &L) {
  return printLoop(canonicalSimForm(L));
}

void metaopt::hashCanonicalSimStructure(FingerprintHasher &H,
                                        const Loop &L) {
  // Registers renumbered in the same first-appearance order
  // canonicalSimForm uses, without materializing the clone. Unreferenced
  // registers are omitted: no simulator pass can observe them (liveness
  // skips ids with neither a definition nor a use).
  std::vector<uint32_t> Renumber(L.numRegs(), NoReg);
  uint32_t NextReg = 0;
  auto Visit = [&](RegId Reg) {
    if (Reg != NoReg && Renumber[Reg] == NoReg)
      Renumber[Reg] = NextReg++;
  };
  for (const PhiNode &Phi : L.phis()) {
    Visit(Phi.Dest);
    Visit(Phi.Init);
    Visit(Phi.Recur);
  }
  // While renumbering, decide whether every field fits the packed
  // encoding below: registers in 20 bits (with 0xFFFFF reserved for
  // "no register"), opcodes in 8, operand counts in 4, memory sizes in
  // 16. Real corpora always fit; the wide fallback keeps the key total
  // rather than silently truncating a pathological loop.
  bool CanPack = true;
  for (const Instruction &Instr : L.body()) {
    Visit(Instr.Dest);
    for (RegId Operand : Instr.Operands)
      Visit(Operand);
    Visit(Instr.Pred);
    if (static_cast<uint64_t>(Instr.Op) > 0xFF ||
        Instr.Operands.size() > 15)
      CanPack = false;
    if (Instr.isMemory() &&
        (Instr.Mem.SizeBytes < 0 || Instr.Mem.SizeBytes > 0xFFFF))
      CanPack = false;
  }
  if (NextReg >= 0xFFFFF)
    CanPack = false;

  // A format marker leads the stream so a packed encoding can never
  // alias a wide one: both formats are injective on their own, and the
  // first word tells them apart. These keys live only in memory (the
  // labeling pruner and the per-run body-stats cache), so the stream
  // layout is free to evolve, unlike cache/SimCache.h's persistent key.
  H.u64(CanPack ? 1 : 0);

  if (!CanPack) {
    auto Renum = [&](RegId Reg) -> uint64_t {
      return Reg == NoReg ? static_cast<uint64_t>(NoReg) : Renumber[Reg];
    };
    H.u64(L.phis().size());
    for (const PhiNode &Phi : L.phis()) {
      H.u64(Renum(Phi.Dest));
      H.u64(Renum(Phi.Init));
      H.u64(Renum(Phi.Recur));
    }

    // Base symbols renumbered densely in first-use body order.
    std::map<int32_t, int32_t> SymOrder;
    H.u64(L.body().size());
    for (const Instruction &Instr : L.body()) {
      H.u64(static_cast<uint64_t>(Instr.Op));
      H.u64(Renum(Instr.Dest));
      H.u64(Instr.Operands.size());
      for (RegId Operand : Instr.Operands)
        H.u64(Renum(Operand));
      H.u64(Renum(Instr.Pred));
      H.i64(Instr.Imm);
      H.boolean(Instr.isMemory());
      if (Instr.isMemory()) {
        auto [It, Inserted] = SymOrder.emplace(
            Instr.Mem.BaseSym, static_cast<int32_t>(SymOrder.size()));
        (void)Inserted;
        H.i64(It->second);
        H.i64(Instr.Mem.Stride);
        H.i64(Instr.Mem.Offset);
        H.boolean(Instr.Mem.Indirect);
        H.i64(Instr.Mem.SizeBytes);
      }
      // Exact IEEE-754 bits: the printed canonical text truncates exit
      // probabilities to six significant digits, which would merge loops
      // whose exit-penalty terms genuinely differ.
      H.f64(Instr.TakenProb);
      H.boolean(Instr.Paired);
    }

    // Classes of the referenced registers, in renumbered order.
    std::vector<uint8_t> Classes(NextReg, 0);
    for (RegId Reg = 0; Reg < L.numRegs(); ++Reg)
      if (Renumber[Reg] != NoReg)
        Classes[Renumber[Reg]] = static_cast<uint8_t>(L.regClass(Reg));
    H.u64(NextReg);
    for (uint8_t RC : Classes)
      H.u64(RC);
    return;
  }

  // Packed encoding: the hasher mixes one 64-bit word at a time, so the
  // key's cost is the word count. Each instruction header folds opcode,
  // operand count, dest, predicate, and four presence flags into one
  // word; operands ride three to a word; the all-but-universal zero
  // immediate and zero taken-probability are elided (their flags in the
  // header keep the record self-delimiting, hence injective).
  constexpr uint64_t PackedNoReg = 0xFFFFF;
  auto Packed = [&](RegId Reg) -> uint64_t {
    return Reg == NoReg ? PackedNoReg : Renumber[Reg];
  };

  H.u64(L.phis().size());
  for (const PhiNode &Phi : L.phis())
    H.u64(Packed(Phi.Dest) | Packed(Phi.Init) << 20 |
          Packed(Phi.Recur) << 40);

  // Base symbols renumbered densely in first-use body order.
  std::map<int32_t, int32_t> SymOrder;
  H.u64(L.body().size());
  for (const Instruction &Instr : L.body()) {
    // Exact IEEE-754 bits: the printed canonical text truncates exit
    // probabilities to six significant digits, which would merge loops
    // whose exit-penalty terms genuinely differ.
    uint64_t ProbBits;
    static_assert(sizeof(ProbBits) == sizeof(Instr.TakenProb));
    std::memcpy(&ProbBits, &Instr.TakenProb, sizeof(ProbBits));

    H.u64(static_cast<uint64_t>(Instr.Op) |
          static_cast<uint64_t>(Instr.Operands.size()) << 8 |
          Packed(Instr.Dest) << 12 | Packed(Instr.Pred) << 32 |
          static_cast<uint64_t>(Instr.isMemory()) << 52 |
          static_cast<uint64_t>(Instr.Paired) << 53 |
          static_cast<uint64_t>(Instr.Imm != 0) << 54 |
          static_cast<uint64_t>(ProbBits != 0) << 55);
    for (size_t I = 0; I < Instr.Operands.size(); I += 3) {
      uint64_t W = Packed(Instr.Operands[I]);
      if (I + 1 < Instr.Operands.size())
        W |= Packed(Instr.Operands[I + 1]) << 20;
      if (I + 2 < Instr.Operands.size())
        W |= Packed(Instr.Operands[I + 2]) << 40;
      H.u64(W);
    }
    if (Instr.Imm != 0)
      H.i64(Instr.Imm);
    if (Instr.isMemory()) {
      auto [It, Inserted] = SymOrder.emplace(
          Instr.Mem.BaseSym, static_cast<int32_t>(SymOrder.size()));
      (void)Inserted;
      H.u64(static_cast<uint64_t>(static_cast<uint32_t>(It->second)) |
            static_cast<uint64_t>(Instr.Mem.SizeBytes) << 32 |
            static_cast<uint64_t>(Instr.Mem.Indirect) << 48);
      H.i64(Instr.Mem.Stride);
      H.i64(Instr.Mem.Offset);
    }
    if (ProbBits != 0)
      H.f64(Instr.TakenProb);
  }

  // Classes of the referenced registers, in renumbered order, eight
  // single-byte classes to a word (zero-padded; the count delimits).
  std::vector<uint8_t> Classes(NextReg, 0);
  for (RegId Reg = 0; Reg < L.numRegs(); ++Reg)
    if (Renumber[Reg] != NoReg)
      Classes[Renumber[Reg]] = static_cast<uint8_t>(L.regClass(Reg));
  H.u64(NextReg);
  uint64_t ClassWord = 0;
  unsigned ClassCount = 0;
  for (uint8_t RC : Classes) {
    ClassWord |= static_cast<uint64_t>(RC) << (8 * ClassCount);
    if (++ClassCount == 8) {
      H.u64(ClassWord);
      ClassWord = 0;
      ClassCount = 0;
    }
  }
  if (ClassCount > 0)
    H.u64(ClassWord);
}

Fingerprint metaopt::canonicalSimKey(const Loop &L) {
  FingerprintHasher H;
  H.str("metaopt-canonical-sim-key-v1");
  // Trip metadata is semantic: the symbolic analysis derives overflow and
  // guard facts from it, which steer the memory optimizer.
  H.i64(L.tripCount());
  H.i64(L.runtimeTripCount());
  hashCanonicalSimStructure(H, L);
  return H.digest();
}
