//===- analysis/symbolic/Canonical.h - Canonical sim-equivalence -*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical simulation form: a quotient of the loop IR by everything
/// simulateLoop() provably ignores. Two loops with equal canonical text
/// receive identical SimResults at every unroll factor, so the labeling
/// pipeline simulates one representative per equivalence class and reuses
/// the results for the rest (core/driver/LabelCollector.h; the pruning
/// rate is reported in BENCH_pipeline.json).
///
/// The normalized dimensions — each one verified against the simulator
/// by the static-claims fuzz oracle on every campaign case:
///
///  - loop name, source file, header line, per-instruction source lines
///    (diagnostic metadata; the simulator prices structure only);
///  - register names (the sim path is RegId-structural; names only feed
///    interpreter live-in synthesis and diagnostics), renamed in
///    first-appearance order;
///  - base-symbol numbering (only compared for equality, never used as
///    an address), renumbered in first-use order;
///  - source language and nest level (classifier features, not machine
///    behavior).
///
/// Trip metadata (compile-time and runtime trip counts) is semantic and
/// survives into the canonical text. Measurement noise is applied per
/// (benchmark, loop) name *outside* the simulator, so label datasets are
/// byte-identical with pruning on or off.
///
/// IMPORTANT: the labeling pruner keys classes on canonicalSimKey(), not
/// on the simulation *context* — SimContext is deliberately excluded.
/// Every corpus loop carries its own randomized context, so folding the
/// context into the class key makes every class a singleton and kills the
/// pruning (the PR-7 regression: 0 of 2808 simulations pruned). Instead
/// the collector compiles one context-independent plan per structural
/// class and evaluates it under each member's own context
/// (sim/SimCompile.h), which keeps pruned and unpruned datasets
/// byte-identical even when class members disagree on context.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_SYMBOLIC_CANONICAL_H
#define METAOPT_ANALYSIS_SYMBOLIC_CANONICAL_H

#include "ir/Loop.h"
#include "support/Fingerprint.h"

#include <string>

namespace metaopt {

/// Returns a copy of \p L with every sim-irrelevant dimension normalized.
Loop canonicalSimForm(const Loop &L);

/// The canonical text: printLoop(canonicalSimForm(L)). Equal strings
/// certify equal SimResults for every (factor, machine, context) tuple —
/// up to the printer's 6-significant-digit formatting of ExitIf
/// probabilities; canonicalSimKey() closes that gap by hashing the exact
/// IEEE-754 bits alongside the text-equivalent structure.
std::string canonicalSimText(const Loop &L);

/// Structural fingerprint of canonicalSimForm(L): equal keys certify (up
/// to 128-bit collision odds) equal canonical forms *including* the exact
/// bits of every ExitIf TakenProb, and therefore equal SimResults at
/// every (factor, machine, context, swp) tuple. Computed by renumbering
/// registers and base symbols on the fly — no Loop clone, no printing —
/// so the labeling pruner can key hundreds of loops per millisecond.
Fingerprint canonicalSimKey(const Loop &L);

/// Feeds the trip-*independent* canonical structure of \p L into \p H:
/// phis, body (opcodes, renumbered registers and base symbols, immediates,
/// memory shapes, exact exit-probability bits, pairing), and referenced
/// register classes. canonicalSimKey() is this plus the trip metadata;
/// the body-level stats cache (sim/SimCompile.h) uses the structure alone,
/// because nothing downstream of the memory optimizer reads trip counts.
void hashCanonicalSimStructure(FingerprintHasher &H, const Loop &L);

} // namespace metaopt

#endif // METAOPT_ANALYSIS_SYMBOLIC_CANONICAL_H
