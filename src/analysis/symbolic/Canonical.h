//===- analysis/symbolic/Canonical.h - Canonical sim-equivalence -*- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The canonical simulation form: a quotient of the loop IR by everything
/// simulateLoop() provably ignores. Two loops with equal canonical text
/// receive identical SimResults at every unroll factor, so the labeling
/// pipeline simulates one representative per equivalence class and reuses
/// the results for the rest (core/driver/LabelCollector.h; the pruning
/// rate is reported in BENCH_pipeline.json).
///
/// The normalized dimensions — each one verified against the simulator
/// by the static-claims fuzz oracle on every campaign case:
///
///  - loop name, source file, header line, per-instruction source lines
///    (diagnostic metadata; the simulator prices structure only);
///  - register names (the sim path is RegId-structural; names only feed
///    interpreter live-in synthesis and diagnostics), renamed in
///    first-appearance order;
///  - base-symbol numbering (only compared for equality, never used as
///    an address), renumbered in first-use order;
///  - source language and nest level (classifier features, not machine
///    behavior).
///
/// Trip metadata (compile-time and runtime trip counts) is semantic and
/// survives into the canonical text. Measurement noise is applied per
/// (benchmark, loop) name *outside* the simulator, so label datasets are
/// byte-identical with pruning on or off.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_SYMBOLIC_CANONICAL_H
#define METAOPT_ANALYSIS_SYMBOLIC_CANONICAL_H

#include "ir/Loop.h"

#include <string>

namespace metaopt {

/// Returns a copy of \p L with every sim-irrelevant dimension normalized.
Loop canonicalSimForm(const Loop &L);

/// The canonical text: printLoop(canonicalSimForm(L)). Equal strings
/// certify equal SimResults for every (factor, machine, context) tuple.
std::string canonicalSimText(const Loop &L);

} // namespace metaopt

#endif // METAOPT_ANALYSIS_SYMBOLIC_CANONICAL_H
