//===- analysis/symbolic/Disjointness.h - Static dependence prover *- C++ -*-===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static disjointness / dependence prover built on the stride-interval
/// analysis. It certifies that two symbolic memory accesses can never touch
/// a common byte at a given iteration distance (lag), and aggregates that
/// into the facts the rest of the system consumes:
///
///  - transform/MemoryOpt uses same-iteration (lag 0) disjointness and
///    proven guard facts to skip its conservative bail-outs;
///  - the classifier features (core/features) take the independence
///    summary: proven-independent unroll factor, minimum symbolic
///    dependence distance, provable-disjoint fraction;
///  - the static-claims fuzz oracle replays every proof against the
///    reference interpreter.
///
/// Every proof is over real (non-wrapping) arithmetic with checked
/// evaluation — see StrideInterval.h for why that is sound against the
/// interpreter's wrapping semantics.
///
//===----------------------------------------------------------------------===//

#ifndef METAOPT_ANALYSIS_SYMBOLIC_DISJOINTNESS_H
#define METAOPT_ANALYSIS_SYMBOLIC_DISJOINTNESS_H

#include "analysis/symbolic/StrideInterval.h"

namespace metaopt {

/// Proves that access \p A at iteration i and access \p B at iteration
/// i + \p Lag touch no common byte, for every i where both iterations
/// execute. Distinct base symbols are trivially disjoint; an access whose
/// guard is proven always-false never executes and is vacuously disjoint
/// from everything. Returns false whenever the proof does not go through
/// (never "maybe").
bool provesDisjoint(const SymbolicAnalysis &SA, const AccessSummary &A,
                    const AccessSummary &B, unsigned Lag);

/// Aggregated independence facts over all dependence-relevant access
/// pairs (pairs on the same symbol where at least one side stores,
/// including an access against itself across iterations).
struct IndependenceSummary {
  /// Largest k in [1, MaxUnrollFactor] such that every relevant pair is
  /// provably disjoint at every lag 1..k-1: k unrolled copies are
  /// certified mutually memory-independent. Always at least 1.
  unsigned ProvenFactor = 1;
  /// Smallest lag in [1, MaxUnrollFactor] at which some relevant pair is
  /// not provably disjoint — the conservative minimum loop-carried
  /// dependence distance. MaxUnrollFactor + 1 when every lag is clean.
  unsigned MinDependenceLag = MaxUnrollFactor + 1;
  /// Of all (relevant pair, lag 1..MaxUnrollFactor) combinations, the
  /// fraction proven disjoint; 1.0 when there are none.
  double DisjointFraction = 1.0;
  /// Denominator / numerator behind DisjointFraction.
  unsigned RelevantChecks = 0;
  unsigned ProvenChecks = 0;
};

/// Runs the prover over every relevant pair and lag.
IndependenceSummary summarizeIndependence(const SymbolicAnalysis &SA);

} // namespace metaopt

#endif // METAOPT_ANALYSIS_SYMBOLIC_DISJOINTNESS_H
