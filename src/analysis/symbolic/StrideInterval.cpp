//===- analysis/symbolic/StrideInterval.cpp - Symbolic value domain -------===//
//
// Part of the metaopt project, a reproduction of "Predicting Unroll Factors
// Using Supervised Classification" (Stephenson & Amarasinghe, CGO 2005).
//
//===----------------------------------------------------------------------===//

#include "analysis/symbolic/StrideInterval.h"

#include "analysis/symbolic/Disjointness.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace metaopt;

const char *metaopt::predFactName(PredFact Fact) {
  switch (Fact) {
  case PredFact::Unknown:
    return "unknown";
  case PredFact::AlwaysTrue:
    return "always-true";
  case PredFact::AlwaysFalse:
    return "always-false";
  }
  return "unknown";
}

namespace {

//===----------------------------------------------------------------------===//
// Arithmetic helpers
//===----------------------------------------------------------------------===//

// Wrapping mod-2^64 ops mirror exec/Interpreter.cpp exactly: the affine
// congruence stays a theorem of the reference semantics no matter what
// the constants are.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}

int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}

int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

// Checked real-arithmetic ops: return false on int64 overflow. Order and
// range proofs only fire when the whole real evaluation fits, so wrapped
// values can never fabricate a comparison fact.
bool checkedAdd(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}

bool checkedSub(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_sub_overflow(A, B, &Out);
}

bool checkedMul(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

/// Evaluates Offset + Step * Iter with checked arithmetic.
bool checkedEval(int64_t Offset, int64_t Step, int64_t Iter, int64_t &Out) {
  int64_t Scaled;
  return checkedMul(Step, Iter, Scaled) && checkedAdd(Offset, Scaled, Out);
}

/// Join of two abstract values: equal stays, anything else goes to Top
/// (the domain has no interval component at the value level; intervals
/// appear only in derived range queries).
AffineValue joinValues(const AffineValue &A, const AffineValue &B) {
  if (A == B)
    return A;
  return AffineValue::top();
}

/// The class-default value a predicated-off instruction writes (see
/// exec/Interpreter.h): integer destinations get 0.
AffineValue intDefault() { return AffineValue::constant(0); }

} // namespace

//===----------------------------------------------------------------------===//
// SymbolicAnalysis
//===----------------------------------------------------------------------===//

SymbolicAnalysis::SymbolicAnalysis(const Loop &L) : L(L) {
  Values.assign(L.numRegs(), AffineValue::top());
  PredFacts.assign(L.numRegs(), PredFact::Unknown);
  Overflowed.assign(L.numRegs(), false);
  if (L.hasKnownTripCount()) {
    TripKnown = true;
    TripHi = L.tripCount() - 1; // May be -1: zero-trip, empty range.
  }
  runFixpoint();
  computePredFacts();
  // Predicate facts sharpen the transfer of predicated definitions
  // (always-true guards stop joining with the zero default), which can in
  // turn sharpen facts; one refinement round captures the common cases
  // and every round is independently sound.
  runFixpoint();
  computePredFacts();
  // Flag overflow-prone IV arithmetic: base-free iteration-dependent
  // values whose real evaluation leaves int64 somewhere in the iteration
  // range. (Base-carrying values get no range claims at all, so only the
  // base-free ones need the endpoint check.)
  if (TripKnown && TripHi >= TripLo)
    for (RegId Reg = 0; Reg < L.numRegs(); ++Reg) {
      const AffineValue &V = Values[Reg];
      if (!V.isBaseFree() || V.Step == 0)
        continue;
      int64_t E0, E1;
      if (!checkedEval(V.Offset, V.Step, TripLo, E0) ||
          !checkedEval(V.Offset, V.Step, TripHi, E1))
        Overflowed[Reg] = true;
    }
  computeAccesses();
}

void SymbolicAnalysis::runFixpoint() {
  // Optimistic start: live-ins are opaque symbols, phi destinations their
  // own symbol (so a simple induction shows up as "recur == self + c").
  Values.assign(L.numRegs(), AffineValue::top());
  for (RegId Reg = 0; Reg < L.numRegs(); ++Reg)
    if (L.regClass(Reg) == RegClass::Int && L.isLiveIn(Reg))
      Values[Reg] = AffineValue::symbol(Reg);
  for (const PhiNode &Phi : L.phis())
    if (L.regClass(Phi.Dest) == RegClass::Int)
      Values[Phi.Dest] = AffineValue::symbol(Phi.Dest);

  evaluateBody();

  // Resolve phis: hypothesize linear induction, verify by re-evaluation,
  // widen to Top on any mismatch. Widening is monotone (Affine -> Top
  // only), so the loop terminates; the cap is belt and braces.
  const size_t MaxRounds = L.phis().size() + 3;
  for (size_t Round = 0; Round < MaxRounds; ++Round) {
    bool Changed = false;
    for (const PhiNode &Phi : L.phis()) {
      if (L.regClass(Phi.Dest) != RegClass::Int)
        continue;
      const AffineValue &Cur = Values[Phi.Dest];
      if (Cur.isTop())
        continue;
      const AffineValue &Recur = Values[Phi.Recur];
      AffineValue Next = AffineValue::top();
      if (Cur == AffineValue::symbol(Phi.Dest)) {
        // Unresolved. The hypothesis needs a live-in init (the value the
        // phi holds when i == 0) and a recurrence of the form self + c
        // with no direct iteration term.
        if (L.isLiveIn(Phi.Init) && Recur.isAffine() &&
            Recur.Base == Phi.Dest && Recur.Step == 0)
          Next = AffineValue{AffineValue::Kind::Affine, Phi.Init, 0,
                             Recur.Offset};
      } else {
        // Resolved to Base + Offset + Step*i earlier; it stays only if
        // the recurrence still evaluates to its value at iteration i+1.
        if (Recur.isAffine() && Recur.Base == Cur.Base &&
            Recur.Offset == wrapAdd(Cur.Offset, Cur.Step) &&
            Recur.Step == Cur.Step)
          Next = Cur;
      }
      if (!(Next == Cur)) {
        Values[Phi.Dest] = Next;
        Changed = true;
      }
    }
    if (!Changed)
      return;
    evaluateBody();
  }
  // Round cap hit: drop anything still unresolved and settle once more.
  for (const PhiNode &Phi : L.phis())
    if (Values[Phi.Dest] == AffineValue::symbol(Phi.Dest))
      Values[Phi.Dest] = AffineValue::top();
  evaluateBody();
}

void SymbolicAnalysis::evaluateBody() {
  for (const Instruction &Instr : L.body()) {
    if (!Instr.hasDest())
      continue;
    if (L.regClass(Instr.Dest) != RegClass::Int) {
      Values[Instr.Dest] = AffineValue::top();
      continue;
    }
    // Overflow is recomputed from scratch per call (transfer may set it
    // again via markOverflow), then operand taint is OR-ed in.
    Overflowed[Instr.Dest] = false;
    AffineValue Result = transfer(Instr);
    // A predicated-off instruction writes the class default (0), so a
    // definition under a guard that is not proven always-true is the
    // join of the computed value and zero.
    if (Instr.Pred != NoReg) {
      PredFact Guard = PredFacts[Instr.Pred];
      if (Guard == PredFact::AlwaysFalse)
        Result = intDefault();
      else if (Guard != PredFact::AlwaysTrue)
        Result = joinValues(Result, intDefault());
    }
    Values[Instr.Dest] = Result;
    bool Taint = Overflowed[Instr.Dest];
    for (RegId Op : Instr.Operands)
      Taint = Taint || Overflowed[Op];
    Overflowed[Instr.Dest] = Taint;
  }
}

AffineValue SymbolicAnalysis::transfer(const Instruction &Instr) {
  auto Op = [&](size_t Index) -> const AffineValue & {
    return Values[Instr.Operands[Index]];
  };
  auto markOverflow = [&]() { Overflowed[Instr.Dest] = true; };

  // Addition/subtraction of affine forms; at most one side may carry a
  // symbolic base (for subtraction, equal bases cancel).
  auto addLike = [&](const AffineValue &A, const AffineValue &B,
                     bool Negate) -> AffineValue {
    if (!A.isAffine() || !B.isAffine())
      return AffineValue::top();
    RegId Base;
    if (!Negate && (A.Base == NoReg || B.Base == NoReg))
      Base = A.Base != NoReg ? A.Base : B.Base;
    else if (Negate && A.Base == B.Base)
      Base = NoReg; // x - x cancels the symbol.
    else if (Negate && B.Base == NoReg)
      Base = A.Base;
    else
      return AffineValue::top();
    int64_t Off = Negate ? wrapSub(A.Offset, B.Offset)
                         : wrapAdd(A.Offset, B.Offset);
    int64_t Step =
        Negate ? wrapSub(A.Step, B.Step) : wrapAdd(A.Step, B.Step);
    int64_t Check;
    if ((Negate ? !checkedSub(A.Offset, B.Offset, Check)
                : !checkedAdd(A.Offset, B.Offset, Check)) ||
        (Negate ? !checkedSub(A.Step, B.Step, Check)
                : !checkedAdd(A.Step, B.Step, Check)))
      markOverflow();
    return {AffineValue::Kind::Affine, Base, Off, Step};
  };

  // Scaling an affine form by a constant; a symbolic base survives only
  // scale 1 (its implicit coefficient must stay 1) and scale 0 kills it.
  auto scale = [&](const AffineValue &A, int64_t Factor) -> AffineValue {
    if (!A.isAffine())
      return AffineValue::top();
    if (Factor == 0)
      return AffineValue::constant(0);
    if (A.Base != NoReg && Factor != 1)
      return AffineValue::top();
    int64_t Check;
    if (!checkedMul(A.Offset, Factor, Check) ||
        !checkedMul(A.Step, Factor, Check))
      markOverflow();
    return {AffineValue::Kind::Affine, A.Base, wrapMul(A.Offset, Factor),
            wrapMul(A.Step, Factor)};
  };

  switch (Instr.Op) {
  case Opcode::IAdd:
    return addLike(Op(0), Op(1), /*Negate=*/false);
  case Opcode::ISub:
    return addLike(Op(0), Op(1), /*Negate=*/true);
  case Opcode::IMul: {
    const AffineValue &A = Op(0), &B = Op(1);
    if (A.isConstant())
      return scale(B, A.Offset);
    if (B.isConstant())
      return scale(A, B.Offset);
    return AffineValue::top();
  }
  case Opcode::Shl: {
    const AffineValue &A = Op(0), &B = Op(1);
    if (!B.isConstant())
      return AffineValue::top();
    int64_t Count = B.Offset & 63; // The interpreter masks shift counts.
    if (Count >= 63)
      return AffineValue::top(); // 2^63 is not an int64 scale factor.
    return scale(A, int64_t(1) << Count);
  }
  case Opcode::IDiv:
  case Opcode::IRem:
  case Opcode::Shr:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor: {
    // Exact only for constant operands; fold with the interpreter's
    // defined edge cases (safe division, arithmetic Shr, masked counts).
    const AffineValue &A = Op(0), &B = Op(1);
    if (!A.isConstant() || !B.isConstant())
      return AffineValue::top();
    int64_t X = A.Offset, Y = B.Offset;
    constexpr int64_t Min64 = std::numeric_limits<int64_t>::min();
    switch (Instr.Op) {
    case Opcode::IDiv:
      return AffineValue::constant(
          Y == 0 ? 0 : (X == Min64 && Y == -1) ? Min64 : X / Y);
    case Opcode::IRem:
      return AffineValue::constant(
          Y == 0 ? X : (X == Min64 && Y == -1) ? 0 : X % Y);
    case Opcode::Shr:
      return AffineValue::constant(X >> (Y & 63));
    case Opcode::And:
      return AffineValue::constant(X & Y);
    case Opcode::Or:
      return AffineValue::constant(X | Y);
    default:
      return AffineValue::constant(X ^ Y);
    }
  }
  case Opcode::IConst:
    return AffineValue::constant(Instr.Imm);
  case Opcode::Copy:
    return Op(0);
  case Opcode::Select: {
    // Dest = Pred ? A : B with operands (pred, a, b).
    switch (PredFacts[Instr.Operands[0]]) {
    case PredFact::AlwaysTrue:
      return Op(1);
    case PredFact::AlwaysFalse:
      return Op(2);
    case PredFact::Unknown:
      return joinValues(Op(1), Op(2));
    }
    return AffineValue::top();
  }
  case Opcode::AddrGen:
    return Instr.Operands.size() == 2 ? addLike(Op(0), Op(1), false)
                                      : Op(0);
  case Opcode::IvAdd:
    // Defined as GlobalIter + 1 regardless of its operand.
    return {AffineValue::Kind::Affine, NoReg, 1, 1};
  case Opcode::Load:
  case Opcode::FCvt:
  default:
    return AffineValue::top();
  }
}

PredFact SymbolicAnalysis::compareFact(RegId A, RegId B) const {
  // Proves "A < B on every iteration" / "never". Both sides must be
  // base-free (an opaque symbol near the int64 boundary can wrap either
  // side, so even equal bases are not cancellable under < ), their real
  // evaluations must stay in int64 over the whole iteration range, and
  // so must the difference.
  // Identical values compare false under strict <, wrap or no wrap: the
  // same register, or two registers proven equal at every iteration.
  if (A == B)
    return PredFact::AlwaysFalse;
  const AffineValue &VA = Values[A], &VB = Values[B];
  if (VA.isAffine() && VA == VB)
    return PredFact::AlwaysFalse;
  if (!VA.isBaseFree() || !VB.isBaseFree())
    return PredFact::Unknown;
  if (Overflowed[A] || Overflowed[B])
    return PredFact::Unknown;
  int64_t DOff, DStep;
  if (!checkedSub(VA.Offset, VB.Offset, DOff) ||
      !checkedSub(VA.Step, VB.Step, DStep))
    return PredFact::Unknown;
  int64_t Lo = TripLo, Hi;
  if (TripKnown) {
    Hi = TripHi;
    if (Hi < Lo)
      return PredFact::Unknown; // Zero-trip loop: nothing to prove.
  } else {
    if (VA.Step != 0 || VB.Step != 0 || DStep != 0)
      return PredFact::Unknown; // Unbounded range, varying values.
    Hi = Lo;
  }
  // Each side must evaluate without wrap so concrete == real.
  int64_t T;
  if (!checkedEval(VA.Offset, VA.Step, Lo, T) ||
      !checkedEval(VA.Offset, VA.Step, Hi, T) ||
      !checkedEval(VB.Offset, VB.Step, Lo, T) ||
      !checkedEval(VB.Offset, VB.Step, Hi, T))
    return PredFact::Unknown;
  int64_t D0, D1;
  if (!checkedEval(DOff, DStep, Lo, D0) || !checkedEval(DOff, DStep, Hi, D1))
    return PredFact::Unknown;
  int64_t DMin = std::min(D0, D1), DMax = std::max(D0, D1);
  if (DMax < 0)
    return PredFact::AlwaysTrue; // A - B < 0 everywhere.
  if (DMin >= 0)
    return PredFact::AlwaysFalse; // A >= B everywhere.
  return PredFact::Unknown;
}

void SymbolicAnalysis::computePredFacts() {
  PredFacts.assign(L.numRegs(), PredFact::Unknown);
  for (const Instruction &Instr : L.body()) {
    if (!Instr.hasDest() || L.regClass(Instr.Dest) != RegClass::Pred)
      continue;
    PredFact Fact = PredFact::Unknown;
    switch (Instr.Op) {
    case Opcode::ICmp:
      Fact = compareFact(Instr.Operands[0], Instr.Operands[1]);
      break;
    case Opcode::PredSet: {
      // Two operands combine with AND; one operand copies.
      PredFact FA = PredFacts[Instr.Operands[0]];
      if (Instr.Operands.size() == 2) {
        PredFact FB = PredFacts[Instr.Operands[1]];
        if (FA == PredFact::AlwaysFalse || FB == PredFact::AlwaysFalse)
          Fact = PredFact::AlwaysFalse;
        else if (FA == PredFact::AlwaysTrue && FB == PredFact::AlwaysTrue)
          Fact = PredFact::AlwaysTrue;
      } else {
        Fact = FA;
      }
      break;
    }
    case Opcode::Select: {
      PredFact FC = PredFacts[Instr.Operands[0]];
      PredFact FA = PredFacts[Instr.Operands[1]];
      PredFact FB = PredFacts[Instr.Operands[2]];
      if (FC == PredFact::AlwaysTrue)
        Fact = FA;
      else if (FC == PredFact::AlwaysFalse)
        Fact = FB;
      else if (FA == FB)
        Fact = FA;
      break;
    }
    case Opcode::FCmp:
      // Strict < of a float register against itself is false on every
      // iteration (NaNs are canonicalized away by the interpreter, and
      // x < x is false even for NaN).
      if (Instr.Operands[0] == Instr.Operands[1])
        Fact = PredFact::AlwaysFalse;
      break;
    case Opcode::Copy:
      Fact = PredFacts[Instr.Operands[0]];
      break;
    default:
      // IvCmp (true except on the final iteration), copies of unknown
      // predicates, ...: unknown.
      break;
    }
    // A predicated predicate definition writes false when guarded off:
    // always-false survives (false joins false); always-true degrades.
    if (Instr.Pred != NoReg) {
      PredFact Guard = PredFacts[Instr.Pred];
      if (Guard == PredFact::AlwaysFalse)
        Fact = PredFact::AlwaysFalse;
      else if (Guard != PredFact::AlwaysTrue &&
               Fact != PredFact::AlwaysFalse)
        Fact = PredFact::Unknown;
    }
    PredFacts[Instr.Dest] = Fact;
  }
}

void SymbolicAnalysis::computeAccesses() {
  Accesses.clear();
  for (uint32_t Index = 0; Index < L.body().size(); ++Index) {
    const Instruction &Instr = L.body()[Index];
    if (!Instr.isMemory())
      continue;
    AccessSummary S;
    S.BodyIndex = Index;
    S.Sym = Instr.Mem.BaseSym;
    S.IsStore = Instr.isStore();
    S.SizeBytes = Instr.Mem.SizeBytes;
    S.Guard = guardFact(Instr);
    if (!Instr.Mem.Indirect) {
      S.AddressKnown = true;
      S.Offset = Instr.Mem.Offset;
      S.Stride = Instr.Mem.Stride;
    } else {
      // The index register is the last operand; an affine index folds
      // into a direct-form effective address. The interpreter computes
      // addresses in real (non-wrapping) arithmetic, so demand checked
      // combination here.
      const AffineValue &Idx = Values[Instr.Operands.back()];
      S.WasIndirect = true;
      int64_t Off, Stride;
      if (Idx.isAffine() && !Overflowed[Instr.Operands.back()] &&
          checkedAdd(Instr.Mem.Offset, Idx.Offset, Off) &&
          checkedAdd(Instr.Mem.Stride, Idx.Step, Stride)) {
        S.AddressKnown = true;
        S.Base = Idx.Base;
        S.Offset = Off;
        S.Stride = Stride;
      }
    }
    Accesses.push_back(S);
  }
}

PredFact SymbolicAnalysis::guardFact(const Instruction &Instr) const {
  if (Instr.Pred == NoReg)
    return PredFact::AlwaysTrue;
  return PredFacts[Instr.Pred];
}

const AccessSummary *SymbolicAnalysis::accessAt(uint32_t BodyIndex) const {
  for (const AccessSummary &S : Accesses)
    if (S.BodyIndex == BodyIndex)
      return &S;
  return nullptr;
}

bool SymbolicAnalysis::ivRange(int64_t &Lo, int64_t &Hi) const {
  if (!TripKnown)
    return false;
  Lo = TripLo;
  Hi = TripHi;
  return true;
}

bool SymbolicAnalysis::valueRange(RegId Reg, int64_t &Lo, int64_t &Hi) const {
  const AffineValue &V = Values[Reg];
  if (!V.isBaseFree() || Overflowed[Reg])
    return false;
  if (V.Step == 0) {
    Lo = Hi = V.Offset;
    return true;
  }
  if (!TripKnown || TripHi < TripLo)
    return false;
  int64_t E0, E1;
  if (!checkedEval(V.Offset, V.Step, TripLo, E0) ||
      !checkedEval(V.Offset, V.Step, TripHi, E1))
    return false;
  Lo = std::min(E0, E1);
  Hi = std::max(E0, E1);
  return true;
}

std::vector<StaticClaim> SymbolicAnalysis::claims() const {
  std::vector<StaticClaim> Out;
  // Zero-trip loops never execute an iteration; every per-iteration claim
  // is vacuous, so emit none.
  if (TripKnown && TripHi < TripLo)
    return Out;

  // Guard verdicts, in body order.
  for (uint32_t Index = 0; Index < L.body().size(); ++Index) {
    const Instruction &Instr = L.body()[Index];
    if (Instr.Pred == NoReg)
      continue;
    PredFact Fact = PredFacts[Instr.Pred];
    if (Fact == PredFact::Unknown)
      continue;
    StaticClaim C;
    C.K = Fact == PredFact::AlwaysTrue ? StaticClaim::Kind::GuardAlwaysTrue
                                       : StaticClaim::Kind::GuardAlwaysFalse;
    C.A = Index;
    Out.push_back(C);
  }

  // Range bounds for iteration-dependent integer values defined in the
  // loop (live-ins are opaque, constants are uninteresting).
  for (RegId Reg = 0; Reg < L.numRegs(); ++Reg) {
    if (L.regClass(Reg) != RegClass::Int || L.isLiveIn(Reg))
      continue;
    const AffineValue &V = Values[Reg];
    if (!V.isBaseFree() || V.Step == 0)
      continue;
    StaticClaim C;
    C.K = StaticClaim::Kind::RangeBound;
    C.Reg = Reg;
    if (!valueRange(Reg, C.Lo, C.Hi))
      continue;
    Out.push_back(C);
  }

  // Pairwise disjointness, lags 0 .. MaxUnrollFactor-1, dependence-
  // relevant pairs only (at least one store; same symbol — distinct
  // symbols never alias by construction).
  for (size_t I = 0; I < Accesses.size(); ++I)
    for (size_t J = 0; J < Accesses.size(); ++J)
      for (unsigned Lag = 0; Lag < MaxUnrollFactor; ++Lag) {
        if (Lag == 0 && J <= I)
          continue; // Same-iteration pairs are unordered; emit once.
        const AccessSummary &A = Accesses[I], &B = Accesses[J];
        if (!A.IsStore && !B.IsStore)
          continue;
        if (A.Sym != B.Sym)
          continue;
        if (!provesDisjoint(*this, A, B, Lag))
          continue;
        StaticClaim C;
        C.K = StaticClaim::Kind::Disjoint;
        C.A = A.BodyIndex;
        C.B = B.BodyIndex;
        C.Lag = Lag;
        Out.push_back(C);
      }
  return Out;
}

std::string SymbolicAnalysis::describeValue(RegId Reg) const {
  const AffineValue &V = Values[Reg];
  if (V.isTop())
    return "top";
  std::string Out;
  auto appendSigned = [&](int64_t Term, const char *Suffix) {
    if (Out.empty()) {
      Out += std::to_string(Term) + Suffix;
    } else if (Term < 0) {
      // Render INT64_MIN safely: "- 9223372036854775808".
      Out += " - " + std::to_string(static_cast<uint64_t>(
                         -static_cast<uint64_t>(Term))) +
             Suffix;
    } else {
      Out += " + " + std::to_string(Term) + Suffix;
    }
  };
  if (V.Base != NoReg)
    Out += "%" + std::string(regClassPrefix(L.regClass(V.Base))) + "_" +
           L.regName(V.Base);
  if (V.Offset != 0 || (V.Base == NoReg && V.Step == 0))
    appendSigned(V.Offset, "");
  if (V.Step != 0)
    appendSigned(V.Step, "*i");
  return Out;
}

std::string metaopt::describeClaim(const StaticClaim &Claim, const Loop &L) {
  auto instrAt = [&](uint32_t Index) {
    std::string Out = "body[" + std::to_string(Index) + "]";
    if (Index < L.body().size())
      Out += std::string(" ") + opcodeName(L.body()[Index].Op);
    return Out;
  };
  switch (Claim.K) {
  case StaticClaim::Kind::Disjoint:
    return "disjoint " + instrAt(Claim.A) + " vs " + instrAt(Claim.B) +
           " lag=" + std::to_string(Claim.Lag);
  case StaticClaim::Kind::GuardAlwaysTrue:
    return "guard-always-true " + instrAt(Claim.A);
  case StaticClaim::Kind::GuardAlwaysFalse:
    return "guard-always-false " + instrAt(Claim.A);
  case StaticClaim::Kind::RangeBound:
    return "range %" + L.regName(Claim.Reg) + " in [" +
           std::to_string(Claim.Lo) + ", " + std::to_string(Claim.Hi) + "]";
  }
  return "unknown-claim";
}
