//===- import/Import.cpp --------------------------------------------------===//
//
// The mloop parser and lowering pipeline. Parsing is line-oriented like
// ir/Parser.cpp, but instead of stopping at the first error it collects
// every finding into a DiagnosticReport with stable I-series IDs, so a
// batch import of a real-code corpus reports all problems in one pass.
// Lowering runs per loop after its statements parsed cleanly: def-use is
// checked (uses of later defs must go through phis), registers are
// created in first-occurrence order with the printer's class-prefix
// convention stripped, named memory symbols are interned, and the
// canonical loop-control tail is synthesized unless the input carried an
// explicit one. Accepted loops are re-verified; a verifier error on a
// lowered loop (which indicates an importer bug, not bad input) is
// escalated into the report rather than silently shipped.
//
//===----------------------------------------------------------------------===//

#include "import/Import.h"

#include "ir/Verifier.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace metaopt;

namespace {

/// Supported format version.
constexpr int64_t FormatVersion = 1;

/// Bounds enforced by I010: compile-time trip counts any positive value a
/// 32-bit extractor can emit; runtime trips capped so the reference
/// interpreter (which really executes them) stays fast; nest depth sane.
constexpr int64_t MaxTrip = int64_t(1) << 31;
constexpr int64_t MaxRuntimeTrip = 1000000;
constexpr int MaxDepth = 64;

//===----------------------------------------------------------------------===//
// Parsed (pre-lowering) statement model
//===----------------------------------------------------------------------===//

struct POperand {
  std::string Name;
  RegClass RC = RegClass::Int;
};

struct PStmt {
  unsigned Line = 0;
  bool IsPhi = false;
  Opcode Op = Opcode::IAdd;
  bool HasDest = false;
  std::string Dest;
  RegClass DestClass = RegClass::Int;
  std::vector<POperand> Ops; ///< Value operands (phi: init, recur).
  std::string Guard;         ///< when(%g), "" if none.
  int64_t Imm = 0;
  bool HasMem = false;
  MemRef Mem;         ///< BaseSym only valid when MemSym is empty.
  std::string MemSym; ///< Named base symbol, interned during lowering.
  std::string Index;  ///< ind(%x), "" if none.
  bool Paired = false;
  double Prob = 0.0;
};

/// One "array" directive: a declared symbol, parsed but not yet resolved
/// against the loop's interned symbol ids.
struct PArray {
  std::string Name;   ///< Named symbol; "" when declared numerically.
  int32_t Sym = 0;    ///< Numeric symbol id (valid when Name is empty).
  int64_t Extent = -1;
  int64_t Stride = 0;
  bool HasStride = false;
  unsigned Line = 0;
};

struct PLoop {
  unsigned HeaderLine = 0;
  std::string Name;
  SourceLanguage Lang = SourceLanguage::C;
  int Depth = 1;
  int64_t Trip = Loop::UnknownTripCount;
  int64_t RTrip = 256;
  std::vector<PStmt> Phis;
  std::vector<PStmt> Body;
  ImportProvenance Prov;
  SimContext Ctx;
  int64_t Executions = 1;
  std::vector<PArray> Arrays;
  bool Dirty = false; ///< Had at least one error; never lowered/emitted.
};

//===----------------------------------------------------------------------===//
// Character cursor over one line
//===----------------------------------------------------------------------===//

bool isIdentChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_' || C == '.';
}

class Cursor {
public:
  explicit Cursor(std::string_view Line) : S(Line) {}

  void skipWs() {
    while (P < S.size() && (S[P] == ' ' || S[P] == '\t'))
      ++P;
  }

  bool atEnd() {
    skipWs();
    return P >= S.size();
  }

  char peek() {
    skipWs();
    return P < S.size() ? S[P] : '\0';
  }

  /// Consumes \p C if it is next (after whitespace).
  bool lit(char C) {
    skipWs();
    if (P < S.size() && S[P] == C) {
      ++P;
      return true;
    }
    return false;
  }

  /// Reads a run of identifier characters ("" if none).
  std::string ident() {
    skipWs();
    size_t Begin = P;
    while (P < S.size() && isIdentChar(S[P]))
      ++P;
    return std::string(S.substr(Begin, P - Begin));
  }

  /// Reads a signed decimal integer token.
  std::optional<int64_t> number() {
    skipWs();
    size_t Begin = P;
    if (P < S.size() && (S[P] == '-' || S[P] == '+'))
      ++P;
    while (P < S.size() && S[P] >= '0' && S[P] <= '9')
      ++P;
    if (P == Begin)
      return std::nullopt;
    return parseInt(S.substr(Begin, P - Begin));
  }

  /// Reads a floating point token (digits, sign, '.', exponent).
  std::optional<double> real() {
    skipWs();
    size_t Begin = P;
    auto Ok = [&](char C) {
      return (C >= '0' && C <= '9') || C == '-' || C == '+' || C == '.' ||
             C == 'e' || C == 'E';
    };
    while (P < S.size() && Ok(S[P]))
      ++P;
    if (P == Begin)
      return std::nullopt;
    return parseDouble(S.substr(Begin, P - Begin));
  }

  /// Reads a double-quoted string (no escapes, like the .loop format).
  std::optional<std::string> quoted() {
    if (!lit('"'))
      return std::nullopt;
    size_t Close = S.find('"', P);
    if (Close == std::string_view::npos)
      return std::nullopt;
    std::string Out(S.substr(P, Close - P));
    P = Close + 1;
    return Out;
  }

  /// Reads a %value token; returns the name after '%'.
  std::optional<std::string> value() {
    if (!lit('%'))
      return std::nullopt;
    std::string Name = ident();
    if (Name.empty())
      return std::nullopt;
    return Name;
  }

  std::string_view rest() {
    skipWs();
    return S.substr(P);
  }

private:
  std::string_view S;
  size_t P = 0;
};

/// Maps an mloop type token to a register class. Narrower integer and
/// float widths are accepted and lower to the IR's single 64-bit class
/// per category (the access width of memory ops comes from size=, not
/// the value type).
std::optional<RegClass> parseTypeToken(const std::string &Tok) {
  if (Tok == "i64" || Tok == "i32" || Tok == "i16" || Tok == "i8")
    return RegClass::Int;
  if (Tok == "f64" || Tok == "f32")
    return RegClass::Float;
  if (Tok == "i1")
    return RegClass::Pred;
  return std::nullopt;
}

const char *typeTokenFor(RegClass RC) {
  switch (RC) {
  case RegClass::Int:
    return "i64";
  case RegClass::Float:
    return "f64";
  case RegClass::Pred:
    return "i1";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// The importer
//===----------------------------------------------------------------------===//

class Importer {
public:
  Importer(std::string_view Text, std::string FileName,
           const ImportOptions &Options, ImportResult &Result)
      : Text(Text), FileName(std::move(FileName)), Options(Options),
        Result(Result) {}

  void run() {
    if (!parseHeader())
      return;
    std::string_view Line;
    while (nextMeaningfulLine(Line)) {
      Cursor C(Line);
      std::string Word = C.ident();
      if (Word == "loop") {
        parseAndLowerLoop(C);
      } else if (Word == "source") {
        parseSourceDirective(C);
      } else if (Word == "context") {
        parseContextDirective(C);
      } else if (Word == "array") {
        parseArrayDirective(C);
      } else {
        error(idiag::UnknownDirective, CurLine,
              "unknown directive '" + Word + "' (expected source, "
              "context, array, or loop)");
      }
    }
    if (!Options.Lenient && Result.Report.hasErrors())
      Result.Loops.clear();
  }

private:
  //===--------------------------------------------------------------------===
  // Diagnostics and line scanning
  //===--------------------------------------------------------------------===

  void error(const char *Id, unsigned Line, std::string Message,
             const std::string &LoopName = "") {
    Diagnostic D;
    D.Id = Id;
    D.Sev = Severity::Error;
    D.LoopName = LoopName;
    D.SrcLine = Line;
    D.Message = std::move(Message);
    Result.Report.add(std::move(D));
  }

  /// Advances to the next non-empty, non-comment line. Returns false at
  /// end of input. CurLine is the 1-based line number of the result.
  bool nextMeaningfulLine(std::string_view &Out) {
    while (Pos < Text.size()) {
      size_t End = Text.find('\n', Pos);
      if (End == std::string_view::npos)
        End = Text.size();
      std::string_view Line = Text.substr(Pos, End - Pos);
      Pos = End + 1;
      ++CurLine;
      size_t Hash = Line.find('#');
      if (Hash != std::string_view::npos)
        Line = Line.substr(0, Hash);
      Line = trim(Line);
      if (!Line.empty()) {
        Out = Line;
        return true;
      }
    }
    return false;
  }

  bool parseHeader() {
    std::string_view Line;
    if (!nextMeaningfulLine(Line)) {
      error(idiag::MissingHeader, CurLine,
            "empty input: expected 'mloop " +
                std::to_string(FormatVersion) + "' header");
      return false;
    }
    Cursor C(Line);
    if (C.ident() != "mloop") {
      error(idiag::MissingHeader, CurLine,
            "first line must be 'mloop <version>'");
      return false;
    }
    std::optional<int64_t> Version = C.number();
    if (!Version || !C.atEnd()) {
      error(idiag::MissingHeader, CurLine,
            "malformed mloop header (expected 'mloop <version>')");
      return false;
    }
    if (*Version != FormatVersion) {
      error(idiag::BadVersion, CurLine,
            "unsupported mloop version " + std::to_string(*Version) +
                " (this importer reads version " +
                std::to_string(FormatVersion) + ")");
      return false;
    }
    return true;
  }

  //===--------------------------------------------------------------------===
  // Directives
  //===--------------------------------------------------------------------===

  void parseSourceDirective(Cursor &C) {
    while (!C.atEnd()) {
      std::string Key = C.ident();
      if (Key.empty() || !C.lit('=')) {
        error(idiag::BadDirectiveArg, CurLine,
              "malformed source directive (expected key=value pairs)");
        return;
      }
      if (Key == "file" || Key == "function" || Key == "extractor") {
        std::optional<std::string> Value = C.quoted();
        if (!Value) {
          error(idiag::BadDirectiveArg, CurLine,
                "source " + Key + "= expects a quoted string");
          return;
        }
        if (Key == "file")
          PendingProv.SourceFile = *Value;
        else if (Key == "function")
          PendingProv.Function = *Value;
        else
          PendingProv.Extractor = *Value;
      } else if (Key == "line") {
        std::optional<int64_t> Value = C.number();
        if (!Value || *Value < 0) {
          error(idiag::BadDirectiveArg, CurLine,
                "source line= expects a non-negative integer");
          return;
        }
        PendingProv.SourceLine = static_cast<unsigned>(*Value);
      } else {
        error(idiag::BadDirectiveArg, CurLine,
              "unknown source key '" + Key + "'");
        return;
      }
    }
  }

  void parseContextDirective(Cursor &C) {
    while (!C.atEnd()) {
      std::string Key = C.ident();
      if (Key.empty() || !C.lit('=')) {
        error(idiag::BadDirectiveArg, CurLine,
              "malformed context directive (expected key=value pairs)");
        return;
      }
      auto IntField = [&](int &Slot, int64_t Min, int64_t Max) {
        std::optional<int64_t> Value = C.number();
        if (!Value || *Value < Min || *Value > Max) {
          error(idiag::BadDirectiveArg, CurLine,
                "context " + Key + "= out of range");
          return false;
        }
        Slot = static_cast<int>(*Value);
        return true;
      };
      auto RealField = [&](double &Slot, double Min, double Max) {
        std::optional<double> Value = C.real();
        if (!Value || *Value < Min || *Value > Max) {
          error(idiag::BadDirectiveArg, CurLine,
                "context " + Key + "= out of range");
          return false;
        }
        Slot = *Value;
        return true;
      };
      bool Ok = true;
      if (Key == "icache")
        Ok = IntField(PendingCtx.EffectiveIcacheBytes, 64, 1 << 24);
      else if (Key == "dmiss")
        Ok = RealField(PendingCtx.DcacheMissRate, 0.0, 1.0);
      else if (Key == "dmiss_cycles")
        Ok = IntField(PendingCtx.DcacheMissCycles, 0, 10000);
      else if (Key == "dvisible")
        Ok = RealField(PendingCtx.DcacheVisibleFraction, 0.0, 1.0);
      else if (Key == "iregs")
        Ok = IntField(PendingCtx.IntRegBudget, 1, 1 << 16);
      else if (Key == "fregs")
        Ok = IntField(PendingCtx.FpRegBudget, 1, 1 << 16);
      else if (Key == "execs") {
        std::optional<int64_t> Value = C.number();
        if (!Value || *Value < 1 || *Value > (int64_t(1) << 40)) {
          error(idiag::BadDirectiveArg, CurLine,
                "context execs= out of range");
          Ok = false;
        } else {
          PendingExecutions = *Value;
        }
      } else {
        error(idiag::BadDirectiveArg, CurLine,
              "unknown context key '" + Key + "'");
        return;
      }
      if (!Ok)
        return;
    }
  }

  /// array @sym [extent=<bytes>] [stride=<bytes>]
  /// Declares the object behind a memory symbol of the next loop: its
  /// byte extent and/or the stride the surrounding code walks it with.
  void parseArrayDirective(Cursor &C) {
    PArray Decl;
    Decl.Line = CurLine;
    if (!C.lit('@')) {
      error(idiag::BadDirectiveArg, CurLine,
            "array directive expects '@sym' first");
      return;
    }
    char Next = C.peek();
    if (Next == '-' || (Next >= '0' && Next <= '9')) {
      std::optional<int64_t> Sym = C.number();
      if (!Sym || *Sym < INT32_MIN || *Sym > INT32_MAX) {
        error(idiag::BadDirectiveArg, CurLine,
              "array symbol id out of range");
        return;
      }
      Decl.Sym = static_cast<int32_t>(*Sym);
    } else {
      Decl.Name = C.ident();
      if (Decl.Name.empty()) {
        error(idiag::BadDirectiveArg, CurLine,
              "expected a symbol name after '@'");
        return;
      }
    }
    bool SawAny = false;
    while (!C.atEnd()) {
      std::string Key = C.ident();
      if (Key.empty() || !C.lit('=')) {
        error(idiag::BadDirectiveArg, CurLine,
              "malformed array directive (expected key=value pairs)");
        return;
      }
      std::optional<int64_t> Value = C.number();
      if (!Value) {
        error(idiag::BadDirectiveArg, CurLine,
              "array " + Key + "= expects an integer");
        return;
      }
      if (Key == "extent") {
        if (*Value < 0) {
          error(idiag::BadDirectiveArg, CurLine,
                "array extent= must be non-negative");
          return;
        }
        Decl.Extent = *Value;
      } else if (Key == "stride") {
        Decl.Stride = *Value;
        Decl.HasStride = true;
      } else {
        error(idiag::BadDirectiveArg, CurLine,
              "unknown array key '" + Key + "'");
        return;
      }
      SawAny = true;
    }
    if (!SawAny) {
      error(idiag::BadDirectiveArg, CurLine,
            "array directive declares nothing (add extent= or stride=)");
      return;
    }
    for (const PArray &Prior : PendingArrays)
      if (Prior.Name == Decl.Name && (!Decl.Name.empty() ||
                                      Prior.Sym == Decl.Sym)) {
        error(idiag::BadDirectiveArg, CurLine,
              "duplicate array declaration for '@" +
                  (Decl.Name.empty() ? std::to_string(Decl.Sym)
                                     : Decl.Name) +
                  "'");
        return;
      }
    PendingArrays.push_back(std::move(Decl));
  }

  //===--------------------------------------------------------------------===
  // Loop parsing
  //===--------------------------------------------------------------------===

  void parseAndLowerLoop(Cursor &Header) {
    ++Result.ParsedLoops;
    PLoop PL;
    PL.HeaderLine = CurLine;
    PL.Prov = PendingProv;
    PL.Prov.ImportFile = FileName;
    PL.Ctx = PendingCtx;
    PL.Executions = PendingExecutions;
    PL.Arrays = std::move(PendingArrays);
    PendingProv = ImportProvenance{};
    PendingCtx = SimContext{};
    PendingExecutions = 1;
    PendingArrays.clear();

    bool HeaderOk = parseLoopHeader(Header, PL);
    if (!HeaderOk)
      PL.Dirty = true;

    // Statements until '}'. Parse errors mark the loop dirty but do not
    // stop the scan, so one import reports every problem in the file.
    bool Closed = false;
    std::string_view Line;
    while (nextMeaningfulLine(Line)) {
      if (trim(Line) == "}") {
        Closed = true;
        break;
      }
      parseStatement(Line, PL);
    }
    if (!Closed) {
      error(idiag::Truncated, CurLine,
            "input ends inside loop \"" + PL.Name +
                "\" (missing '}')", PL.Name);
      return;
    }
    if (PL.Phis.empty() && PL.Body.empty()) {
      error(idiag::EmptyLoop, PL.HeaderLine,
            "loop \"" + PL.Name + "\" has no instructions", PL.Name);
      return;
    }
    if (PL.Dirty)
      return;
    lowerLoop(PL);
  }

  bool parseLoopHeader(Cursor &C, PLoop &PL) {
    std::optional<std::string> Name = C.quoted();
    if (!Name) {
      error(idiag::Syntax, CurLine,
            "expected quoted loop name after 'loop'");
      return false;
    }
    PL.Name = *Name;
    bool RTripSet = false;
    while (!C.atEnd()) {
      if (C.peek() == '{') {
        C.lit('{');
        if (!C.atEnd()) {
          error(idiag::Syntax, CurLine, "trailing text after '{'");
          return false;
        }
        if (PL.Trip >= 0 && !RTripSet)
          PL.RTrip = PL.Trip;
        if (PL.Trip >= 0 && RTripSet && PL.RTrip != PL.Trip) {
          error(idiag::TripOutOfRange, CurLine,
                "rtrip= must equal trip= when the trip count is known",
                PL.Name);
          return false;
        }
        return true;
      }
      std::string Key = C.ident();
      if (Key.empty() || !C.lit('=')) {
        error(idiag::Syntax, CurLine,
              "malformed loop header (expected key=value or '{')");
        return false;
      }
      if (Key == "lang") {
        std::string Value = C.ident();
        if (!parseSourceLanguage(Value, PL.Lang)) {
          error(idiag::Syntax, CurLine,
                "unknown language '" + Value + "'");
          return false;
        }
      } else if (Key == "depth") {
        std::optional<int64_t> Value = C.number();
        if (!Value || *Value < 1 || *Value > MaxDepth) {
          error(idiag::TripOutOfRange, CurLine,
                "depth= must be in [1, " + std::to_string(MaxDepth) + "]",
                PL.Name);
          return false;
        }
        PL.Depth = static_cast<int>(*Value);
      } else if (Key == "trip") {
        if (C.lit('?')) {
          PL.Trip = Loop::UnknownTripCount;
        } else {
          std::optional<int64_t> Value = C.number();
          // 0 is legal: a compile-time-known loop that never runs.
          if (!Value || *Value < 0 || *Value > MaxTrip) {
            error(idiag::TripOutOfRange, CurLine,
                  "trip= must be '?' or in [0, 2^31]", PL.Name);
            return false;
          }
          PL.Trip = *Value;
        }
      } else if (Key == "rtrip") {
        std::optional<int64_t> Value = C.number();
        if (!Value || *Value < 1 || *Value > MaxRuntimeTrip) {
          error(idiag::TripOutOfRange, CurLine,
                "rtrip= must be in [1, " +
                    std::to_string(MaxRuntimeTrip) +
                    "] (the reference interpreter executes it)",
                PL.Name);
          return false;
        }
        PL.RTrip = *Value;
        RTripSet = true;
      } else {
        error(idiag::Syntax, CurLine,
              "unknown loop header key '" + Key + "'");
        return false;
      }
    }
    error(idiag::Syntax, CurLine, "loop header missing '{'");
    return false;
  }

  //===--------------------------------------------------------------------===
  // Statement parsing
  //===--------------------------------------------------------------------===

  /// Marks the loop dirty and reports an error anchored to it.
  void stmtError(PLoop &PL, const char *Id, std::string Message) {
    error(Id, CurLine, std::move(Message), PL.Name);
    PL.Dirty = true;
  }

  void parseStatement(std::string_view Line, PLoop &PL) {
    Cursor C(Line);
    PStmt St;
    St.Line = CurLine;

    if (C.peek() == '%') {
      std::optional<std::string> Dest = C.value();
      if (!Dest || !C.lit('=')) {
        stmtError(PL, idiag::Syntax,
                  "malformed destination (expected '%name = ...')");
        return;
      }
      St.HasDest = true;
      St.Dest = *Dest;
    }

    std::string Mn = C.ident();
    if (Mn == "phi") {
      if (parsePhi(C, PL, St))
        PL.Phis.push_back(std::move(St));
      return;
    }
    if (!parseInstruction(C, PL, St, Mn))
      return;
    PL.Body.push_back(std::move(St));
  }

  bool parsePhi(Cursor &C, PLoop &PL, PStmt &St) {
    St.IsPhi = true;
    if (!St.HasDest) {
      stmtError(PL, idiag::Syntax, "phi requires a destination");
      return false;
    }
    if (!PL.Body.empty()) {
      stmtError(PL, idiag::Syntax,
                "phi must precede all instructions");
      return false;
    }
    std::string Ty = C.ident();
    std::optional<RegClass> RC = parseTypeToken(Ty);
    if (!RC) {
      stmtError(PL, idiag::BadType, "unknown phi type '" + Ty + "'");
      return false;
    }
    St.DestClass = *RC;
    if (!C.lit('[')) {
      stmtError(PL, idiag::Syntax, "phi expects '[%init, %recur]'");
      return false;
    }
    std::optional<std::string> Init = C.value();
    if (!Init || !C.lit(',')) {
      stmtError(PL, idiag::Syntax, "phi expects '[%init, %recur]'");
      return false;
    }
    std::optional<std::string> Recur = C.value();
    if (!Recur || !C.lit(']') || !C.atEnd()) {
      stmtError(PL, idiag::Syntax, "phi expects '[%init, %recur]'");
      return false;
    }
    St.Ops.push_back({*Init, *RC});
    St.Ops.push_back({*Recur, *RC});
    return true;
  }

  /// Parses the type token and reports I006 on failure.
  std::optional<RegClass> typeOf(Cursor &C, PLoop &PL,
                                 const std::string &Mn) {
    std::string Ty = C.ident();
    std::optional<RegClass> RC = parseTypeToken(Ty);
    if (!RC)
      stmtError(PL, idiag::BadType,
                "unknown type '" + Ty + "' after '" + Mn + "'");
    return RC;
  }

  /// Parses "%a, %b, ..." — exactly \p Count operands of class \p RC.
  bool operandList(Cursor &C, PLoop &PL, PStmt &St, unsigned Count,
                   RegClass RC, const std::string &Mn) {
    for (unsigned I = 0; I < Count; ++I) {
      if (I > 0 && !C.lit(',')) {
        stmtError(PL, idiag::OperandCount,
                  "'" + Mn + "' expects " + std::to_string(Count) +
                      " operands");
        return false;
      }
      std::optional<std::string> Name = C.value();
      if (!Name) {
        stmtError(PL, idiag::OperandCount,
                  "'" + Mn + "' expects " + std::to_string(Count) +
                      " operands");
        return false;
      }
      St.Ops.push_back({*Name, RC});
    }
    return true;
  }

  bool requireDest(PLoop &PL, PStmt &St, const std::string &Mn,
                   RegClass RC) {
    if (!St.HasDest) {
      stmtError(PL, idiag::Syntax,
                "'" + Mn + "' produces a value (expected '%dest = ...')");
      return false;
    }
    St.DestClass = RC;
    return true;
  }

  bool forbidDest(PLoop &PL, PStmt &St, const std::string &Mn) {
    if (St.HasDest) {
      stmtError(PL, idiag::Syntax,
                "'" + Mn + "' does not produce a value");
      return false;
    }
    return true;
  }

  bool parseInstruction(Cursor &C, PLoop &PL, PStmt &St,
                        const std::string &Mn) {
    // Integer arithmetic family ('and i1' doubles as the predicate
    // combinator, matching PredSet's AND semantics).
    static const std::map<std::string, Opcode> IntBin = {
        {"add", Opcode::IAdd},  {"sub", Opcode::ISub},
        {"mul", Opcode::IMul},  {"sdiv", Opcode::IDiv},
        {"srem", Opcode::IRem}, {"shl", Opcode::Shl},
        {"ashr", Opcode::Shr},  {"and", Opcode::And},
        {"or", Opcode::Or},     {"xor", Opcode::Xor}};
    static const std::map<std::string, Opcode> FloatBin = {
        {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub},
        {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv}};

    if (auto It = IntBin.find(Mn); It != IntBin.end()) {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (*RC == RegClass::Pred) {
        if (Mn != "and") {
          stmtError(PL, idiag::BadType,
                    "i1 arithmetic is limited to 'and' (the IR combines "
                    "predicates with AND)");
          return false;
        }
        St.Op = Opcode::PredSet;
        if (!requireDest(PL, St, Mn, RegClass::Pred))
          return false;
        std::optional<std::string> A = C.value();
        if (!A) {
          stmtError(PL, idiag::OperandCount,
                    "'and i1' expects one or two operands");
          return false;
        }
        St.Ops.push_back({*A, RegClass::Pred});
        if (C.lit(',')) {
          std::optional<std::string> B = C.value();
          if (!B) {
            stmtError(PL, idiag::OperandCount,
                      "'and i1' expects one or two operands");
            return false;
          }
          St.Ops.push_back({*B, RegClass::Pred});
        }
        return finishClauses(C, PL, St);
      }
      if (*RC != RegClass::Int) {
        stmtError(PL, idiag::BadType,
                  "'" + Mn + "' expects an integer type");
        return false;
      }
      St.Op = It->second;
      return requireDest(PL, St, Mn, RegClass::Int) &&
             operandList(C, PL, St, 2, RegClass::Int, Mn) &&
             finishClauses(C, PL, St);
    }

    if (auto It = FloatBin.find(Mn); It != FloatBin.end()) {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (*RC != RegClass::Float) {
        stmtError(PL, idiag::BadType,
                  "'" + Mn + "' expects a floating point type");
        return false;
      }
      St.Op = It->second;
      return requireDest(PL, St, Mn, RegClass::Float) &&
             operandList(C, PL, St, 2, RegClass::Float, Mn) &&
             finishClauses(C, PL, St);
    }

    if (Mn == "icmp" || Mn == "fcmp") {
      bool IsFloat = Mn == "fcmp";
      std::string Cond = C.ident();
      // The IR models exactly one comparison: A < B (signed / ordered).
      const char *Want = IsFloat ? "olt" : "slt";
      if (Cond != Want) {
        stmtError(PL, idiag::UnknownOpcode,
                  "unsupported " + Mn + " condition '" + Cond +
                      "' (the IR models only '" + Want + "')");
        return false;
      }
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      RegClass Expect = IsFloat ? RegClass::Float : RegClass::Int;
      if (*RC != Expect) {
        stmtError(PL, idiag::BadType,
                  "'" + Mn + "' operand type mismatch");
        return false;
      }
      St.Op = IsFloat ? Opcode::FCmp : Opcode::ICmp;
      return requireDest(PL, St, Mn, RegClass::Pred) &&
             operandList(C, PL, St, 2, Expect, Mn) &&
             finishClauses(C, PL, St);
    }

    if (Mn == "fma" || Mn == "sqrt") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (*RC != RegClass::Float) {
        stmtError(PL, idiag::BadType,
                  "'" + Mn + "' expects a floating point type");
        return false;
      }
      St.Op = Mn == "fma" ? Opcode::FMA : Opcode::FSqrt;
      return requireDest(PL, St, Mn, RegClass::Float) &&
             operandList(C, PL, St, Mn == "fma" ? 3 : 1, RegClass::Float,
                         Mn) &&
             finishClauses(C, PL, St);
    }

    if (Mn == "sitofp") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (*RC != RegClass::Float) {
        stmtError(PL, idiag::BadType,
                  "'sitofp' converts to a floating point type");
        return false;
      }
      St.Op = Opcode::FCvt;
      return requireDest(PL, St, Mn, RegClass::Float) &&
             operandList(C, PL, St, 1, RegClass::Int, Mn) &&
             finishClauses(C, PL, St);
    }

    if (Mn == "const") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (*RC == RegClass::Pred) {
        stmtError(PL, idiag::BadType,
                  "predicate constants are not representable; use "
                  "'icmp'/'fcmp' or 'and i1'");
        return false;
      }
      std::optional<int64_t> Value = C.number();
      if (!Value) {
        stmtError(PL, idiag::Syntax, "'const' expects an integer literal");
        return false;
      }
      St.Op = *RC == RegClass::Int ? Opcode::IConst : Opcode::FConst;
      St.Imm = *Value;
      return requireDest(PL, St, Mn, *RC) && finishClauses(C, PL, St);
    }

    if (Mn == "copy") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      St.Op = Opcode::Copy;
      return requireDest(PL, St, Mn, *RC) &&
             operandList(C, PL, St, 1, *RC, Mn) && finishClauses(C, PL, St);
    }

    if (Mn == "select") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      St.Op = Opcode::Select;
      if (!requireDest(PL, St, Mn, *RC))
        return false;
      std::optional<std::string> P = C.value();
      if (!P || !C.lit(',')) {
        stmtError(PL, idiag::OperandCount,
                  "'select' expects '%pred, %a, %b'");
        return false;
      }
      St.Ops.push_back({*P, RegClass::Pred});
      std::optional<std::string> A = C.value();
      if (!A || !C.lit(',')) {
        stmtError(PL, idiag::OperandCount,
                  "'select' expects '%pred, %a, %b'");
        return false;
      }
      std::optional<std::string> B = C.value();
      if (!B) {
        stmtError(PL, idiag::OperandCount,
                  "'select' expects '%pred, %a, %b'");
        return false;
      }
      St.Ops.push_back({*A, *RC});
      St.Ops.push_back({*B, *RC});
      return finishClauses(C, PL, St);
    }

    if (Mn == "gep") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (*RC != RegClass::Int) {
        stmtError(PL, idiag::BadType, "'gep' computes integer addresses");
        return false;
      }
      St.Op = Opcode::AddrGen;
      if (!requireDest(PL, St, Mn, RegClass::Int))
        return false;
      std::optional<std::string> A = C.value();
      if (!A) {
        stmtError(PL, idiag::OperandCount,
                  "'gep' expects one or two operands");
        return false;
      }
      St.Ops.push_back({*A, RegClass::Int});
      if (C.lit(',')) {
        std::optional<std::string> B = C.value();
        if (!B) {
          stmtError(PL, idiag::OperandCount,
                    "'gep' expects one or two operands");
          return false;
        }
        St.Ops.push_back({*B, RegClass::Int});
      }
      return finishClauses(C, PL, St);
    }

    if (Mn == "load") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (*RC == RegClass::Pred) {
        stmtError(PL, idiag::BadType,
                  "loads produce integer or floating point values");
        return false;
      }
      St.Op = Opcode::Load;
      return requireDest(PL, St, Mn, *RC) && parseMemRef(C, PL, St) &&
             finishClauses(C, PL, St);
    }

    if (Mn == "store") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (*RC == RegClass::Pred) {
        stmtError(PL, idiag::BadType,
                  "stores write integer or floating point values");
        return false;
      }
      St.Op = Opcode::Store;
      if (!forbidDest(PL, St, Mn))
        return false;
      std::optional<std::string> Value = C.value();
      if (!Value || !C.lit(',')) {
        stmtError(PL, idiag::OperandCount,
                  "'store' expects '%value, @sym[...]'");
        return false;
      }
      St.Ops.push_back({*Value, *RC});
      return parseMemRef(C, PL, St) && finishClauses(C, PL, St);
    }

    if (Mn == "exit") {
      St.Op = Opcode::ExitIf;
      if (!forbidDest(PL, St, Mn))
        return false;
      std::optional<std::string> P = C.value();
      if (!P) {
        stmtError(PL, idiag::OperandCount,
                  "'exit' expects a predicate operand");
        return false;
      }
      St.Ops.push_back({*P, RegClass::Pred});
      return finishClauses(C, PL, St);
    }

    if (Mn == "call") {
      St.Op = Opcode::Call;
      if (!forbidDest(PL, St, Mn))
        return false;
      if (!C.lit('@') || C.ident().empty() || !C.lit('(')) {
        stmtError(PL, idiag::Syntax,
                  "'call' expects '@callee(type %arg, ...)'");
        return false;
      }
      if (!C.lit(')')) {
        while (true) {
          std::string Ty = C.ident();
          std::optional<RegClass> RC = parseTypeToken(Ty);
          if (!RC) {
            stmtError(PL, idiag::BadType,
                      "unknown call argument type '" + Ty + "'");
            return false;
          }
          std::optional<std::string> Arg = C.value();
          if (!Arg) {
            stmtError(PL, idiag::Syntax,
                      "'call' expects '@callee(type %arg, ...)'");
            return false;
          }
          St.Ops.push_back({*Arg, *RC});
          if (C.lit(')'))
            break;
          if (!C.lit(',')) {
            stmtError(PL, idiag::Syntax,
                      "'call' expects '@callee(type %arg, ...)'");
            return false;
          }
        }
      }
      if (St.Ops.size() > 4) {
        stmtError(PL, idiag::OperandCount,
                  "'call' passes at most 4 register arguments");
        return false;
      }
      return finishClauses(C, PL, St);
    }

    // Explicit canonical loop-control tail (emitted by the exporter so
    // round-trips are exact; hand-written files normally omit it and get
    // the synthesized tail).
    if (Mn == "iv_add" || Mn == "iv_cmp" || Mn == "back_br") {
      std::optional<RegClass> RC = typeOf(C, PL, Mn);
      if (!RC)
        return false;
      if (Mn == "back_br") {
        St.Op = Opcode::BackBr;
        if (*RC != RegClass::Pred) {
          stmtError(PL, idiag::BadType, "'back_br' expects an i1 operand");
          return false;
        }
        return forbidDest(PL, St, Mn) &&
               operandList(C, PL, St, 1, RegClass::Pred, Mn) &&
               finishClauses(C, PL, St);
      }
      if (*RC != RegClass::Int) {
        stmtError(PL, idiag::BadType,
                  "'" + Mn + "' expects an i64 operand");
        return false;
      }
      St.Op = Mn == "iv_add" ? Opcode::IvAdd : Opcode::IvCmp;
      return requireDest(PL, St, Mn,
                         Mn == "iv_add" ? RegClass::Int : RegClass::Pred) &&
             operandList(C, PL, St, 1, RegClass::Int, Mn) &&
             finishClauses(C, PL, St);
    }

    stmtError(PL, idiag::UnknownOpcode, "unknown opcode '" + Mn + "'");
    return false;
  }

  bool parseMemRef(Cursor &C, PLoop &PL, PStmt &St) {
    if (!C.lit('@')) {
      stmtError(PL, idiag::BadMemRef, "expected '@sym[...]' memory ref");
      return false;
    }
    St.HasMem = true;
    char Next = C.peek();
    if (Next == '-' || (Next >= '0' && Next <= '9')) {
      std::optional<int64_t> Sym = C.number();
      if (!Sym || *Sym < INT32_MIN || *Sym > INT32_MAX) {
        stmtError(PL, idiag::BadMemRef, "numeric base symbol out of range");
        return false;
      }
      St.Mem.BaseSym = static_cast<int32_t>(*Sym);
    } else {
      St.MemSym = C.ident();
      if (St.MemSym.empty()) {
        stmtError(PL, idiag::BadMemRef, "expected base symbol after '@'");
        return false;
      }
    }
    if (!C.lit('['))
      return true; // Bare '@sym': all attributes default.
    if (C.lit(']'))
      return true;
    while (true) {
      std::string Key = C.ident();
      if (Key == "indirect") {
        St.Mem.Indirect = true;
      } else if (Key == "stride" || Key == "offset" || Key == "size") {
        if (!C.lit('=')) {
          stmtError(PL, idiag::BadMemRef,
                    "memory ref attribute '" + Key + "' expects a value");
          return false;
        }
        std::optional<int64_t> Value = C.number();
        if (!Value) {
          stmtError(PL, idiag::BadMemRef,
                    "memory ref attribute '" + Key +
                        "' expects an integer");
          return false;
        }
        if (Key == "stride") {
          St.Mem.Stride = *Value;
        } else if (Key == "offset") {
          St.Mem.Offset = *Value;
        } else {
          if (*Value != 1 && *Value != 2 && *Value != 4 && *Value != 8 &&
              *Value != 16) {
            stmtError(PL, idiag::BadMemRef,
                      "size= must be 1, 2, 4, 8, or 16 bytes");
            return false;
          }
          St.Mem.SizeBytes = static_cast<int32_t>(*Value);
        }
      } else {
        stmtError(PL, idiag::BadMemRef,
                  "unknown memory ref attribute '" + Key + "'");
        return false;
      }
      if (C.lit(']'))
        return true;
      if (!C.lit(',')) {
        stmtError(PL, idiag::BadMemRef, "malformed memory ref");
        return false;
      }
    }
  }

  /// Parses the trailing clauses shared by all instructions:
  ///   [prob=P] [ind(%x)] [paired] [when(%p)]
  /// in any order, each at most once.
  bool finishClauses(Cursor &C, PLoop &PL, PStmt &St) {
    bool ProbSeen = false;
    while (!C.atEnd()) {
      std::string Word = C.ident();
      if (Word == "when") {
        if (!C.lit('(')) {
          stmtError(PL, idiag::Syntax, "'when' expects '(%pred)'");
          return false;
        }
        std::optional<std::string> G = C.value();
        if (!G || !C.lit(')')) {
          stmtError(PL, idiag::Syntax, "'when' expects '(%pred)'");
          return false;
        }
        if (St.Op == Opcode::ExitIf || St.Op == Opcode::IvAdd ||
            St.Op == Opcode::IvCmp || St.Op == Opcode::BackBr) {
          stmtError(PL, idiag::BadGuard,
                    "loop-control and exit instructions must not be "
                    "predicated");
          return false;
        }
        St.Guard = *G;
      } else if (Word == "ind") {
        if (!C.lit('(')) {
          stmtError(PL, idiag::BadIndex, "'ind' expects '(%index)'");
          return false;
        }
        std::optional<std::string> Index = C.value();
        if (!Index || !C.lit(')')) {
          stmtError(PL, idiag::BadIndex, "'ind' expects '(%index)'");
          return false;
        }
        if (!St.HasMem) {
          stmtError(PL, idiag::BadIndex,
                    "'ind' is only valid on loads and stores");
          return false;
        }
        St.Index = *Index;
      } else if (Word == "paired") {
        if (St.Op != Opcode::Load) {
          stmtError(PL, idiag::Syntax, "'paired' is only valid on loads");
          return false;
        }
        St.Paired = true;
      } else if (Word == "prob") {
        if (St.Op != Opcode::ExitIf || !C.lit('=')) {
          stmtError(PL, idiag::Syntax, "'prob=' is only valid on 'exit'");
          return false;
        }
        std::optional<double> P = C.real();
        if (!P || !(*P >= 0.0 && *P <= 1.0)) {
          stmtError(PL, idiag::BadProbability,
                    "exit probability must be in [0, 1]");
          return false;
        }
        St.Prob = *P;
        ProbSeen = true;
      } else {
        stmtError(PL, idiag::Syntax,
                  "unexpected trailing text '" + Word + "'");
        return false;
      }
    }
    if (St.Op == Opcode::ExitIf && !ProbSeen) {
      stmtError(PL, idiag::BadProbability,
                "'exit' requires a prob= clause");
      return false;
    }
    // Structural index checks (class/def checks happen in lowering).
    if (St.HasMem) {
      if (St.Mem.Indirect && St.Index.empty()) {
        stmtError(PL, idiag::BadIndex,
                  "indirect memory ref requires an ind(%index) clause");
        return false;
      }
      if (!St.Mem.Indirect && !St.Index.empty()) {
        stmtError(PL, idiag::BadIndex,
                  "ind(%index) requires the 'indirect' attribute");
        return false;
      }
    }
    return true;
  }

  //===--------------------------------------------------------------------===
  // Lowering
  //===--------------------------------------------------------------------===

  void lowerLoop(PLoop &PL) {
    // Definition table: name -> (class, body index or -1 for phi).
    struct Def {
      RegClass RC;
      int BodyIndex; ///< -1 when defined by a phi.
    };
    std::map<std::string, Def> Defs;
    auto Define = [&](const std::string &Name, RegClass RC, int BodyIndex,
                      unsigned Line) {
      auto [It, Inserted] = Defs.emplace(Name, Def{RC, BodyIndex});
      (void)It;
      if (!Inserted) {
        stmtError(PL, idiag::DuplicateValue,
                  "value '%" + Name + "' defined more than once");
        return false;
      }
      (void)Line;
      return true;
    };
    for (const PStmt &Phi : PL.Phis)
      if (!Define(Phi.Dest, Phi.DestClass, -1, Phi.Line))
        return;
    for (size_t I = 0; I < PL.Body.size(); ++I)
      if (PL.Body[I].HasDest)
        if (!Define(PL.Body[I].Dest, PL.Body[I].DestClass,
                    static_cast<int>(I), PL.Body[I].Line))
          return;

    // Def-use legality. A body instruction may read phis, live-ins
    // (never-defined names), and earlier body defs; reading a later body
    // def is a cyclic dependence the format can only express via a phi.
    auto CheckUse = [&](const std::string &Name, RegClass Expect,
                        int UserIndex, unsigned Line) {
      auto It = Defs.find(Name);
      if (It == Defs.end())
        return true; // Live-in; class fixed at first use.
      if (It->second.RC != Expect) {
        CurLine = Line;
        stmtError(PL, idiag::ClassMismatch,
                  "value '%" + Name + "' has class " +
                      typeTokenFor(It->second.RC) + " but is used as " +
                      typeTokenFor(Expect));
        return false;
      }
      if (It->second.BodyIndex >= 0 && It->second.BodyIndex >= UserIndex) {
        CurLine = Line;
        stmtError(PL, idiag::DefUseCycle,
                  "value '%" + Name + "' is used before its definition; "
                  "loop-carried dependences need a phi");
        return false;
      }
      return true;
    };

    for (const PStmt &Phi : PL.Phis) {
      const std::string &Init = Phi.Ops[0].Name;
      const std::string &Recur = Phi.Ops[1].Name;
      if (Defs.count(Init)) {
        CurLine = Phi.Line;
        stmtError(PL, idiag::PhiInitDefined,
                  "phi initial value '%" + Init +
                      "' must be live-in, not defined in the loop");
        return;
      }
      auto It = Defs.find(Recur);
      if (It == Defs.end()) {
        CurLine = Phi.Line;
        stmtError(PL, idiag::PhiRecurUndefined,
                  "phi recurrence '%" + Recur +
                      "' is not computed in the loop");
        return;
      }
      if (It->second.RC != Phi.DestClass) {
        CurLine = Phi.Line;
        stmtError(PL, idiag::ClassMismatch,
                  "phi '%" + Phi.Dest + "' mixes register classes");
        return;
      }
      if (Recur == Phi.Dest) {
        CurLine = Phi.Line;
        stmtError(PL, idiag::DefUseCycle,
                  "phi '%" + Phi.Dest + "' recurs on itself directly");
        return;
      }
    }
    for (size_t I = 0; I < PL.Body.size(); ++I) {
      const PStmt &St = PL.Body[I];
      for (const POperand &Op : St.Ops)
        if (!CheckUse(Op.Name, Op.RC, static_cast<int>(I), St.Line))
          return;
      if (!St.Index.empty() &&
          !CheckUse(St.Index, RegClass::Int, static_cast<int>(I), St.Line))
        return;
      if (!St.Guard.empty()) {
        auto It = Defs.find(St.Guard);
        if (It != Defs.end() && It->second.RC != RegClass::Pred) {
          CurLine = St.Line;
          stmtError(PL, idiag::ClassMismatch,
                    "guard '%" + St.Guard +
                        "' is not a predicate value");
          return;
        }
        if (!CheckUse(St.Guard, RegClass::Pred, static_cast<int>(I),
                      St.Line))
          return;
      }
    }

    // Explicit loop-control tail: all three, in order, last, chained.
    size_t FirstControl = PL.Body.size();
    for (size_t I = 0; I < PL.Body.size(); ++I)
      if (opcodeInfo(PL.Body[I].Op).IsLoopControl) {
        FirstControl = I;
        break;
      }
    bool ExplicitTail = FirstControl != PL.Body.size();
    if (ExplicitTail) {
      bool Shape = PL.Body.size() - FirstControl == 3 &&
                   PL.Body[FirstControl].Op == Opcode::IvAdd &&
                   PL.Body[FirstControl + 1].Op == Opcode::IvCmp &&
                   PL.Body[FirstControl + 2].Op == Opcode::BackBr;
      if (Shape) {
        const PStmt &Add = PL.Body[FirstControl];
        const PStmt &Cmp = PL.Body[FirstControl + 1];
        const PStmt &Br = PL.Body[FirstControl + 2];
        Shape = Cmp.Ops[0].Name == Add.Dest && Br.Ops[0].Name == Cmp.Dest;
      }
      if (!Shape) {
        CurLine = PL.Body[FirstControl].Line;
        stmtError(PL, idiag::Syntax,
                  "loop-control tail must be exactly 'iv_add', 'iv_cmp', "
                  "'back_br' as the last three instructions, each "
                  "consuming the previous result");
        return;
      }
    }

    // Intern named memory symbols: numeric literals keep their ids, named
    // symbols get the smallest unused non-negative ids in first-use order.
    std::set<int32_t> UsedSyms;
    for (const PStmt &St : PL.Body)
      if (St.HasMem && St.MemSym.empty())
        UsedSyms.insert(St.Mem.BaseSym);
    std::map<std::string, int32_t> SymIds;
    int32_t NextSym = 0;
    for (PStmt &St : PL.Body) {
      if (!St.HasMem || St.MemSym.empty())
        continue;
      auto It = SymIds.find(St.MemSym);
      if (It == SymIds.end()) {
        while (UsedSyms.count(NextSym))
          ++NextSym;
        It = SymIds.emplace(St.MemSym, NextSym).first;
        UsedSyms.insert(NextSym);
      }
      St.Mem.BaseSym = It->second;
    }

    // Resolve array declarations against the interned ids. Named
    // declarations the loop never references are dropped (the context
    // may describe arrays this particular loop does not touch); numeric
    // ones are kept verbatim since numeric refs keep their ids.
    LoopSymbolContext Symbols;
    for (const PArray &Decl : PL.Arrays) {
      SymbolDecl Out;
      Out.Name = Decl.Name;
      Out.ExtentBytes = Decl.Extent;
      Out.DeclaredStride = Decl.Stride;
      Out.HasStride = Decl.HasStride;
      if (Decl.Name.empty()) {
        Out.Sym = Decl.Sym;
      } else {
        auto It = SymIds.find(Decl.Name);
        if (It == SymIds.end())
          continue;
        Out.Sym = It->second;
      }
      Symbols.Decls.push_back(std::move(Out));
    }

    // Build the Loop. Registers are created at first textual occurrence;
    // names arriving with the printer's class prefix (the exporter writes
    // printed names) have it stripped, mirroring ir/Parser.cpp.
    Loop L(PL.Name, PL.Lang, PL.Depth, PL.Trip);
    L.setRuntimeTripCount(PL.RTrip);
    L.setSourceFile(FileName);
    L.setHeaderLine(PL.HeaderLine);

    std::map<std::string, RegId> ByName;
    bool LowerOk = true;
    auto GetReg = [&](const std::string &Name, RegClass RC,
                      unsigned Line) -> RegId {
      auto It = ByName.find(Name);
      if (It != ByName.end()) {
        if (L.regClass(It->second) != RC) {
          CurLine = Line;
          stmtError(PL, idiag::ClassMismatch,
                    "value '%" + Name + "' is used with two classes");
          LowerOk = false;
        }
        return It->second;
      }
      std::string Base = Name;
      const char *Prefix = regClassPrefix(RC);
      if (Base.size() >= 2 && Base[0] == Prefix[0] && Base[1] == '_')
        Base = Base.substr(2);
      RegId Reg = L.addReg(RC, std::move(Base));
      ByName.emplace(Name, Reg);
      return Reg;
    };

    for (const PStmt &Phi : PL.Phis) {
      PhiNode Node;
      Node.Dest = GetReg(Phi.Dest, Phi.DestClass, Phi.Line);
      Node.Init = GetReg(Phi.Ops[0].Name, Phi.DestClass, Phi.Line);
      Node.Recur = GetReg(Phi.Ops[1].Name, Phi.DestClass, Phi.Line);
      Node.SrcLine = Phi.Line;
      L.addPhi(Node);
    }
    for (const PStmt &St : PL.Body) {
      Instruction Instr;
      Instr.Op = St.Op;
      Instr.SrcLine = St.Line;
      Instr.Imm = St.Imm;
      Instr.TakenProb = St.Prob;
      Instr.Paired = St.Paired;
      if (St.HasMem)
        Instr.Mem = St.Mem;
      if (!St.Guard.empty())
        Instr.Pred = GetReg(St.Guard, RegClass::Pred, St.Line);
      if (St.HasDest)
        Instr.Dest = GetReg(St.Dest, St.DestClass, St.Line);
      for (const POperand &Op : St.Ops)
        Instr.Operands.push_back(GetReg(Op.Name, Op.RC, St.Line));
      if (!St.Index.empty())
        Instr.Operands.push_back(
            GetReg(St.Index, RegClass::Int, St.Line));
      L.addInstruction(std::move(Instr));
    }
    if (!LowerOk)
      return;

    if (!ExplicitTail) {
      // Same canonical tail LoopBuilder::finalize() appends.
      RegId Iv = L.addReg(RegClass::Int, "iv");
      Instruction Inc;
      Inc.Op = Opcode::IvAdd;
      Inc.Operands.push_back(Iv);
      Inc.Dest = L.addReg(RegClass::Int, "iv.next");
      L.addInstruction(Inc);
      Instruction Cmp;
      Cmp.Op = Opcode::IvCmp;
      Cmp.Operands.push_back(L.body().back().Dest);
      Cmp.Dest = L.addReg(RegClass::Pred, "iv.cond");
      L.addInstruction(Cmp);
      Instruction Br;
      Br.Op = Opcode::BackBr;
      Br.Operands.push_back(L.body().back().Dest);
      L.addInstruction(Br);
    }

    // Safety net: anything the importer's own checks missed surfaces as
    // a verifier diagnostic here instead of escaping downstream. The
    // accepted-loops invariant is "verifier-clean", unconditionally.
    DiagnosticReport Verify = verifyLoopDiagnostics(L);
    if (Verify.hasErrors()) {
      Result.Report.append(Verify);
      PL.Dirty = true;
      return;
    }

    ImportedLoop Out;
    Out.TheLoop = std::move(L);
    Out.Prov = PL.Prov;
    Out.Ctx = PL.Ctx;
    Out.Executions = PL.Executions;
    Out.Symbols = std::move(Symbols);
    Result.Loops.push_back(std::move(Out));
  }

  std::string_view Text;
  std::string FileName;
  ImportOptions Options;
  ImportResult &Result;
  size_t Pos = 0;
  unsigned CurLine = 0;
  ImportProvenance PendingProv;
  SimContext PendingCtx;
  int64_t PendingExecutions = 1;
  std::vector<PArray> PendingArrays;
};

} // namespace

ImportResult metaopt::importLoops(std::string_view Text,
                                  std::string FileName,
                                  const ImportOptions &Options) {
  ImportResult Result;
  Importer(Text, std::move(FileName), Options, Result).run();
  return Result;
}

ImportResult metaopt::importFile(const std::string &Path,
                                 const ImportOptions &Options) {
  std::ifstream In(Path);
  if (!In) {
    ImportResult Result;
    Diagnostic D;
    D.Id = idiag::IoError;
    D.Sev = Severity::Error;
    D.Message = "cannot open '" + Path + "'";
    Result.Report.add(std::move(D));
    return Result;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return importLoops(Buffer.str(), Path, Options);
}
